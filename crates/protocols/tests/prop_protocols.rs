//! Property-based tests for the protocols — most importantly the
//! Theorem 5.1 invariant: WILDFIRE min/max satisfies Single-Site
//! Validity on *arbitrary* connected topologies under *arbitrary* churn.

use pov_protocols::allreport::ReportRouting;
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_sim::{ChurnPlan, Time};
use pov_topology::{analysis, Graph, GraphBuilder, HostId};
use proptest::prelude::*;

/// Arbitrary connected graph + per-host values + churn plan.
#[derive(Debug, Clone)]
struct Scenario {
    graph: Graph,
    values: Vec<u64>,
    churn: ChurnPlan,
    d_hat: u32,
}

fn scenario(max_n: u32) -> impl Strategy<Value = Scenario> {
    (3..max_n)
        .prop_flat_map(move |n| {
            (
                Just(n),
                prop::collection::vec((0..n, 0..n), 1..(3 * n as usize)),
                prop::collection::vec(10u64..500, n as usize),
                prop::collection::vec((1u32..max_n, 0u64..30), 0..(n as usize / 2)),
            )
        })
        .prop_map(|(n, es, values, fails)| {
            let mut b = GraphBuilder::with_hosts(n as usize);
            b.add_edge(HostId(0), HostId(1));
            for (a, bb) in es {
                b.add_edge(HostId(a), HostId(bb));
            }
            let (graph, _) = analysis::connect_components(&b.build());
            let d = analysis::diameter_exact(&graph).max(1);
            let mut churn = ChurnPlan::none();
            for (h, t) in fails {
                let h = HostId(h % n);
                if h != HostId(0) {
                    churn = churn.with_failure(Time(t), h);
                }
            }
            Scenario {
                graph,
                values,
                churn,
                d_hat: d + 1,
            }
        })
}

fn config(sc: &Scenario, aggregate: Aggregate, seed: u64) -> RunPlan {
    RunPlan::query(aggregate)
        .d_hat(sc.d_hat)
        .churn(sc.churn.clone())
        .seed(seed)
}

/// Single-Site-Validity check for min/max per §4.1: `v = q(H)` for some
/// `HC ⊆ H ⊆ HU` means `v` is an `HU` host's value, at most/least the
/// `HC` extremum.
fn min_max_valid(sc: &Scenario, aggregate: Aggregate, v: f64) -> bool {
    let deadline = Time(2 * sc.d_hat as u64);
    // Replay the churn to recover HC/HU exactly as the oracle would.
    // (Failures are the only events; the trace equals the plan.)
    let mut throughout = vec![true; sc.graph.num_hosts()];
    let sometime = vec![true; sc.graph.num_hosts()];
    for &(t, h) in &sc.churn.failures {
        if t <= deadline {
            throughout[h.index()] = false;
        }
        let _ = sometime[h.index()]; // failures keep HU membership
    }
    let dist = analysis::bfs_distances_filtered(&sc.graph, HostId(0), |h| throughout[h.index()]);
    let hc: Vec<u64> = (0..sc.graph.num_hosts())
        .filter(|&i| dist[i] != analysis::UNREACHABLE)
        .map(|i| sc.values[i])
        .collect();
    let hu: Vec<u64> = (0..sc.graph.num_hosts())
        .filter(|&i| sometime[i])
        .map(|i| sc.values[i])
        .collect();
    let witnessed = hu.iter().any(|&w| (w as f64 - v).abs() < 1e-9);
    match aggregate {
        Aggregate::Min => {
            let hc_min = hc.iter().min().copied().map(|m| m as f64);
            witnessed && hc_min.is_none_or(|m| v <= m + 1e-9)
        }
        Aggregate::Max => {
            let hc_max = hc.iter().max().copied().map(|m| m as f64);
            witnessed && hc_max.is_none_or(|m| v >= m - 1e-9)
        }
        _ => unreachable!("min/max only"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem_5_1_wildfire_min_max_valid(sc in scenario(16), seed in 0u64..100) {
        for aggregate in [Aggregate::Min, Aggregate::Max] {
            let out = runner::run(
                ProtocolKind::Wildfire(WildfireOpts::default()),
                &sc.graph,
                &sc.values,
                &config(&sc, aggregate, seed),
            );
            let v = out.value.expect("hq never fails in these scenarios");
            prop_assert!(
                min_max_valid(&sc, aggregate, v),
                "{aggregate:?} = {v} violates SSV on {:?} with churn {:?}",
                sc.graph,
                sc.churn.failures
            );
        }
    }

    #[test]
    fn theorem_4_3_allreport_valid(sc in scenario(14), seed in 0u64..100) {
        // ALLREPORT (direct) achieves SSV for min/max too.
        for aggregate in [Aggregate::Min, Aggregate::Max] {
            let out = runner::run(
                ProtocolKind::AllReport(ReportRouting::Direct),
                &sc.graph,
                &sc.values,
                &config(&sc, aggregate, seed),
            );
            let v = out.value.expect("declared");
            prop_assert!(
                min_max_valid(&sc, aggregate, v),
                "{aggregate:?} = {v} violates SSV"
            );
        }
    }

    #[test]
    fn exact_protocols_agree_without_churn(sc in scenario(14), seed in 0u64..100) {
        let mut sc = sc;
        sc.churn = ChurnPlan::none();
        for aggregate in [Aggregate::Count, Aggregate::Sum, Aggregate::Min, Aggregate::Max] {
            let truth = aggregate.ground_truth(&sc.values).unwrap();
            for kind in [
                ProtocolKind::AllReport(ReportRouting::Direct),
                ProtocolKind::SpanningTree,
            ] {
                let out = runner::run(kind, &sc.graph, &sc.values, &config(&sc, aggregate, seed));
                prop_assert_eq!(
                    out.value,
                    Some(truth),
                    "{:?} under {:?}",
                    aggregate,
                    kind
                );
            }
        }
    }

    #[test]
    fn spanning_tree_count_never_exceeds_population(
        sc in scenario(16),
        seed in 0u64..100,
    ) {
        // Exact tree aggregation can lose hosts but never double-counts.
        let out = runner::run(
            ProtocolKind::SpanningTree,
            &sc.graph,
            &sc.values,
            &config(&sc, Aggregate::Count, seed),
        );
        let v = out.value.expect("declared");
        prop_assert!(v >= 1.0, "root always counts itself");
        prop_assert!(v <= sc.graph.num_hosts() as f64);
    }

    #[test]
    fn dag_min_max_at_least_as_good_as_tree(sc in scenario(14), seed in 0u64..50) {
        // With identical churn, every host reachable to the DAG root via
        // surviving report chains includes the tree paths... we assert
        // the weaker, always-true shape: both declare, and DAG's max ≥
        // its own HC requirement is checked by min_max_valid-style logic
        // only for WILDFIRE; here: DAG max ≥ ST max never *strictly*
        // holds per-instance (timing differs), so assert bounds only.
        let cfgx = config(&sc, Aggregate::Max, seed);
        let dag = runner::run(ProtocolKind::Dag { k: 2 }, &sc.graph, &sc.values, &cfgx);
        let st = runner::run(ProtocolKind::SpanningTree, &sc.graph, &sc.values, &cfgx);
        let max_all = *sc.values.iter().max().unwrap() as f64;
        for v in [dag.value.unwrap(), st.value.unwrap()] {
            prop_assert!(v <= max_all);
            prop_assert!(v >= sc.values[0] as f64); // hq's own value always in
        }
    }

    #[test]
    fn wildfire_outcome_deterministic(sc in scenario(12), seed in 0u64..50) {
        let cfgx = config(&sc, Aggregate::Count, seed);
        let a = runner::run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &sc.graph,
            &sc.values,
            &cfgx,
        );
        let b = runner::run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &sc.graph,
            &sc.values,
            &cfgx,
        );
        prop_assert_eq!(a.value, b.value);
        prop_assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
    }

    #[test]
    fn wildfire_opts_do_not_change_min_result(sc in scenario(12), seed in 0u64..50) {
        // The §5.3 optimizations are cost optimizations; for min/max the
        // declared value must be identical with or without them, under
        // identical failure-free conditions.
        let mut sc = sc;
        sc.churn = ChurnPlan::none();
        let cfgx = config(&sc, Aggregate::Min, seed);
        let variants = [
            WildfireOpts { early_deadline: false, piggyback: false },
            WildfireOpts { early_deadline: true, piggyback: false },
            WildfireOpts { early_deadline: false, piggyback: true },
            WildfireOpts { early_deadline: true, piggyback: true },
        ];
        let truth = *sc.values.iter().min().unwrap() as f64;
        for opts in variants {
            let out = runner::run(
                ProtocolKind::Wildfire(opts),
                &sc.graph,
                &sc.values,
                &cfgx,
            );
            prop_assert_eq!(out.value, Some(truth), "{:?}", opts);
        }
    }
}
