//! Robustness tests: the protocols' guarantees must survive bounded
//! delay jitter (the relaxed asynchronous model allows any per-hop delay
//! up to δ, §3.1) and the radio medium.

use pov_protocols::allreport::{AllReportNode, ReportRouting};
use pov_protocols::spanning_tree::SpanningTreeNode;
use pov_protocols::wildfire::{WildfireNode, WildfireOpts};
use pov_protocols::{Aggregate, QuerySpec};
use pov_sim::{ChurnPlan, DelayModel, Medium, SimBuilder, Time};
use pov_topology::generators::{grid_square, random_average_degree};
use pov_topology::{analysis, HostId};

/// Under jitter, WILDFIRE must run with `D̂` scaled by the delay bound:
/// a hop can take up to `max_delay` ticks, so the deadline needs
/// `2·D̂·δ` with `δ = max_delay`.
fn jitter_spec(graph: &pov_topology::Graph, aggregate: Aggregate, max_delay: u64) -> QuerySpec {
    let d = analysis::diameter_estimate(graph, 4, 3).max(1);
    QuerySpec {
        aggregate,
        d_hat: (d + 2) * max_delay as u32,
        c: 8,
    }
}

#[test]
fn wildfire_max_exact_under_jitter() {
    let g = random_average_degree(300, 5.0, 8);
    let values: Vec<u64> = (0..300u64).map(|i| 10 + (i * 13) % 490).collect();
    let truth = *values.iter().max().unwrap() as f64;
    for max_delay in [1u64, 2, 3] {
        let spec = jitter_spec(&g, Aggregate::Max, max_delay);
        let vals = values.clone();
        let mut sim = SimBuilder::new(g.clone())
            .delay(DelayModel::Uniform {
                min: 1,
                max: max_delay,
            })
            .seed(max_delay)
            .build(move |h| {
                if h == HostId(0) {
                    WildfireNode::query_host(vals[h.index()], spec, WildfireOpts::default())
                } else {
                    WildfireNode::host(vals[h.index()], WildfireOpts::default())
                }
            });
        sim.run_until(Time(spec.deadline() + 1));
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, truth, "max under jitter δ={max_delay}");
    }
}

#[test]
fn wildfire_max_exact_under_jitter_with_churn() {
    let g = random_average_degree(200, 6.0, 9);
    let values: Vec<u64> = (0..200u64).map(|i| 10 + (i * 7) % 490).collect();
    let spec = jitter_spec(&g, Aggregate::Max, 2);
    let churn =
        ChurnPlan::uniform_failures(200, 30, Time::ZERO, Time(spec.deadline()), HostId(0), 4);
    let vals = values.clone();
    let mut sim = SimBuilder::new(g.clone())
        .delay(DelayModel::Uniform { min: 1, max: 2 })
        .churn(churn.clone())
        .seed(5)
        .build(move |h| {
            if h == HostId(0) {
                WildfireNode::query_host(vals[h.index()], spec, WildfireOpts::default())
            } else {
                WildfireNode::host(vals[h.index()], WildfireOpts::default())
            }
        });
    sim.run_until(Time(spec.deadline() + 1));
    let (v, _) = sim.logic(HostId(0)).result().expect("declared");
    // SSV check: v must be a value of some HU host and at least the max
    // over hosts that never failed (all stable paths exist among alive
    // hosts? not guaranteed on a random graph — but every alive host
    // with a stable path counts; use the weaker universal bound: v must
    // be at least hq's own value and at most the global max).
    assert!(v >= values[0] as f64);
    assert!(v <= *values.iter().max().unwrap() as f64);
    assert!(values.iter().any(|&w| w as f64 == v), "witnessed value");
}

#[test]
fn spanning_tree_exact_under_jitter() {
    // The echo discipline does not depend on synchronous hops.
    let g = random_average_degree(250, 5.0, 11);
    let values = vec![1u64; 250];
    let spec = jitter_spec(&g, Aggregate::Count, 3);
    let mut sim = SimBuilder::new(g)
        .delay(DelayModel::Uniform { min: 1, max: 3 })
        .seed(12)
        .build(move |h| {
            if h == HostId(0) {
                SpanningTreeNode::query_host(1, spec)
            } else {
                SpanningTreeNode::host(1)
            }
        });
    sim.run_until(Time(spec.deadline() + 2));
    let (v, _) = sim.logic(HostId(0)).result().expect("declared");
    assert_eq!(v, values.len() as f64);
}

#[test]
fn allreport_reverse_tree_on_radio_grid() {
    // Sensor configuration: unicast (MAC-addressed) relays over radio.
    let g = grid_square(12);
    let n = g.num_hosts();
    let spec = QuerySpec {
        aggregate: Aggregate::Count,
        d_hat: 14,
        c: 8,
    };
    let mut sim = SimBuilder::new(g)
        .medium(Medium::Radio)
        .seed(2)
        .build(move |h| {
            if h == HostId(0) {
                AllReportNode::query_host(1, spec, ReportRouting::ReverseTree)
            } else {
                AllReportNode::host(1, ReportRouting::ReverseTree)
            }
        });
    sim.run_until(Time(spec.deadline() + 1));
    let (v, _) = sim.logic(HostId(0)).result().expect("declared");
    assert_eq!(v, n as f64);
}

#[test]
fn wildfire_count_on_radio_grid_cheaper_than_p2p() {
    let g = grid_square(15);
    let spec = QuerySpec {
        aggregate: Aggregate::Count,
        d_hat: 16,
        c: 8,
    };
    let run = |medium: Medium| {
        let mut sim = SimBuilder::new(g.clone())
            .medium(medium)
            .seed(6)
            .build(move |h| {
                if h == HostId(0) {
                    WildfireNode::query_host(1, spec, WildfireOpts::default())
                } else {
                    WildfireNode::host(1, WildfireOpts::default())
                }
            });
        sim.run_until(Time(spec.deadline() + 1));
        (
            sim.logic(HostId(0)).result().expect("declared").0,
            sim.metrics().messages_sent,
        )
    };
    let (v_radio, m_radio) = run(Medium::Radio);
    let (v_p2p, m_p2p) = run(Medium::PointToPoint);
    assert!(m_radio < m_p2p / 3, "radio {m_radio} vs p2p {m_p2p}");
    // Both count ~225 hosts within FM error.
    for v in [v_radio, v_p2p] {
        assert!((60.0..900.0).contains(&v), "estimate {v}");
    }
}

#[test]
fn wildfire_quiesces_under_jitter() {
    // Quiescence holds under jitter too, just stretched by δ.
    let g = random_average_degree(200, 5.0, 13);
    let spec = jitter_spec(&g, Aggregate::Count, 2);
    let mut sim = SimBuilder::new(g)
        .delay(DelayModel::Uniform { min: 1, max: 2 })
        .seed(14)
        .build(move |h| {
            if h == HostId(0) {
                WildfireNode::query_host(1, spec, WildfireOpts::default())
            } else {
                WildfireNode::host(1, WildfireOpts::default())
            }
        });
    sim.run_until(Time(spec.deadline() + 1));
    let last = sim.metrics().last_active_tick().expect("some traffic");
    assert!(
        last < spec.deadline(),
        "traffic at {last} should die before the deadline {}",
        spec.deadline()
    );
}
