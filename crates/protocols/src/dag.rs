//! The DIRECTEDACYCLICGRAPH best-effort protocol (§4.4).
//!
//! SPANNINGTREE loses a whole subtree when one interior host dies; the
//! DAG variant gives every host up to `k` parents so its contribution has
//! `k` chances to reach the root (TAG \[22\], Considine et al. \[7\]). The
//! same value can then arrive at the root along several paths, so —
//! exactly as in the paper's evaluation (§6: *"Our implementation of
//! DIRECTEDACYCLICGRAPH uses the distributed count and sum operators"*) —
//! count/sum/avg partials are FM sketches (duplicate-insensitive), while
//! min/max remain exact.
//!
//! Structure: the sender of the first query copy is the first parent
//! (exactly the SPANNINGTREE tree); senders of later duplicate copies
//! are adopted as extra parents while slots remain, **provided they sit
//! strictly closer to the root** — that keeps the parent relation
//! acyclic, so update propagation terminates.
//!
//! Convergecast: the same echo discipline as SPANNINGTREE (report to all
//! parents once every non-parent neighbour is classified, with the
//! `(2·D̂ − depth)·δ` fallback), plus one budgeted *late update*:
//! duplicate-insensitivity makes it safe for a host that has already
//! reported to push a refreshed aggregate to its parents when a
//! straggling child report still changes it. The budget (one late shot
//! per host, coalesced at end of tick) keeps the convergecast at
//! `O(k·|H|)` messages — under radio a report to all `k` parents is a
//! single multicast, which is why the paper's Fig 11 DAG curve overlaps
//! SPANNINGTREE — while still letting a value climb around a dead first
//! parent level by level.

use crate::common::{Partial, QuerySpec};
use crate::observer::{summary_of, ProtocolObserver};
use pov_sim::{Ctx, NodeLogic, StateSummary, Time};
use pov_topology::HostId;
use std::collections::HashSet;

/// Timer key for the per-host fallback deadline.
const TIMER_FALLBACK: u64 = 1;
/// Timer key for the end-of-tick coalesced late update.
const TIMER_LATE_FLUSH: u64 = 2;
/// Late updates each host may send after its completion report.
const LATE_UPDATE_BUDGET: u32 = 1;

/// DAG messages.
#[derive(Clone, Debug)]
pub enum DagMsg {
    /// The flooded query.
    Query {
        /// Query parameters.
        spec: QuerySpec,
        /// Hops travelled (sender's depth).
        hops: u32,
    },
    /// An aggregate from a host that adopted us as one of its parents
    /// (either its completion report or a late update).
    Report {
        /// The child's combined partial aggregate.
        partial: Partial,
    },
}

/// Per-host DAG state.
#[derive(Debug)]
pub struct DagNode {
    value: u64,
    k: usize,
    parents: Vec<HostId>,
    depth: u32,
    activated: bool,
    reported: bool,
    heard: HashSet<HostId>,
    partial: Option<Partial>,
    query: Option<QuerySpec>,
    result: Option<(f64, Time)>,
    is_query_host: bool,
    late_updates_left: u32,
    late_flush_scheduled: bool,
}

impl DagNode {
    /// A passive host that will adopt up to `k` parents.
    pub fn host(value: u64, k: usize) -> Self {
        assert!(k >= 1, "need at least one parent slot");
        DagNode {
            value,
            k,
            parents: crate::pool::take_hosts(),
            depth: 0,
            activated: false,
            reported: false,
            heard: crate::pool::take_host_set(),
            partial: None,
            query: None,
            result: None,
            is_query_host: false,
            late_updates_left: LATE_UPDATE_BUDGET,
            late_flush_scheduled: false,
        }
    }

    /// The querying host (DAG sink).
    pub fn query_host(value: u64, k: usize, spec: QuerySpec) -> Self {
        let mut n = Self::host(value, k);
        n.is_query_host = true;
        n.query = Some(spec);
        n
    }

    /// The declared result at the root.
    pub fn result(&self) -> Option<(f64, Time)> {
        self.result
    }

    /// Parents adopted so far (diagnostics).
    pub fn parents(&self) -> &[HostId] {
        &self.parents
    }
}

impl Drop for DagNode {
    fn drop(&mut self) {
        crate::pool::put_hosts(std::mem::take(&mut self.parents));
        crate::pool::put_host_set(std::mem::take(&mut self.heard));
    }
}

impl DagNode {
    fn expected(&self, ctx: &Ctx<'_, DagMsg>) -> usize {
        ctx.degree() - usize::from(!self.parents.is_empty())
    }

    fn within_deadline(&self, ctx: &Ctx<'_, DagMsg>) -> bool {
        self.query
            .map(|spec| ctx.now().ticks() <= spec.deadline())
            .unwrap_or(false)
    }

    fn check_completion(&mut self, ctx: &mut Ctx<'_, DagMsg>) {
        if self.reported || !self.activated {
            return;
        }
        if self.heard.len() >= self.expected(ctx) {
            self.report(ctx);
        }
    }

    fn report(&mut self, ctx: &mut Ctx<'_, DagMsg>) {
        if self.reported {
            return;
        }
        self.reported = true;
        let partial = self.partial.clone().expect("activated host has a partial");
        if self.is_query_host {
            self.result = Some((partial.value(), ctx.now()));
        } else {
            // Convergecast cost O(k·|H|): one copy per parent.
            self.send_to_parents(ctx, partial);
        }
    }

    fn send_to_parents(&self, ctx: &mut Ctx<'_, DagMsg>, partial: Partial) {
        // One radio multicast reaches all k parents for a single message
        // (§4.4); point-to-point pays per parent.
        ctx.multicast(&self.parents, DagMsg::Report { partial });
    }
}

impl ProtocolObserver for DagNode {
    fn state_summary(&self) -> StateSummary {
        summary_of(self.partial.as_ref())
    }
}

impl NodeLogic for DagNode {
    type Msg = DagMsg;

    fn summary(&self) -> StateSummary {
        self.state_summary()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, DagMsg>) {
        if !self.is_query_host {
            return;
        }
        let spec = self.query.expect("query host has a spec");
        self.activated = true;
        self.partial = Some(Partial::init_sketched(
            spec.aggregate,
            self.value,
            spec.c,
            ctx.rng(),
        ));
        ctx.set_timer(spec.deadline(), TIMER_FALLBACK);
        ctx.broadcast(DagMsg::Query { spec, hops: 0 });
        self.check_completion(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DagMsg>, from: HostId, msg: DagMsg) {
        match msg {
            DagMsg::Query { spec, hops } => {
                if !self.activated {
                    self.activated = true;
                    self.query = Some(spec);
                    self.parents.push(from);
                    self.depth = hops + 1;
                    self.partial = Some(Partial::init_sketched(
                        spec.aggregate,
                        self.value,
                        spec.c,
                        ctx.rng(),
                    ));
                    let fallback_at = spec.deadline().saturating_sub(self.depth as u64);
                    let delay = fallback_at.saturating_sub(ctx.now().ticks()).max(1);
                    ctx.set_timer(delay, TIMER_FALLBACK);
                    ctx.broadcast_except(
                        Some(from),
                        DagMsg::Query {
                            spec,
                            hops: self.depth,
                        },
                    );
                    self.check_completion(ctx);
                } else {
                    // Duplicate copy: classify the sender; adopt it as an
                    // extra parent while slots remain, but only if it is
                    // strictly closer to the root (acyclicity).
                    if !self.is_query_host
                        && self.parents.len() < self.k
                        && hops < self.depth
                        && !self.parents.contains(&from)
                    {
                        self.parents.push(from);
                    }
                    self.heard.insert(from);
                    self.check_completion(ctx);
                }
            }
            DagMsg::Report { partial } => {
                let Some(p) = self.partial.as_mut() else {
                    return; // report outran the flood (jittered delays)
                };
                let changed = p.combine_check(&partial);
                if !self.reported {
                    self.heard.insert(from);
                    self.check_completion(ctx);
                } else if changed && !self.is_query_host {
                    // Late arrival after our completion report: spend the
                    // (coalesced, end-of-tick) late-update budget so the
                    // value can still climb around a dead first parent.
                    if self.late_updates_left > 0
                        && !self.late_flush_scheduled
                        && self.within_deadline(ctx)
                    {
                        self.late_flush_scheduled = true;
                        ctx.set_timer_at_tick_end(TIMER_LATE_FLUSH);
                    }
                } else if changed && self.is_query_host {
                    // The root keeps absorbing late updates until its
                    // deadline and refreshes the declared value.
                    if let (Some((_, at)), Some(p)) = (self.result, self.partial.as_ref()) {
                        self.result = Some((p.value(), at.max(ctx.now())));
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DagMsg>, key: u64) {
        match key {
            TIMER_FALLBACK => self.report(ctx),
            TIMER_LATE_FLUSH => {
                self.late_flush_scheduled = false;
                if self.late_updates_left > 0 && self.within_deadline(ctx) {
                    self.late_updates_left -= 1;
                    let refreshed = self.partial.clone().expect("reported host has a partial");
                    self.send_to_parents(ctx, refreshed);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Aggregate;
    use pov_sim::{ChurnPlan, SimBuilder, Simulation};
    use pov_topology::generators::{grid_square, special};
    use pov_topology::Graph;

    fn run(
        graph: Graph,
        values: &[u64],
        aggregate: Aggregate,
        k: usize,
        d_hat: u32,
        churn: ChurnPlan,
        seed: u64,
    ) -> Simulation<'static, DagNode> {
        let spec = QuerySpec {
            aggregate,
            d_hat,
            c: 16,
        };
        let values = values.to_vec();
        let mut sim = SimBuilder::new(graph)
            .churn(churn)
            .seed(seed)
            .build(move |h| {
                if h == HostId(0) {
                    DagNode::query_host(values[h.index()], k, spec)
                } else {
                    DagNode::host(values[h.index()], k)
                }
            });
        sim.run_until(Time(spec.deadline() + 2));
        sim
    }

    #[test]
    fn min_max_exact_failure_free() {
        let values = [50u64, 10, 90, 30, 70, 20];
        let sim = run(
            special::cycle(6),
            &values,
            Aggregate::Min,
            2,
            3,
            ChurnPlan::none(),
            1,
        );
        assert_eq!(sim.logic(HostId(0)).result().unwrap().0, 10.0);
        let sim = run(
            special::cycle(6),
            &values,
            Aggregate::Max,
            2,
            3,
            ChurnPlan::none(),
            1,
        );
        assert_eq!(sim.logic(HostId(0)).result().unwrap().0, 90.0);
    }

    #[test]
    fn declares_no_later_than_deadline() {
        let sim = run(
            special::cycle(6),
            &[1; 6],
            Aggregate::Max,
            2,
            5,
            ChurnPlan::none(),
            4,
        );
        let (_, at) = sim.logic(HostId(0)).result().unwrap();
        assert!(at <= Time(10), "declared at {at}");
    }

    #[test]
    fn sketched_count_duplicates_tolerated() {
        // On the complete graph every non-root host sits at depth 1 and
        // the same sketch reaches the root along every edge; the FM
        // estimate is still a single-count estimate.
        let n = 32;
        let sim = run(
            special::complete(n),
            &vec![1; n],
            Aggregate::Count,
            3,
            2,
            ChurnPlan::none(),
            7,
        );
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert!(
            (8.0..130.0).contains(&v),
            "count {v} should be within FM error of {n}, not k-fold inflated"
        );
    }

    #[test]
    fn multiple_parents_adopted() {
        // Cycle of 6 rooted at h0: h3 (depth 3) hears duplicates from
        // both depth-2 neighbours and adopts a second parent.
        let sim = run(
            special::cycle(6),
            &[1; 6],
            Aggregate::Count,
            2,
            3,
            ChurnPlan::none(),
            3,
        );
        assert_eq!(sim.logic(HostId(3)).parents().len(), 2);
        // Extra parents are strictly shallower than the child.
        let d3 = sim.logic(HostId(3)).depth;
        for p in sim.logic(HostId(3)).parents() {
            assert!(sim.logic(*p).depth < d3);
        }
    }

    #[test]
    fn redundancy_beats_spanning_tree_under_failure() {
        // Diamond + tail: 0-1, 0-2, 1-3, 2-3, 3-4.
        // Host 3's first parent is 1, which dies after broadcast; with
        // k=2 host 3 also reports via parent 2 (a late update if 2 has
        // already reported), so host 4's value — the max — still reaches
        // the root.
        let mut b = pov_topology::GraphBuilder::with_hosts(5);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(0), HostId(2));
        b.add_edge(HostId(1), HostId(3));
        b.add_edge(HostId(2), HostId(3));
        b.add_edge(HostId(3), HostId(4));
        let churn = ChurnPlan::none().with_failure(Time(2), HostId(1));
        let values = [1u64, 2, 3, 4, 99];
        let sim = run(b.build(), &values, Aggregate::Max, 2, 4, churn, 5);
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 99.0, "host 4's value must survive via the second parent");
    }

    #[test]
    fn k_one_loses_like_spanning_tree() {
        // Same instance with k=1: host 3 only knows parent 1, so its
        // subtree (including 99) dies with host 1.
        let mut b = pov_topology::GraphBuilder::with_hosts(5);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(0), HostId(2));
        b.add_edge(HostId(1), HostId(3));
        b.add_edge(HostId(2), HostId(3));
        b.add_edge(HostId(3), HostId(4));
        let churn = ChurnPlan::none().with_failure(Time(2), HostId(1));
        let values = [1u64, 2, 3, 4, 99];
        let sim = run(b.build(), &values, Aggregate::Max, 1, 4, churn, 5);
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert!(v < 99.0, "k=1 should lose the tail value, got {v}");
    }

    #[test]
    fn k_one_degenerates_to_tree_shape() {
        let sim = run(
            special::cycle(8),
            &[1; 8],
            Aggregate::Max,
            1,
            4,
            ChurnPlan::none(),
            2,
        );
        for h in 1..8u32 {
            assert_eq!(sim.logic(HostId(h)).parents().len(), 1, "host {h}");
        }
    }

    #[test]
    fn convergecast_cost_scales_with_k() {
        // A grid gives interior hosts several strictly-shallower
        // neighbours, so higher k means more report copies.
        let g = grid_square(6);
        let count = |k: usize| {
            let sim = run(
                g.clone(),
                &vec![1; 36],
                Aggregate::Count,
                k,
                7,
                ChurnPlan::none(),
                9,
            );
            sim.metrics().messages_sent
        };
        let (c1, c3) = (count(1), count(3));
        assert!(
            c3 > c1,
            "k=3 ({c3}) should send more than k=1 ({c1}) on a grid"
        );
    }

    #[test]
    #[should_panic(expected = "parent slot")]
    fn zero_parents_rejected() {
        DagNode::host(1, 0);
    }
}
