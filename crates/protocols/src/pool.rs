//! A thread-local arena of recycled per-host protocol buffers.
//!
//! The sibling of `pov_sim`'s engine arena, one layer up: where the
//! engine recycles a handful of `O(hosts)` vectors per simulation, the
//! protocols allocate *per host* — every DAG host carries a parent
//! table and a neighbour-classification set, every SPANNINGTREE host a
//! classification set, and `hq` in ALLREPORT a collected-values vector.
//! A scenario batch builds and drops thousands of simulations per
//! worker thread, so those per-host collections hit the allocator
//! `O(cells × hosts)` times. Nodes take their collections from this
//! pool at construction and return them in `Drop`, turning the steady
//! state into pointer swaps.
//!
//! Determinism is unaffected: recycled buffers come back *cleared*
//! (capacity retained), and the protocols only `len`/`insert`/
//! `contains`/`push` these collections — none iterates a set, so even
//! a `HashSet`'s retained hasher state cannot influence behaviour.
//! Batch outputs are bit-identical to fresh-allocation runs.
//!
//! The retention cap is far above the engine arena's: these are
//! per-host shapes, so serving one simulation from the pool needs up to
//! `hosts` buffers per shape, not a handful. [`KEEP`] buffers of ~node
//! degree capacity each bound the idle pool to a few megabytes per
//! thread while fully recycling the scenario library's cell sizes.

use crate::mux::{MuxItem, QueryId};
use pov_topology::HostId;
use std::cell::RefCell;
use std::collections::HashSet;

/// Maximum recycled buffers retained per shape. Sized for the scenario
/// library (cells up to a few thousand hosts are served entirely from
/// the pool); million-host runs simply allocate past it.
const KEEP: usize = 4096;

#[derive(Default)]
struct Pool {
    hosts: Vec<Vec<HostId>>,
    host_sets: Vec<HashSet<HostId>>,
    values: Vec<Vec<u64>>,
    mux_items: Vec<Vec<(QueryId, MuxItem)>>,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

macro_rules! pooled {
    ($take:ident, $put:ident, $field:ident, $t:ty) => {
        /// Take a cleared collection from the pool (allocating an empty
        /// one only if the pool is dry).
        pub(crate) fn $take() -> $t {
            let mut v: $t = POOL
                .with(|p| p.borrow_mut().$field.pop())
                .unwrap_or_default();
            v.clear();
            v
        }

        /// Return a collection to the pool for reuse. Buffers that never
        /// allocated are dropped — recycling them would pool nothing.
        pub(crate) fn $put(v: $t) {
            if v.capacity() == 0 {
                return;
            }
            POOL.with(|p| {
                let pool = &mut p.borrow_mut().$field;
                if pool.len() < KEEP {
                    pool.push(v);
                }
            });
        }
    };
}

pooled!(take_hosts, put_hosts, hosts, Vec<HostId>);
pooled!(take_host_set, put_host_set, host_sets, HashSet<HostId>);
pooled!(take_values, put_values, values, Vec<u64>);
pooled!(
    take_mux_items,
    put_mux_items,
    mux_items,
    Vec<(QueryId, MuxItem)>
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_cleared_collections() {
        let mut s = take_host_set();
        s.insert(HostId(7));
        put_host_set(s);
        let s = take_host_set();
        assert!(s.is_empty(), "recycled set must come back cleared");
        assert!(s.capacity() > 0, "recycled set must keep its table");
        put_host_set(s);

        let mut v = take_hosts();
        v.push(HostId(1));
        put_hosts(v);
        let v = take_hosts();
        assert!(v.is_empty() && v.capacity() > 0);
        put_hosts(v);
    }

    #[test]
    fn unallocated_buffers_are_not_pooled() {
        let before = POOL.with(|p| p.borrow().values.len());
        put_values(Vec::new());
        assert_eq!(POOL.with(|p| p.borrow().values.len()), before);
    }

    #[test]
    fn pool_bounds_retention() {
        for _ in 0..(KEEP + 100) {
            put_values(vec![0; 4]);
        }
        assert!(POOL.with(|p| p.borrow().values.len()) <= KEEP);
    }
}
