//! Shared query/aggregate machinery.

use pov_sketch::{Buckets, FmSketch, HistogramSketch, KmvSketch};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// The aggregate functions the paper considers (§1: *min, max, count,
/// sum and average*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregate {
    /// Minimum attribute value.
    Min,
    /// Maximum attribute value.
    Max,
    /// Number of hosts.
    Count,
    /// Sum of attribute values.
    Sum,
    /// Average attribute value (= Sum / Count).
    Average,
}

impl Aggregate {
    /// Whether the conventional combine operator is already
    /// duplicate-insensitive (§5.1: min/max) — such queries need no
    /// sketch even under WILDFIRE.
    pub fn is_duplicate_insensitive(self) -> bool {
        matches!(self, Aggregate::Min | Aggregate::Max)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Min => "min",
            Aggregate::Max => "max",
            Aggregate::Count => "count",
            Aggregate::Sum => "sum",
            Aggregate::Average => "avg",
        }
    }

    /// Ground truth of the aggregate over a value multiset (the oracle's
    /// `q(H)`); `None` for an empty host set where min/max/avg are
    /// undefined.
    pub fn ground_truth(self, values: &[u64]) -> Option<f64> {
        if values.is_empty() {
            return match self {
                Aggregate::Count | Aggregate::Sum => Some(0.0),
                _ => None,
            };
        }
        Some(match self {
            Aggregate::Min => *values.iter().min().expect("non-empty") as f64,
            Aggregate::Max => *values.iter().max().expect("non-empty") as f64,
            Aggregate::Count => values.len() as f64,
            Aggregate::Sum => values.iter().sum::<u64>() as f64,
            Aggregate::Average => values.iter().sum::<u64>() as f64 / values.len() as f64,
        })
    }
}

/// Everything the Broadcast message carries (§5.1: the query, the
/// initiation time — implicitly 0 — and an overestimate `D̂` of the
/// stable diameter; §5.2 adds the repetition count `c`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Which aggregate to compute.
    pub aggregate: Aggregate,
    /// Overestimate of the stable diameter; protocols run for `2·D̂·δ`.
    pub d_hat: u32,
    /// FM repetitions `c` for sketched count/sum/avg (ignored by exact
    /// partials).
    pub c: usize,
}

impl QuerySpec {
    /// Absolute deadline `2·D̂·δ` in ticks.
    pub fn deadline(&self) -> u64 {
        2 * self.d_hat as u64
    }
}

/// A partial aggregate `A_h` (§5.1) — the state a host contributes and
/// combines during convergecast.
///
/// Exact variants use the conventional combine (+ / min / max) and are
/// **duplicate-sensitive** for count/sum: correct along a tree
/// (SPANNINGTREE), wrong if ever combined twice. Sketched variants use
/// FM bit-vectors with OR-combine and are duplicate-insensitive, which
/// is what WILDFIRE and DIRECTEDACYCLICGRAPH require.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Partial {
    /// Running minimum.
    Min(u64),
    /// Running maximum.
    Max(u64),
    /// Exact (duplicate-sensitive) count.
    ExactCount(u64),
    /// Exact (duplicate-sensitive) sum.
    ExactSum(u64),
    /// Exact (duplicate-sensitive) average state.
    ExactAvg {
        /// Sum of contributing values.
        sum: u64,
        /// Number of contributing hosts.
        count: u64,
    },
    /// Duplicate-insensitive count sketch.
    SketchCount(FmSketch),
    /// Duplicate-insensitive sum sketch.
    SketchSum(FmSketch),
    /// Duplicate-insensitive average state (sum and count sketches).
    SketchAvg {
        /// FM sketch of the value total.
        sum: FmSketch,
        /// FM sketch of the host count.
        count: FmSketch,
    },
    /// Extension (§7): duplicate-insensitive count via a KMV sketch.
    KmvCount(KmvSketch),
    /// Extension (§7): duplicate-insensitive value histogram (per-bucket
    /// FM counts); answers bucket counts, quantiles and averages from a
    /// single convergecast.
    Histogram(HistogramSketch),
}

impl Partial {
    /// A host's initial partial aggregate for an *exact* protocol
    /// (SPANNINGTREE) given its attribute value.
    pub fn init_exact(aggregate: Aggregate, value: u64) -> Partial {
        match aggregate {
            Aggregate::Min => Partial::Min(value),
            Aggregate::Max => Partial::Max(value),
            Aggregate::Count => Partial::ExactCount(1),
            Aggregate::Sum => Partial::ExactSum(value),
            Aggregate::Average => Partial::ExactAvg {
                sum: value,
                count: 1,
            },
        }
    }

    /// A host's initial partial aggregate for a *duplicate-insensitive*
    /// protocol (WILDFIRE, DAG): min/max stay exact (already
    /// duplicate-insensitive), count/sum/avg become FM sketches seeded by
    /// this host's pretend-elements (§5.2).
    pub fn init_sketched(
        aggregate: Aggregate,
        value: u64,
        c: usize,
        rng: &mut SmallRng,
    ) -> Partial {
        match aggregate {
            Aggregate::Min => Partial::Min(value),
            Aggregate::Max => Partial::Max(value),
            Aggregate::Count => {
                let mut s = FmSketch::new(c);
                s.insert_one(rng);
                Partial::SketchCount(s)
            }
            Aggregate::Sum => {
                let mut s = FmSketch::new(c);
                s.insert_elements(value, rng);
                Partial::SketchSum(s)
            }
            Aggregate::Average => {
                let mut sum = FmSketch::new(c);
                sum.insert_elements(value, rng);
                let mut count = FmSketch::new(c);
                count.insert_one(rng);
                Partial::SketchAvg { sum, count }
            }
        }
    }

    /// The query-dependent combine function (§5.1). Panics on mismatched
    /// variants: partials from different queries must never meet.
    pub fn combine(&mut self, other: &Partial) {
        match (self, other) {
            (Partial::Min(a), Partial::Min(b)) => *a = (*a).min(*b),
            (Partial::Max(a), Partial::Max(b)) => *a = (*a).max(*b),
            (Partial::ExactCount(a), Partial::ExactCount(b)) => *a += *b,
            (Partial::ExactSum(a), Partial::ExactSum(b)) => *a += *b,
            (
                Partial::ExactAvg { sum: s1, count: c1 },
                Partial::ExactAvg { sum: s2, count: c2 },
            ) => {
                *s1 += *s2;
                *c1 += *c2;
            }
            (Partial::SketchCount(a), Partial::SketchCount(b)) => a.merge(b),
            (Partial::SketchSum(a), Partial::SketchSum(b)) => a.merge(b),
            (
                Partial::SketchAvg { sum: s1, count: c1 },
                Partial::SketchAvg { sum: s2, count: c2 },
            ) => {
                s1.merge(s2);
                c1.merge(c2);
            }
            (Partial::KmvCount(a), Partial::KmvCount(b)) => a.merge(b),
            (Partial::Histogram(a), Partial::Histogram(b)) => a.merge(b),
            (me, other) => panic!("combined mismatched partials: {me:?} vs {other:?}"),
        }
    }

    /// Combine and report whether `self` changed. This is WILDFIRE's
    /// per-message hot path (Fig 4 resends only on change), so it avoids
    /// the clone-and-compare a naive implementation would need.
    pub fn combine_check(&mut self, other: &Partial) -> bool {
        match (self, other) {
            (Partial::Min(a), Partial::Min(b)) => {
                if *b < *a {
                    *a = *b;
                    true
                } else {
                    false
                }
            }
            (Partial::Max(a), Partial::Max(b)) => {
                if *b > *a {
                    *a = *b;
                    true
                } else {
                    false
                }
            }
            (Partial::ExactCount(a), Partial::ExactCount(b)) => {
                *a += *b;
                *b > 0
            }
            (Partial::ExactSum(a), Partial::ExactSum(b)) => {
                *a += *b;
                *b > 0
            }
            (
                Partial::ExactAvg { sum: s1, count: c1 },
                Partial::ExactAvg { sum: s2, count: c2 },
            ) => {
                *s1 += *s2;
                *c1 += *c2;
                *s2 > 0 || *c2 > 0
            }
            (Partial::SketchCount(a), Partial::SketchCount(b)) => a.merge_check(b),
            (Partial::SketchSum(a), Partial::SketchSum(b)) => a.merge_check(b),
            (
                Partial::SketchAvg { sum: s1, count: c1 },
                Partial::SketchAvg { sum: s2, count: c2 },
            ) => {
                let a = s1.merge_check(s2);
                let b = c1.merge_check(c2);
                a || b
            }
            (Partial::KmvCount(a), Partial::KmvCount(b)) => a.merge_check(b),
            (Partial::Histogram(a), Partial::Histogram(b)) => a.merge_check(b),
            (me, other) => panic!("combined mismatched partials: {me:?} vs {other:?}"),
        }
    }

    /// The scalar answer this partial represents at declaration time.
    pub fn value(&self) -> f64 {
        match self {
            Partial::Min(v) | Partial::Max(v) => *v as f64,
            Partial::ExactCount(c) => *c as f64,
            Partial::ExactSum(s) => *s as f64,
            Partial::ExactAvg { sum, count } => {
                if *count == 0 {
                    0.0
                } else {
                    *sum as f64 / *count as f64
                }
            }
            Partial::SketchCount(s) | Partial::SketchSum(s) => s.estimate(),
            Partial::SketchAvg { sum, count } => {
                let c = count.estimate();
                if c == 0.0 {
                    0.0
                } else {
                    sum.estimate() / c
                }
            }
            Partial::KmvCount(s) => s.estimate(),
            Partial::Histogram(h) => h.total(),
        }
    }

    /// The scalar "height" of this partial as seen by a protocol-state-
    /// aware adversary: for FM-sketched aggregates the sketch's own
    /// estimate — the scalar its bit maxima induce, i.e. how much
    /// accumulated (and possibly not-yet-relayed) mass the host carries
    /// — for exact min/max a value-derived proxy (for min, negated: the
    /// *smallest* value is the answer-carrying one), and the scalar
    /// estimate otherwise. Higher means "killing this host now hurts
    /// the query more": mid-convergecast, the top-weighted hosts are
    /// the relays whose deaths strand other (still-alive, still-valid)
    /// hosts' contributions.
    pub fn sketch_weight(&self) -> f64 {
        match self {
            Partial::Min(v) => -(*v as f64),
            Partial::Max(v) => *v as f64,
            Partial::SketchCount(s) | Partial::SketchSum(s) => s.estimate(),
            // For averages the count sketch tracks how many hosts'
            // contributions the partial has absorbed.
            Partial::SketchAvg { count, .. } => count.estimate(),
            other => other.value(),
        }
    }

    /// The merged histogram, if this partial is one (the querying host
    /// reads bucket counts / quantiles / averages from it).
    pub fn as_histogram(&self) -> Option<&HistogramSketch> {
        match self {
            Partial::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// Which duplicate-insensitive operator family a WILDFIRE query uses
/// (§5.2 FM is the paper's; KMV and histograms are the §7 "future work"
/// operators this reproduction adds).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operator {
    /// The paper's operators: min/max exact, count/sum/avg via FM.
    Standard,
    /// Count via a KMV sketch with parameter `k` (count queries only).
    KmvCount {
        /// Number of minima retained.
        k: usize,
    },
    /// A value histogram with `buckets` equi-width buckets over
    /// `[min, max]`; ignores the query's aggregate kind.
    ValueHistogram {
        /// Smallest representable value.
        min: u64,
        /// Largest representable value.
        max: u64,
        /// Bucket count.
        buckets: usize,
    },
}

impl Operator {
    /// Build a host's initial partial for this operator.
    pub fn init(self, aggregate: Aggregate, value: u64, c: usize, rng: &mut SmallRng) -> Partial {
        match self {
            Operator::Standard => Partial::init_sketched(aggregate, value, c, rng),
            Operator::KmvCount { k } => {
                assert!(
                    aggregate == Aggregate::Count,
                    "KMV answers count queries only"
                );
                let mut s = KmvSketch::new(k);
                s.insert_one(rng);
                Partial::KmvCount(s)
            }
            Operator::ValueHistogram { min, max, buckets } => {
                let mut h = HistogramSketch::new(Buckets::equi_width(min, max, buckets), c);
                h.insert(value, rng);
                Partial::Histogram(h)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn ground_truths() {
        let vals = [10u64, 20, 30];
        assert_eq!(Aggregate::Min.ground_truth(&vals), Some(10.0));
        assert_eq!(Aggregate::Max.ground_truth(&vals), Some(30.0));
        assert_eq!(Aggregate::Count.ground_truth(&vals), Some(3.0));
        assert_eq!(Aggregate::Sum.ground_truth(&vals), Some(60.0));
        assert_eq!(Aggregate::Average.ground_truth(&vals), Some(20.0));
    }

    #[test]
    fn ground_truth_empty_sets() {
        assert_eq!(Aggregate::Count.ground_truth(&[]), Some(0.0));
        assert_eq!(Aggregate::Sum.ground_truth(&[]), Some(0.0));
        assert_eq!(Aggregate::Min.ground_truth(&[]), None);
        assert_eq!(Aggregate::Average.ground_truth(&[]), None);
    }

    #[test]
    fn exact_combines() {
        let mut p = Partial::init_exact(Aggregate::Count, 5);
        p.combine(&Partial::init_exact(Aggregate::Count, 9));
        assert_eq!(p.value(), 2.0);

        let mut p = Partial::init_exact(Aggregate::Sum, 5);
        p.combine(&Partial::init_exact(Aggregate::Sum, 9));
        assert_eq!(p.value(), 14.0);

        let mut p = Partial::init_exact(Aggregate::Average, 10);
        p.combine(&Partial::init_exact(Aggregate::Average, 20));
        assert_eq!(p.value(), 15.0);

        let mut p = Partial::init_exact(Aggregate::Min, 10);
        p.combine(&Partial::init_exact(Aggregate::Min, 3));
        assert_eq!(p.value(), 3.0);

        let mut p = Partial::init_exact(Aggregate::Max, 10);
        p.combine(&Partial::init_exact(Aggregate::Max, 3));
        assert_eq!(p.value(), 10.0);
    }

    #[test]
    fn exact_count_is_duplicate_sensitive() {
        // Demonstrates *why* WILDFIRE cannot use exact count: combining
        // the same contribution twice inflates the result.
        let other = Partial::init_exact(Aggregate::Count, 1);
        let mut p = Partial::init_exact(Aggregate::Count, 1);
        p.combine(&other);
        p.combine(&other);
        assert_eq!(p.value(), 3.0); // counted one host twice
    }

    #[test]
    fn sketched_count_is_duplicate_insensitive() {
        let mut r = rng();
        let other = Partial::init_sketched(Aggregate::Count, 1, 8, &mut r);
        let mut p = Partial::init_sketched(Aggregate::Count, 1, 8, &mut r);
        p.combine(&other);
        let once = p.value();
        p.combine(&other);
        p.combine(&other);
        assert_eq!(p.value(), once);
    }

    #[test]
    fn min_max_sketched_stay_exact() {
        let mut r = rng();
        let p = Partial::init_sketched(Aggregate::Min, 42, 8, &mut r);
        assert_eq!(p, Partial::Min(42));
        let p = Partial::init_sketched(Aggregate::Max, 42, 8, &mut r);
        assert_eq!(p, Partial::Max(42));
    }

    #[test]
    fn sketched_sum_estimates() {
        let mut r = rng();
        let mut agg = Partial::init_sketched(Aggregate::Sum, 100, 32, &mut r);
        for _ in 0..9 {
            agg.combine(&Partial::init_sketched(Aggregate::Sum, 100, 32, &mut r));
        }
        let est = agg.value();
        assert!((300.0..4_000.0).contains(&est), "estimate {est} for 1000");
    }

    #[test]
    fn sketched_avg_estimates() {
        let mut r = rng();
        let mut agg = Partial::init_sketched(Aggregate::Average, 50, 32, &mut r);
        for _ in 0..31 {
            agg.combine(&Partial::init_sketched(Aggregate::Average, 50, 32, &mut r));
        }
        let est = agg.value();
        // True average is 50; FM error on both sketches compounds, so be
        // generous but bounded.
        assert!((10.0..250.0).contains(&est), "avg estimate {est}");
    }

    #[test]
    #[should_panic(expected = "mismatched partials")]
    fn combine_rejects_mismatch() {
        let mut p = Partial::Min(1);
        p.combine(&Partial::Max(2));
    }

    #[test]
    fn spec_deadline() {
        let spec = QuerySpec {
            aggregate: Aggregate::Count,
            d_hat: 12,
            c: 8,
        };
        assert_eq!(spec.deadline(), 24);
    }

    #[test]
    fn duplicate_insensitive_flags() {
        assert!(Aggregate::Min.is_duplicate_insensitive());
        assert!(Aggregate::Max.is_duplicate_insensitive());
        assert!(!Aggregate::Count.is_duplicate_insensitive());
        assert!(!Aggregate::Sum.is_duplicate_insensitive());
        assert!(!Aggregate::Average.is_duplicate_insensitive());
    }
}
