//! The protocol-observation hook for state-aware churn sources.
//!
//! A [`pov_sim::ChurnSource`] is polled with an engine view carrying
//! one [`StateSummary`] per host; the engine obtains each summary via
//! [`pov_sim::NodeLogic::summary`]. This module defines the protocol
//! side of that contract: [`ProtocolObserver`] is what a node type
//! implements to expose its query state (is it participating? how
//! "tall" is its current partial?), and each implementing node wires
//! its `NodeLogic::summary` through it.
//!
//! The hook deliberately exposes a *summary*, not the partial itself:
//! an adaptive adversary of the §3.2 model sees membership and coarse
//! protocol activity, and the sketch-maxima attack (the ROADMAP's
//! "adversary targeting the sketch") only needs a scalar ordering of
//! hosts by how much of the answer they currently carry.
//!
//! Implemented for [`WildfireNode`](crate::wildfire::WildfireNode),
//! [`SpanningTreeNode`](crate::spanning_tree::SpanningTreeNode) and
//! [`DagNode`](crate::dag::DagNode); ALLREPORT and GOSSIP keep the
//! default opaque summary.

use pov_sim::StateSummary;

use crate::common::Partial;

/// Expose a host's protocol state to dynamic churn sources.
pub trait ProtocolObserver {
    /// The host's current observable state. Called by the engine on
    /// every churn-source poll; must be cheap and side-effect free.
    fn state_summary(&self) -> StateSummary;
}

/// The shared lowering: an activated host with partial `p` is active
/// with `p`'s sketch weight; a host the query has not reached is
/// opaque.
pub(crate) fn summary_of(partial: Option<&Partial>) -> StateSummary {
    match partial {
        Some(p) => StateSummary {
            active: true,
            sketch_weight: Some(p.sketch_weight()),
        },
        None => StateSummary::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Aggregate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn inactive_hosts_are_opaque() {
        assert_eq!(summary_of(None), StateSummary::default());
    }

    #[test]
    fn active_hosts_expose_their_sketch_weight() {
        let mut rng = SmallRng::seed_from_u64(5);
        let p = Partial::init_sketched(Aggregate::Count, 1, 8, &mut rng);
        let s = summary_of(Some(&p));
        assert!(s.active);
        assert_eq!(s.sketch_weight, Some(p.sketch_weight()));
    }
}
