//! The WILDFIRE protocol (§5.1, Figs 3–4).
//!
//! Broadcast: the query floods the network — *no* edge-subset structure
//! is built. Convergecast: every active host keeps a partial aggregate
//! `A_h`; whenever received partials change `A_h`, the host re-sends
//! `A_h` to its neighbours; a sender observed to lag behind gets a
//! targeted update. Because the combine operator is
//! duplicate-insensitive (min/max natively, count/sum/avg via FM
//! sketches), values survive along *every* live path — that is what buys
//! Single-Site Validity (Theorems 5.1, 5.3).
//!
//! Two faithful-to-the-paper implementation points:
//!
//! * **per-instant batching** — Example 5.1's hosts combine everything
//!   that arrived at time `t` and send one update at `t` (host `z`
//!   receives from both `x` and `y` at `t = 2` and answers once). Each
//!   receipt schedules an end-of-tick flush rather than replying
//!   immediately.
//! * **neighbour-knowledge cache** — a host skips neighbours already
//!   known to hold its exact partial (Example 5.1: *"Host y received its
//!   new `A_y` value from w, so it skips sending the value back to w"*).
//!
//! Both §5.3 engineering optimizations are implemented and toggleable
//! (ablation A1/A2 in DESIGN.md):
//!
//! * **early deadline** — a host at hop distance `l` participates only
//!   until `(2·D̂ − l + 1)·δ` instead of `2·D̂·δ`;
//! * **piggyback** — the first convergecast message rides on the
//!   broadcast message a host forwards.

use crate::common::{Operator, Partial, QuerySpec};
use crate::observer::{summary_of, ProtocolObserver};
use pov_sim::{Ctx, Medium, NodeLogic, StateSummary, Time};
use pov_topology::HostId;
use std::rc::Rc;

/// Timer key for the declaration deadline at `hq`.
const TIMER_DECLARE: u64 = 0;
/// Timer key for the end-of-tick flush.
const TIMER_FLUSH: u64 = 1;

/// Toggleable §5.3 optimizations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WildfireOpts {
    /// Host at depth `l` stops participating after `(2D̂ − l + 1)δ`.
    pub early_deadline: bool,
    /// Piggyback the first convergecast on the forwarded broadcast.
    pub piggyback: bool,
}

impl Default for WildfireOpts {
    fn default() -> Self {
        // The paper's evaluation runs with both optimizations on (§6).
        WildfireOpts {
            early_deadline: true,
            piggyback: true,
        }
    }
}

/// WILDFIRE messages.
///
/// Partials travel as `Rc<Partial>`: a fan-out to `d` neighbours is `d`
/// reference bumps on one sketch allocation instead of `d` deep clones
/// of the FM registers (the engine is single-threaded per simulation,
/// so `Rc` is safe). Receivers copy-on-write via [`Rc::make_mut`] only
/// when a combine actually has to mutate.
#[derive(Clone, Debug)]
pub enum WfMsg {
    /// Phase-I flood: query spec, hop count so far, and (optionally)
    /// the sender's partial aggregate piggybacked on the flood.
    Broadcast {
        /// The query and its parameters.
        spec: QuerySpec,
        /// Hops travelled so far (sender's depth).
        hops: u32,
        /// Piggybacked partial aggregate of the sender.
        partial: Option<Rc<Partial>>,
    },
    /// Phase-II convergecast: the sender's current partial aggregate.
    Converge {
        /// Sender's partial aggregate `A_{h'}`.
        partial: Rc<Partial>,
    },
}

/// Active-phase state.
#[derive(Debug)]
struct Active {
    partial: Rc<Partial>,
    depth: u32,
    spec: QuerySpec,
    /// Last partial each contact is known to hold (either because it
    /// sent it to us, or because we sent ours to it), as a vec sorted by
    /// `HostId` — no hashing on the flush path, and the "we sent ours"
    /// entries share the partial's allocation instead of deep-cloning it
    /// per neighbour. Keyed by host rather than by neighbour-slot index
    /// because under an overlay ([`pov_sim::OverlayDriver`]) the
    /// neighbour set can grow and reorder mid-run; entries for contacts
    /// that are no longer neighbours simply stop being consulted.
    knowledge: Vec<(HostId, Rc<Partial>)>,
    flush_scheduled: bool,
}

impl Active {
    /// Whether neighbour `n` is known to already hold exactly the
    /// current partial (Example 5.1's skip rule). Pointer equality
    /// catches the overwhelmingly common case — the entry aliases the
    /// partial we last sent — before falling back to deep comparison.
    fn synced(&self, n: HostId) -> bool {
        self.knowledge
            .binary_search_by_key(&n, |e| e.0)
            .is_ok_and(|i| {
                let k = &self.knowledge[i].1;
                Rc::ptr_eq(k, &self.partial) || **k == *self.partial
            })
    }

    /// Join `incoming` into what neighbour `n` is known to hold
    /// (copy-on-write: don't overwrite — reliable links mean the sender
    /// still holds everything we sent it earlier).
    fn absorb(&mut self, n: HostId, incoming: &Rc<Partial>) {
        match self.knowledge.binary_search_by_key(&n, |e| e.0) {
            Ok(i) => Rc::make_mut(&mut self.knowledge[i].1).combine(incoming),
            Err(i) => self.knowledge.insert(i, (n, Rc::clone(incoming))),
        }
    }

    /// Note that neighbour `n` now holds exactly the current partial
    /// (we just sent it to them).
    fn record(&mut self, n: HostId) {
        let p = Rc::clone(&self.partial);
        match self.knowledge.binary_search_by_key(&n, |e| e.0) {
            Ok(i) => self.knowledge[i].1 = p,
            Err(i) => self.knowledge.insert(i, (n, p)),
        }
    }
}

/// Per-host WILDFIRE state.
#[derive(Debug)]
pub struct WildfireNode {
    value: u64,
    query: Option<QuerySpec>,
    opts: WildfireOpts,
    operator: Operator,
    active: Option<Active>,
    result: Option<(f64, Time)>,
    is_query_host: bool,
}

impl WildfireNode {
    /// A passive (non-querying) host with the given attribute value.
    pub fn host(value: u64, opts: WildfireOpts) -> Self {
        Self::host_with_operator(value, opts, Operator::Standard)
    }

    /// The querying host `hq`: issues `spec` at time 0.
    pub fn query_host(value: u64, spec: QuerySpec, opts: WildfireOpts) -> Self {
        Self::query_host_with_operator(value, spec, opts, Operator::Standard)
    }

    /// A passive host using an extension operator (§7). Every host in a
    /// run must be built with the same operator.
    pub fn host_with_operator(value: u64, opts: WildfireOpts, operator: Operator) -> Self {
        WildfireNode {
            value,
            query: None,
            opts,
            operator,
            active: None,
            result: None,
            is_query_host: false,
        }
    }

    /// The querying host using an extension operator (§7).
    pub fn query_host_with_operator(
        value: u64,
        spec: QuerySpec,
        opts: WildfireOpts,
        operator: Operator,
    ) -> Self {
        WildfireNode {
            value,
            query: Some(spec),
            opts,
            operator,
            active: None,
            result: None,
            is_query_host: true,
        }
    }

    /// The declared result, if this host is `hq` and its deadline passed.
    pub fn result(&self) -> Option<(f64, Time)> {
        self.result
    }

    /// Current partial aggregate (diagnostics/tests).
    pub fn partial(&self) -> Option<&Partial> {
        self.active.as_ref().map(|a| a.partial.as_ref())
    }

    /// Hop depth at which this host was activated.
    pub fn depth(&self) -> Option<u32> {
        self.active.as_ref().map(|a| a.depth)
    }

    /// Participation deadline: `(2D̂ − l + 1)δ` with the early-deadline
    /// optimization, `2D̂δ` otherwise; `hq` always uses the full `2D̂δ`.
    fn deadline_for(&self, spec: &QuerySpec, depth: u32) -> u64 {
        if self.opts.early_deadline && !self.is_query_host {
            spec.deadline().saturating_sub(depth as u64) + 1
        } else {
            spec.deadline()
        }
    }

    fn activate(&mut self, ctx: &mut Ctx<'_, WfMsg>, spec: QuerySpec, depth: u32) {
        let partial = self
            .operator
            .init(spec.aggregate, self.value, spec.c, ctx.rng());
        self.active = Some(Active {
            partial: Rc::new(partial),
            depth,
            spec,
            knowledge: Vec::new(),
            flush_scheduled: false,
        });
        self.query = Some(spec);
    }

    /// Fig 4's receive-a-partial step (batched: combine now, send at the
    /// end of the tick).
    fn receive_partial(&mut self, ctx: &mut Ctx<'_, WfMsg>, from: HostId, incoming: Rc<Partial>) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        let deadline = if self.opts.early_deadline && !self.is_query_host {
            active.spec.deadline().saturating_sub(active.depth as u64) + 1
        } else {
            active.spec.deadline()
        };
        if ctx.now().ticks() > deadline {
            return; // Fig 4: "else Terminate"
        }
        Rc::make_mut(&mut active.partial).combine_check(&incoming);
        // Join, don't overwrite: the sender still holds everything we
        // sent it earlier (reliable links), even if this message was in
        // flight before ours arrived.
        active.absorb(from, &incoming);
        if !active.flush_scheduled {
            active.flush_scheduled = true;
            ctx.set_timer_at_tick_end(TIMER_FLUSH);
        }
    }

    /// End-of-tick flush: send the (possibly updated) partial to every
    /// neighbour not already known to hold it.
    fn flush(&mut self, ctx: &mut Ctx<'_, WfMsg>) {
        let deadline = {
            let Some(active) = self.active.as_ref() else {
                return;
            };
            self.deadline_for(&active.spec, active.depth)
        };
        let Some(active) = self.active.as_mut() else {
            return;
        };
        active.flush_scheduled = false;
        if ctx.now().ticks() > deadline {
            return;
        }
        let neighbors = ctx.neighbors();
        if ctx.medium() == Medium::Radio {
            if neighbors.iter().all(|&n| active.synced(n)) {
                return;
            }
            // One transmission reaches everyone; all neighbours now know.
            ctx.broadcast(WfMsg::Converge {
                partial: Rc::clone(&active.partial),
            });
            for &n in neighbors {
                active.record(n);
            }
        } else {
            for &n in neighbors {
                if active.synced(n) {
                    continue;
                }
                ctx.send(
                    n,
                    WfMsg::Converge {
                        partial: Rc::clone(&active.partial),
                    },
                );
                active.record(n);
            }
        }
    }
}

impl ProtocolObserver for WildfireNode {
    fn state_summary(&self) -> StateSummary {
        summary_of(self.partial())
    }
}

impl NodeLogic for WildfireNode {
    type Msg = WfMsg;

    fn summary(&self) -> StateSummary {
        self.state_summary()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, WfMsg>) {
        if !self.is_query_host {
            return;
        }
        let spec = self.query.expect("query host has a spec");
        self.activate(ctx, spec, 0);
        ctx.set_timer(spec.deadline(), TIMER_DECLARE);
        let active = self.active.as_mut().expect("just activated");
        let piggyback = self.opts.piggyback;
        let partial = piggyback.then(|| Rc::clone(&active.partial));
        ctx.broadcast(WfMsg::Broadcast {
            spec,
            hops: 0,
            partial,
        });
        if !piggyback {
            ctx.broadcast(WfMsg::Converge {
                partial: Rc::clone(&active.partial),
            });
        }
        // Everyone we just reached has our current partial.
        for &n in ctx.neighbors() {
            active.record(n);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, WfMsg>, from: HostId, msg: WfMsg) {
        match msg {
            WfMsg::Broadcast {
                spec,
                hops,
                partial,
            } => {
                if self.active.is_none() {
                    // Fig 3: activate only strictly before 2D̂δ.
                    if ctx.now().ticks() >= spec.deadline() {
                        return;
                    }
                    let depth = hops + 1;
                    self.activate(ctx, spec, depth);
                    // Combine the piggybacked partial *before* forwarding
                    // (Example 5.1: x forwards A_x = 15, already combined).
                    if let Some(p) = partial {
                        let active = self.active.as_mut().expect("just activated");
                        Rc::make_mut(&mut active.partial).combine_check(&p);
                        active.absorb(from, &p);
                    }
                    let piggyback = self.opts.piggyback;
                    let active = self.active.as_mut().expect("just activated");
                    let fwd = WfMsg::Broadcast {
                        spec,
                        hops: depth,
                        partial: piggyback.then(|| Rc::clone(&active.partial)),
                    };
                    let radio = ctx.medium() == Medium::Radio;
                    ctx.broadcast_except(Some(from), fwd);
                    if piggyback {
                        for &n in ctx.neighbors() {
                            if n != from || radio {
                                active.record(n);
                            }
                        }
                    }
                    // Whether or not the flood carried our value, make
                    // sure laggards (e.g. the sender) get an update at
                    // the end of the tick.
                    if !active.flush_scheduled {
                        active.flush_scheduled = true;
                        ctx.set_timer_at_tick_end(TIMER_FLUSH);
                    }
                } else if let Some(p) = partial {
                    // Duplicate flood copy: its piggybacked partial is an
                    // ordinary convergecast contribution.
                    self.receive_partial(ctx, from, p);
                }
            }
            WfMsg::Converge { partial } => {
                if self.query.is_none() {
                    // Convergecast before any broadcast reached us (only
                    // possible under jittered delays): we are not active,
                    // so drop it.
                    return;
                }
                self.receive_partial(ctx, from, partial);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, WfMsg>, key: u64) {
        match key {
            TIMER_FLUSH => self.flush(ctx),
            TIMER_DECLARE if self.is_query_host => {
                if let Some(active) = &self.active {
                    self.result = Some((active.partial.value(), ctx.now()));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Aggregate;
    use pov_sim::{ChurnPlan, SimBuilder, Simulation};
    use pov_topology::generators::special;
    use pov_topology::Graph;

    fn diamond() -> Graph {
        // Fig 5: w(0) - x(1), w - y(2), x - z(3), y - z(3).
        let mut b = pov_topology::GraphBuilder::with_hosts(4);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(0), HostId(2));
        b.add_edge(HostId(1), HostId(3));
        b.add_edge(HostId(2), HostId(3));
        b.build()
    }

    fn run(
        graph: Graph,
        values: &[u64],
        aggregate: Aggregate,
        d_hat: u32,
        churn: ChurnPlan,
    ) -> Simulation<'static, WildfireNode> {
        let spec = QuerySpec {
            aggregate,
            d_hat,
            c: 16,
        };
        let values = values.to_vec();
        let mut sim = SimBuilder::new(graph)
            .churn(churn)
            .seed(99)
            .build(move |h| {
                if h == HostId(0) {
                    WildfireNode::query_host(values[h.index()], spec, WildfireOpts::default())
                } else {
                    WildfireNode::host(values[h.index()], WildfireOpts::default())
                }
            });
        sim.run_until(Time(spec.deadline() + 1));
        sim
    }

    #[test]
    fn example_5_1_max_on_diamond() {
        let sim = run(
            diamond(),
            &[5, 15, 1, 25],
            Aggregate::Max,
            3,
            ChurnPlan::none(),
        );
        let (v, at) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 25.0);
        assert_eq!(at, Time(6)); // 2·D̂·δ = 6, exactly as in the example
    }

    #[test]
    fn example_5_1_message_count_matches_paper() {
        // The walk-through sends exactly: t0: w→x, w→y (broadcast with
        // piggyback); t1: x→z, x→w, y→z; t2: z→x, z→y, w→y; t3: x→w,
        // y→w. Total 10 messages, none after t=3.
        let sim = run(
            diamond(),
            &[5, 15, 1, 25],
            Aggregate::Max,
            3,
            ChurnPlan::none(),
        );
        assert_eq!(sim.metrics().messages_sent, 10);
        assert_eq!(sim.metrics().last_active_tick(), Some(3));
    }

    #[test]
    fn example_5_1_survives_one_path_failure() {
        // If x fails, w still learns z's 25 via y.
        let churn = ChurnPlan::none().with_failure(Time(2), HostId(1));
        let sim = run(diamond(), &[5, 15, 1, 25], Aggregate::Max, 3, churn);
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 25.0);
    }

    #[test]
    fn example_5_1_both_paths_fail() {
        // Both x and y fail: HC = {w}, so v = 5 is the valid answer.
        let churn = ChurnPlan::none()
            .with_failure(Time(1), HostId(1))
            .with_failure(Time(1), HostId(2));
        let sim = run(diamond(), &[5, 15, 1, 25], Aggregate::Max, 3, churn);
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 5.0);
    }

    #[test]
    fn min_on_chain() {
        let sim = run(
            special::chain(10),
            &[50, 40, 30, 20, 10, 60, 70, 80, 90, 15],
            Aggregate::Min,
            9,
            ChurnPlan::none(),
        );
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 10.0);
    }

    #[test]
    fn count_on_cycle_is_near_exact() {
        let n = 64;
        let values = vec![1u64; n];
        let sim = run(
            special::cycle(n),
            &values,
            Aggregate::Count,
            (n / 2) as u32,
            ChurnPlan::none(),
        );
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        // FM with c=16: within a factor of ~3 of 64.
        assert!((20.0..200.0).contains(&v), "count estimate {v}");
    }

    #[test]
    fn quiesces_before_deadline_with_overestimated_dhat() {
        // §6.6.2: messages stop by ~2Dδ even when D̂ ≫ D.
        let g = special::cycle(8); // D = 4
        let spec = QuerySpec {
            aggregate: Aggregate::Max,
            d_hat: 40,
            c: 8,
        };
        let mut sim = SimBuilder::new(g).seed(1).build(move |h| {
            if h == HostId(0) {
                WildfireNode::query_host(7, spec, WildfireOpts::default())
            } else {
                WildfireNode::host(u64::from(h.0), WildfireOpts::default())
            }
        });
        sim.run_until(Time(spec.deadline() + 1));
        let last = sim.metrics().last_active_tick().unwrap();
        assert!(last <= 8, "still sending at tick {last}");
    }

    #[test]
    fn no_piggyback_still_correct() {
        let opts = WildfireOpts {
            early_deadline: false,
            piggyback: false,
        };
        let spec = QuerySpec {
            aggregate: Aggregate::Max,
            d_hat: 5,
            c: 8,
        };
        let g = special::chain(5);
        let mut sim = SimBuilder::new(g).seed(3).build(move |h| {
            if h == HostId(0) {
                WildfireNode::query_host(1, spec, opts)
            } else {
                WildfireNode::host(u64::from(h.0 * 10), opts)
            }
        });
        sim.run_until(Time(spec.deadline() + 1));
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 40.0);
    }

    #[test]
    fn batching_sends_one_update_per_tick() {
        // Star centre receives from all leaves at the same tick; it must
        // answer with a single batched round of updates, not one per
        // receipt. Leaves hold the values; centre is hq.
        let g = special::star(9);
        let values: Vec<u64> = (0..9).map(|i| 10 * (i + 1)).collect();
        let sim = run(g, &values, Aggregate::Max, 2, ChurnPlan::none());
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 90.0);
        // t0: hq broadcasts (8 msgs, piggybacked). t1: each leaf that has
        // a bigger value replies (≤8). t2: hq pushes the new max to stale
        // leaves (≤8). Upper bound 24; without batching this would blow
        // past it.
        assert!(
            sim.metrics().messages_sent <= 24,
            "sent {}",
            sim.metrics().messages_sent
        );
    }

    #[test]
    fn passive_host_never_declares() {
        let sim = run(
            special::chain(3),
            &[1, 2, 3],
            Aggregate::Max,
            3,
            ChurnPlan::none(),
        );
        assert!(sim.logic(HostId(1)).result().is_none());
        assert!(sim.logic(HostId(2)).result().is_none());
    }
}
