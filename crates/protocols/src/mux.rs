//! The multiplexed query engine: many concurrent one-shot queries over
//! one gossip substrate, with shared wave traffic.
//!
//! The paper prices validity for *one* query at a time; a production
//! aggregation service fields thousands of concurrent queries (mixed
//! aggregates, roots, deadlines) over the same overlay. Running them
//! back-to-back re-floods the same topology N times. This module runs
//! them *co-resident* in one simulation instead:
//!
//! * every per-query payload is tagged with a compact [`QueryId`];
//! * co-resident queries **piggyback** their payloads into shared wave
//!   messages — one engine message ([`MuxMsg`]) carries many
//!   `(QueryId, item)` pairs, so message cost is accounted both *raw*
//!   (engine messages) and *per query* (payload items);
//! * a per-host **partial cache** lets a newly arrived query whose
//!   `(aggregate, root)` matches a live wave at its root *join* that
//!   wave instead of launching a fresh flood (an alias: it is answered
//!   by the live wave's declaration, at ~zero payload cost).
//!
//! Per-query semantics are exactly SPANNINGTREE (§4.4): parent = first
//! query copy heard, echo completion, per-host fallback at
//! `(2·D̂ − depth)·δ` past the query's arrival. To keep each query's
//! answer independent of which other queries share its waves, the node
//! runs **synchronous rounds**: `on_message` only buffers incoming
//! items into a per-query inbox; all protocol logic runs at a tick-end
//! flush, where the parent of a first-heard query is the *minimum*
//! `HostId` among that tick's candidate senders. Delivery order within
//! a tick therefore cannot perturb any query, and a query's trajectory
//! in a multiplexed run is byte-identical to its solo run over the same
//! churn realization — the property `it_mux.rs` asserts.

use crate::common::Aggregate;
use crate::observer::ProtocolObserver;
use crate::pool;
use pov_sim::{
    ChurnPlan, Ctx, Metrics, NodeLogic, PartitionPlan, SimBuilder, StateSummary, Time, Trace,
};
use pov_topology::{Graph, HostId};
use std::collections::{BTreeMap, HashSet};

/// Compact identity of one query within a workload. Wire payloads carry
/// this tag so one [`MuxMsg`] can interleave many queries' traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

impl QueryId {
    fn index(self) -> u32 {
        self.0
    }
}

/// One query of a multiplexed workload: an aggregate rooted at `root`,
/// injected at tick `arrival`, judged (and bounded by a fallback) over
/// the `2·D̂` ticks that follow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MuxQuery {
    /// Workload-unique identity.
    pub id: QueryId,
    /// The aggregate function this query computes.
    pub aggregate: Aggregate,
    /// The querying host (tree root) — `hq` of this query.
    pub root: HostId,
    /// Injection tick (must be ≥ 1 so tick 0 stays quiescent).
    pub arrival: u64,
    /// Network-diameter estimate; the deadline is `arrival + 2·D̂`.
    pub d_hat: u32,
    /// Sliding-window width `W` in ticks: when set, the ORACLE judges
    /// this query over `[end − W, end]` (§4.2) instead of
    /// `[arrival, end]`. Purely a judging concern — execution is
    /// identical.
    pub window: Option<u64>,
}

impl MuxQuery {
    /// Absolute declare-by tick: `arrival + 2·D̂` (unit hop delay).
    pub fn deadline(&self) -> u64 {
        self.arrival + 2 * self.d_hat as u64
    }
}

/// A compact exact partial aggregate for the multiplexed wire.
///
/// The mux engine computes exact (duplicate-sensitive) aggregates, so
/// it never needs the sketch variants of [`crate::Partial`] — and that
/// enum is sized for its largest (sketch) variant. With millions of
/// `(QueryId, MuxItem)` pairs staged, sorted and shipped per run, item
/// size is directly wall-clock: this 24-byte struct mirrors the exact
/// arms of `Partial::{init_exact, combine, value}` bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MuxPartial {
    aggregate: Aggregate,
    /// The min/max/count/sum accumulator (the running sum for AVG).
    a: u64,
    /// Contributing-host count (AVG only; unused elsewhere).
    b: u64,
}

impl MuxPartial {
    /// A host's initial partial for `aggregate` given its attribute
    /// `value` — exactly `Partial::init_exact`.
    pub fn init(aggregate: Aggregate, value: u64) -> MuxPartial {
        let (a, b) = match aggregate {
            Aggregate::Min | Aggregate::Max | Aggregate::Sum => (value, 0),
            Aggregate::Count => (1, 0),
            Aggregate::Average => (value, 1),
        };
        MuxPartial { aggregate, a, b }
    }

    /// Fold `other` into `self` (the §5.1 combine; commutative and
    /// associative, so within-tick delivery order never reaches it).
    pub fn combine(&mut self, other: MuxPartial) {
        debug_assert_eq!(
            self.aggregate, other.aggregate,
            "partials from different queries must never meet"
        );
        match self.aggregate {
            Aggregate::Min => self.a = self.a.min(other.a),
            Aggregate::Max => self.a = self.a.max(other.a),
            Aggregate::Count | Aggregate::Sum => self.a += other.a,
            Aggregate::Average => {
                self.a += other.a;
                self.b += other.b;
            }
        }
    }

    /// The scalar answer this partial induces — exactly
    /// `Partial::value` on the matching exact variant.
    pub fn value(&self) -> f64 {
        match self.aggregate {
            Aggregate::Min | Aggregate::Max | Aggregate::Count | Aggregate::Sum => self.a as f64,
            Aggregate::Average => {
                if self.b == 0 {
                    0.0
                } else {
                    self.a as f64 / self.b as f64
                }
            }
        }
    }
}

/// One query's payload inside a shared wave message.
#[derive(Clone, Copy, Debug)]
pub enum MuxItem {
    /// The flooded query; receipt from `f` means `f` is not my child.
    Query {
        /// The aggregate being computed.
        aggregate: Aggregate,
        /// Hops travelled (sender's depth).
        hops: u32,
        /// Absolute declare-by tick (hosts derive their fallback from it).
        deadline: u64,
    },
    /// A child's subtree aggregate.
    Child {
        /// The child's combined partial.
        partial: MuxPartial,
    },
}

/// A shared wave message: one engine message carrying many queries'
/// payload items, in ascending [`QueryId`] order.
#[derive(Clone, Debug)]
pub struct MuxMsg {
    /// The piggybacked `(query, item)` pairs.
    pub items: Vec<(QueryId, MuxItem)>,
}

/// Timer key: tick-end flush of the buffered inbox.
const KEY_FLUSH: u64 = 0;
/// Timer key class: query arrivals at this root (one timer per distinct
/// arrival tick serves every query due then).
const KEY_ARRIVAL: u64 = 1 << 32;
/// Timer key class: fallback deadlines. One firing serves *every* query
/// whose fallback tick has passed, so co-resident queries hitting their
/// deadline on the same tick batch their reports into shared messages.
const KEY_FALLBACK: u64 = 2 << 32;
const KEY_CLASS: u64 = !0u64 << 32;

/// Which neighbours a query has classified at this host. With hundreds
/// of co-resident queries there are `O(hosts × queries)` of these, so
/// the common case must not touch the heap: a bitmask over the host's
/// neighbour *indices* covers degree ≤ 128 inline; hub hosts beyond
/// that spill to a deduplicated vector.
#[derive(Debug)]
enum Heard {
    /// Bit `i` = neighbour `neighbors[i]` classified.
    Mask(u128),
    /// Degree > 128: the classified neighbours themselves.
    Spill(Vec<HostId>),
}

impl Heard {
    fn for_degree(degree: usize) -> Heard {
        if degree <= 128 {
            Heard::Mask(0)
        } else {
            Heard::Spill(Vec::new())
        }
    }

    /// Classify neighbour `h` (idempotent). Senders are always
    /// neighbours on the static substrate the engine runs over, and CSR
    /// neighbour lists are sorted ascending — binary search keeps this
    /// `O(log d)` on the per-item hot path.
    fn note(&mut self, neighbors: &[HostId], h: HostId) {
        match self {
            Heard::Mask(m) => {
                let i = neighbors.binary_search(&h).expect("sender is a neighbor");
                *m |= 1u128 << i;
            }
            Heard::Spill(v) => {
                if !v.contains(&h) {
                    v.push(h);
                }
            }
        }
    }

    fn count(&self) -> usize {
        match self {
            Heard::Mask(m) => m.count_ones() as usize,
            Heard::Spill(v) => v.len(),
        }
    }
}

/// Per-query tree state at one host (the SPANNINGTREE fields, tagged).
#[derive(Debug)]
struct QState {
    aggregate: Aggregate,
    /// Absolute declare-by tick.
    deadline: u64,
    parent: Option<HostId>,
    depth: u32,
    reported: bool,
    /// Non-parent neighbours already classified (flooded past us or
    /// reported as child).
    heard: Heard,
    partial: MuxPartial,
    is_root: bool,
}

/// Per-host logic of the multiplexed engine.
///
/// Every per-query collection is a flat vector indexed by the compact
/// [`QueryId`] (grown on demand): with hundreds of co-resident queries
/// the hot path touches these maps millions of times per run, and
/// direct indexing beats tree walks by an order of magnitude.
#[derive(Debug, Default)]
pub struct MuxNode {
    value: u64,
    /// Guards against `on_start` re-firing on rejoin.
    started: bool,
    /// Queries rooted at this host, ascending arrival then id.
    rooted: Vec<MuxQuery>,
    /// Slot `q` = live tree state of query `q` at this host.
    live: Vec<Option<QState>>,
    /// All `(query, sender, item)` triples delivered this tick, in
    /// arrival order — one flat buffer per host, capacity reused tick
    /// after tick. The flush stable-sorts by query id, which regroups
    /// the buffer into exactly the per-query arrival-order runs a
    /// qid-keyed map of vectors would hold, without `O(queries)`
    /// per-host allocations.
    staging: Vec<(QueryId, HostId, MuxItem)>,
    /// Scratch for the fallback path's mid-tick extraction of one
    /// query's pending items from `staging`.
    scratch: Vec<(QueryId, HostId, MuxItem)>,
    /// Tick the flush timer was last armed at (a stamp, not a flag: a
    /// bool would wedge if this host died between arming and firing).
    flush_armed_at: Option<u64>,
    /// Declared results of queries rooted here.
    results: BTreeMap<u32, (f64, Time)>,
    /// Partial-cache joins recorded here: `(live target, alias)`.
    aliases: Vec<(u32, u32)>,
    /// Slot `q` = payload items this host sent for query `q`.
    payload_sent: Vec<u64>,
    /// Number of queries that joined a live wave instead of flooding.
    cache_joins: u64,
    /// Fallback schedule, indexed by *tick*: slot `t` = queries due at
    /// `t`, in adoption order. A firing drains every slot at or before
    /// `now` — each query is visited O(1) times over the run instead of
    /// every live query being rescanned at every firing. Tick-indexed
    /// because arming runs once per (query, host) first-hearing — the
    /// hottest bookkeeping site of the engine — and the run horizon is
    /// short (`max deadline + 2`), so a flat slot beats a search tree.
    fallback_due: Vec<Vec<u32>>,
    /// Slot `t` = a [`KEY_FALLBACK`] event already in flight for tick
    /// `t`, so co-resident queries sharing a deadline share one timer.
    fallback_armed: Vec<bool>,
    /// Ticks below this are drained (firings never rescan the past).
    fallback_cursor: u64,
    /// Outgoing payload items of the current timer firing, slot `i` =
    /// neighbour `neighbors[i]`. Direct indexing instead of a keyed map:
    /// the hot path pushes one item per (query, neighbour) — millions
    /// per run — and every neighbour still receives at most one engine
    /// message per tick when [`MuxNode::ship`] drains the slots.
    out_bufs: Vec<Vec<(QueryId, MuxItem)>>,
}

impl MuxNode {
    /// A host with attribute `value` rooting the given queries.
    pub fn new(value: u64, mut rooted: Vec<MuxQuery>) -> Self {
        rooted.sort_by_key(|q| (q.arrival, q.id));
        MuxNode {
            value,
            rooted,
            ..MuxNode::default()
        }
    }

    /// Declared `(value, time)` of query `id`, if it was rooted here
    /// and declared (directly or through the partial cache).
    pub fn result(&self, id: QueryId) -> Option<(f64, Time)> {
        self.results.get(&id.index()).copied()
    }

    /// All declared results rooted at this host, ascending `QueryId`.
    pub fn results(&self) -> &BTreeMap<u32, (f64, Time)> {
        &self.results
    }

    /// Payload items this host sent, indexed by query (zero = none; the
    /// slice may be shorter than the workload if this host never sent
    /// for the tail queries).
    pub fn payload_sent(&self) -> &[u64] {
        &self.payload_sent
    }

    /// Queries that joined a live wave here instead of flooding.
    pub fn cache_joins(&self) -> u64 {
        self.cache_joins
    }

    /// Partial-cache joins recorded here, as `(live target, alias)`.
    pub fn aliases(&self) -> &[(u32, u32)] {
        &self.aliases
    }

    /// This host's parent in query `id`'s tree (diagnostics / tests).
    pub fn parent(&self, id: QueryId) -> Option<HostId> {
        self.state(id.index()).and_then(|s| s.parent)
    }

    fn state(&self, qid: u32) -> Option<&QState> {
        self.live.get(qid as usize).and_then(|s| s.as_ref())
    }

    /// The live slot for `qid`, growing the table on first touch.
    fn slot(&mut self, qid: u32) -> &mut Option<QState> {
        let idx = qid as usize;
        if self.live.len() <= idx {
            self.live.resize_with(idx + 1, || None);
        }
        &mut self.live[idx]
    }

    fn launched(&self, qid: u32) -> bool {
        self.state(qid).is_some() || self.aliases.iter().any(|&(_, alias)| alias == qid)
    }

    /// Schedule query `qid`'s forced report at tick `fallback_at`
    /// (clamped to the next tick if already past), sharing one engine
    /// timer among every query due at the same fire tick.
    fn arm_fallback(&mut self, ctx: &mut Ctx<'_, MuxMsg>, qid: u32, fallback_at: u64) {
        let due = fallback_at as usize;
        if self.fallback_due.len() <= due {
            self.fallback_due.resize_with(due + 1, Vec::new);
        }
        self.fallback_due[due].push(qid);
        let now = ctx.now().ticks();
        let fire_at = fallback_at.max(now + 1);
        let fire = fire_at as usize;
        if self.fallback_armed.len() <= fire {
            self.fallback_armed.resize(fire + 1, false);
        }
        if !self.fallback_armed[fire] {
            self.fallback_armed[fire] = true;
            ctx.set_timer(fire_at - now, KEY_FALLBACK);
        }
    }

    /// Handle every rooted query due by now: join a live matching wave
    /// (partial cache) or launch a fresh flood.
    fn arrivals(&mut self, ctx: &mut Ctx<'_, MuxMsg>) {
        let now = ctx.now().ticks();
        let due: Vec<MuxQuery> = self
            .rooted
            .iter()
            .filter(|q| q.arrival <= now && !self.launched(q.id.index()))
            .copied()
            .collect();
        for q in due {
            let qid = q.id.index();
            // Partial cache: a live (unreported) wave rooted here with
            // the same aggregate computes the same answer — join it.
            let target = self.live.iter().position(|s| {
                s.as_ref()
                    .is_some_and(|s| s.is_root && !s.reported && s.aggregate == q.aggregate)
            });
            if let Some(target) = target {
                let target = target as u32;
                self.aliases.push((target, qid));
                self.cache_joins += 1;
                continue;
            }
            let mut state = QState {
                aggregate: q.aggregate,
                deadline: q.deadline(),
                parent: None,
                depth: 0,
                reported: false,
                heard: Heard::for_degree(ctx.degree()),
                partial: MuxPartial::init(q.aggregate, self.value),
                is_root: true,
            };
            self.arm_fallback(ctx, qid, state.deadline);
            for buf in &mut self.out_bufs {
                buf.push((
                    q.id,
                    MuxItem::Query {
                        aggregate: q.aggregate,
                        hops: 0,
                        deadline: state.deadline,
                    },
                ));
            }
            if ctx.degree() == 0 {
                // Isolated root: nothing to wait for.
                state.reported = true;
                self.declare(qid, state.partial.value(), ctx.now());
            }
            *self.slot(qid) = Some(state);
        }
    }

    /// Process one query's buffered items: adopt a parent on first
    /// hearing, fold children, echo-complete.
    fn process(
        &mut self,
        ctx: &mut Ctx<'_, MuxMsg>,
        qid: u32,
        items: &[(QueryId, HostId, MuxItem)],
    ) {
        if self.state(qid).is_none() {
            // First hearing. Parent = minimum candidate sender among the
            // minimum-hops query copies of this tick — independent of
            // intra-tick delivery order, so co-resident queries cannot
            // perturb each other's trees.
            let mut best: Option<(u32, HostId)> = None;
            for (_, from, item) in items {
                if let MuxItem::Query { hops, .. } = item {
                    let cand = (*hops, *from);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            let Some((hops, parent)) = best else {
                // Only Child items for an unknown query: the sender's
                // parent pointer predates a state we no longer reach
                // (unreachable in practice — state is retained across
                // death). Best-effort: drop.
                return;
            };
            let (aggregate, deadline) = items
                .iter()
                .find_map(|(_, _, item)| match item {
                    MuxItem::Query {
                        aggregate,
                        deadline,
                        ..
                    } => Some((*aggregate, *deadline)),
                    MuxItem::Child { .. } => None,
                })
                .expect("a Query item produced the parent");
            let mut state = QState {
                aggregate,
                deadline,
                parent: Some(parent),
                depth: hops + 1,
                reported: false,
                heard: Heard::for_degree(ctx.degree()),
                partial: MuxPartial::init(aggregate, self.value),
                is_root: false,
            };
            // Every same-tick co-sender is someone else's child.
            for (_, from, item) in items {
                if matches!(item, MuxItem::Query { .. }) && *from != parent {
                    state.heard.note(ctx.neighbors(), *from);
                }
            }
            // Fallback at (deadline − depth)·δ so partial subtrees still
            // drain upward before the root declares.
            let fallback_at = deadline.saturating_sub(state.depth as u64);
            self.arm_fallback(ctx, qid, fallback_at);
            let parent_idx = ctx
                .neighbors()
                .binary_search(&parent)
                .expect("parent is a neighbor");
            for (i, buf) in self.out_bufs.iter_mut().enumerate() {
                if i != parent_idx {
                    buf.push((
                        QueryId(qid),
                        MuxItem::Query {
                            aggregate,
                            hops: state.depth,
                            deadline,
                        },
                    ));
                }
            }
            *self.slot(qid) = Some(state);
        } else {
            let state = self.live[qid as usize].as_mut().expect("checked above");
            if state.reported {
                // Late traffic after we reported upward — contribution
                // lost (best-effort semantics, exactly as SPANNINGTREE).
                return;
            }
            for (_, from, item) in items {
                match item {
                    MuxItem::Query { .. } => {
                        state.heard.note(ctx.neighbors(), *from);
                    }
                    MuxItem::Child { partial } => {
                        state.partial.combine(*partial);
                        state.heard.note(ctx.neighbors(), *from);
                    }
                }
            }
        }
        self.check_completion(ctx, qid);
    }

    fn check_completion(&mut self, ctx: &mut Ctx<'_, MuxMsg>, qid: u32) {
        let Some(state) = self.state(qid) else {
            return;
        };
        let expected = ctx.degree() - usize::from(state.parent.is_some());
        if !state.reported && state.heard.count() >= expected {
            self.report(ctx, qid);
        }
    }

    /// Report query `qid` upward (or declare, at the root).
    fn report(&mut self, ctx: &mut Ctx<'_, MuxMsg>, qid: u32) {
        let (is_root, parent, partial) = {
            let state = self.live[qid as usize]
                .as_mut()
                .expect("reporting a live query");
            if state.reported {
                return;
            }
            state.reported = true;
            (state.is_root, state.parent, state.partial)
        };
        if is_root {
            self.declare(qid, partial.value(), ctx.now());
        } else if let Some(parent) = parent {
            let idx = ctx
                .neighbors()
                .binary_search(&parent)
                .expect("parent is a neighbor");
            self.out_bufs[idx].push((QueryId(qid), MuxItem::Child { partial }));
        }
    }

    /// Record a root declaration and satisfy every alias joined to it.
    fn declare(&mut self, qid: u32, value: f64, at: Time) {
        self.results.insert(qid, (value, at));
        for &(target, alias) in &self.aliases {
            if target == qid {
                self.results.insert(alias, (value, at));
            }
        }
    }

    /// Drain this firing's per-neighbour buffers: one engine message per
    /// neighbour with traffic, items in ascending `QueryId` order. The
    /// buffers keep their capacity across firings — the message gets one
    /// exact-size allocation instead of inheriting a from-scratch regrow
    /// (this fires for every engine message of the run).
    fn ship(&mut self, ctx: &mut Ctx<'_, MuxMsg>) {
        for i in 0..self.out_bufs.len() {
            let buf = &mut self.out_bufs[i];
            if buf.is_empty() {
                continue;
            }
            buf.sort_unstable_by_key(|&(qid, _)| qid);
            if let Some(&(last, _)) = buf.last() {
                if self.payload_sent.len() <= last.index() as usize {
                    self.payload_sent.resize(last.index() as usize + 1, 0);
                }
            }
            for &(qid, _) in buf.iter() {
                self.payload_sent[qid.index() as usize] += 1;
            }
            let mut items = pool::take_mux_items();
            items.append(buf);
            let nb = ctx.neighbors()[i];
            ctx.send(nb, MuxMsg { items });
        }
    }
}

impl ProtocolObserver for MuxNode {
    fn state_summary(&self) -> StateSummary {
        StateSummary {
            active: self.live.iter().flatten().any(|s| !s.reported),
            sketch_weight: None,
        }
    }
}

impl NodeLogic for MuxNode {
    type Msg = MuxMsg;

    fn summary(&self) -> StateSummary {
        self.state_summary()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, MuxMsg>) {
        if self.started {
            // Rejoin after a failure: state (and timers' meaning) kept.
            return;
        }
        self.started = true;
        let now = ctx.now().ticks();
        let mut ticks: Vec<u64> = self
            .rooted
            .iter()
            .map(|q| q.arrival.saturating_sub(now).max(1))
            .collect();
        ticks.dedup();
        for delay in ticks {
            ctx.set_timer(delay, KEY_ARRIVAL);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, MuxMsg>, from: HostId, mut msg: MuxMsg) {
        let now = ctx.now().ticks();
        self.staging
            .extend(msg.items.drain(..).map(|(qid, item)| (qid, from, item)));
        // The emptied wire vector goes back to the thread-local pool the
        // sender took it from — steady-state message traffic allocates
        // nothing.
        pool::put_mux_items(msg.items);
        // All logic runs at the tick-end flush, after every delivery of
        // this instant — the synchronous round.
        if self.flush_armed_at != Some(now) {
            self.flush_armed_at = Some(now);
            ctx.set_timer_at_tick_end(KEY_FLUSH);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, MuxMsg>, key: u64) {
        if self.out_bufs.len() < ctx.degree() {
            self.out_bufs.resize_with(ctx.degree(), Vec::new);
        }
        match key & KEY_CLASS {
            _ if key == KEY_FLUSH => {
                // Stable sort regroups the tick's triples into per-query
                // arrival-order runs, processed in ascending qid order —
                // exactly what a qid-keyed map of vectors would yield.
                let mut staging = std::mem::take(&mut self.staging);
                // Unstable is safe: combine operators are commutative and
                // parent selection is a min over the tick's senders, so
                // within-qid item order never reaches the answer.
                staging.sort_unstable_by_key(|&(qid, _, _)| qid);
                let mut i = 0;
                while i < staging.len() {
                    let qid = staging[i].0;
                    let run = i + staging[i..]
                        .iter()
                        .take_while(|&&(q, _, _)| q == qid)
                        .count();
                    self.process(ctx, qid.index(), &staging[i..run]);
                    i = run;
                }
                staging.clear();
                self.staging = staging;
            }
            KEY_ARRIVAL => self.arrivals(ctx),
            KEY_FALLBACK => {
                // The fallback orders after this tick's deliveries but
                // before the flush. For every query whose fallback tick
                // has passed: fold its own pending items first (so
                // same-tick child reports still count), then force the
                // report. One firing pops every due query from the
                // schedule so their reports ship batched — and each
                // query is popped exactly once over the whole run.
                let now = ctx.now().ticks();
                let end = (now + 1).min(self.fallback_due.len() as u64);
                for t in self.fallback_cursor..end {
                    let qids = std::mem::take(&mut self.fallback_due[t as usize]);
                    for qid in qids {
                        if self.state(qid).is_none_or(|s| s.reported) {
                            continue;
                        }
                        if self.staging.iter().any(|&(q, _, _)| q.index() == qid) {
                            // Pull this query's pending items out of the
                            // staging buffer (preserving arrival order
                            // for it and everything left behind).
                            let mut scratch = std::mem::take(&mut self.scratch);
                            scratch.clear();
                            scratch.extend(
                                self.staging
                                    .iter()
                                    .filter(|&&(q, _, _)| q.index() == qid)
                                    .cloned(),
                            );
                            self.staging.retain(|&(q, _, _)| q.index() != qid);
                            self.process(ctx, qid, &scratch);
                            self.scratch = scratch;
                        }
                        if self.state(qid).is_some_and(|s| !s.reported) {
                            self.report(ctx, qid);
                        }
                    }
                }
                self.fallback_cursor = self.fallback_cursor.max(now + 1);
            }
            _ => unreachable!("unknown timer key {key:#x}"),
        }
        self.ship(ctx);
    }
}

/// Environment one multiplexed run executes in: the cell's churn and
/// partition realization plus the engine seed. The substrate is the
/// unit-delay point-to-point medium (the paper's default).
#[derive(Clone, Debug, Default)]
pub struct MuxPlan {
    /// Scripted churn realization.
    pub churn: ChurnPlan,
    /// Optional partition overlay.
    pub partition: Option<PartitionPlan>,
    /// Engine seed (delivery jitter streams; the node logic draws none).
    pub seed: u64,
}

/// What one multiplexed run produced, per query and raw.
#[derive(Clone, Debug)]
pub struct MuxOutcome {
    /// Declared `(value, time)` per query index (absent = never declared,
    /// e.g. the root died).
    pub results: BTreeMap<u32, (f64, Time)>,
    /// Payload items charged to each query, summed over all hosts.
    pub per_query_payload: BTreeMap<u32, u64>,
    /// Raw engine messages (shared wave messages actually sent).
    pub raw_messages: u64,
    /// Total payload items across all queries (`Σ per_query_payload`).
    pub payload_items: u64,
    /// Queries that joined a live wave through the partial cache.
    pub cache_joins: u64,
    /// The joined queries' indices, ascending (`len == cache_joins`).
    pub aliased: Vec<u32>,
    /// Engine metrics of the whole multiplexed run.
    pub metrics: Metrics,
    /// Ground-truth membership trace (for per-query judging).
    pub trace: Trace,
    /// The tick the run was driven to.
    pub horizon: Time,
}

/// Execute `queries` co-resident over one simulation of `graph`.
///
/// # Panics
/// Panics if a query's `arrival` is 0, its root is out of range, or two
/// queries share a `QueryId`.
pub fn run_mux(graph: &Graph, values: &[u64], queries: &[MuxQuery], plan: &MuxPlan) -> MuxOutcome {
    let n = graph.num_hosts();
    let mut rooted: BTreeMap<u32, Vec<MuxQuery>> = BTreeMap::new();
    let mut seen = HashSet::new();
    let mut horizon = 0u64;
    for q in queries {
        assert!(q.arrival >= 1, "query {:?} arrives before tick 1", q.id);
        assert!(
            q.root.index() < n,
            "query {:?} rooted at out-of-range host {:?}",
            q.id,
            q.root
        );
        assert!(seen.insert(q.id), "duplicate {:?}", q.id);
        horizon = horizon.max(q.deadline());
        rooted.entry(q.root.0).or_default().push(*q);
    }
    let horizon = Time(horizon + 2);
    let mut builder = SimBuilder::over(graph)
        .churn(plan.churn.clone())
        .seed(plan.seed);
    if let Some(p) = &plan.partition {
        builder = builder.partition(p.clone());
    }
    let mut sim = builder.build(|h| {
        MuxNode::new(
            values[h.index()],
            rooted.get(&h.0).cloned().unwrap_or_default(),
        )
    });
    sim.run_until(horizon);

    let mut results = BTreeMap::new();
    let mut per_query_payload: BTreeMap<u32, u64> = BTreeMap::new();
    let mut cache_joins = 0u64;
    let mut aliased = Vec::new();
    for i in 0..n {
        // Logic is retained across death, so dead hosts still account.
        let node = sim.logic(HostId(i as u32));
        results.extend(node.results().iter().map(|(&q, &r)| (q, r)));
        for (q, &c) in node.payload_sent().iter().enumerate() {
            if c > 0 {
                *per_query_payload.entry(q as u32).or_insert(0) += c;
            }
        }
        cache_joins += node.cache_joins();
        aliased.extend(node.aliases().iter().map(|&(_, alias)| alias));
    }
    aliased.sort_unstable();
    let payload_items = per_query_payload.values().sum();
    MuxOutcome {
        results,
        per_query_payload,
        raw_messages: sim.metrics().messages_sent,
        payload_items,
        cache_joins,
        aliased,
        metrics: sim.metrics().clone(),
        trace: sim.trace().clone(),
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_topology::generators::special;

    fn q(id: u32, aggregate: Aggregate, root: u32, arrival: u64, d_hat: u32) -> MuxQuery {
        MuxQuery {
            id: QueryId(id),
            aggregate,
            root: HostId(root),
            arrival,
            d_hat,
            window: None,
        }
    }

    #[test]
    fn exact_aggregates_failure_free() {
        let values = [5u64, 10, 15, 20, 25, 30];
        let g = special::cycle(6);
        let queries = [
            q(0, Aggregate::Count, 0, 1, 3),
            q(1, Aggregate::Sum, 2, 1, 3),
            q(2, Aggregate::Average, 4, 2, 3),
            q(3, Aggregate::Min, 1, 3, 3),
            q(4, Aggregate::Max, 5, 3, 3),
        ];
        let out = run_mux(&g, &values, &queries, &MuxPlan::default());
        let want = [6.0, 105.0, 17.5, 5.0, 30.0];
        for (i, w) in want.iter().enumerate() {
            let (v, _) = out.results[&(i as u32)];
            assert_eq!(v, *w, "query {i}");
        }
    }

    #[test]
    fn solo_matches_spanning_tree_semantics() {
        // A single multiplexed query on a chain echo-completes early,
        // like SPANNINGTREE does.
        let n = 8;
        let g = special::chain(n);
        let queries = [q(0, Aggregate::Count, 0, 1, 50)];
        let out = run_mux(&g, &vec![1; n], &queries, &MuxPlan::default());
        let (v, at) = out.results[&0];
        assert_eq!(v, n as f64);
        assert!(
            at.ticks() <= 1 + 2 * n as u64 + 2,
            "declared at {at}, echo should beat the 100-tick deadline"
        );
    }

    #[test]
    fn piggyback_shares_wave_messages() {
        // k co-resident queries from the same root and tick: the flood
        // travels once per edge per tick, carrying k payloads — raw
        // engine messages stay at the 1-query level while payload items
        // scale with k.
        let n = 12;
        let g = special::cycle(n);
        let solo = run_mux(
            &g,
            &vec![1; n],
            &[q(0, Aggregate::Count, 0, 1, 6)],
            &MuxPlan::default(),
        );
        let queries: Vec<MuxQuery> = (0..4)
            .map(|i| {
                // Distinct aggregates defeat the partial cache: this
                // test isolates the piggyback saving.
                let agg = [
                    Aggregate::Count,
                    Aggregate::Sum,
                    Aggregate::Min,
                    Aggregate::Max,
                ][i as usize];
                q(i, agg, 0, 1, 6)
            })
            .collect();
        let mux = run_mux(&g, &vec![1; n], &queries, &MuxPlan::default());
        assert_eq!(mux.results.len(), 4);
        assert_eq!(
            mux.raw_messages, solo.raw_messages,
            "perfectly aligned waves share every engine message"
        );
        assert_eq!(mux.payload_items, 4 * solo.payload_items);
        assert_eq!(mux.per_query_payload[&0], solo.payload_items);
    }

    #[test]
    fn partial_cache_joins_matching_wave() {
        let n = 10;
        let g = special::cycle(n);
        let queries = [
            q(0, Aggregate::Count, 3, 1, 5),
            // Same (aggregate, root), arrives while query 0's wave is
            // live → joins it instead of flooding.
            q(1, Aggregate::Count, 3, 2, 5),
            // Different aggregate: floods on its own.
            q(2, Aggregate::Sum, 3, 2, 5),
        ];
        let out = run_mux(&g, &vec![1; n], &queries, &MuxPlan::default());
        assert_eq!(out.cache_joins, 1);
        let (v0, t0) = out.results[&0];
        let (v1, t1) = out.results[&1];
        assert_eq!((v0, t0), (v1, t1), "alias inherits the wave's answer");
        assert_eq!(v0, n as f64);
        assert_eq!(
            out.per_query_payload.get(&1),
            None,
            "an aliased query pays no payload items"
        );
    }

    #[test]
    fn subtree_lost_on_failure() {
        // Chain 0-1-2-3-4-5, host 1 fails after forwarding the query:
        // the count collapses to 1 — exactly SPANNINGTREE's best-effort
        // loss (§4.4), per query.
        let plan = MuxPlan {
            churn: ChurnPlan::none().with_failure(Time(3), HostId(1)),
            ..MuxPlan::default()
        };
        let g = special::chain(6);
        let out = run_mux(&g, &[1; 6], &[q(0, Aggregate::Count, 0, 1, 6)], &plan);
        let (v, _) = out.results[&0];
        assert_eq!(v, 1.0, "entire subtree behind the failed host is lost");
    }

    #[test]
    fn dead_root_never_declares() {
        let plan = MuxPlan {
            churn: ChurnPlan::none().with_failure(Time(2), HostId(0)),
            ..MuxPlan::default()
        };
        let g = special::cycle(6);
        let out = run_mux(&g, &[1; 6], &[q(0, Aggregate::Count, 0, 1, 3)], &plan);
        assert!(out.results.is_empty(), "a dead root cannot declare");
    }

    #[test]
    fn root_fallback_fires_when_children_die() {
        let plan = MuxPlan {
            churn: ChurnPlan::none()
                .with_failure(Time(1), HostId(1))
                .with_failure(Time(1), HostId(2)),
            ..MuxPlan::default()
        };
        let mut b = pov_topology::GraphBuilder::with_hosts(3);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(0), HostId(2));
        let g = b.build();
        let out = run_mux(&g, &[7, 8, 9], &[q(0, Aggregate::Sum, 0, 1, 2)], &plan);
        let (v, at) = out.results[&0];
        assert_eq!(v, 7.0);
        assert_eq!(at, Time(5), "the arrival + 2·D̂ fallback");
    }

    #[test]
    fn determinism_across_reruns() {
        let n = 40;
        let g = special::cycle(n);
        let queries: Vec<MuxQuery> = (0..10)
            .map(|i| {
                q(
                    i,
                    Aggregate::Sum,
                    (i * 3) % n as u32,
                    1 + (i as u64 % 4),
                    20,
                )
            })
            .collect();
        let plan = MuxPlan {
            churn: ChurnPlan::none().with_failure(Time(5), HostId(7)),
            seed: 9,
            ..MuxPlan::default()
        };
        let values: Vec<u64> = (0..n as u64).collect();
        let a = run_mux(&g, &values, &queries, &plan);
        let b = run_mux(&g, &values, &queries, &plan);
        assert_eq!(a.results, b.results);
        assert_eq!(a.per_query_payload, b.per_query_payload);
        assert_eq!(a.raw_messages, b.raw_messages);
    }

    #[test]
    fn rejects_bad_queries() {
        let g = special::cycle(4);
        let r = std::panic::catch_unwind(|| {
            run_mux(
                &g,
                &[1; 4],
                &[q(0, Aggregate::Count, 0, 0, 2)],
                &MuxPlan::default(),
            )
        });
        assert!(r.is_err(), "arrival 0 must be rejected");
        let r = std::panic::catch_unwind(|| {
            run_mux(
                &g,
                &[1; 4],
                &[
                    q(0, Aggregate::Count, 0, 1, 2),
                    q(0, Aggregate::Sum, 1, 1, 2),
                ],
                &MuxPlan::default(),
            )
        });
        assert!(r.is_err(), "duplicate ids must be rejected");
    }
}
