//! Push-sum gossip — the eventual-consistency baseline of §2.2.
//!
//! Epidemic aggregation (Kempe–Dobra–Gehrke \[19\], Astrolabe \[37\]) runs in
//! rounds: every host halves its (sum, weight) mass and pushes one half
//! to a uniformly random neighbour; `sum/weight` converges to the true
//! aggregate at *every* host — eventually, and only if the network holds
//! still. Under churn the mass held by failed hosts simply vanishes,
//! which is exactly the weak semantics the paper contrasts with
//! Single-Site Validity: there is no bound relating the answer to any
//! well-defined host set at any point in time.
//!
//! Unlike the query-driven protocols, gossip assumes the query is known
//! to all hosts at time 0 (the standard model for epidemic aggregation).

use crate::common::Aggregate;
use pov_sim::{Ctx, NodeLogic, Time};
use pov_topology::HostId;
use rand::Rng;

/// Timer key for the per-round tick.
const TIMER_ROUND: u64 = 2;

/// Gossip messages.
#[derive(Clone, Debug)]
pub enum GossipMsg {
    /// Half of the sender's push-sum mass.
    PushSum {
        /// Sum share.
        s: f64,
        /// Weight share.
        w: f64,
    },
    /// Extremum dissemination for min/max.
    Extreme {
        /// Current best value known to the sender.
        v: u64,
    },
}

/// Per-host push-sum gossip state.
#[derive(Debug)]
pub struct GossipNode {
    aggregate: Aggregate,
    rounds: u32,
    rounds_done: u32,
    /// Push-sum mass.
    s: f64,
    w: f64,
    /// Extremum for min/max queries.
    extreme: u64,
    is_query_host: bool,
    result: Option<(f64, Time)>,
    /// `hq`-only: estimate after each round (convergence tracking).
    history: Vec<f64>,
}

impl GossipNode {
    /// Create a host. For `Count`/`Sum` the protocol needs exactly one
    /// host (by convention `hq`) holding weight 1; for `Average` every
    /// host has weight 1.
    pub fn new(value: u64, aggregate: Aggregate, rounds: u32, is_query_host: bool) -> Self {
        let (s, w) = match aggregate {
            Aggregate::Count => (1.0, if is_query_host { 1.0 } else { 0.0 }),
            Aggregate::Sum => (value as f64, if is_query_host { 1.0 } else { 0.0 }),
            Aggregate::Average => (value as f64, 1.0),
            Aggregate::Min | Aggregate::Max => (0.0, 0.0),
        };
        GossipNode {
            aggregate,
            rounds,
            rounds_done: 0,
            s,
            w,
            extreme: value,
            is_query_host,
            result: None,
            history: Vec::new(),
        }
    }

    /// The result at `hq` after the final round.
    pub fn result(&self) -> Option<(f64, Time)> {
        self.result
    }

    /// Per-round estimates at `hq` (empty elsewhere).
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    fn estimate(&self) -> f64 {
        match self.aggregate {
            Aggregate::Min | Aggregate::Max => self.extreme as f64,
            _ => {
                if self.w.abs() < f64::EPSILON {
                    0.0
                } else {
                    self.s / self.w
                }
            }
        }
    }
}

impl NodeLogic for GossipNode {
    type Msg = GossipMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GossipMsg>) {
        if self.rounds > 0 {
            ctx.set_timer(1, TIMER_ROUND);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, GossipMsg>, _from: HostId, msg: GossipMsg) {
        match msg {
            GossipMsg::PushSum { s, w } => {
                self.s += s;
                self.w += w;
            }
            GossipMsg::Extreme { v } => {
                self.extreme = match self.aggregate {
                    Aggregate::Min => self.extreme.min(v),
                    _ => self.extreme.max(v),
                };
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GossipMsg>, key: u64) {
        if key != TIMER_ROUND {
            return;
        }
        let neighbors = ctx.neighbors();
        if !neighbors.is_empty() {
            let target = neighbors[ctx.rng().gen_range(0..neighbors.len())];
            match self.aggregate {
                Aggregate::Min | Aggregate::Max => {
                    ctx.send(target, GossipMsg::Extreme { v: self.extreme });
                }
                _ => {
                    self.s /= 2.0;
                    self.w /= 2.0;
                    ctx.send(
                        target,
                        GossipMsg::PushSum {
                            s: self.s,
                            w: self.w,
                        },
                    );
                }
            }
        }
        self.rounds_done += 1;
        if self.is_query_host {
            self.history.push(self.estimate());
        }
        if self.rounds_done < self.rounds {
            ctx.set_timer(1, TIMER_ROUND);
        } else if self.is_query_host {
            self.result = Some((self.estimate(), ctx.now()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_sim::{ChurnPlan, SimBuilder, Simulation};
    use pov_topology::generators::{random_average_degree, special};
    use pov_topology::Graph;

    fn run(
        graph: Graph,
        values: &[u64],
        aggregate: Aggregate,
        rounds: u32,
        churn: ChurnPlan,
    ) -> Simulation<'static, GossipNode> {
        let values = values.to_vec();
        let mut sim = SimBuilder::new(graph)
            .churn(churn)
            .seed(17)
            .build(move |h| GossipNode::new(values[h.index()], aggregate, rounds, h == HostId(0)));
        sim.run_until(Time(rounds as u64 + 2));
        sim
    }

    #[test]
    fn average_converges_failure_free() {
        let g = random_average_degree(100, 6.0, 3);
        let values: Vec<u64> = (0..100).map(|i| 10 + (i % 50)).collect();
        let truth = Aggregate::Average.ground_truth(&values).unwrap();
        let sim = run(g, &values, Aggregate::Average, 60, ChurnPlan::none());
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert!(
            (v - truth).abs() / truth < 0.1,
            "avg {v} should be near {truth}"
        );
    }

    #[test]
    fn count_converges_failure_free() {
        let n = 64;
        let g = random_average_degree(n, 6.0, 4);
        let sim = run(g, &vec![1; n], Aggregate::Count, 80, ChurnPlan::none());
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert!(
            (n as f64 * 0.8..n as f64 * 1.2).contains(&v),
            "count {v} vs {n}"
        );
    }

    #[test]
    fn max_spreads() {
        let n = 50;
        let g = random_average_degree(n, 6.0, 5);
        let mut values = vec![5u64; n];
        values[n - 1] = 999;
        let sim = run(g, &values, Aggregate::Max, 100, ChurnPlan::none());
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 999.0);
    }

    #[test]
    fn mass_conservation_without_failures() {
        // Total (s, w) over alive hosts is invariant while nothing fails.
        let n = 30;
        let g = special::cycle(n);
        let sim = run(g, &vec![1; n], Aggregate::Count, 40, ChurnPlan::none());
        let total_s: f64 = (0..n as u32).map(|h| sim.logic(HostId(h)).s).sum();
        let total_w: f64 = (0..n as u32).map(|h| sim.logic(HostId(h)).w).sum();
        assert!((total_s - n as f64).abs() < 1e-6, "s mass {total_s}");
        assert!((total_w - 1.0).abs() < 1e-9, "w mass {total_w}");
    }

    #[test]
    fn churn_destroys_mass() {
        // Failing hosts mid-gossip removes their mass: the count estimate
        // no longer reflects any well-defined host set. We only assert the
        // run completes and produces *some* estimate — the point of the
        // baseline is that nothing stronger can be asserted.
        let n = 60;
        let g = random_average_degree(n, 6.0, 6);
        let churn = ChurnPlan::uniform_failures(n, 20, Time(5), Time(30), HostId(0), 8);
        let sim = run(g, &vec![1; n], Aggregate::Count, 60, churn);
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert!(v.is_finite());
    }

    #[test]
    fn history_tracks_rounds() {
        let g = special::cycle(10);
        let sim = run(g, &[1; 10], Aggregate::Count, 25, ChurnPlan::none());
        assert_eq!(sim.logic(HostId(0)).history().len(), 25);
        assert!(sim.logic(HostId(1)).history().is_empty());
    }

    #[test]
    fn zero_rounds_never_declares() {
        let g = special::cycle(4);
        let sim = run(g, &[1; 4], Aggregate::Count, 0, ChurnPlan::none());
        assert!(sim.logic(HostId(0)).result().is_none());
    }
}
