//! The SPANNINGTREE best-effort protocol (§4.4).
//!
//! Broadcast organizes hosts into a spanning tree rooted at `hq` (parent
//! = sender of the first query copy received, as in TAG \[22\] and
//! Yao–Gehrke \[38\]); convergecast propagates *exact* partial aggregates
//! from the leaves to the root, one message per host.
//!
//! Tree completion uses the classic echo trick, which costs nothing
//! extra: during flooding every host forwards the query to all
//! non-parent neighbours, so host `u` eventually hears a (possibly
//! duplicate) query copy from every neighbour that did **not** choose `u`
//! as its parent. Neighbours that stay silent are exactly `u`'s
//! children; once each of them has either flooded past `u` or delivered
//! its subtree aggregate, `u` reports upward. A per-host fallback
//! deadline at `(2·D̂ − depth)·δ` bounds the wait when a child dies
//! mid-protocol — which is precisely when SPANNINGTREE silently loses
//! whole subtrees (Theorem 4.4, Figs 7–9).

use crate::common::{Partial, QuerySpec};
use crate::observer::{summary_of, ProtocolObserver};
use pov_sim::{Ctx, NodeLogic, StateSummary, Time};
use pov_topology::HostId;
use std::collections::HashSet;

/// Timer key for the per-host fallback deadline.
const TIMER_FALLBACK: u64 = 1;

/// SPANNINGTREE messages.
#[derive(Clone, Debug)]
pub enum StMsg {
    /// The flooded query; receipt from `f` means `f` is not my child.
    Query {
        /// Query parameters.
        spec: QuerySpec,
        /// Hops travelled (sender's depth).
        hops: u32,
    },
    /// A child's subtree aggregate.
    Child {
        /// The child's combined partial aggregate.
        partial: Partial,
    },
}

/// Per-host SPANNINGTREE state.
#[derive(Debug)]
pub struct SpanningTreeNode {
    value: u64,
    parent: Option<HostId>,
    depth: u32,
    activated: bool,
    reported: bool,
    /// Non-parent neighbours already classified (flooded past us or
    /// reported as child).
    heard: HashSet<HostId>,
    partial: Option<Partial>,
    query: Option<QuerySpec>,
    result: Option<(f64, Time)>,
    is_query_host: bool,
}

impl SpanningTreeNode {
    /// A passive host.
    pub fn host(value: u64) -> Self {
        SpanningTreeNode {
            value,
            parent: None,
            depth: 0,
            activated: false,
            reported: false,
            heard: crate::pool::take_host_set(),
            partial: None,
            query: None,
            result: None,
            is_query_host: false,
        }
    }

    /// The querying host (tree root).
    pub fn query_host(value: u64, spec: QuerySpec) -> Self {
        let mut n = Self::host(value);
        n.is_query_host = true;
        n.query = Some(spec);
        n
    }

    /// The declared result at the root.
    pub fn result(&self) -> Option<(f64, Time)> {
        self.result
    }

    /// This host's parent in the tree (diagnostics).
    pub fn parent(&self) -> Option<HostId> {
        self.parent
    }
}

impl Drop for SpanningTreeNode {
    fn drop(&mut self) {
        crate::pool::put_host_set(std::mem::take(&mut self.heard));
    }
}

impl SpanningTreeNode {
    fn expected(&self, ctx: &Ctx<'_, StMsg>) -> usize {
        ctx.degree() - usize::from(self.parent.is_some())
    }

    fn check_completion(&mut self, ctx: &mut Ctx<'_, StMsg>) {
        if self.reported || !self.activated {
            return;
        }
        if self.heard.len() >= self.expected(ctx) {
            self.report(ctx);
        }
    }

    fn report(&mut self, ctx: &mut Ctx<'_, StMsg>) {
        if self.reported {
            return;
        }
        self.reported = true;
        let partial = self.partial.clone().expect("activated host has a partial");
        if self.is_query_host {
            self.result = Some((partial.value(), ctx.now()));
        } else if let Some(parent) = self.parent {
            ctx.send(parent, StMsg::Child { partial });
        }
    }
}

impl ProtocolObserver for SpanningTreeNode {
    fn state_summary(&self) -> StateSummary {
        summary_of(self.partial.as_ref())
    }
}

impl NodeLogic for SpanningTreeNode {
    type Msg = StMsg;

    fn summary(&self) -> StateSummary {
        self.state_summary()
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_, StMsg>) {
        if !self.is_query_host {
            return;
        }
        let spec = self.query.expect("query host has a spec");
        self.activated = true;
        self.partial = Some(Partial::init_exact(spec.aggregate, self.value));
        ctx.set_timer(spec.deadline(), TIMER_FALLBACK);
        ctx.broadcast(StMsg::Query { spec, hops: 0 });
        self.check_completion(ctx); // isolated root: degree 0
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StMsg>, from: HostId, msg: StMsg) {
        match msg {
            StMsg::Query { spec, hops } => {
                if !self.activated {
                    // First copy: `from` becomes our parent.
                    self.activated = true;
                    self.query = Some(spec);
                    self.parent = Some(from);
                    self.depth = hops + 1;
                    self.partial = Some(Partial::init_exact(spec.aggregate, self.value));
                    // Fallback at (2D̂ − depth)δ so partial subtrees still
                    // drain upward before the root declares.
                    let fallback_at = spec.deadline().saturating_sub(self.depth as u64);
                    let delay = fallback_at.saturating_sub(ctx.now().ticks()).max(1);
                    ctx.set_timer(delay, TIMER_FALLBACK);
                    ctx.broadcast_except(
                        Some(from),
                        StMsg::Query {
                            spec,
                            hops: self.depth,
                        },
                    );
                    self.check_completion(ctx); // leaf with 1 neighbour
                } else {
                    // Duplicate: `from` is someone else's child, not ours.
                    self.heard.insert(from);
                    self.check_completion(ctx);
                }
            }
            StMsg::Child { partial } => {
                if self.reported {
                    // Arrived after we reported upward — contribution lost
                    // (best-effort semantics).
                    return;
                }
                if let Some(p) = self.partial.as_mut() {
                    p.combine(&partial);
                }
                self.heard.insert(from);
                self.check_completion(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StMsg>, key: u64) {
        if key == TIMER_FALLBACK {
            self.report(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Aggregate;
    use pov_sim::{ChurnPlan, SimBuilder, Simulation};
    use pov_topology::generators::special;
    use pov_topology::Graph;

    fn run(
        graph: Graph,
        values: &[u64],
        aggregate: Aggregate,
        d_hat: u32,
        churn: ChurnPlan,
    ) -> Simulation<'static, SpanningTreeNode> {
        let spec = QuerySpec {
            aggregate,
            d_hat,
            c: 8,
        };
        let values = values.to_vec();
        let mut sim = SimBuilder::new(graph).churn(churn).seed(2).build(move |h| {
            if h == HostId(0) {
                SpanningTreeNode::query_host(values[h.index()], spec)
            } else {
                SpanningTreeNode::host(values[h.index()])
            }
        });
        sim.run_until(Time(spec.deadline() + 2));
        sim
    }

    #[test]
    fn exact_aggregates_failure_free() {
        let values = [5u64, 10, 15, 20, 25, 30];
        let cases = [
            (Aggregate::Count, 6.0),
            (Aggregate::Sum, 105.0),
            (Aggregate::Average, 17.5),
            (Aggregate::Min, 5.0),
            (Aggregate::Max, 30.0),
        ];
        for (agg, want) in cases {
            let sim = run(special::cycle(6), &values, agg, 3, ChurnPlan::none());
            let (v, _) = sim.logic(HostId(0)).result().expect("declared");
            assert_eq!(v, want, "{agg:?}");
        }
    }

    #[test]
    fn echo_completes_early() {
        // On a chain the echo finishes in ~2n ticks even with a huge D̂:
        // SPANNINGTREE has the least latency (Fig 13a).
        let n = 8;
        let sim = run(
            special::chain(n),
            &vec![1; n],
            Aggregate::Count,
            50,
            ChurnPlan::none(),
        );
        let (v, at) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, n as f64);
        assert!(
            at.ticks() <= 2 * n as u64 + 2,
            "declared at {at}, echo should beat the 100-tick deadline"
        );
    }

    #[test]
    fn convergecast_message_budget() {
        // §4.4: Broadcast O(|E|) + Convergecast O(|H|). On a cycle of n:
        // flood = 2(n-1) point-to-point copies... bounded by 2|E|; child
        // reports = n-1.
        let n = 10;
        let sim = run(
            special::cycle(n),
            &vec![1; n],
            Aggregate::Count,
            (n / 2) as u32,
            ChurnPlan::none(),
        );
        let sent = sim.metrics().messages_sent as usize;
        let edges = n; // cycle has n edges
        assert!(
            sent <= 2 * edges + n,
            "sent {sent} > broadcast+convergecast budget"
        );
    }

    #[test]
    fn subtree_lost_on_failure() {
        // Chain 0-1-2-3-4-5: host 1 fails right after forwarding the
        // query... fail it at t=2 so the query got through but reports
        // (travelling back at t>=4) are lost. Count collapses to 1.
        let churn = ChurnPlan::none().with_failure(Time(2), HostId(1));
        let sim = run(special::chain(6), &[1; 6], Aggregate::Count, 6, churn);
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 1.0, "entire subtree behind the failed host is lost");
    }

    #[test]
    fn theorem_4_4_cycle_with_spur() {
        // On the Thm 4.4 instance, failing h1 after broadcast costs the
        // root the longer chain: v ≤ |HC|/2 even though all those hosts
        // stayed alive and connected.
        let n = 6;
        let (g, hq, victim) = special::cycle_with_spur(n);
        assert_eq!(hq, HostId(0));
        let total = g.num_hosts(); // 2n + 3
                                   // Fail h1 once the broadcast has passed it but before its
                                   // subtree reports return: depth of the far side is ~n hops.
        let churn = ChurnPlan::none().with_failure(Time(3), victim);
        let sim = run(g, &vec![1; total], Aggregate::Count, (n + 2) as u32, churn);
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        let hc = (total - 1) as f64; // everyone but the victim stayed reachable
        assert!(
            v <= hc / 2.0 + 1.0,
            "v = {v}, expected at most about half of HC = {hc}"
        );
    }

    #[test]
    fn parents_form_bfs_tree() {
        let sim = run(
            special::cycle(8),
            &[1; 8],
            Aggregate::Count,
            4,
            ChurnPlan::none(),
        );
        // Depth-1 hosts have hq as parent.
        assert_eq!(sim.logic(HostId(1)).parent(), Some(HostId(0)));
        assert_eq!(sim.logic(HostId(7)).parent(), Some(HostId(0)));
        // hq has no parent.
        assert_eq!(sim.logic(HostId(0)).parent(), None);
    }

    #[test]
    fn root_fallback_fires_when_children_die() {
        // All of hq's neighbours die instantly; the fallback deadline
        // still produces a (degenerate) answer.
        let churn = ChurnPlan::none()
            .with_failure(Time(0), HostId(1))
            .with_failure(Time(0), HostId(2));
        let mut b = pov_topology::GraphBuilder::with_hosts(3);
        b.add_edge(HostId(0), HostId(1));
        b.add_edge(HostId(0), HostId(2));
        let sim = run(b.build(), &[7, 8, 9], Aggregate::Sum, 2, churn);
        let (v, at) = sim.logic(HostId(0)).result().expect("declared");
        assert_eq!(v, 7.0);
        assert_eq!(at, Time(4)); // the 2·D̂ fallback
    }
}
