//! ALLREPORT (Fig 2) and RANDOMIZEDREPORT (§4.3).
//!
//! ALLREPORT is the constructive proof of Theorem 4.3: flood the query;
//! every host that hears it sends its attribute value straight to `hq`;
//! `hq` aggregates whatever arrived by `2·D̂·δ`. It performs the least
//! possible in-network processing and — studied as *Direct Delivery* by
//! Yao & Gehrke — pays a high price in messages and in load around `hq`.
//!
//! Two delivery modes:
//!
//! * [`ReportRouting::Direct`] — reports use the IP underlay (P2P
//!   setting, one message per report);
//! * [`ReportRouting::ReverseTree`] — reports are relayed hop-by-hop
//!   along the reverse broadcast path (sensor setting, one message per
//!   hop; this is the load Yao & Gehrke measured).
//!
//! RANDOMIZEDREPORT answers `count` with Approximate Single-Site
//! Validity: each host reports with probability `p` and `hq` declares
//! `|M| / p`, saving `(1 − p)·|H|` report messages.

use crate::common::{Aggregate, QuerySpec};
use pov_sim::{Ctx, NodeLogic, Time};
use pov_topology::HostId;
use rand::Rng;

/// Timer key for the declaration deadline at `hq`.
const TIMER_DECLARE: u64 = 0;

/// How value reports travel back to `hq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReportRouting {
    /// One underlay message per report (P2P overlays, §3.1 Ex. 3.1).
    #[default]
    Direct,
    /// Hop-by-hop along the reverse broadcast path (sensor networks).
    ReverseTree,
}

/// ALLREPORT messages.
#[derive(Clone, Debug)]
pub enum ArMsg {
    /// The flooded query.
    Query {
        /// Query parameters.
        spec: QuerySpec,
        /// The querying host (reports are addressed to it).
        hq: HostId,
        /// Report-sampling probability: `None` for ALLREPORT, `Some(p)`
        /// for RANDOMIZEDREPORT.
        sample: Option<f64>,
    },
    /// A host's attribute value on its way to `hq`.
    Report {
        /// Value of the originating host.
        value: u64,
    },
}

/// Per-host ALLREPORT/RANDOMIZEDREPORT state.
#[derive(Debug)]
pub struct AllReportNode {
    value: u64,
    routing: ReportRouting,
    /// Reverse-path parent (sender of the first Query we saw).
    parent: Option<HostId>,
    seen_query: bool,
    /// `hq`-only: collected values `M` (own value included, Fig 2).
    collected: Vec<u64>,
    query: Option<QuerySpec>,
    result: Option<(f64, Time)>,
    is_query_host: bool,
    sample: Option<f64>,
}

impl AllReportNode {
    /// A passive host.
    pub fn host(value: u64, routing: ReportRouting) -> Self {
        AllReportNode {
            value,
            routing,
            parent: None,
            seen_query: false,
            collected: crate::pool::take_values(),
            query: None,
            result: None,
            is_query_host: false,
            sample: None,
        }
    }

    /// The querying host for plain ALLREPORT.
    pub fn query_host(value: u64, spec: QuerySpec, routing: ReportRouting) -> Self {
        let mut n = Self::host(value, routing);
        n.is_query_host = true;
        n.query = Some(spec);
        n
    }

    /// The querying host for RANDOMIZEDREPORT with sampling probability
    /// `p` (§4.3; count queries only).
    pub fn randomized_query_host(
        value: u64,
        spec: QuerySpec,
        p: f64,
        routing: ReportRouting,
    ) -> Self {
        assert!(
            spec.aggregate == Aggregate::Count,
            "RANDOMIZEDREPORT estimates count only"
        );
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let mut n = Self::query_host(value, spec, routing);
        n.sample = Some(p);
        n
    }

    /// The declared result at `hq`.
    pub fn result(&self) -> Option<(f64, Time)> {
        self.result
    }

    /// Number of reports gathered so far (diagnostics; `hq` only).
    pub fn reports_received(&self) -> usize {
        self.collected.len()
    }
}

impl Drop for AllReportNode {
    fn drop(&mut self) {
        crate::pool::put_values(std::mem::take(&mut self.collected));
    }
}

impl AllReportNode {
    fn maybe_report(&mut self, ctx: &mut Ctx<'_, ArMsg>, hq: HostId, from: HostId) {
        let report = match self.sample {
            Some(p) => ctx.rng().gen_bool(p),
            None => true,
        };
        if !report {
            return;
        }
        let msg = ArMsg::Report { value: self.value };
        match self.routing {
            ReportRouting::Direct => ctx.send_direct(hq, msg),
            ReportRouting::ReverseTree => ctx.send(from, msg),
        }
    }
}

impl NodeLogic for AllReportNode {
    type Msg = ArMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ArMsg>) {
        if !self.is_query_host {
            return;
        }
        let spec = self.query.expect("query host has a spec");
        self.seen_query = true;
        // Fig 2: M := {hq}. Under sampling, hq flips its own coin too.
        let include_self = match self.sample {
            Some(p) => ctx.rng().gen_bool(p),
            None => true,
        };
        if include_self {
            self.collected.push(self.value);
        }
        ctx.set_timer(spec.deadline(), TIMER_DECLARE);
        ctx.broadcast(ArMsg::Query {
            spec,
            hq: ctx.me(),
            sample: self.sample,
        });
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ArMsg>, from: HostId, msg: ArMsg) {
        match msg {
            ArMsg::Query { spec, hq, sample } => {
                if self.seen_query {
                    return;
                }
                self.seen_query = true;
                self.query = Some(spec);
                self.parent = Some(from);
                self.sample = sample;
                ctx.broadcast_except(Some(from), ArMsg::Query { spec, hq, sample });
                self.maybe_report(ctx, hq, from);
            }
            ArMsg::Report { value } => {
                if self.is_query_host {
                    if self.result.is_none() {
                        self.collected.push(value);
                    }
                } else if let Some(parent) = self.parent {
                    // Relay toward hq along the reverse broadcast path.
                    ctx.send(parent, ArMsg::Report { value });
                }
                // A relay host that never saw the query drops the report:
                // it has no route to hq.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ArMsg>, key: u64) {
        if key != TIMER_DECLARE || !self.is_query_host || self.result.is_some() {
            return;
        }
        let spec = self.query.expect("query host has a spec");
        let value = match self.sample {
            Some(p) => self.collected.len() as f64 / p,
            None => spec.aggregate.ground_truth(&self.collected).unwrap_or(0.0),
        };
        self.result = Some((value, ctx.now()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_sim::{ChurnPlan, SimBuilder, Simulation};
    use pov_topology::generators::special;
    use pov_topology::Graph;

    fn run(
        graph: Graph,
        values: &[u64],
        aggregate: Aggregate,
        d_hat: u32,
        routing: ReportRouting,
        churn: ChurnPlan,
    ) -> Simulation<'static, AllReportNode> {
        let spec = QuerySpec {
            aggregate,
            d_hat,
            c: 8,
        };
        let values = values.to_vec();
        let mut sim = SimBuilder::new(graph).churn(churn).seed(5).build(move |h| {
            if h == HostId(0) {
                AllReportNode::query_host(values[h.index()], spec, routing)
            } else {
                AllReportNode::host(values[h.index()], routing)
            }
        });
        sim.run_until(Time(spec.deadline() + 1));
        sim
    }

    #[test]
    fn exact_count_failure_free() {
        for routing in [ReportRouting::Direct, ReportRouting::ReverseTree] {
            let sim = run(
                special::cycle(12),
                &[1; 12],
                Aggregate::Count,
                6,
                routing,
                ChurnPlan::none(),
            );
            let (v, at) = sim.logic(HostId(0)).result().expect("declared");
            assert_eq!(v, 12.0, "{routing:?}");
            assert_eq!(at, Time(12));
        }
    }

    #[test]
    fn exact_sum_and_avg() {
        let values = [10u64, 20, 30, 40, 50];
        let sim = run(
            special::chain(5),
            &values,
            Aggregate::Sum,
            4,
            ReportRouting::Direct,
            ChurnPlan::none(),
        );
        assert_eq!(sim.logic(HostId(0)).result().unwrap().0, 150.0);
        let sim = run(
            special::chain(5),
            &values,
            Aggregate::Average,
            4,
            ReportRouting::Direct,
            ChurnPlan::none(),
        );
        assert_eq!(sim.logic(HostId(0)).result().unwrap().0, 30.0);
    }

    #[test]
    fn direct_mode_message_cost() {
        // Chain of n: flood costs n-1 messages; each non-hq host reports
        // directly (1 message each) = n-1. Total 2(n-1).
        let n = 8;
        let sim = run(
            special::chain(n),
            &vec![1; n],
            Aggregate::Count,
            (n - 1) as u32,
            ReportRouting::Direct,
            ChurnPlan::none(),
        );
        assert_eq!(sim.metrics().messages_sent as usize, 2 * (n - 1));
    }

    #[test]
    fn reverse_tree_cost_is_sum_of_depths() {
        // Chain of n: host at depth d pays d relay messages. Flood = n-1.
        let n = 6;
        let sim = run(
            special::chain(n),
            &vec![1; n],
            Aggregate::Count,
            (n - 1) as u32,
            ReportRouting::ReverseTree,
            ChurnPlan::none(),
        );
        let relay: usize = (1..n).sum();
        assert_eq!(sim.metrics().messages_sent as usize, (n - 1) + relay);
    }

    #[test]
    fn hq_hotspot_in_reverse_tree() {
        // §4.4: bandwidth around hq is the bottleneck — hq's neighbour on
        // a chain relays every downstream report.
        let n = 10;
        let sim = run(
            special::chain(n),
            &vec![1; n],
            Aggregate::Count,
            (n - 1) as u32,
            ReportRouting::ReverseTree,
            ChurnPlan::none(),
        );
        let processed = &sim.metrics().processed_per_host;
        // Host 1 handles the query + 8 relayed reports.
        assert!(processed[1] >= 8, "host1 processed {}", processed[1]);
    }

    #[test]
    fn failure_loses_unreachable_values_only() {
        // Chain 0-1-2-3-4; host 1 fails at t=0 ⇒ HC = {0}; count = 1.
        let churn = ChurnPlan::none().with_failure(Time(0), HostId(1));
        let sim = run(
            special::chain(5),
            &[1; 5],
            Aggregate::Count,
            4,
            ReportRouting::Direct,
            churn,
        );
        assert_eq!(sim.logic(HostId(0)).result().unwrap().0, 1.0);
    }

    #[test]
    fn randomized_report_estimates_count() {
        let n = 400;
        let spec = QuerySpec {
            aggregate: Aggregate::Count,
            d_hat: 4,
            c: 8,
        };
        let g = special::star(n);
        let mut sim = SimBuilder::new(g).seed(11).build(move |h| {
            if h == HostId(0) {
                AllReportNode::randomized_query_host(1, spec, 0.5, ReportRouting::Direct)
            } else {
                AllReportNode::host(1, ReportRouting::Direct)
            }
        });
        sim.run_until(Time(spec.deadline() + 1));
        let (v, _) = sim.logic(HostId(0)).result().expect("declared");
        assert!(
            (n as f64 * 0.8..n as f64 * 1.2).contains(&v),
            "estimate {v} for {n}"
        );
        // Message savings: roughly half the hosts stayed silent.
        let sent = sim.metrics().messages_sent;
        assert!(
            sent < (2 * n - 2) as u64,
            "sent {sent}, no savings over ALLREPORT"
        );
    }

    #[test]
    #[should_panic(expected = "count only")]
    fn randomized_report_rejects_sum() {
        let spec = QuerySpec {
            aggregate: Aggregate::Sum,
            d_hat: 4,
            c: 8,
        };
        AllReportNode::randomized_query_host(1, spec, 0.5, ReportRouting::Direct);
    }

    #[test]
    fn late_query_copy_not_reported_twice() {
        // On a cycle every host receives the query from two sides but
        // must report exactly once.
        let n = 10;
        let sim = run(
            special::cycle(n),
            &vec![1; n],
            Aggregate::Count,
            n as u32,
            ReportRouting::Direct,
            ChurnPlan::none(),
        );
        assert_eq!(sim.logic(HostId(0)).result().unwrap().0, n as f64);
    }
}
