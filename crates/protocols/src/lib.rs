//! Aggregation protocols for dynamic networks — the algorithms evaluated
//! in *"The Price of Validity in Dynamic Networks"* (Bawa et al.).
//!
//! | Protocol | Paper | Semantics under failures |
//! |----------|-------|--------------------------|
//! | [`allreport`]   | Fig 2, §4.1 | Single-Site Validity (naive, expensive) |
//! | [`allreport::AllReportNode::randomized_query_host`] | §4.3 | Approximate Single-Site Validity |
//! | [`spanning_tree`] | §4.4 | best-effort; arbitrarily bad (Thm 4.4) |
//! | [`dag`] | §4.4 | best-effort with `k`-parent redundancy |
//! | [`wildfire`] | §5 | Single-Site Validity (min/max exact; count/sum/avg within FM factor) |
//! | [`gossip`] | §2.2 | eventual consistency (push-sum baseline) |
//!
//! All protocols implement [`pov_sim::NodeLogic`] and are driven by the
//! shared runner in [`runner`], which wires a topology, per-host values,
//! a churn plan and a query into one deterministic simulation and
//! returns an [`Outcome`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allreport;
mod common;
pub mod dag;
pub mod gossip;
pub mod runner;
pub mod spanning_tree;
pub mod wildfire;

pub use common::{Aggregate, Operator, Partial, QuerySpec};
pub use runner::{Outcome, ProtocolKind, RunConfig};
