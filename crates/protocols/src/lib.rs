//! Aggregation protocols for dynamic networks — the algorithms evaluated
//! in *"The Price of Validity in Dynamic Networks"* (Bawa et al.).
//!
//! | Protocol | Paper | Semantics under failures |
//! |----------|-------|--------------------------|
//! | [`allreport`]   | Fig 2, §4.1 | Single-Site Validity (naive, expensive) |
//! | [`allreport::AllReportNode::randomized_query_host`] | §4.3 | Approximate Single-Site Validity |
//! | [`spanning_tree`] | §4.4 | best-effort; arbitrarily bad (Thm 4.4) |
//! | [`dag`] | §4.4 | best-effort with `k`-parent redundancy |
//! | [`wildfire`] | §5 | Single-Site Validity (min/max exact; count/sum/avg within FM factor) |
//! | [`gossip`] | §2.2 | eventual consistency (push-sum baseline) |
//! | [`mux`] | §4.4 × N | best-effort per query; many queries share one substrate |
//!
//! All protocols implement [`pov_sim::NodeLogic`] and are driven by the
//! shared runner in [`runner`], which wires a topology, per-host values,
//! a churn plan and a query into one deterministic simulation and
//! returns an [`Outcome`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allreport;
mod common;
pub mod dag;
pub mod gossip;
pub mod mux;
pub mod observer;
mod pool;
pub mod runner;
pub mod spanning_tree;
pub mod wildfire;

pub use common::{Aggregate, Operator, Partial, QuerySpec};
pub use mux::{run_mux, MuxOutcome, MuxPlan, MuxQuery, QueryId};
pub use observer::ProtocolObserver;
pub use pov_overlay::OverlayConfig;
pub use runner::{AdversarySpec, AdversaryTarget, ContinuousSpec, Outcome, ProtocolKind, RunPlan};

#[cfg(test)]
mod smoke {
    use super::*;
    use crate::wildfire::WildfireOpts;
    use pov_topology::generators::special;

    #[test]
    fn crate_root_smoke() {
        // A 10-host WILDFIRE max round over a cycle, no churn: the exact
        // maximum must come back (Theorem 5.1).
        let g = special::cycle(10);
        let values: Vec<u64> = (1..=10).collect();
        let plan = RunPlan::query(Aggregate::Max).d_hat(5).seed(42);
        let outcome = runner::run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &g,
            &values,
            &plan,
        );
        assert_eq!(outcome.value, Some(10.0));
        assert!(outcome.metrics.messages_sent > 0);
    }
}
