//! One-call drivers: topology + values + churn + query → [`Outcome`].
//!
//! Every experiment in §6 runs some protocol over some topology with
//! some churn plan and inspects the declared value and the §6.3 cost
//! metrics. This module is that loop, shared by the experiment drivers,
//! benches and examples.

use crate::allreport::{AllReportNode, ReportRouting};
use crate::common::{Aggregate, Operator, Partial, QuerySpec};
use crate::dag::DagNode;
use crate::gossip::GossipNode;
use crate::spanning_tree::SpanningTreeNode;
use crate::wildfire::{WildfireNode, WildfireOpts};
use pov_overlay::{OverlayConfig, OverlayMaintenance};
use pov_sim::{
    ChurnPlan, DelayModel, Medium, Metrics, NodeLogic, OverlayStats, PartitionPlan, SimBuilder,
    Simulation, SketchAdversary, TelemetrySink, Time, Trace,
};
use pov_topology::{Graph, HostId};

/// Which protocol to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProtocolKind {
    /// ALLREPORT (Fig 2) with the given report routing.
    AllReport(ReportRouting),
    /// RANDOMIZEDREPORT (§4.3) with report probability `p`.
    RandomizedReport {
        /// Per-host report probability.
        p: f64,
    },
    /// SPANNINGTREE (§4.4).
    SpanningTree,
    /// DIRECTEDACYCLICGRAPH with `k` parents (§4.4).
    Dag {
        /// Maximum parents per host.
        k: usize,
    },
    /// WILDFIRE (§5) with the §5.3 optimizations toggled by `opts`.
    Wildfire(WildfireOpts),
    /// Push-sum gossip for `rounds` rounds (§2.2 baseline).
    Gossip {
        /// Number of gossip rounds.
        rounds: u32,
    },
}

impl ProtocolKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::AllReport(_) => "ALLREPORT",
            ProtocolKind::RandomizedReport { .. } => "RANDOMIZEDREPORT",
            ProtocolKind::SpanningTree => "SPANNINGTREE",
            ProtocolKind::Dag { .. } => "DAG",
            ProtocolKind::Wildfire(_) => "WILDFIRE",
            ProtocolKind::Gossip { .. } => "GOSSIP",
        }
    }
}

/// What a dynamic adversary aims at. Today there is one target — the
/// hosts holding the current FM sketch maxima — but the enum keeps the
/// scenario grammar and `RunPlan` stable as further adaptive workloads
/// (e.g. cut-vertex or convergecast-frontier targeting) land.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AdversaryTarget {
    /// Kill the hosts whose current partials hold the highest FM bit
    /// ranks (see [`SketchAdversary`]).
    #[default]
    FmMaxima,
}

/// Declarative description of a protocol-state-aware adversary attached
/// to a [`RunPlan`] via [`RunPlan::adversary`]. Lowered per run into a
/// fresh [`SketchAdversary`] (full budget each run, sparing `plan.hq`),
/// so every protocol under a multi-protocol plan faces the same
/// attacker policy — though, being adaptive, the attacker's realized
/// kill schedule follows each protocol's own state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdversarySpec {
    /// What the adversary aims at.
    pub target: AdversaryTarget,
    /// Hosts killed per wave.
    pub kills_per_wave: usize,
    /// Total kill budget — pick it equal to a
    /// [`ChurnPlan::uniform_failures`] `r` to compare targeted against
    /// uniform churn at equal event cost.
    pub budget: usize,
    /// First wave instant.
    pub start: Time,
    /// Last instant the adversary may strike.
    pub until: Time,
}

impl AdversarySpec {
    /// An FM-maxima adversary with `budget` kills in waves of
    /// `kills_per_wave` across `[start, until]`.
    pub fn fm_maxima(kills_per_wave: usize, budget: usize, start: Time, until: Time) -> Self {
        AdversarySpec {
            target: AdversaryTarget::FmMaxima,
            kills_per_wave,
            budget,
            start,
            until,
        }
    }

    /// Lower the spec into a runnable churn source sparing `spare`
    /// (the querying host).
    pub fn build(&self, spare: HostId) -> SketchAdversary {
        match self.target {
            AdversaryTarget::FmMaxima => SketchAdversary::new(
                self.kills_per_wave,
                self.budget,
                self.start,
                self.until,
                spare,
            ),
        }
    }
}

/// Continuous-query execution: re-issue the one-shot every `window`
/// ticks and judge each report over its own recent window (§4.2's
/// Continuous Single-Site Validity). Carried by [`RunPlan`]; consumed by
/// the judged executor in the core crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContinuousSpec {
    /// Window length `W` in ticks. Must be at least the one-shot
    /// deadline `2·D̂·δ` so a window fits one full query round (§4.2's
    /// impossibility for `W < max Dᵢ·δ`).
    pub window: u64,
    /// How many consecutive windows to run.
    pub windows: usize,
}

/// One composable description of a whole run: the query, the network
/// conditions (medium, delay, stacked churn, partition), the seed, and
/// *what to execute over them* — a list of protocols and an optional
/// continuous-window spec. Every entry point (façade, scenario batch
/// runner, experiment drivers, benches) builds one of these, and every
/// executor consumes it, so "compare N protocols under churn + a
/// partition across continuous windows" is one value instead of four
/// hand-assembled loops.
///
/// Build with the fluent constructors:
///
/// ```
/// use pov_protocols::{Aggregate, ProtocolKind, RunPlan};
/// use pov_protocols::wildfire::WildfireOpts;
/// use pov_sim::{ChurnPlan, Time};
///
/// let plan = RunPlan::query(Aggregate::Count)
///     .d_hat(6)
///     .churn(ChurnPlan::uniform_failures(
///         100, 10, Time(0), Time(12), pov_topology::HostId(0), 7,
///     ))
///     .protocol(ProtocolKind::Wildfire(WildfireOpts::default()))
///     .protocol(ProtocolKind::SpanningTree)
///     .seed(7);
/// assert_eq!(plan.protocols.len(), 2);
/// assert_eq!(plan.deadline(), 12);
/// ```
///
/// The single-protocol primitives ([`run`], [`run_wildfire_operator`])
/// read only the *environment* half of the plan (query + conditions);
/// the `protocols` list and `continuous` spec drive the multi-run
/// executors layered on top ([`run_all`] here, `judged_plan` in the
/// core crate).
#[derive(Clone, Debug)]
pub struct RunPlan {
    /// The aggregate to compute.
    pub aggregate: Aggregate,
    /// Stable-diameter overestimate `D̂`.
    pub d_hat: u32,
    /// FM repetitions `c` for sketched aggregates.
    pub c: usize,
    /// Communication medium.
    pub medium: Medium,
    /// Per-hop delay model. `D̂` stays denominated in *hops*; the query
    /// deadline in ticks scales by the model's bound `δ` (the paper's
    /// `2·D̂·δ`), so protocols keep their guarantees under jittered or
    /// multi-tick delays.
    pub delay: DelayModel,
    /// Failure/join schedule (stack regimes with
    /// [`ChurnPlan::merge`]).
    pub churn: ChurnPlan,
    /// Optional temporary partition: messages crossing the cut while it
    /// is active are lost in transit (hosts stay alive).
    pub partition: Option<PartitionPlan>,
    /// Optional dynamic adversary polled during the run (stacks on top
    /// of the static `churn` plan; its kills reach the oracle through
    /// the membership trace like any other failure).
    pub adversary: Option<AdversarySpec>,
    /// Optional overlay maintenance: when set, each run layers a
    /// mutable overlay over the base graph and an
    /// [`OverlayMaintenance`] driver (partial views, shuffles,
    /// SWIM-style failure detection) rewires it while the query
    /// executes. Every protocol under the plan gets an identically
    /// configured driver, so overlay evolution is part of the paired
    /// environment like the churn realization.
    pub overlay: Option<OverlayConfig>,
    /// Root seed for the run. Protocols sharing one plan share this
    /// stream, so their runs see the *same* churn/delay realization —
    /// the paired-comparison setup the paper's §6 figures need.
    pub seed: u64,
    /// The querying host.
    pub hq: HostId,
    /// The protocols to execute under this plan (multi-run executors
    /// produce one outcome per entry; the single-run primitives take
    /// their protocol explicitly instead).
    pub protocols: Vec<ProtocolKind>,
    /// When set, the plan describes a §4.2 continuous query instead of
    /// a one-shot: re-issue every `window` ticks, `windows` times.
    pub continuous: Option<ContinuousSpec>,
    /// When set, each simulation runs with sharded message delivery
    /// across this many worker threads
    /// ([`Simulation::enable_sharded_delivery`]): output is
    /// byte-identical for any thread count. WILDFIRE is exempt (its
    /// `Rc`-shared partials are not `Send`) and always runs
    /// sequentially.
    pub shard_threads: Option<usize>,
}

impl RunPlan {
    /// Start describing a run: a failure-free point-to-point query with
    /// sensible defaults (`D̂ = 8`, `c = 8` per Fig 6, `hq = h0`, no
    /// protocols selected yet).
    pub fn query(aggregate: Aggregate) -> Self {
        RunPlan {
            aggregate,
            d_hat: 8,
            c: 8,
            medium: Medium::PointToPoint,
            delay: DelayModel::Fixed(1),
            churn: ChurnPlan::none(),
            partition: None,
            adversary: None,
            overlay: None,
            seed: 0,
            hq: HostId(0),
            protocols: Vec::new(),
            continuous: None,
            shard_threads: None,
        }
    }

    /// Run each simulation with sharded message delivery across
    /// `threads` workers (see the [`RunPlan::shard_threads`] field
    /// docs for the determinism contract and the WILDFIRE exemption).
    pub fn sharded_delivery(mut self, threads: usize) -> Self {
        self.shard_threads = Some(threads);
        self
    }

    /// Set the stable-diameter overestimate `D̂`.
    pub fn d_hat(mut self, d_hat: u32) -> Self {
        self.d_hat = d_hat;
        self
    }

    /// Set the FM repetitions `c` for sketched aggregates.
    pub fn repetitions(mut self, c: usize) -> Self {
        self.c = c;
        self
    }

    /// Choose the communication medium.
    pub fn medium(mut self, medium: Medium) -> Self {
        self.medium = medium;
        self
    }

    /// Choose the per-hop delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Set the failure/join schedule. Calling twice *stacks* the plans
    /// via [`ChurnPlan::merge`] rather than replacing the first one.
    pub fn churn(mut self, churn: ChurnPlan) -> Self {
        self.churn = self.churn.merge(churn);
        self
    }

    /// Layer a temporary partition over the run.
    pub fn partition(mut self, partition: PartitionPlan) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Attach a dynamic adversary (a protocol-state-aware churn source
    /// polled during the run). Stacks with any static churn plan; the
    /// querying host is always spared.
    pub fn adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Maintain a dynamic overlay during each run (see
    /// [`RunPlan::overlay`] field docs). The driver runs until the
    /// plan's full horizon — one-shot deadline or the last continuous
    /// window, whichever is later.
    pub fn overlay(mut self, overlay: OverlayConfig) -> Self {
        self.overlay = Some(overlay);
        self
    }

    /// Set the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Choose the querying host.
    pub fn from_host(mut self, hq: HostId) -> Self {
        self.hq = hq;
        self
    }

    /// Append one protocol to the execution list.
    pub fn protocol(mut self, kind: ProtocolKind) -> Self {
        self.protocols.push(kind);
        self
    }

    /// Replace the execution list with `kinds`.
    pub fn protocols(mut self, kinds: impl IntoIterator<Item = ProtocolKind>) -> Self {
        self.protocols = kinds.into_iter().collect();
        self
    }

    /// Make the plan continuous: re-issue the query every `window` ticks
    /// for `windows` consecutive windows, judging each report over its
    /// own window (§4.2).
    pub fn continuous(mut self, window: u64, windows: usize) -> Self {
        self.continuous = Some(ContinuousSpec { window, windows });
        self
    }

    /// The one-shot query deadline in ticks: `2·D̂·δ`.
    pub fn deadline(&self) -> u64 {
        2 * self.d_hat as u64 * self.delay.bound()
    }

    fn spec(&self) -> QuerySpec {
        QuerySpec {
            aggregate: self.aggregate,
            // Protocol timer arithmetic runs in ticks; one hop costs up
            // to `δ = delay.bound()` of them, so the tick-denominated
            // diameter overestimate is `D̂·δ`.
            d_hat: self.d_hat * self.delay.bound() as u32,
            c: self.c,
        }
    }

    /// The simulation this plan describes, over `graph`. The builder
    /// *borrows* the graph: every protocol of a multi-run plan (and
    /// every cell of a batch sweep) shares one CSR neighbour arena
    /// instead of cloning the adjacency per run.
    fn sim_builder<'g>(&self, graph: &'g Graph) -> SimBuilder<'g> {
        let mut b = SimBuilder::over(graph)
            .medium(self.medium)
            .delay(self.delay)
            .churn(self.churn.clone())
            .seed(self.seed);
        if let Some(adversary) = &self.adversary {
            b = b.dynamic_churn(adversary.build(self.hq));
        }
        if let Some(overlay) = self.overlay {
            b = b.overlay(OverlayMaintenance::new(overlay, self.horizon()));
        }
        match &self.partition {
            Some(p) => b.partition(p.clone()),
            None => b,
        }
    }

    /// The plan's full run horizon in ticks: the one-shot deadline, or
    /// the end of the last continuous window, whichever is later (the
    /// overlay driver maintains through this instant).
    fn horizon(&self) -> Time {
        let oneshot = self.deadline() + 2;
        let continuous = self
            .continuous
            .map_or(0, |c| c.window * c.windows as u64 + 2);
        Time(oneshot.max(continuous))
    }
}

/// What a run produced.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The declared value, if the querying host survived to declare one.
    pub value: Option<f64>,
    /// When the value was declared.
    pub declared_at: Option<Time>,
    /// §6.3 cost metrics.
    pub metrics: Metrics,
    /// Ground-truth membership trace (for the oracle).
    pub trace: Trace,
    /// Hosts alive when the run ended.
    pub alive_at_end: Vec<bool>,
    /// Overlay maintenance counters, when the plan maintained one
    /// ([`RunPlan::overlay`]).
    pub overlay: Option<OverlayStats>,
}

impl Outcome {
    /// Time cost in ticks: declaration time at `hq` (§6.3/§6.6.2 measure
    /// WILDFIRE's time cost as `2·D̂·δ`, i.e. the declaration instant).
    pub fn time_cost(&self) -> Option<u64> {
        self.declared_at.map(Time::ticks)
    }
}

/// Turn on sharded delivery when the plan asks for it. Callable only
/// for `Send` protocols — the WILDFIRE arm deliberately omits the call.
fn maybe_shard<L>(sim: &mut Simulation<'_, L>, plan: &RunPlan)
where
    L: NodeLogic + Send,
    L::Msg: Send,
{
    if let Some(threads) = plan.shard_threads {
        sim.enable_sharded_delivery(threads);
    }
}

fn finish<L: NodeLogic>(
    mut sim: Simulation<'_, L>,
    horizon: Time,
    read_result: impl Fn(&L) -> Option<(f64, Time)>,
    hq: HostId,
) -> Outcome {
    sim.run_until(horizon);
    let result = read_result(sim.logic(hq));
    let alive_at_end = (0..sim.graph().num_hosts() as u32)
        .map(|h| sim.is_alive(HostId(h)))
        .collect();
    Outcome {
        value: result.map(|(v, _)| v),
        declared_at: result.map(|(_, t)| t),
        metrics: sim.metrics().clone(),
        trace: sim.trace().clone(),
        alive_at_end,
        overlay: sim.overlay_stats(),
    }
}

/// Run `kind` over `graph` where host `h` holds `values[h]`, under the
/// *environment* half of `plan` (query, medium, delay, churn, partition,
/// seed, `hq`). This is the single-run primitive: `plan.protocols` and
/// `plan.continuous` are the multi-run executors' concern and are not
/// read here.
///
/// # Panics
/// Panics if `values.len() != graph.num_hosts()` or the querying host is
/// out of range.
pub fn run(kind: ProtocolKind, graph: &Graph, values: &[u64], plan: &RunPlan) -> Outcome {
    run_with(kind, graph, values, plan, None)
}

/// [`run`] with an optional [`TelemetrySink`] attached to the
/// simulation: the engine feeds the sink per-tick activity samples
/// while the run executes, without perturbing the outcome (see the
/// sink trait's determinism guarantees). `run(..)` is exactly
/// `run_with(.., None)`.
///
/// # Panics
/// Same conditions as [`run`].
pub fn run_with(
    kind: ProtocolKind,
    graph: &Graph,
    values: &[u64],
    plan: &RunPlan,
    sink: Option<&mut (dyn TelemetrySink + 'static)>,
) -> Outcome {
    let cfg = plan;
    assert_eq!(
        values.len(),
        graph.num_hosts(),
        "one attribute value per host"
    );
    assert!(cfg.hq.index() < graph.num_hosts(), "querying host exists");
    let spec = cfg.spec();
    let horizon = Time(spec.deadline() + 2);
    let hq = cfg.hq;
    // Factories borrow the caller's value slice: per-run clones of the
    // whole attribute table were pure allocation churn in batch sweeps.
    let vals = values;
    // Each match arm calls `builder()` exactly once; `take` moves the
    // sink borrow into whichever simulation actually gets built.
    let mut sink = sink;
    let mut builder = move || {
        let b = cfg.sim_builder(graph);
        match sink.take() {
            Some(s) => b.telemetry(s),
            None => b,
        }
    };
    match kind {
        ProtocolKind::AllReport(routing) => {
            let mut sim = builder().build(move |h| {
                if h == hq {
                    AllReportNode::query_host(vals[h.index()], spec, routing)
                } else {
                    AllReportNode::host(vals[h.index()], routing)
                }
            });
            maybe_shard(&mut sim, cfg);
            finish(sim, horizon, AllReportNode::result, hq)
        }
        ProtocolKind::RandomizedReport { p } => {
            let routing = ReportRouting::Direct;
            let mut sim = builder().build(move |h| {
                if h == hq {
                    AllReportNode::randomized_query_host(vals[h.index()], spec, p, routing)
                } else {
                    AllReportNode::host(vals[h.index()], routing)
                }
            });
            maybe_shard(&mut sim, cfg);
            finish(sim, horizon, AllReportNode::result, hq)
        }
        ProtocolKind::SpanningTree => {
            let mut sim = builder().build(move |h| {
                if h == hq {
                    SpanningTreeNode::query_host(vals[h.index()], spec)
                } else {
                    SpanningTreeNode::host(vals[h.index()])
                }
            });
            maybe_shard(&mut sim, cfg);
            finish(sim, horizon, SpanningTreeNode::result, hq)
        }
        ProtocolKind::Dag { k } => {
            let mut sim = builder().build(move |h| {
                if h == hq {
                    DagNode::query_host(vals[h.index()], k, spec)
                } else {
                    DagNode::host(vals[h.index()], k)
                }
            });
            maybe_shard(&mut sim, cfg);
            finish(sim, horizon, DagNode::result, hq)
        }
        ProtocolKind::Wildfire(opts) => {
            let sim = builder().build(move |h| {
                if h == hq {
                    WildfireNode::query_host(vals[h.index()], spec, opts)
                } else {
                    WildfireNode::host(vals[h.index()], opts)
                }
            });
            finish(sim, horizon, WildfireNode::result, hq)
        }
        ProtocolKind::Gossip { rounds } => {
            let aggregate = cfg.aggregate;
            let mut sim = builder()
                .build(move |h| GossipNode::new(vals[h.index()], aggregate, rounds, h == hq));
            let horizon = Time(rounds as u64 * cfg.delay.bound() + 2);
            maybe_shard(&mut sim, cfg);
            finish(sim, horizon, GossipNode::result, hq)
        }
    }
}

/// Run every protocol in `plan.protocols` over the same graph, values
/// and — crucially — the same churn/partition/seed realization, and
/// return one [`Outcome`] per protocol in list order. Because the churn
/// plan is materialized once in the plan and every simulation starts
/// from the same root seed, the outcomes form a *paired* comparison:
/// protocol differences are not confounded by different failure draws.
///
/// # Panics
/// Panics if `plan.protocols` is empty (a plan that executes nothing is
/// a bug at the call site), plus everything [`run`] panics on.
pub fn run_all(graph: &Graph, values: &[u64], plan: &RunPlan) -> Vec<(ProtocolKind, Outcome)> {
    assert!(
        !plan.protocols.is_empty(),
        "RunPlan has no protocols to execute; add one with .protocol(..)"
    );
    plan.protocols
        .iter()
        .map(|&kind| (kind, run(kind, graph, values, plan)))
        .collect()
}

/// What a WILDFIRE run with an extension operator (§7) produced: the
/// scalar estimate plus the full merged partial (e.g. a histogram the
/// caller can query for buckets and quantiles).
#[derive(Clone, Debug)]
pub struct OperatorOutcome {
    /// The scalar reading of the merged partial (count estimate /
    /// histogram total).
    pub value: Option<f64>,
    /// The querying host's merged partial at declaration time.
    pub partial: Option<Partial>,
    /// When the result was declared.
    pub declared_at: Option<Time>,
    /// §6.3 cost metrics.
    pub metrics: Metrics,
    /// Ground-truth membership trace.
    pub trace: Trace,
}

/// Run WILDFIRE with an extension [`Operator`] and return the merged
/// partial alongside the scalar estimate.
pub fn run_wildfire_operator(
    operator: Operator,
    opts: WildfireOpts,
    graph: &Graph,
    values: &[u64],
    plan: &RunPlan,
) -> OperatorOutcome {
    let cfg = plan;
    assert_eq!(
        values.len(),
        graph.num_hosts(),
        "one attribute value per host"
    );
    let spec = cfg.spec();
    let hq = cfg.hq;
    let vals = values;
    let mut sim = cfg.sim_builder(graph).build(move |h| {
        if h == hq {
            WildfireNode::query_host_with_operator(vals[h.index()], spec, opts, operator)
        } else {
            WildfireNode::host_with_operator(vals[h.index()], opts, operator)
        }
    });
    sim.run_until(Time(spec.deadline() + 2));
    let logic = sim.logic(hq);
    let result = logic.result();
    OperatorOutcome {
        value: result.map(|(v, _)| v),
        partial: logic.partial().cloned(),
        declared_at: result.map(|(_, t)| t),
        metrics: sim.metrics().clone(),
        trace: sim.trace().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_topology::generators::special;

    #[test]
    fn all_protocols_agree_on_max_failure_free() {
        let g = special::cycle(12);
        let values: Vec<u64> = (0..12).map(|i| 10 + i * 7).collect();
        let plan = RunPlan::query(Aggregate::Max).d_hat(6).protocols([
            ProtocolKind::AllReport(ReportRouting::Direct),
            ProtocolKind::SpanningTree,
            ProtocolKind::Dag { k: 2 },
            ProtocolKind::Wildfire(WildfireOpts::default()),
        ]);
        for (kind, out) in run_all(&g, &values, &plan) {
            assert_eq!(out.value, Some(87.0), "{}", kind.name());
        }
    }

    #[test]
    fn exact_protocols_agree_on_count() {
        let g = special::cycle(10);
        let values = vec![1u64; 10];
        let cfg = RunPlan::query(Aggregate::Count).d_hat(5);
        for kind in [
            ProtocolKind::AllReport(ReportRouting::Direct),
            ProtocolKind::SpanningTree,
        ] {
            let out = run(kind, &g, &values, &cfg);
            assert_eq!(out.value, Some(10.0), "{}", kind.name());
        }
    }

    #[test]
    fn overlay_plan_declares_and_reports_stats() {
        let g = special::cycle(12);
        let values: Vec<u64> = (0..12).map(|i| 10 + i * 7).collect();
        let plan = RunPlan::query(Aggregate::Max)
            .d_hat(6)
            .overlay(OverlayConfig {
                probe_every: 2,
                shuffle_every: 4,
                ..OverlayConfig::default()
            })
            .protocols([ProtocolKind::Wildfire(WildfireOpts::default())]);
        let out = &run_all(&g, &values, &plan)[0].1;
        assert_eq!(out.value, Some(87.0));
        let stats = out
            .overlay
            .expect("overlay stats present when plan has overlay");
        assert!(stats.probes > 0, "driver probed during the run");
        // A plan without an overlay reports none.
        let bare = run(
            ProtocolKind::SpanningTree,
            &g,
            &values,
            &RunPlan::query(Aggregate::Max).d_hat(6),
        );
        assert!(bare.overlay.is_none());
    }

    #[test]
    fn overlay_evolution_is_paired_across_protocols() {
        // Two protocols under one overlay-maintaining plan see the same
        // driver configuration and (absent an adaptive adversary) the
        // same deterministic overlay evolution.
        let g = special::cycle(16);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(8)
            .churn(ChurnPlan::uniform_failures(
                16,
                2,
                Time(0),
                Time(16),
                HostId(0),
                7,
            ))
            .overlay(OverlayConfig::default())
            .protocols([
                ProtocolKind::Wildfire(WildfireOpts::default()),
                ProtocolKind::SpanningTree,
            ]);
        let outs = run_all(&g, &[1; 16], &plan);
        assert_eq!(outs[0].1.trace.events, outs[1].1.trace.events);
        assert_eq!(outs[0].1.overlay, outs[1].1.overlay);
    }

    #[test]
    fn run_all_pairs_protocols_on_one_realization() {
        // Two protocols under one plan: same churn plan, same seed.
        let g = special::cycle(16);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(9)
            .churn(ChurnPlan::uniform_failures(
                16,
                3,
                Time(0),
                Time(18),
                HostId(0),
                11,
            ))
            .protocols([
                ProtocolKind::Wildfire(WildfireOpts::default()),
                ProtocolKind::SpanningTree,
            ]);
        let outs = run_all(&g, &[1; 16], &plan);
        assert_eq!(outs.len(), 2);
        // Both runs observed the identical membership trace — the
        // defining property of a paired comparison.
        assert_eq!(outs[0].1.trace.events, outs[1].1.trace.events);
    }

    #[test]
    #[should_panic(expected = "no protocols to execute")]
    fn run_all_rejects_empty_protocol_list() {
        let g = special::chain(3);
        run_all(&g, &[1; 3], &RunPlan::query(Aggregate::Count).d_hat(2));
    }

    #[test]
    fn outcome_carries_metrics_and_trace() {
        let g = special::chain(5);
        let cfg = RunPlan::query(Aggregate::Count)
            .d_hat(4)
            .churn(ChurnPlan::none().with_failure(Time(1), HostId(3)));
        let out = run(ProtocolKind::SpanningTree, &g, &[1; 5], &cfg);
        assert!(out.metrics.messages_sent > 0);
        assert_eq!(out.trace.events.len(), 1);
        assert_eq!(out.alive_at_end.iter().filter(|&&a| a).count(), 4);
        assert!(out.time_cost().is_some());
    }

    #[test]
    fn kmv_count_through_operator_runner() {
        let g = special::cycle(64);
        let cfg = RunPlan::query(Aggregate::Count).d_hat(34);
        let out = run_wildfire_operator(
            Operator::KmvCount { k: 32 },
            WildfireOpts::default(),
            &g,
            &vec![1; 64],
            &cfg,
        );
        let v = out.value.expect("declared");
        // KMV with k = 32 on 64 hosts: exact-ish (k/2 < n < exact regime
        // boundary); allow sketch noise.
        assert!((40.0..110.0).contains(&v), "KMV count {v}");
        assert!(matches!(out.partial, Some(Partial::KmvCount(_))));
    }

    #[test]
    fn histogram_through_operator_runner() {
        // 100 hosts: half hold value 10, half hold 90.
        let g = special::cycle(100);
        let values: Vec<u64> = (0..100).map(|i| if i % 2 == 0 { 10 } else { 90 }).collect();
        let cfg = RunPlan::query(Aggregate::Count).d_hat(52).repetitions(16);
        let out = run_wildfire_operator(
            Operator::ValueHistogram {
                min: 0,
                max: 99,
                buckets: 10,
            },
            WildfireOpts::default(),
            &g,
            &values,
            &cfg,
        );
        let partial = out.partial.expect("present");
        let hist = partial.as_histogram().expect("histogram partial");
        let est = hist.bucket_estimates();
        // Mass concentrates in buckets 1 (values 10..19) and 9 (90..99).
        let hot: f64 = est[1] + est[9];
        let cold: f64 = est.iter().sum::<f64>() - hot;
        assert!(
            hot > 3.0 * cold.max(1.0),
            "hot buckets {hot} vs cold {cold} ({est:?})"
        );
        // The histogram-average sits between the two modes.
        let avg = hist.average().expect("non-empty");
        assert!((25.0..80.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn delay_bound_scales_declaration_and_stays_correct() {
        // With a 2-tick hop bound, WILDFIRE's deadline stretches to
        // 2·D̂·δ ticks and the exact max still comes back right.
        let g = special::cycle(12);
        let values: Vec<u64> = (0..12).map(|i| 10 + i * 7).collect();
        let base = RunPlan::query(Aggregate::Max).d_hat(6);
        let slow = base.clone().delay(DelayModel::Fixed(2));
        let fast = runner_declares(&g, &values, &base);
        let lagged = runner_declares(&g, &values, &slow);
        assert_eq!(fast.0, Some(87.0));
        assert_eq!(lagged.0, Some(87.0));
        assert_eq!(lagged.1, fast.1 * 2, "deadline scales by the bound");

        // Jittered delays within the bound keep max exact too.
        let jitter = base.delay(DelayModel::Uniform { min: 1, max: 2 });
        assert_eq!(runner_declares(&g, &values, &jitter).0, Some(87.0));
    }

    fn runner_declares(g: &Graph, values: &[u64], cfg: &RunPlan) -> (Option<f64>, u64) {
        let out = run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            g,
            values,
            cfg,
        );
        (out.value, out.time_cost().expect("declared"))
    }

    #[test]
    fn plan_builder_composes() {
        let a = ChurnPlan::none().with_failure(Time(3), HostId(2));
        let b = ChurnPlan::none().with_join(Time(5), HostId(7));
        let plan = RunPlan::query(Aggregate::Sum)
            .d_hat(4)
            .repetitions(16)
            .medium(Medium::Radio)
            .delay(DelayModel::Uniform { min: 1, max: 3 })
            .churn(a)
            .churn(b) // stacks, not replaces
            .partition(PartitionPlan::new(vec![0; 4]).window(Time(1), Time(2)))
            .seed(99)
            .from_host(HostId(1))
            .protocol(ProtocolKind::SpanningTree)
            .continuous(24, 3);
        assert_eq!(plan.churn.failures, vec![(Time(3), HostId(2))]);
        assert_eq!(plan.churn.joins, vec![(Time(5), HostId(7))]);
        assert_eq!(plan.deadline(), 2 * 4 * 3);
        assert_eq!(
            plan.continuous,
            Some(ContinuousSpec {
                window: 24,
                windows: 3
            })
        );
        assert!(plan.partition.is_some());
        assert_eq!(plan.hq, HostId(1));
        assert_eq!(plan.protocols, vec![ProtocolKind::SpanningTree]);
    }

    #[test]
    fn adversary_spends_exactly_its_budget_and_spares_hq() {
        let g = special::cycle(20);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(11)
            .adversary(AdversarySpec::fm_maxima(3, 7, Time(1), Time(15)));
        let out = run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &g,
            &[1; 20],
            &plan,
        );
        // Exactly `budget` kills land in the trace — the comparability
        // contract with uniform_failures at r = 7.
        assert_eq!(out.trace.events.len(), 7);
        assert_eq!(out.alive_at_end.iter().filter(|&&a| !a).count(), 7);
        assert!(out.alive_at_end[0], "hq is spared");
        assert!(out.value.is_some(), "hq declares");
    }

    #[test]
    fn adversary_is_deterministic_per_plan() {
        let g = special::cycle(24);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(13)
            .seed(9)
            .adversary(AdversarySpec::fm_maxima(2, 6, Time(0), Time(20)));
        let a = run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &g,
            &[1; 24],
            &plan,
        );
        let b = run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &g,
            &[1; 24],
            &plan,
        );
        assert_eq!(a.trace.events, b.trace.events);
        assert_eq!(a.value, b.value);
        assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
    }

    #[test]
    fn run_with_sink_matches_plain_run() {
        use pov_sim::TickSample;

        #[derive(Default)]
        struct Counting {
            ticks: u64,
            dispatched: u64,
        }
        impl TelemetrySink for Counting {
            fn on_tick(&mut self, s: &TickSample) {
                self.ticks += 1;
                self.dispatched += s.dispatched;
            }
        }

        let g = special::cycle(16);
        let plan =
            RunPlan::query(Aggregate::Count)
                .d_hat(9)
                .seed(5)
                .churn(ChurnPlan::uniform_failures(
                    16,
                    3,
                    Time(0),
                    Time(18),
                    HostId(0),
                    11,
                ));
        let kind = ProtocolKind::Wildfire(WildfireOpts::default());
        let plain = run(kind, &g, &[1; 16], &plan);
        let mut sink = Counting::default();
        let tapped = run_with(kind, &g, &[1; 16], &plan, Some(&mut sink));
        // Observing must not perturb: identical outcome either way.
        assert_eq!(tapped.value, plain.value);
        assert_eq!(tapped.declared_at, plain.declared_at);
        assert_eq!(tapped.trace.events, plain.trace.events);
        assert_eq!(tapped.metrics.messages_sent, plain.metrics.messages_sent);
        // And the sink saw the whole run.
        assert!(sink.ticks > 0);
        assert_eq!(sink.dispatched, tapped.metrics.events_dispatched);
    }

    #[test]
    fn gossip_runs_through_runner() {
        let g = special::complete(16);
        let cfg = RunPlan::query(Aggregate::Average).d_hat(2);
        let out = run(ProtocolKind::Gossip { rounds: 60 }, &g, &[10; 16], &cfg);
        let v = out.value.expect("declared");
        assert!((v - 10.0).abs() < 1.0, "avg {v}");
    }

    #[test]
    #[should_panic(expected = "one attribute value per host")]
    fn value_count_mismatch_rejected() {
        let g = special::chain(3);
        let cfg = RunPlan::query(Aggregate::Count).d_hat(2);
        run(ProtocolKind::SpanningTree, &g, &[1, 2], &cfg);
    }
}
