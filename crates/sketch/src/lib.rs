//! Flajolet–Martin (FM) duplicate-insensitive count and sum sketches
//! (§5.2 of *"The Price of Validity in Dynamic Networks"*).
//!
//! WILDFIRE's convergecast re-delivers partial aggregates along many
//! paths, so its combine operator must be *duplicate-insensitive*
//! (idempotent, commutative, associative). `min`/`max` already are;
//! `count`/`sum` are not. The paper adapts the probabilistic counting
//! scheme of Flajolet & Martin \[13\]:
//!
//! * each host pretends to hold a distinct element and sets one
//!   geometrically-distributed bit in each of `c` bit-vectors
//!   ([`FmSketch::insert_one`]);
//! * for `sum`, a host with value `m` pretends to hold `m` distinct
//!   elements ([`FmSketch::insert_elements`]);
//! * vectors are combined by bitwise OR ([`FmSketch::merge`]) — a
//!   join-semilattice, so any delivery order/multiplicity yields the same
//!   result;
//! * the querying host reads off `ẑ` = the average index of the lowest
//!   unset bit and reports `2^ẑ / 0.78` ([`FmSketch::estimate`]).
//!
//! Lemma 5.1 (Alon–Matias–Szegedy): for every `c > 2` the estimate `m̂`
//! of the true `m` satisfies `Pr(1/c ≤ m̂/m ≤ c) ≥ 1 − 2/c`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fm;
pub mod histogram;
mod kmv;
pub mod stats;

pub use fm::{FmSketch, PHI, REGISTER_BITS};
pub use histogram::{Buckets, HistogramSketch};
pub use kmv::KmvSketch;

#[cfg(test)]
mod smoke {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn crate_root_smoke() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut a = FmSketch::new(8);
        a.insert_elements(100, &mut rng);
        let mut b = FmSketch::new(8);
        b.insert_elements(50, &mut rng);
        let merged = a.clone().merged(&b);
        assert!(merged.estimate() >= a.estimate());
        assert!(!merged.is_empty());
    }
}
