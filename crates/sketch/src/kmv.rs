//! K-minimum-values (KMV) distinct-count sketch — a §7 "future work"
//! operator.
//!
//! The paper closes by asking for more duplicate-insensitive operators
//! beyond FM. KMV (Bar-Yossef et al.) is the natural second member of
//! the family: keep the `k` smallest hashed values seen; merging two
//! sketches is "union then keep the k smallest", which is idempotent,
//! commutative and associative — exactly the lattice WILDFIRE needs —
//! and the estimate `(k − 1) / v_k` (with `v_k` the k-th smallest value
//! mapped to `(0,1)`) has relative error `≈ 1/√(k−2)`. Per stored word
//! it is comparable to FM averaging, but it is *exact* below `k`
//! elements and its error is tunable smoothly, where FM's `2^ẑ`
//! quantization needs many registers to wash out.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A KMV sketch: the `k` smallest draws from a uniform 64-bit hash space.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KmvSketch {
    k: usize,
    /// Sorted ascending; at most `k` entries, all distinct.
    mins: Vec<u64>,
}

impl KmvSketch {
    /// An empty sketch keeping the `k` smallest values.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "KMV needs k >= 2 (the estimate divides by v_k)");
        KmvSketch {
            k,
            mins: Vec::new(),
        }
    }

    /// The `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether no element was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.mins.len() * 8 + 8
    }

    /// Insert one distinct element (each host pretends to hold distinct
    /// elements, as in §5.2: the "hash" of a fresh element is a fresh
    /// uniform draw).
    pub fn insert_one(&mut self, rng: &mut SmallRng) {
        let v: u64 = rng.gen();
        self.offer(v);
    }

    /// Insert `m` distinct elements.
    pub fn insert_elements(&mut self, m: u64, rng: &mut SmallRng) {
        for _ in 0..m {
            self.insert_one(rng);
        }
    }

    fn offer(&mut self, v: u64) {
        match self.mins.binary_search(&v) {
            Ok(_) => {} // duplicate hash — ignore
            Err(pos) => {
                if pos < self.k {
                    self.mins.insert(pos, v);
                    self.mins.truncate(self.k);
                }
            }
        }
    }

    /// Duplicate-insensitive combine: union, keep the `k` smallest.
    pub fn merge(&mut self, other: &KmvSketch) {
        assert_eq!(
            self.k, other.k,
            "cannot merge KMV sketches with different k"
        );
        for &v in &other.mins {
            self.offer(v);
        }
    }

    /// Merge and report whether `self` changed (WILDFIRE's resend test).
    /// `mins` holds at most `k` words, so the snapshot is cheap.
    pub fn merge_check(&mut self, other: &KmvSketch) -> bool {
        let before = self.mins.clone();
        self.merge(other);
        self.mins != before
    }

    /// The distinct-count estimate `(k − 1) / v_k`, or the exact count
    /// when fewer than `k` elements were seen.
    pub fn estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            return self.mins.len() as f64;
        }
        let v_k = *self.mins.last().expect("k >= 2 entries") as f64;
        let unit = v_k / (u64::MAX as f64); // map to (0, 1)
        if unit <= 0.0 {
            return self.mins.len() as f64;
        }
        (self.k as f64 - 1.0) / unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn small_counts_are_exact() {
        let mut r = rng(1);
        let mut s = KmvSketch::new(64);
        s.insert_elements(40, &mut r);
        assert_eq!(s.estimate(), 40.0);
    }

    #[test]
    fn large_counts_estimate_within_expected_error() {
        let mut r = rng(2);
        let k = 256;
        let n = 50_000u64;
        let mut s = KmvSketch::new(k);
        s.insert_elements(n, &mut r);
        let est = s.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        // 1/sqrt(256) ≈ 6.25%; allow 4 sigma.
        assert!(rel < 0.25, "relative error {rel} (estimate {est})");
    }

    #[test]
    fn kmv_more_accurate_than_papers_fm_config() {
        // The §7 motivation: trading message size for accuracy. KMV with
        // k = 64 (512 B) is far more accurate than the paper's FM
        // configuration c = 8 (64 B), measured as mean |ratio − 1|.
        let n = 20_000u64;
        let trials = 15;
        let mut kmv_err = 0.0;
        let mut fm_err = 0.0;
        for seed in 0..trials {
            let mut r = rng(seed);
            let mut kmv = KmvSketch::new(64);
            kmv.insert_elements(n, &mut r);
            kmv_err += (kmv.estimate() / n as f64 - 1.0).abs();

            let mut r = rng(seed + 1_000);
            let mut fm = crate::FmSketch::new(8);
            fm.insert_elements_fast(n, &mut r);
            fm_err += (fm.estimate() / n as f64 - 1.0).abs();
        }
        assert!(
            kmv_err < fm_err / 1.5,
            "KMV mean error {:.3} should clearly beat FM-c8 {:.3}",
            kmv_err / trials as f64,
            fm_err / trials as f64
        );
    }

    #[test]
    fn merge_is_union_semantics() {
        let mut r = rng(3);
        let mut a = KmvSketch::new(32);
        let mut b = KmvSketch::new(32);
        a.insert_elements(500, &mut r);
        b.insert_elements(500, &mut r);
        let mut ab = a.clone();
        ab.merge(&b);
        // Idempotent / commutative / associative.
        let mut ab2 = ab.clone();
        ab2.merge(&b);
        ab2.merge(&a);
        assert_eq!(ab, ab2);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Union estimates ~1000.
        let est = ab.estimate();
        assert!((600.0..1_500.0).contains(&est), "union estimate {est}");
    }

    #[test]
    fn merge_check_detects_change_and_stability() {
        let mut r = rng(4);
        let mut a = KmvSketch::new(16);
        let mut b = KmvSketch::new(16);
        a.insert_elements(100, &mut r);
        b.insert_elements(100, &mut r);
        let mut acc = a.clone();
        acc.merge_check(&b);
        assert!(!acc.merge_check(&b), "re-merge must report no change");
        assert!(!acc.merge_check(&a), "re-merge must report no change");
    }

    #[test]
    fn empty_sketch() {
        let s = KmvSketch::new(8);
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_tiny_k() {
        KmvSketch::new(1);
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn rejects_mismatched_merge() {
        let mut a = KmvSketch::new(8);
        let b = KmvSketch::new(16);
        a.merge(&b);
    }
}
