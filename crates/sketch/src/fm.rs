//! The FM sketch proper.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bits per register (bit-vector). 64 bits bound the countable domain by
/// `2^64`; the paper notes 32 suffices unless `|H| > 2^32` (§5.2) — we
/// use a whole machine word since the message-size difference is noise.
pub const REGISTER_BITS: u32 = 64;

/// The Flajolet–Martin correction constant. The paper rounds it to 0.78;
/// the exact value is `φ ≈ 0.775351` (Flajolet & Martin \[13\]). We keep
/// the paper's 0.78 so reproduced numbers match the text.
pub const PHI: f64 = 0.78;

/// A duplicate-insensitive cardinality sketch: `c` bit-vector registers
/// combined by bitwise OR.
///
/// `c` (the number of *repetitions*) trades message size for accuracy —
/// Fig 6 of the paper shows the estimate converging by `c ≈ 8`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FmSketch {
    registers: Vec<u64>,
}

impl FmSketch {
    /// An empty sketch with `c` registers.
    pub fn new(c: usize) -> Self {
        assert!(c >= 1, "need at least one register");
        FmSketch {
            registers: vec![0; c],
        }
    }

    /// Number of registers (the paper's `c`).
    pub fn repetitions(&self) -> usize {
        self.registers.len()
    }

    /// Whether no element has ever been inserted (all registers zero).
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Size of the sketch on the wire, in bytes (§6.4 notes convergecast
    /// messages carry the `c` registers).
    pub fn wire_bytes(&self) -> usize {
        self.registers.len() * (REGISTER_BITS as usize / 8)
    }

    /// Insert one distinct element: in every register, set bit `b` where
    /// `b` is the number of Tails before the first Head in a fair coin
    /// sequence (§5.2) — i.e. geometric with `P(b) = 2^{-(b+1)}`.
    pub fn insert_one(&mut self, rng: &mut SmallRng) {
        for reg in &mut self.registers {
            *reg |= 1u64 << geometric_bit(rng);
        }
    }

    /// Insert `m` distinct elements one at a time — the literal §5.2 sum
    /// procedure (*"each host pretends to have `h` elements distinct from
    /// other hosts and runs the count procedure `h` times"*), with the
    /// local pre-OR of Theorem 5.2 (one set of vectors leaves the host).
    pub fn insert_elements(&mut self, m: u64, rng: &mut SmallRng) {
        for _ in 0..m {
            self.insert_one(rng);
        }
    }

    /// Insert `m` distinct elements in `O(c · log m)` instead of
    /// `O(c · m)` — the ablation-A3 fast path.
    ///
    /// For one register, the `m` elements throw geometric darts; bit `b`
    /// receives `Binomial(remaining, 1/2)` of the darts that got past bit
    /// `b−1`. Sampling those binomials level by level reproduces the
    /// exact joint distribution of the OR'd register.
    pub fn insert_elements_fast(&mut self, m: u64, rng: &mut SmallRng) {
        for reg in &mut self.registers {
            let mut remaining = m;
            let mut bit = 0u32;
            while remaining > 0 && bit < REGISTER_BITS - 1 {
                let here = binomial_half(remaining, rng);
                if here > 0 {
                    *reg |= 1u64 << bit;
                }
                remaining -= here;
                bit += 1;
            }
            if remaining > 0 {
                // Darts beyond the register width pile into the last bit.
                *reg |= 1u64 << (REGISTER_BITS - 1);
            }
        }
    }

    /// Bitwise-OR merge — the duplicate-insensitive combine operator.
    /// Panics if the register counts differ (mixing sketches from
    /// different queries is a protocol bug).
    pub fn merge(&mut self, other: &FmSketch) {
        assert_eq!(
            self.registers.len(),
            other.registers.len(),
            "cannot merge sketches with different repetition counts"
        );
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a |= b;
        }
    }

    /// Non-destructive merge.
    pub fn merged(mut self, other: &FmSketch) -> FmSketch {
        self.merge(other);
        self
    }

    /// Merge and report whether `self` gained any bits. WILDFIRE resends
    /// its partial aggregate only when it changed (Fig 4), so this runs
    /// on every message receipt — hence no clone-and-compare.
    pub fn merge_check(&mut self, other: &FmSketch) -> bool {
        assert_eq!(
            self.registers.len(),
            other.registers.len(),
            "cannot merge sketches with different repetition counts"
        );
        let mut changed = false;
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            let merged = *a | b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// Per-register `z_i`: index of the lowest-order bit still 0.
    fn lowest_zero_bits(&self) -> impl Iterator<Item = u32> + '_ {
        self.registers.iter().map(|r| (!r).trailing_zeros())
    }

    /// The FM estimate `2^ẑ / 0.78` with `ẑ` the mean of the per-register
    /// lowest-zero indexes. An all-empty sketch estimates 0.
    pub fn estimate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let c = self.registers.len() as f64;
        let z_sum: u32 = self.lowest_zero_bits().sum();
        let z_mean = z_sum as f64 / c;
        z_mean.exp2() / PHI
    }
}

/// Geometric bit index: number of Tails before the first Head.
/// `P(b) = 2^{-(b+1)}`, capped at the register width.
fn geometric_bit(rng: &mut SmallRng) -> u32 {
    // trailing_zeros of a uniform word is exactly the Tails-before-Head
    // count; a zero word (P = 2^-64) means "all tails", capped below.
    let word: u64 = rng.gen();
    word.trailing_zeros().min(REGISTER_BITS - 1)
}

/// Sample `Binomial(n, 1/2)` exactly by popcounting random words.
fn binomial_half(n: u64, rng: &mut SmallRng) -> u64 {
    let mut remaining = n;
    let mut total = 0u64;
    while remaining >= 64 {
        total += u64::from(rng.gen::<u64>().count_ones());
        remaining -= 64;
    }
    if remaining > 0 {
        let mask = (1u64 << remaining) - 1;
        total += u64::from((rng.gen::<u64>() & mask).count_ones());
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = FmSketch::new(8);
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn single_element_is_order_one() {
        let mut r = rng(1);
        let mut s = FmSketch::new(16);
        s.insert_one(&mut r);
        assert!(!s.is_empty());
        let est = s.estimate();
        assert!((0.5..8.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn estimate_tracks_cardinality() {
        // With c = 32 the estimate should land within a factor ~2 of the
        // true count for the sizes in Fig 6.
        let mut r = rng(42);
        for &n in &[1_024u64, 4_096, 16_384] {
            let mut s = FmSketch::new(32);
            for _ in 0..n {
                s.insert_one(&mut r);
            }
            let est = s.estimate();
            let ratio = est / n as f64;
            assert!((0.4..2.5).contains(&ratio), "n={n} est={est} ratio={ratio}");
        }
    }

    #[test]
    fn lemma_5_1_envelope() {
        // Pr(1/c <= m_hat/m <= c) >= 1 - 2/c; check empirically for c=8
        // over 50 trials: at most ~25% violations allowed, expect far fewer.
        let c = 8usize;
        let n = 2_000u64;
        let mut violations = 0;
        for seed in 0..50 {
            let mut r = rng(seed);
            let mut s = FmSketch::new(c);
            for _ in 0..n {
                s.insert_one(&mut r);
            }
            let ratio = s.estimate() / n as f64;
            if !((1.0 / c as f64)..=(c as f64)).contains(&ratio) {
                violations += 1;
            }
        }
        assert!(violations <= 12, "{violations}/50 outside Lemma 5.1 bound");
    }

    #[test]
    fn merge_is_or() {
        let mut r = rng(3);
        let mut a = FmSketch::new(4);
        let mut b = FmSketch::new(4);
        a.insert_elements(100, &mut r);
        b.insert_elements(100, &mut r);
        let m = a.clone().merged(&b);
        // OR of registers: every bit of a and b present.
        for i in 0..4 {
            assert_eq!(m.registers[i], a.registers[i] | b.registers[i]);
        }
    }

    #[test]
    fn merge_check_reports_change() {
        let mut r = rng(11);
        let mut a = FmSketch::new(8);
        let mut b = FmSketch::new(8);
        a.insert_elements(20, &mut r);
        b.insert_elements(20, &mut r);
        let mut acc = a.clone();
        // Merging b likely adds bits at least once across 8 registers.
        let first = acc.merge_check(&b);
        // Re-merging either input never changes anything.
        assert!(!acc.merge_check(&b));
        assert!(!acc.merge_check(&a));
        assert_eq!(acc, a.merged(&b));
        let _ = first;
    }

    #[test]
    fn merge_idempotent() {
        let mut r = rng(4);
        let mut a = FmSketch::new(8);
        a.insert_elements(50, &mut r);
        let twice = a.clone().merged(&a);
        assert_eq!(twice, a);
    }

    #[test]
    fn merge_commutative_associative() {
        let mut r = rng(5);
        let mk = |r: &mut SmallRng| {
            let mut s = FmSketch::new(8);
            s.insert_elements(30, r);
            s
        };
        let (a, b, c) = (mk(&mut r), mk(&mut r), mk(&mut r));
        let ab_c = a.clone().merged(&b).merged(&c);
        let a_bc = a.clone().merged(&b.clone().merged(&c));
        let ba_c = b.clone().merged(&a).merged(&c);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, ba_c);
    }

    #[test]
    #[should_panic(expected = "different repetition counts")]
    fn merge_rejects_mismatched_c() {
        let mut a = FmSketch::new(4);
        let b = FmSketch::new(8);
        a.merge(&b);
    }

    #[test]
    fn duplicate_insensitivity_end_to_end() {
        // Simulate the same host's sketch flowing along two paths and
        // being combined twice: the estimate must be unchanged.
        let mut r = rng(6);
        let mut host = FmSketch::new(8);
        host.insert_one(&mut r);
        let mut agg = FmSketch::new(8);
        agg.merge(&host);
        let once = agg.estimate();
        agg.merge(&host);
        agg.merge(&host);
        assert_eq!(agg.estimate(), once);
    }

    #[test]
    fn sum_via_elements() {
        // Hosts with values summing to S produce an estimate near S.
        let mut r = rng(7);
        let values = [120u64, 340, 55, 410, 75, 200, 310, 90];
        let total: u64 = values.iter().sum();
        let mut agg = FmSketch::new(32);
        for &v in &values {
            let mut host = FmSketch::new(32);
            host.insert_elements(v, &mut r);
            agg.merge(&host);
        }
        let est = agg.estimate();
        let ratio = est / total as f64;
        assert!((0.3..3.0).contains(&ratio), "est {est} vs {total}");
    }

    #[test]
    fn fast_insert_statistically_matches_naive() {
        // Compare mean estimates of the two insertion paths over several
        // seeds; they sample the same distribution.
        let m = 5_000u64;
        let trials = 20;
        let mean = |fast: bool| -> f64 {
            let mut acc = 0.0;
            for seed in 0..trials {
                let mut r = rng(seed + if fast { 1_000 } else { 0 });
                let mut s = FmSketch::new(16);
                if fast {
                    s.insert_elements_fast(m, &mut r);
                } else {
                    s.insert_elements(m, &mut r);
                }
                acc += s.estimate();
            }
            acc / trials as f64
        };
        let (naive, fast) = (mean(false), mean(true));
        let ratio = fast / naive;
        assert!((0.5..2.0).contains(&ratio), "naive {naive} vs fast {fast}");
    }

    #[test]
    fn binomial_half_bounds_and_mean() {
        let mut r = rng(8);
        let mut acc = 0u64;
        let trials = 400;
        for _ in 0..trials {
            let x = binomial_half(100, &mut r);
            assert!(x <= 100);
            acc += x;
        }
        let mean = acc as f64 / trials as f64;
        assert!((40.0..60.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn geometric_bit_distribution() {
        let mut r = rng(9);
        let mut zero = 0u32;
        let n = 10_000;
        for _ in 0..n {
            if geometric_bit(&mut r) == 0 {
                zero += 1;
            }
        }
        let frac = zero as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "P(bit=0) = {frac}");
    }

    #[test]
    fn wire_size() {
        assert_eq!(FmSketch::new(8).wire_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_registers_rejected() {
        FmSketch::new(0);
    }
}
