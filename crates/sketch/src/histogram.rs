//! Duplicate-insensitive histograms — the "complex aggregation queries"
//! the paper's §7 points to (Kempe et al. \[19\] explored histograms for
//! gossip; here they ride WILDFIRE's OR-lattice instead).
//!
//! A [`HistogramSketch`] holds one FM count sketch per value bucket.
//! Combining is per-bucket OR, so the whole histogram is
//! duplicate-insensitive and can flow through WILDFIRE unchanged. From
//! the merged histogram the querying host reads off approximate bucket
//! counts, quantiles and a histogram-based average — one convergecast,
//! many answers.

use crate::fm::FmSketch;
use serde::{Deserialize, Serialize};

/// Equi-width bucket boundaries over `[min, max]`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Buckets {
    min: u64,
    max: u64,
    count: usize,
}

impl Buckets {
    /// `count` equi-width buckets spanning `[min, max]` inclusive.
    pub fn equi_width(min: u64, max: u64, count: usize) -> Self {
        assert!(max >= min, "empty value range");
        assert!(count >= 1, "need at least one bucket");
        Buckets { min, max, count }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether there are zero buckets (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The bucket index for a value (values outside the range clamp to
    /// the edge buckets — hosts must never drop data silently).
    pub fn index_of(&self, value: u64) -> usize {
        let v = value.clamp(self.min, self.max);
        let span = (self.max - self.min + 1) as f64;
        let idx = ((v - self.min) as f64 / span * self.count as f64) as usize;
        idx.min(self.count - 1)
    }

    /// The value range `[lo, hi]` covered by bucket `i`.
    pub fn range_of(&self, i: usize) -> (u64, u64) {
        assert!(i < self.count, "bucket out of range");
        let span = (self.max - self.min + 1) as f64;
        let lo = self.min + (span * i as f64 / self.count as f64) as u64;
        let hi = if i + 1 == self.count {
            self.max
        } else {
            self.min + (span * (i + 1) as f64 / self.count as f64) as u64 - 1
        };
        (lo, hi)
    }

    /// Midpoint of bucket `i` (used by the histogram average).
    pub fn midpoint(&self, i: usize) -> f64 {
        let (lo, hi) = self.range_of(i);
        (lo + hi) as f64 / 2.0
    }
}

/// A duplicate-insensitive histogram: one FM sketch per bucket.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSketch {
    buckets: Buckets,
    counts: Vec<FmSketch>,
}

impl HistogramSketch {
    /// An empty histogram with `c` FM repetitions per bucket.
    pub fn new(buckets: Buckets, c: usize) -> Self {
        let counts = (0..buckets.len()).map(|_| FmSketch::new(c)).collect();
        HistogramSketch { buckets, counts }
    }

    /// The bucket layout.
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// Record this host's attribute value (one distinct element in the
    /// value's bucket, §5.2-style).
    pub fn insert(&mut self, value: u64, rng: &mut rand::rngs::SmallRng) {
        let idx = self.buckets.index_of(value);
        self.counts[idx].insert_one(rng);
    }

    /// Duplicate-insensitive combine: per-bucket OR.
    pub fn merge(&mut self, other: &HistogramSketch) {
        assert_eq!(self.buckets, other.buckets, "bucket layouts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            a.merge(b);
        }
    }

    /// Merge and report change (WILDFIRE's resend test).
    pub fn merge_check(&mut self, other: &HistogramSketch) -> bool {
        assert_eq!(self.buckets, other.buckets, "bucket layouts differ");
        let mut changed = false;
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            changed |= a.merge_check(b);
        }
        changed
    }

    /// Estimated host count per bucket.
    pub fn bucket_estimates(&self) -> Vec<f64> {
        self.counts.iter().map(FmSketch::estimate).collect()
    }

    /// Estimated total host count.
    pub fn total(&self) -> f64 {
        self.bucket_estimates().iter().sum()
    }

    /// Histogram-based average: Σ midpoint·count / Σ count.
    pub fn average(&self) -> Option<f64> {
        let est = self.bucket_estimates();
        let total: f64 = est.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let weighted: f64 = est
            .iter()
            .enumerate()
            .map(|(i, &c)| self.buckets.midpoint(i) * c)
            .sum();
        Some(weighted / total)
    }

    /// Approximate `q`-quantile (`0 < q < 1`): the midpoint of the bucket
    /// where the cumulative estimated count crosses `q · total`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile in [0,1]");
        let est = self.bucket_estimates();
        let total: f64 = est.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let target = q * total;
        let mut acc = 0.0;
        for (i, &c) in est.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.buckets.midpoint(i));
            }
        }
        Some(self.buckets.midpoint(self.buckets.len() - 1))
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.counts.iter().map(FmSketch::wire_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn bucket_indexing() {
        let b = Buckets::equi_width(10, 509, 10); // width 50 each
        assert_eq!(b.index_of(10), 0);
        assert_eq!(b.index_of(59), 0);
        assert_eq!(b.index_of(60), 1);
        assert_eq!(b.index_of(509), 9);
        // Out-of-range values clamp.
        assert_eq!(b.index_of(0), 0);
        assert_eq!(b.index_of(10_000), 9);
    }

    #[test]
    fn bucket_ranges_partition() {
        let b = Buckets::equi_width(0, 99, 7);
        let mut expected = 0;
        for i in 0..7 {
            let (lo, hi) = b.range_of(i);
            assert_eq!(lo, expected, "bucket {i}");
            assert!(hi >= lo);
            expected = hi + 1;
        }
        assert_eq!(expected, 100);
    }

    #[test]
    fn histogram_recovers_distribution_shape() {
        // Two-point distribution: 80% of hosts at 20, 20% at 450.
        let b = Buckets::equi_width(10, 509, 10);
        let mut r = rng(5);
        let mut merged = HistogramSketch::new(b.clone(), 16);
        for i in 0..2_000u64 {
            let mut host = HistogramSketch::new(b.clone(), 16);
            host.insert(if i % 5 == 4 { 450 } else { 20 }, &mut r);
            merged.merge(&host);
        }
        let est = merged.bucket_estimates();
        let low_bucket = b.index_of(20);
        let high_bucket = b.index_of(450);
        assert!(
            est[low_bucket] > 2.5 * est[high_bucket],
            "low {} vs high {}",
            est[low_bucket],
            est[high_bucket]
        );
        // Total within FM error of 2000.
        let total = merged.total();
        assert!((800.0..5_000.0).contains(&total), "total {total}");
    }

    #[test]
    fn average_and_quantiles_plausible() {
        let b = Buckets::equi_width(0, 999, 20);
        let mut r = rng(6);
        let mut merged = HistogramSketch::new(b.clone(), 16);
        // Uniform values 0..1000 over 3000 hosts.
        for i in 0..3_000u64 {
            let mut host = HistogramSketch::new(b.clone(), 16);
            host.insert(i % 1_000, &mut r);
            merged.merge(&host);
        }
        let avg = merged.average().unwrap();
        assert!((300.0..700.0).contains(&avg), "avg {avg}");
        let median = merged.quantile(0.5).unwrap();
        assert!((250.0..750.0).contains(&median), "median {median}");
        let p10 = merged.quantile(0.1).unwrap();
        let p90 = merged.quantile(0.9).unwrap();
        assert!(p10 < p90, "p10 {p10} !< p90 {p90}");
    }

    #[test]
    fn merge_is_duplicate_insensitive() {
        let b = Buckets::equi_width(0, 9, 2);
        let mut r = rng(7);
        let mut host = HistogramSketch::new(b.clone(), 8);
        host.insert(3, &mut r);
        let mut agg = HistogramSketch::new(b, 8);
        agg.merge(&host);
        let once = agg.bucket_estimates();
        agg.merge(&host);
        agg.merge(&host);
        assert_eq!(agg.bucket_estimates(), once);
    }

    #[test]
    fn merge_check_reports_change() {
        let b = Buckets::equi_width(0, 9, 2);
        let mut r = rng(8);
        let mut a = HistogramSketch::new(b.clone(), 8);
        let mut h = HistogramSketch::new(b, 8);
        h.insert(1, &mut r);
        assert!(a.merge_check(&h));
        assert!(!a.merge_check(&h));
    }

    #[test]
    fn empty_histogram_has_no_answers() {
        let b = Buckets::equi_width(0, 9, 3);
        let h = HistogramSketch::new(b, 8);
        assert_eq!(h.total(), 0.0);
        assert_eq!(h.average(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "layouts differ")]
    fn rejects_layout_mismatch() {
        let mut a = HistogramSketch::new(Buckets::equi_width(0, 9, 2), 8);
        let b = HistogramSketch::new(Buckets::equi_width(0, 9, 3), 8);
        a.merge(&b);
    }
}
