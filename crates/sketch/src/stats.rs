//! Small statistics helpers shared by experiments: mean, confidence
//! intervals (the §6.5 plots show 95% CIs over 10 trials) and the
//! Chernoff sample-size bound used by RANDOMIZEDREPORT (§4.3) and the
//! capture–recapture estimator (§5.4).

/// Sample mean. Empty input yields 0.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation. Fewer than two samples yield 0.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the 95% normal-approximation confidence interval:
/// `1.96 · s / √n`. The paper's Figs 7–9 plot means ± this.
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Mean and 95% CI half-width in one pass.
pub fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    (mean(xs), ci95_half_width(xs))
}

/// The Chernoff-bound sample size of §4.3/§5.4: to estimate a proportion
/// `rho` within relative error `eps` with probability `1 − zeta`, take at
/// least `4 / (eps² · rho) · ln(2 / zeta)` samples.
pub fn chernoff_sample_size(eps: f64, zeta: f64, rho: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(zeta > 0.0 && zeta < 1.0, "zeta must be in (0,1)");
    assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0,1]");
    let n = 4.0 / (eps * eps * rho) * (2.0 / zeta).ln();
    n.ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(ci95_half_width(&[3.0]), 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = [1.0, 2.0, 3.0, 4.0];
        let many: Vec<f64> = few.iter().cycle().take(64).copied().collect();
        assert!(ci95_half_width(&many) < ci95_half_width(&few));
    }

    #[test]
    fn chernoff_matches_paper_form() {
        // eps = 0.1, zeta = 0.05, rho = 1: 4/0.01 * ln(40) ≈ 1476.
        let n = chernoff_sample_size(0.1, 0.05, 1.0);
        assert!((1_400..1_600).contains(&n), "n = {n}");
        // Smaller marked fraction needs proportionally more samples
        // (up to ceil rounding).
        let fine = chernoff_sample_size(0.1, 0.05, 0.1) as f64;
        let coarse = chernoff_sample_size(0.1, 0.05, 1.0) as f64;
        assert!((fine / coarse - 10.0).abs() < 0.01, "{fine} vs {coarse}");
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn chernoff_rejects_bad_eps() {
        chernoff_sample_size(0.0, 0.1, 0.5);
    }
}
