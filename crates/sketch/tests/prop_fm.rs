//! Property-based tests for the FM sketch: the §5.2 algebraic laws that
//! make WILDFIRE's convergecast duplicate-insensitive.

use pov_sketch::FmSketch;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Build a sketch from a seed by inserting `inserts` pretend-elements.
fn sketch(c: usize, inserts: u64, seed: u64) -> FmSketch {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut s = FmSketch::new(c);
    s.insert_elements(inserts, &mut rng);
    s
}

proptest! {
    #[test]
    fn merge_is_commutative(
        c in 1usize..12,
        na in 0u64..200,
        nb in 0u64..200,
        sa in 0u64..1_000,
        sb in 0u64..1_000,
    ) {
        let a = sketch(c, na, sa);
        let b = sketch(c, nb, sb);
        prop_assert_eq!(a.clone().merged(&b), b.clone().merged(&a));
    }

    #[test]
    fn merge_is_associative(
        c in 1usize..10,
        seeds in prop::array::uniform3(0u64..1_000),
        ns in prop::array::uniform3(0u64..150),
    ) {
        let a = sketch(c, ns[0], seeds[0]);
        let b = sketch(c, ns[1], seeds[1]);
        let d = sketch(c, ns[2], seeds[2]);
        let left = a.clone().merged(&b).merged(&d);
        let right = a.clone().merged(&b.clone().merged(&d));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_idempotent(c in 1usize..12, n in 0u64..300, s in 0u64..1_000) {
        let a = sketch(c, n, s);
        prop_assert_eq!(a.clone().merged(&a), a);
    }

    #[test]
    fn empty_is_identity(c in 1usize..12, n in 0u64..300, s in 0u64..1_000) {
        let a = sketch(c, n, s);
        let empty = FmSketch::new(c);
        prop_assert_eq!(a.clone().merged(&empty), a);
    }

    #[test]
    fn estimate_monotone_under_merge(
        c in 1usize..12,
        na in 0u64..300,
        nb in 0u64..300,
        sa in 0u64..1_000,
        sb in 0u64..1_000,
    ) {
        // OR only sets bits, so the lowest-zero index — and hence the
        // estimate — can only grow. This is why WILDFIRE partials move
        // monotonically up the lattice.
        let a = sketch(c, na, sa);
        let b = sketch(c, nb, sb);
        let merged = a.clone().merged(&b);
        prop_assert!(merged.estimate() >= a.estimate());
        prop_assert!(merged.estimate() >= b.estimate());
    }

    #[test]
    fn estimate_zero_iff_empty(c in 1usize..12, n in 0u64..50, s in 0u64..1_000) {
        let a = sketch(c, n, s);
        prop_assert_eq!(a.estimate() == 0.0, a.is_empty());
        prop_assert_eq!(a.is_empty(), n == 0);
    }

    #[test]
    fn merge_check_consistent_with_merge(
        c in 1usize..10,
        na in 0u64..200,
        nb in 0u64..200,
        sa in 0u64..1_000,
        sb in 0u64..1_000,
    ) {
        let a = sketch(c, na, sa);
        let b = sketch(c, nb, sb);
        let mut checked = a.clone();
        let changed = checked.merge_check(&b);
        prop_assert_eq!(&checked, &a.clone().merged(&b));
        prop_assert_eq!(changed, checked != a);
        // Second application never reports change.
        prop_assert!(!checked.merge_check(&b));
    }

    #[test]
    fn fast_insert_produces_plausible_register_fill(
        m in 1u64..5_000,
        seed in 0u64..500,
    ) {
        // The fast path must fill a contiguous-ish low range of bits: at
        // minimum bit 0 is set with m >= 4 almost surely after the exact
        // binomial splitting... assert the weaker invariant that the
        // estimate is positive and within the Lemma 5.1 envelope for
        // c = 16 in the overwhelming majority parametrization: we only
        // assert positivity + monotone cap here (distributional tests
        // live in the unit suite).
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = FmSketch::new(16);
        s.insert_elements_fast(m, &mut rng);
        prop_assert!(!s.is_empty());
        prop_assert!(s.estimate() > 0.0);
    }

    #[test]
    fn wire_bytes_scale_with_c(c in 1usize..64) {
        prop_assert_eq!(FmSketch::new(c).wire_bytes(), c * 8);
    }
}
