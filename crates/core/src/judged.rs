//! Run protocols and have the ORACLE judge them — the shared execution
//! layer under the façade ([`crate::Network`] / [`crate::QueryBuilder`]),
//! the scenario batch runner and the continuous-query driver.
//!
//! Two entry points, one plan type:
//!
//! * [`judged_run`] — the single-run primitive: execute one
//!   [`ProtocolKind`] over a graph under a [`RunPlan`]'s environment,
//!   replay the membership trace through the §6.2 ORACLE, and return
//!   the declared value with its Single-Site-Validity verdict and §6.3
//!   cost metrics.
//! * [`judged_plan`] — the plan executor: one [`JudgedOutcome`] **per
//!   protocol per window**, every protocol fed the *same*
//!   churn/partition/seed realization (paired comparison), with
//!   continuous windows sliced from one absolute-time plan.

use pov_oracle::{aggregate_bounds, host_sets, Verdict};
use pov_protocols::{runner, ContinuousSpec, ProtocolKind, RunPlan};
use pov_sim::{ChurnPlan, Metrics, PartitionPlan, Time};
use pov_topology::{Graph, HostId};

/// A declared value, the ORACLE's judgement of it, and the run's costs.
#[derive(Clone, Debug)]
pub struct JudgedOutcome {
    /// The value `hq` declared (`None` if `hq` died first).
    pub value: Option<f64>,
    /// When it was declared.
    pub declared_at: Option<Time>,
    /// The ORACLE's Single-Site-Validity judgement over the query
    /// interval `[0, declared_at]` (or the full deadline when nothing
    /// was declared).
    pub verdict: Verdict,
    /// `|HC|` — hosts continuously reachable from `hq` over the interval.
    pub hc_size: usize,
    /// `|HU|` — hosts alive at some instant of the interval.
    pub hu_size: usize,
    /// The valid envelope `[q(HC), q(HU)]` for interval-bounded
    /// aggregates (count/sum; `None` for min/max/avg, whose validity is
    /// witness-based).
    pub bounds: Option<(f64, f64)>,
    /// §6.3 cost metrics.
    pub metrics: Metrics,
}

impl JudgedOutcome {
    /// Time cost in ticks (declaration instant at `hq`).
    pub fn time_cost(&self) -> Option<u64> {
        self.declared_at.map(Time::ticks)
    }

    /// Multiplicative deviation of the declared value from the valid
    /// envelope: `max(q(HC)/v, v/q(HU), 1)`. `1.0` means the value sat
    /// inside the bounds; WILDFIRE's Approximate SSV (Thm 5.3) keeps
    /// this within FM noise while best-effort protocols blow up. `None`
    /// when the aggregate has no interval bounds, nothing was declared,
    /// or `v <= 0`.
    pub fn deviation(&self) -> Option<f64> {
        let (lo, hi) = self.bounds?;
        let v = self.value?;
        if v <= 0.0 {
            return None;
        }
        Some((lo / v).max(v / hi.max(1e-12)).max(1.0))
    }
}

/// One window's judged outcome within a [`ProtocolJudged`] series.
#[derive(Clone, Debug)]
pub struct WindowJudged {
    /// Absolute start instant of the window (always `0` for one-shots).
    pub start: Time,
    /// The window's judged outcome.
    pub judged: JudgedOutcome,
}

/// Everything one protocol produced under a plan: one judged outcome
/// per window (exactly one for a one-shot plan; the series may stop
/// early if `hq` dies between continuous windows).
#[derive(Clone, Debug)]
pub struct ProtocolJudged {
    /// The protocol that ran.
    pub kind: ProtocolKind,
    /// Per-window outcomes, in window order.
    pub windows: Vec<WindowJudged>,
}

impl ProtocolJudged {
    /// The single outcome of a one-shot plan.
    ///
    /// # Panics
    /// Panics if the series is empty (a one-shot always has one window).
    pub fn one(&self) -> &JudgedOutcome {
        &self.windows[0].judged
    }
}

/// Run `kind` over `graph` (host `h` holding `values[h]`) under the
/// environment half of `plan` — one one-shot query — then judge the
/// outcome against the ORACLE bounds. `plan.protocols` and
/// `plan.continuous` are [`judged_plan`]'s concern and are not read
/// here.
pub fn judged_run(
    kind: ProtocolKind,
    graph: &Graph,
    values: &[u64],
    plan: &RunPlan,
) -> JudgedOutcome {
    let outcome = runner::run(kind, graph, values, plan);
    // The query interval ends at declaration, or at the full deadline
    // `2·D̂·δ` in ticks when nothing was declared.
    let end = outcome.declared_at.unwrap_or(Time(plan.deadline()));
    let sets = host_sets(graph, &outcome.trace, plan.hq, Time::ZERO, end);
    let verdict = Verdict::judge(
        plan.aggregate,
        &sets,
        values,
        outcome.value.unwrap_or(f64::NAN),
    );
    JudgedOutcome {
        value: outcome.value,
        declared_at: outcome.declared_at,
        verdict,
        hc_size: sets.hc_len(),
        hu_size: sets.hu_len(),
        bounds: aggregate_bounds(plan.aggregate, &sets, values),
        metrics: outcome.metrics,
    }
}

/// Execute a whole [`RunPlan`]: every protocol in `plan.protocols`, one
/// judged outcome per window, all from the **same** churn, partition
/// and seed realization. For one-shot plans each protocol yields a
/// single window at `start = 0`; for continuous plans (§4.2) the
/// absolute-time churn/partition schedule is sliced into per-window
/// local plans, so "protocol A vs protocol B across windows" is a
/// paired comparison on identical dynamism.
///
/// # Panics
/// Panics if `plan.protocols` is empty, or a continuous window is
/// shorter than the one-shot deadline `2·D̂·δ` (a window must fit a
/// full query round, §4.2).
pub fn judged_plan(graph: &Graph, values: &[u64], plan: &RunPlan) -> Vec<ProtocolJudged> {
    assert!(
        !plan.protocols.is_empty(),
        "RunPlan has no protocols to execute; add one with .protocol(..)"
    );
    // Continuous windows re-express the *pre-materialized* plan in each
    // window's local time by replaying its history; a dynamic adversary
    // decides its kills during the run, so its schedule cannot be
    // replayed into later windows' start states. Reject the combination
    // rather than judging window 1+ against the wrong membership.
    assert!(
        plan.adversary.is_none() || plan.continuous.is_none(),
        "a dynamic adversary cannot be combined with continuous windows \
         (its kills are not replayable into window-local churn plans)"
    );
    // Slice the continuous windows ONCE, then feed every protocol the
    // same local plans: the shared-realization guarantee is structural,
    // and the O(hosts + events) history replays run per window, not per
    // protocol per window. A one-shot plan is the single window `plan`.
    let locals: Vec<(Time, std::borrow::Cow<'_, RunPlan>)> = match plan.continuous {
        None => vec![(Time::ZERO, std::borrow::Cow::Borrowed(plan))],
        Some(cs) => window_plans(graph, plan, cs)
            .into_iter()
            .map(|(start, local)| (start, std::borrow::Cow::Owned(local)))
            .collect(),
    };
    plan.protocols
        .iter()
        .map(|&kind| ProtocolJudged {
            kind,
            windows: locals
                .iter()
                .map(|(start, local)| WindowJudged {
                    start: *start,
                    judged: judged_run(kind, graph, values, local),
                })
                .collect(),
        })
        .collect()
}

/// The absolute start instant of every window [`judged_plan`] will
/// judge: a single `0` for a one-shot plan, `w × W` for each window of
/// a continuous plan. Long-horizon phased regimes
/// ([`pov_sim::PhaseSchedule`]) lower to absolute-time plans whose
/// phase boundaries rarely align with window boundaries; callers pair
/// these instants with `PhaseSchedule::label_at` to tag each judged
/// window with the regime in force when it opened (the scenario
/// runner's `phase` column, the soak harness's per-phase accounting).
/// Note the judged series itself may stop early if `hq` dies — align
/// by each [`WindowJudged::start`], not by index alone.
pub fn window_starts(plan: &RunPlan) -> Vec<Time> {
    match plan.continuous {
        None => vec![Time::ZERO],
        Some(cs) => (0..cs.windows)
            .map(|w| Time(w as u64 * cs.window))
            .collect(),
    }
}

/// The per-window local plans [`judged_plan`] executes, exposed for
/// callers that drive the same windows through a different executor —
/// the trace runner replays each `(start, local_plan)` with a telemetry
/// recorder attached, and byte-identical traces across thread counts
/// hinge on using *exactly* this slicing (same window-indexed seeds,
/// same churn/partition history replay).
///
/// A one-shot plan yields a single `(Time::ZERO, plan)` entry; a
/// continuous plan yields one entry per window, stopping early if `hq`
/// is dead at a window start. The local plans carry the environment
/// only — their `protocols` lists are empty.
///
/// # Panics
/// Same conditions as [`judged_plan`]: a continuous window shorter than
/// the one-shot deadline, or a dynamic adversary combined with
/// continuous windows.
pub fn window_local_plans(graph: &Graph, plan: &RunPlan) -> Vec<(Time, RunPlan)> {
    assert!(
        plan.adversary.is_none() || plan.continuous.is_none(),
        "a dynamic adversary cannot be combined with continuous windows \
         (its kills are not replayable into window-local churn plans)"
    );
    match plan.continuous {
        None => vec![(
            Time::ZERO,
            RunPlan {
                protocols: Vec::new(),
                ..plan.clone()
            },
        )],
        Some(cs) => window_plans(graph, plan, cs),
    }
}

/// The continuous slicer: one local [`RunPlan`] per window, each
/// describing a one-shot against the membership state the absolute-time
/// plan has reached by the window start. Stops early if `hq` is dead at
/// a window start.
fn window_plans(graph: &Graph, plan: &RunPlan, cs: ContinuousSpec) -> Vec<(Time, RunPlan)> {
    assert!(
        cs.window >= plan.deadline(),
        "window must fit a full query round (W >= 2·D̂·δ)"
    );
    let mut locals = Vec::with_capacity(cs.windows);
    for w in 0..cs.windows {
        let start = Time(w as u64 * cs.window);
        let Some(local_churn) = slice_churn(&plan.churn, graph.num_hosts(), start, plan.hq) else {
            break; // hq is dead at this window's start
        };
        let local = RunPlan {
            churn: local_churn,
            partition: plan
                .partition
                .as_ref()
                .and_then(|p| slice_partition(p, start)),
            // Window-indexed seed, identical across protocols: every
            // protocol sees the same per-window realization.
            seed: plan.seed.wrapping_add(w as u64),
            protocols: Vec::new(),
            continuous: None,
            ..plan.clone()
        };
        locals.push((start, local));
    }
    locals
}

/// Re-express the absolute-time `churn` in a window's local time:
/// events before `start` collapse into the alive/dead state they leave
/// each host in, events at or after `start` shift left by `start`. A
/// host dead at `start` is encoded through the engine's initially-dead
/// convention: if it rejoins later the shifted join does the job; if it
/// never does, it is pinned down for the whole window with the explicit
/// [`ChurnPlan::with_initially_dead`] marker (a sentinel join at
/// `Time(u64::MAX)` would keep it down too, but any later shift or
/// merge arithmetic over such a plan could wrap). Returns `None` if
/// `hq` itself is dead at `start`.
fn slice_churn(churn: &ChurnPlan, num_hosts: usize, start: Time, hq: HostId) -> Option<ChurnPlan> {
    // Replay merged history to the window start. At equal instants a
    // join applies after a failure (the host ends the tick alive),
    // matching `ChurnPlan::initially_dead`'s first-event convention.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Alive,
        Dead,
    }
    let mut state = vec![State::Alive; num_hosts];
    for h in churn.initially_dead() {
        state[h.index()] = State::Dead;
    }
    let mut history: Vec<(Time, u32, bool)> = churn
        .failures
        .iter()
        .filter(|&&(t, _)| t < start)
        .map(|&(t, h)| (t, h.0, false))
        .chain(
            churn
                .joins
                .iter()
                .filter(|&&(t, _)| t < start)
                .map(|&(t, h)| (t, h.0, true)),
        )
        .collect();
    history.sort_unstable_by_key(|&(t, h, is_join)| (t, h, is_join));
    for (_, h, is_join) in history {
        state[h as usize] = if is_join { State::Alive } else { State::Dead };
    }
    if state[hq.index()] == State::Dead {
        return None;
    }
    let mut local = ChurnPlan::none();
    let shift = |t: Time| Time(t.ticks() - start.ticks());
    for &(t, h) in churn.failures.iter().filter(|&&(t, _)| t >= start) {
        local = local.with_failure(shift(t), h);
    }
    for &(t, h) in churn.joins.iter().filter(|&&(t, _)| t >= start) {
        local = local.with_join(shift(t), h);
    }
    // Normalize no-op events so each host's *first* local event matches
    // its start state — `ChurnPlan::initially_dead` and the engine read
    // state off that first event. Stacked regimes (`.churn(a).churn(b)`)
    // legitimately produce redundant events: a failure scheduled for a
    // host already dead at the window start, or a join for one already
    // alive. Both are no-ops in the full-timeline run and must stay
    // no-ops after slicing — dropped here, with the explicit
    // initially-dead marker for dead hosts that never rejoin.
    let mut first_fail: Vec<Option<Time>> = vec![None; num_hosts];
    let mut first_join: Vec<Option<Time>> = vec![None; num_hosts];
    for &(t, h) in &local.failures {
        let slot = &mut first_fail[h.index()];
        *slot = Some(slot.map_or(t, |f: Time| f.min(t)));
    }
    for &(t, h) in &local.joins {
        let slot = &mut first_join[h.index()];
        *slot = Some(slot.map_or(t, |j: Time| j.min(t)));
    }
    // Strictly after the first join: a dead host's failure *at* the
    // first-join tick is a no-op (fails apply before joins at equal
    // instants, and the host is still down), but keeping it would make
    // the fail the host's first local event — which `initially_dead`'s
    // fail-before-join tie-break reads as "starts alive".
    local.failures.retain(|&(t, h)| {
        state[h.index()] == State::Alive || first_join[h.index()].is_some_and(|j| t > j)
    });
    local.joins.retain(|&(t, h)| {
        state[h.index()] == State::Dead || first_fail[h.index()].is_some_and(|f| t >= f)
    });
    for (i, &s) in state.iter().enumerate() {
        if s == State::Dead && first_join[i].is_none() {
            local = local.with_initially_dead(HostId(i as u32));
        }
    }
    Some(local)
}

/// Shift a partition plan's active windows into a window's local time,
/// clipping at the window start — cut by cut, so cascading (stacked)
/// partitions slice like single ones. Returns `None` when no cut
/// overlaps the remaining timeline — degenerate (zero-length) windows,
/// whether present in the source plan or produced by the clamp, are
/// skipped so a dead cut never masquerades as an active partition
/// downstream; cuts left without windows are dropped entirely.
fn slice_partition(plan: &PartitionPlan, start: Time) -> Option<PartitionPlan> {
    let mut sliced: Option<PartitionPlan> = None;
    for (sides, windows) in plan.cuts() {
        let mut local = PartitionPlan::new(sides.to_vec());
        let mut any = false;
        for &(from, until) in windows {
            if until <= start {
                continue;
            }
            let f = from.ticks().saturating_sub(start.ticks());
            let u = until.ticks() - start.ticks();
            if f == u {
                // A zero-length `[f, f)` cut can never activate;
                // counting it would hand callers a Some(plan) whose
                // every window is inert.
                continue;
            }
            local = local.window(Time(f), Time(u));
            any = true;
        }
        if any {
            sliced = Some(match sliced {
                None => local,
                Some(acc) => acc.stack(local),
            });
        }
    }
    sliced
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_protocols::wildfire::WildfireOpts;
    use pov_protocols::Aggregate;
    use pov_sim::{ChurnPlan, PartitionPlan};
    use pov_topology::generators::special;
    use pov_topology::HostId;

    #[test]
    fn judged_wildfire_max_is_valid() {
        let g = special::cycle(20);
        let values: Vec<u64> = (1..=20).collect();
        let cfg = RunPlan::query(Aggregate::Max).d_hat(11);
        let out = judged_run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &g,
            &values,
            &cfg,
        );
        assert_eq!(out.value, Some(20.0));
        assert!(out.verdict.is_valid());
        assert_eq!(out.hc_size, 20);
        assert_eq!(out.hu_size, 20);
        assert!(out.metrics.messages_sent > 0);
        assert!(out.time_cost().is_some());
    }

    #[test]
    fn churn_shrinks_hc_through_judged_run() {
        let g = special::cycle(12);
        let cfg = RunPlan::query(Aggregate::Count).d_hat(7).churn(
            ChurnPlan::none()
                .with_failure(Time(1), HostId(5))
                .with_failure(Time(1), HostId(8)),
        );
        let out = judged_run(ProtocolKind::SpanningTree, &g, &[1; 12], &cfg);
        // Two failures on a cycle strand the arc between them.
        assert!(out.hc_size < 10, "hc = {}", out.hc_size);
        assert_eq!(out.hu_size, 12);
    }

    #[test]
    fn partition_runs_through_judged_run() {
        // Sever half a cycle for the whole query: WILDFIRE cannot hear
        // the far side even though every host stays alive, so the count
        // undershoots HC — the partition regime violates validity in a
        // way failure-only churn never makes WILDFIRE do.
        let g = special::cycle(16);
        let sides = (0..16u8).map(|i| u8::from(i >= 8)).collect();
        let cfg = RunPlan::query(Aggregate::Count)
            .d_hat(9)
            .partition(PartitionPlan::new(sides).window(Time(0), Time(1_000)));
        let out = judged_run(ProtocolKind::SpanningTree, &g, &[1; 16], &cfg);
        let v = out.value.expect("hq alive");
        assert!(v < 16.0, "partition must hide hosts, got {v}");
        // All 16 hosts remain alive: HU (and HC — paths exist in the
        // static graph) still count them.
        assert_eq!(out.hu_size, 16);
    }

    #[test]
    fn plan_pairs_protocols_on_one_realization() {
        let g = special::cycle(24);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(13)
            .churn(ChurnPlan::uniform_failures(
                24,
                6,
                Time(0),
                Time(26),
                HostId(0),
                3,
            ))
            .seed(9)
            .protocols([
                ProtocolKind::Wildfire(WildfireOpts::default()),
                ProtocolKind::SpanningTree,
            ]);
        let judged = judged_plan(&g, &[1; 24], &plan);
        assert_eq!(judged.len(), 2);
        let wf = judged[0].one();
        let st = judged[1].one();
        // Identical churn realization ⇒ identical oracle sets whenever
        // both protocols declare at the same deadline-driven instant…
        assert_eq!(wf.hu_size, st.hu_size);
        // …and dropping one protocol does not change the other's run.
        let solo = judged_plan(
            &g,
            &[1; 24],
            &plan
                .clone()
                .protocols([ProtocolKind::Wildfire(WildfireOpts::default())]),
        );
        assert_eq!(solo[0].one().value, wf.value);
        assert_eq!(
            solo[0].one().metrics.messages_sent,
            wf.metrics.messages_sent
        );
    }

    #[test]
    fn continuous_plan_yields_one_judged_per_window() {
        let g = special::cycle(20);
        let plan = RunPlan::query(Aggregate::Max)
            .d_hat(11)
            .continuous(24, 3)
            .protocol(ProtocolKind::Wildfire(WildfireOpts::default()));
        let judged = judged_plan(&g, &(1..=20).collect::<Vec<u64>>(), &plan);
        assert_eq!(judged[0].windows.len(), 3);
        for (w, win) in judged[0].windows.iter().enumerate() {
            assert_eq!(win.start, Time(w as u64 * 24));
            assert_eq!(win.judged.value, Some(20.0));
            assert!(win.judged.verdict.is_valid(), "window {w}");
        }
    }

    #[test]
    fn continuous_windows_see_evolving_membership() {
        // Host 10 dies during window 0 and stays dead: later windows
        // must judge against the shrunken population (`HU` drops) while
        // the max — held by the surviving host 5 — keeps coming back.
        // `D̂ = 20` covers the broken ring's chain diameter of 18.
        let g = special::cycle(20);
        let mut values = vec![1u64; 20];
        values[5] = 100;
        let plan = RunPlan::query(Aggregate::Max)
            .d_hat(20)
            .churn(ChurnPlan::none().with_failure(Time(30), HostId(10)))
            .continuous(40, 3)
            .protocol(ProtocolKind::Wildfire(WildfireOpts::default()));
        let windows = &judged_plan(&g, &values, &plan)[0].windows;
        assert_eq!(windows.len(), 3);
        for w in windows {
            assert_eq!(w.judged.value, Some(100.0));
            assert!(w.judged.verdict.is_valid(), "window at {:?}", w.start);
        }
        assert_eq!(windows[0].judged.hu_size, 20, "alive until t=30");
        assert_eq!(windows[1].judged.hu_size, 19, "dead before window 1");
        assert_eq!(windows[2].judged.hu_size, 19);
    }

    #[test]
    fn continuous_handles_fail_then_rejoin_across_windows() {
        // Host 10 fails in window 0 and rejoins during window 1: window
        // 1's sliced plan must carry the dead state in *and* the join
        // event — the initially_dead round trip, across window
        // boundaries — and window 2 must see the host alive throughout.
        let g = special::cycle(20);
        let mut values = vec![1u64; 20];
        values[5] = 100;
        let churn = ChurnPlan::none()
            .with_failure(Time(30), HostId(10))
            .with_join(Time(50), HostId(10));
        let plan = RunPlan::query(Aggregate::Max)
            .d_hat(20)
            .churn(churn)
            .continuous(40, 3)
            .protocol(ProtocolKind::Wildfire(WildfireOpts::default()));
        let windows = &judged_plan(&g, &values, &plan)[0].windows;
        assert_eq!(windows.len(), 3);
        // Window 1: h10 starts dead (HC excludes it) but rejoins at
        // local t=10, so HU still counts all 20 — a mis-sliced plan that
        // dropped the join would report 19.
        assert!(windows[1].judged.hc_size < 20);
        assert_eq!(windows[1].judged.hu_size, 20);
        // Window 2: h10 has been back since t=50 < 80; the ring is whole
        // again and the window is statically valid.
        assert_eq!(windows[2].judged.hc_size, 20);
        assert_eq!(windows[2].judged.hu_size, 20);
        assert_eq!(windows[2].judged.value, Some(100.0));
        assert!(windows[2].judged.verdict.is_valid());
    }

    #[test]
    fn phased_schedule_judged_across_window_boundaries() {
        // A four-phase arc lowered onto a continuous plan whose window
        // grid does NOT align with the phase boundaries: every window
        // must still judge against the membership the absolute-time
        // schedule has reached, and `window_starts` + `label_at` must
        // tag each window with the phase in force when it opened.
        use pov_sim::{PhaseKind, PhaseSchedule};
        let g = pov_topology::generators::random_average_degree(60, 6.0, 4);
        let n = g.num_hosts();
        let values = vec![1u64; n];
        let d_hat = 8; // one-shot deadline 16 ticks
        let horizon = 16 * 12; // 12 windows, 4 phases of 3 windows each
        let schedule = PhaseSchedule::with_start_alive(0.6)
            .then(PhaseKind::Growth { fraction: 0.4 }, horizon / 4)
            .then(PhaseKind::Stable, horizon / 4)
            .then(PhaseKind::Shrink { fraction: 0.5 }, horizon / 4)
            .then(PhaseKind::Heal, horizon / 4);
        let lowered = schedule.lower(&g, HostId(0), 5);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(d_hat)
            .churn(lowered.churn)
            .seed(2)
            .continuous(16, 12)
            .protocol(ProtocolKind::SpanningTree);
        let starts = window_starts(&plan);
        assert_eq!(starts.len(), 12);
        assert_eq!(starts[0], Time::ZERO);
        assert_eq!(starts[11], Time(11 * 16));
        let labels: Vec<&str> = starts.iter().map(|&s| schedule.label_at(s)).collect();
        assert_eq!(
            labels,
            [
                "growth", "growth", "growth", "stable", "stable", "stable", "shrink", "shrink",
                "shrink", "heal", "heal", "heal"
            ]
        );
        let windows = &judged_plan(&g, &values, &plan)[0].windows;
        // hq is the schedule's spare: it survives every phase, so the
        // series never stops early and aligns with the planned starts.
        assert_eq!(windows.len(), 12);
        for (w, start) in windows.iter().zip(&starts) {
            assert_eq!(w.start, *start);
        }
        // HU traces the population arc across the boundaries: the last
        // stable window sees the fully grown overlay, the first heal
        // window sees the post-shrink trough, and by the final window
        // the healed joins have brought the count back up.
        let hu = |w: usize| windows[w].judged.hu_size;
        assert!(
            hu(5) > hu(0),
            "growth must raise HU: {} vs {}",
            hu(5),
            hu(0)
        );
        assert!(
            hu(9) < hu(5),
            "shrink must cut HU before heal: {} vs {}",
            hu(9),
            hu(5)
        );
        assert!(
            hu(11) > hu(9),
            "heal must recover HU: {} vs {}",
            hu(11),
            hu(9)
        );
    }

    #[test]
    fn window_local_plans_mirror_judged_plan_slicing() {
        let g = special::cycle(20);
        let churn = ChurnPlan::none()
            .with_failure(Time(30), HostId(10))
            .with_join(Time(50), HostId(10));
        let plan = RunPlan::query(Aggregate::Max)
            .d_hat(20)
            .churn(churn)
            .seed(13)
            .continuous(40, 3)
            .protocol(ProtocolKind::Wildfire(WildfireOpts::default()));
        let locals = window_local_plans(&g, &plan);
        assert_eq!(locals.len(), 3);
        for (w, (start, local)) in locals.iter().enumerate() {
            assert_eq!(*start, Time(w as u64 * 40));
            assert_eq!(local.seed, plan.seed.wrapping_add(w as u64));
            assert!(local.protocols.is_empty(), "environment only");
            assert!(local.continuous.is_none());
        }
        // Window 1 starts with h10 down and carries its rejoin, exactly
        // as the judged executor slices it.
        let w1 = &locals[1].1;
        assert!(w1.churn.initially_dead().any(|h| h == HostId(10)));
        assert!(w1.churn.joins.contains(&(Time(10), HostId(10))));
        // Replaying a window's local plan through judged_run matches the
        // judged_plan outcome for that window — the consistency the
        // trace runner depends on.
        let windows = &judged_plan(&g, &[1; 20], &plan)[0].windows;
        let kind = ProtocolKind::Wildfire(WildfireOpts::default());
        let replay = judged_run(kind, &g, &[1; 20], w1);
        assert_eq!(replay.value, windows[1].judged.value);
        assert_eq!(
            replay.metrics.messages_sent,
            windows[1].judged.metrics.messages_sent
        );

        // One-shot plans collapse to a single zero-start window.
        let one_shot = RunPlan::query(Aggregate::Count)
            .d_hat(5)
            .protocol(ProtocolKind::SpanningTree);
        let locals = window_local_plans(&g, &one_shot);
        assert_eq!(locals.len(), 1);
        assert_eq!(locals[0].0, Time::ZERO);
    }

    #[test]
    fn stray_failure_on_dead_host_does_not_resurrect_it() {
        // Merged plans can schedule a redundant failure on a host that
        // is already dead (fail@30 merged with a stray fail@42, no
        // rejoin). In window 1 the first *local* event for h10 would be
        // that no-op failure — which `initially_dead`'s first-event rule
        // reads as "starts alive". The slicer must drop it: h10 stays
        // down for the whole window and HU must not count it.
        let g = special::cycle(20);
        let churn = ChurnPlan::none()
            .with_failure(Time(30), HostId(10))
            .merge(ChurnPlan::none().with_failure(Time(42), HostId(10)));
        let plan = RunPlan::query(Aggregate::Max)
            .d_hat(20)
            .churn(churn)
            .continuous(40, 2)
            .protocol(ProtocolKind::Wildfire(WildfireOpts::default()));
        let windows = &judged_plan(&g, &[1; 20], &plan)[0].windows;
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].judged.hu_size, 20, "alive until t=30");
        assert_eq!(
            windows[1].judged.hu_size, 19,
            "a no-op failure must not resurrect the dead host"
        );
    }

    #[test]
    fn stray_join_on_alive_host_does_not_bury_it() {
        // The mirror case: stacked join-producing regimes can schedule a
        // redundant join on a host that is alive at a window start
        // (join@20 merged with a stray join@60, no failures). In window
        // 1 the stray join would be h10's first local event, which
        // `initially_dead` reads as "starts dead". The slicer must drop
        // it: h10 stays up all window and HC/HU keep counting it.
        let g = special::cycle(20);
        let churn = ChurnPlan::none()
            .with_join(Time(20), HostId(10))
            .merge(ChurnPlan::none().with_join(Time(60), HostId(10)));
        let plan = RunPlan::query(Aggregate::Max)
            .d_hat(20)
            .churn(churn)
            .continuous(40, 2)
            .protocol(ProtocolKind::Wildfire(WildfireOpts::default()));
        let windows = &judged_plan(&g, &[1; 20], &plan)[0].windows;
        assert_eq!(windows.len(), 2);
        assert_eq!(
            windows[1].judged.hc_size, 20,
            "a no-op join must not bury the alive host"
        );
        assert_eq!(windows[1].judged.hu_size, 20);
    }

    #[test]
    fn continuous_stops_when_hq_dies() {
        let g = special::cycle(12);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(7)
            .churn(ChurnPlan::none().with_failure(Time(20), HostId(0)))
            .continuous(16, 4)
            .protocol(ProtocolKind::SpanningTree);
        let windows = &judged_plan(&g, &[1; 12], &plan)[0].windows;
        // hq dies at t=20, inside window 1 (16..32): windows 2+ never run.
        assert!(windows.len() <= 2, "got {} windows", windows.len());
    }

    #[test]
    fn continuous_slices_partitions_into_local_time() {
        // A cut active across [20, 44) spans windows 0..2 of width 24:
        // window 0 sees it from local t=20, window 1 from local t=0.
        let g = special::cycle(16);
        let sides: Vec<u8> = (0..16u8).map(|i| u8::from(i >= 8)).collect();
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(9)
            .partition(PartitionPlan::new(sides).window(Time(20), Time(44)))
            .continuous(24, 3)
            .protocol(ProtocolKind::SpanningTree);
        let windows = &judged_plan(&g, &[1; 16], &plan)[0].windows;
        assert_eq!(windows.len(), 3);
        // Window 1 runs entirely under the cut: the far side is hidden.
        let v1 = windows[1].judged.value.expect("hq alive");
        assert!(v1 < 16.0, "cut window must hide hosts, got {v1}");
        // Window 2 starts at t=48, after the heal: full count again.
        assert_eq!(windows[2].judged.value, Some(16.0));
    }

    #[test]
    fn degenerate_partition_window_slices_to_none() {
        // Regression: a zero-length window survives the `until <= start`
        // guard (until = 5 > start = 0), clamps to `[5, 5)` and used to
        // flip `any = true`, handing downstream a Some(plan) whose cut
        // can never activate — "a partition is active" with no partition.
        let plan = PartitionPlan::new(vec![0, 1]).window(Time(5), Time(5));
        assert!(slice_partition(&plan, Time::ZERO).is_none());
        assert!(slice_partition(&plan, Time(3)).is_none());
        // Mixed plan: the real window survives, the degenerate one is
        // dropped rather than contaminating `any`.
        let plan = PartitionPlan::new(vec![0, 1])
            .window(Time(5), Time(5))
            .window(Time(10), Time(20));
        let local = slice_partition(&plan, Time(8)).expect("real window remains");
        assert_eq!(local.windows(), &[(Time(2), Time(12))]);
    }

    #[test]
    fn sliced_churn_carries_no_sentinel_timestamps() {
        // Regression: dead-at-start hosts that never rejoin used to be
        // encoded as a join at Time(u64::MAX); any later shift or merge
        // over the sliced plan could wrap. They are now pinned with the
        // explicit initially-dead marker, and no sliced plan carries a
        // timestamp beyond the original plan's horizon.
        let n = 30usize;
        for seed in 0..8u64 {
            let plan = ChurnPlan::uniform_failures(n, 8, Time(0), Time(60), HostId(0), seed)
                .merge(ChurnPlan::oscillating(
                    n,
                    5,
                    Time(0),
                    Time(60),
                    12,
                    5,
                    HostId(0),
                    seed ^ 0xff,
                ))
                .merge(ChurnPlan::flash_crowd(
                    n,
                    4,
                    Time(10),
                    Time(50),
                    HostId(0),
                    seed.wrapping_mul(31),
                ));
            for start in [0u64, 15, 30, 45, 60, 75] {
                let Some(local) = slice_churn(&plan, n, Time(start), HostId(0)) else {
                    continue;
                };
                let horizon = Time(60); // no source event is later
                for &(t, h) in local.failures.iter().chain(&local.joins) {
                    assert!(
                        t <= horizon,
                        "seed {seed} start {start}: event ({t:?}, {h:?}) past horizon"
                    );
                    assert_ne!(t, Time(u64::MAX), "sentinel leaked");
                }
                // A merge over the sliced plan must stay sentinel-free
                // and keep the pinned hosts down.
                let before: Vec<HostId> = {
                    let mut d: Vec<HostId> = local.initially_dead().collect();
                    d.sort_by_key(|h| h.0);
                    d.dedup();
                    d
                };
                let merged = local.merge(ChurnPlan::none());
                let mut after: Vec<HostId> = merged.initially_dead().collect();
                after.sort_by_key(|h| h.0);
                after.dedup();
                assert_eq!(after, before, "seed {seed} start {start}");
                assert!(merged
                    .failures
                    .iter()
                    .chain(&merged.joins)
                    .all(|&(t, _)| t != Time(u64::MAX)));
            }
        }
    }

    #[test]
    fn same_tick_fail_join_after_window_start_keeps_host_dead_at_start() {
        // Regression: h dies at t=5 and has a (no-op) fail plus a
        // rejoin both at t=20 — the shape merged uniform + oscillating
        // plans produce. Slicing at t=10 must decode h as dead at the
        // window start: keeping the local fail@10 would make it h's
        // first local event, which the fail-before-join tie-break reads
        // as "starts alive", silently resurrecting the host for local
        // [0, 10).
        let h = HostId(3);
        let churn = ChurnPlan::none()
            .with_failure(Time(5), h)
            .with_failure(Time(20), h)
            .with_join(Time(20), h);
        let local = slice_churn(&churn, 8, Time(10), HostId(0)).expect("hq alive");
        assert!(
            local.initially_dead().any(|d| d == h),
            "h must start the window dead: {local:?}"
        );
        // The rejoin survives in local time; the no-op fail does not.
        assert!(local.joins.contains(&(Time(10), h)));
        assert!(!local.failures.contains(&(Time(10), h)));
    }

    #[test]
    fn stacked_cuts_slice_cut_by_cut() {
        // Cut A lives in [0, 6) (gone by the slice point); cut B spans
        // it. Slicing at t=10 must keep only cut B, shifted.
        let a = PartitionPlan::new(vec![0, 1]).window(Time(0), Time(6));
        let b = PartitionPlan::new(vec![1, 0]).window(Time(4), Time(30));
        let local = slice_partition(&a.stack(b), Time(10)).expect("cut B survives");
        let cuts: Vec<_> = local.cuts().collect();
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].0, &[1, 0]);
        assert_eq!(cuts[0].1, &[(Time(0), Time(20))]);
        // Both cuts expired: nothing survives.
        let a = PartitionPlan::new(vec![0, 1]).window(Time(0), Time(6));
        let b = PartitionPlan::new(vec![1, 0]).window(Time(4), Time(8));
        assert!(slice_partition(&a.stack(b), Time(10)).is_none());
    }

    #[test]
    fn cascading_partitions_run_through_judged_plan() {
        // Two overlapping regional cuts on a cycle: while either is
        // active its far side is unreachable; the declared count drops
        // below the static-network 16 even though nobody fails.
        let g = special::cycle(16);
        let first = (0..16u8).map(|i| u8::from(i >= 8)).collect();
        let second = (0..16u8).map(|i| u8::from((4..12).contains(&i))).collect();
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(9)
            .partition(
                PartitionPlan::new(first)
                    .window(Time(0), Time(8))
                    .stack(PartitionPlan::new(second).window(Time(5), Time(1_000))),
            )
            .protocol(ProtocolKind::SpanningTree);
        let judged = judged_plan(&g, &[1; 16], &plan);
        let out = judged[0].one();
        let v = out.value.expect("hq alive");
        assert!(v < 16.0, "cascading cuts must hide hosts, got {v}");
        assert_eq!(out.hu_size, 16, "everyone stays alive");
    }

    #[test]
    fn adversary_kills_reach_the_oracle_like_any_churn() {
        use pov_protocols::AdversarySpec;
        let g = special::cycle(24);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(13)
            .adversary(AdversarySpec::fm_maxima(2, 6, Time(2), Time(20)))
            .protocol(ProtocolKind::Wildfire(WildfireOpts::default()));
        let out = judged_plan(&g, &[1; 24], &plan);
        let judged = out[0].one();
        // Six adversary kills: HC loses at least the six dead hosts,
        // while HU still counts them (alive at the interval's start) —
        // exactly how statically scheduled failures are judged.
        assert!(judged.hc_size <= 18, "hc = {}", judged.hc_size);
        assert_eq!(judged.hu_size, 24);
        assert!(judged.value.is_some(), "hq is always spared");
    }

    #[test]
    #[should_panic(expected = "dynamic adversary cannot be combined")]
    fn adversary_plus_continuous_rejected() {
        use pov_protocols::AdversarySpec;
        let g = special::cycle(12);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(7)
            .adversary(AdversarySpec::fm_maxima(1, 2, Time(0), Time(10)))
            .continuous(16, 2)
            .protocol(ProtocolKind::SpanningTree);
        judged_plan(&g, &[1; 12], &plan);
    }

    #[test]
    #[should_panic(expected = "full query round")]
    fn continuous_rejects_too_small_window() {
        let g = special::cycle(8);
        let plan = RunPlan::query(Aggregate::Count)
            .d_hat(5)
            .continuous(6, 2)
            .protocol(ProtocolKind::SpanningTree);
        judged_plan(&g, &[1; 8], &plan);
    }

    #[test]
    #[should_panic(expected = "no protocols to execute")]
    fn plan_without_protocols_rejected() {
        let g = special::chain(3);
        judged_plan(&g, &[1; 3], &RunPlan::query(Aggregate::Count).d_hat(2));
    }
}
