//! Run one protocol and have the ORACLE judge it — the shared entry
//! point under the [`crate::facade`] and the scenario batch runner.
//!
//! [`judged_run`] is the single-run primitive: execute a
//! [`ProtocolKind`] over a graph with a [`RunConfig`], replay the
//! membership trace through the §6.2 ORACLE, and return the declared
//! value together with its Single-Site-Validity verdict and the §6.3
//! cost metrics. Everything the scenario subsystem aggregates comes out
//! of this one call.

use pov_oracle::{aggregate_bounds, host_sets, Verdict};
use pov_protocols::{runner, ProtocolKind, RunConfig};
use pov_sim::{Metrics, Time};
use pov_topology::Graph;

/// A declared value, the ORACLE's judgement of it, and the run's costs.
#[derive(Clone, Debug)]
pub struct JudgedOutcome {
    /// The value `hq` declared (`None` if `hq` died first).
    pub value: Option<f64>,
    /// When it was declared.
    pub declared_at: Option<Time>,
    /// The ORACLE's Single-Site-Validity judgement over the query
    /// interval `[0, declared_at]` (or the full deadline when nothing
    /// was declared).
    pub verdict: Verdict,
    /// `|HC|` — hosts continuously reachable from `hq` over the interval.
    pub hc_size: usize,
    /// `|HU|` — hosts alive at some instant of the interval.
    pub hu_size: usize,
    /// The valid envelope `[q(HC), q(HU)]` for interval-bounded
    /// aggregates (count/sum; `None` for min/max/avg, whose validity is
    /// witness-based).
    pub bounds: Option<(f64, f64)>,
    /// §6.3 cost metrics.
    pub metrics: Metrics,
}

impl JudgedOutcome {
    /// Time cost in ticks (declaration instant at `hq`).
    pub fn time_cost(&self) -> Option<u64> {
        self.declared_at.map(Time::ticks)
    }

    /// Multiplicative deviation of the declared value from the valid
    /// envelope: `max(q(HC)/v, v/q(HU), 1)`. `1.0` means the value sat
    /// inside the bounds; WILDFIRE's Approximate SSV (Thm 5.3) keeps
    /// this within FM noise while best-effort protocols blow up. `None`
    /// when the aggregate has no interval bounds, nothing was declared,
    /// or `v <= 0`.
    pub fn deviation(&self) -> Option<f64> {
        let (lo, hi) = self.bounds?;
        let v = self.value?;
        if v <= 0.0 {
            return None;
        }
        Some((lo / v).max(v / hi.max(1e-12)).max(1.0))
    }
}

/// Run `kind` over `graph` (host `h` holding `values[h]`) under `cfg`,
/// then judge the outcome against the ORACLE bounds.
pub fn judged_run(
    kind: ProtocolKind,
    graph: &Graph,
    values: &[u64],
    cfg: &RunConfig,
) -> JudgedOutcome {
    let outcome = runner::run(kind, graph, values, cfg);
    // The query interval ends at declaration, or at the full deadline
    // `2·D̂·δ` in ticks when nothing was declared.
    let deadline = Time(2 * cfg.d_hat as u64 * cfg.delay.bound());
    let end = outcome.declared_at.unwrap_or(deadline);
    let sets = host_sets(graph, &outcome.trace, cfg.hq, Time::ZERO, end);
    let verdict = Verdict::judge(
        cfg.aggregate,
        &sets,
        values,
        outcome.value.unwrap_or(f64::NAN),
    );
    JudgedOutcome {
        value: outcome.value,
        declared_at: outcome.declared_at,
        verdict,
        hc_size: sets.hc_len(),
        hu_size: sets.hu_len(),
        bounds: aggregate_bounds(cfg.aggregate, &sets, values),
        metrics: outcome.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_protocols::wildfire::WildfireOpts;
    use pov_protocols::Aggregate;
    use pov_sim::{ChurnPlan, PartitionPlan};
    use pov_topology::generators::special;
    use pov_topology::HostId;

    #[test]
    fn judged_wildfire_max_is_valid() {
        let g = special::cycle(20);
        let values: Vec<u64> = (1..=20).collect();
        let cfg = RunConfig::new(Aggregate::Max, 11);
        let out = judged_run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &g,
            &values,
            &cfg,
        );
        assert_eq!(out.value, Some(20.0));
        assert!(out.verdict.is_valid());
        assert_eq!(out.hc_size, 20);
        assert_eq!(out.hu_size, 20);
        assert!(out.metrics.messages_sent > 0);
        assert!(out.time_cost().is_some());
    }

    #[test]
    fn churn_shrinks_hc_through_judged_run() {
        let g = special::cycle(12);
        let cfg = RunConfig {
            churn: ChurnPlan::none()
                .with_failure(Time(1), HostId(5))
                .with_failure(Time(1), HostId(8)),
            ..RunConfig::new(Aggregate::Count, 7)
        };
        let out = judged_run(ProtocolKind::SpanningTree, &g, &[1; 12], &cfg);
        // Two failures on a cycle strand the arc between them.
        assert!(out.hc_size < 10, "hc = {}", out.hc_size);
        assert_eq!(out.hu_size, 12);
    }

    #[test]
    fn partition_runs_through_judged_run() {
        // Sever half a cycle for the whole query: WILDFIRE cannot hear
        // the far side even though every host stays alive, so the count
        // undershoots HC — the partition regime violates validity in a
        // way failure-only churn never makes WILDFIRE do.
        let g = special::cycle(16);
        let sides = (0..16u8).map(|i| u8::from(i >= 8)).collect();
        let cfg = RunConfig {
            partition: Some(PartitionPlan::new(sides).window(Time(0), Time(1_000))),
            ..RunConfig::new(Aggregate::Count, 9)
        };
        let out = judged_run(ProtocolKind::SpanningTree, &g, &[1; 16], &cfg);
        let v = out.value.expect("hq alive");
        assert!(v < 16.0, "partition must hide hosts, got {v}");
        // All 16 hosts remain alive: HU (and HC — paths exist in the
        // static graph) still count them.
        assert_eq!(out.hu_size, 16);
    }
}
