//! Attribute-value workloads.
//!
//! §6.1: *"Each host h in G possesses an attribute value that is drawn
//! from a Zipfian distribution in the range [10, 500]."* The same
//! distribution feeds the operator-accuracy experiment of Fig 6.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The paper's value range.
pub const PAPER_MIN: u64 = 10;
/// The paper's value range.
pub const PAPER_MAX: u64 = 500;

/// Inverse-CDF sampler for a Zipfian distribution over the integers
/// `[min, max]`: `P(min + k) ∝ (k + 1)^{-s}`.
#[derive(Clone, Debug)]
pub struct Zipf {
    min: u64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `[min, max]` with exponent `s` (the classic
    /// Zipf has `s = 1`).
    pub fn new(min: u64, max: u64, s: f64) -> Self {
        assert!(max >= min, "empty value range");
        assert!(s > 0.0, "exponent must be positive");
        let k = (max - min + 1) as usize;
        let mut weights = Vec::with_capacity(k);
        for i in 0..k {
            weights.push(((i + 1) as f64).powf(-s));
        }
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        Zipf { min, cdf }
    }

    /// The paper's configuration: `[10, 500]`, exponent 1.
    pub fn paper() -> Self {
        Zipf::new(PAPER_MIN, PAPER_MAX, 1.0)
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        self.min + idx as u64
    }

    /// Draw `n` values.
    pub fn sample_n(&self, n: usize, rng: &mut SmallRng) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The standard per-host value assignment used across the experiments:
/// `n` paper-Zipf values from a seed.
pub fn paper_values(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    Zipf::paper().sample_n(n, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_within_range() {
        let vals = paper_values(5_000, 1);
        assert_eq!(vals.len(), 5_000);
        assert!(vals.iter().all(|&v| (PAPER_MIN..=PAPER_MAX).contains(&v)));
    }

    #[test]
    fn zipf_is_head_heavy() {
        let vals = paper_values(20_000, 2);
        let head = vals.iter().filter(|&&v| v < 30).count();
        let tail = vals.iter().filter(|&&v| v > 480).count();
        assert!(
            head > 10 * tail.max(1),
            "head {head} should dominate tail {tail}"
        );
        // The most frequent value is the smallest.
        let min_count = vals.iter().filter(|&&v| v == PAPER_MIN).count();
        assert!(
            min_count * 10 > vals.len() / 10,
            "min value count {min_count}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(paper_values(100, 7), paper_values(100, 7));
        assert_ne!(paper_values(100, 7), paper_values(100, 8));
    }

    #[test]
    fn degenerate_single_value_range() {
        let z = Zipf::new(42, 42, 1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 42);
        }
    }

    #[test]
    fn higher_exponent_concentrates_more() {
        let mut rng = SmallRng::seed_from_u64(3);
        let flat = Zipf::new(1, 100, 0.5).sample_n(5_000, &mut rng);
        let steep = Zipf::new(1, 100, 2.0).sample_n(5_000, &mut rng);
        let head = |v: &[u64]| v.iter().filter(|&&x| x <= 3).count();
        assert!(head(&steep) > head(&flat));
    }

    #[test]
    #[should_panic(expected = "empty value range")]
    fn rejects_inverted_range() {
        Zipf::new(10, 5, 1.0);
    }

    // Property coverage past the paper defaults: arbitrary ranges and
    // exponents (s ≠ 1 included), not just `[10, 500]` at s = 1. The
    // vendored proptest only ships integer range strategies, so the
    // exponent is drawn as a scaled integer: 5..400 → s ∈ [0.05, 4.0).
    mod props {
        use super::*;
        use proptest::prelude::*;

        fn exponent() -> impl Strategy<Value = f64> {
            (5u64..400).prop_map(|raw| raw as f64 / 100.0)
        }

        proptest! {
            /// The inverse-CDF table is sound for any parameters: one
            /// entry per integer in the range, non-decreasing, and
            /// normalised to 1 at the tail.
            #[test]
            fn cdf_is_monotone_and_complete(
                min in 0u64..10_000,
                span in 0u64..400,
                s in exponent(),
            ) {
                let z = Zipf::new(min, min + span, s);
                prop_assert_eq!(z.cdf.len() as u64, span + 1);
                for w in z.cdf.windows(2) {
                    prop_assert!(w[0] <= w[1], "CDF must be monotone");
                }
                let tail = *z.cdf.last().unwrap();
                prop_assert!((tail - 1.0).abs() < 1e-9, "CDF tail {tail}");
            }

            /// Every draw lands inside `[min, max]` for any exponent.
            #[test]
            fn samples_stay_in_range(
                min in 0u64..10_000,
                span in 0u64..400,
                s in exponent(),
                seed in 0u64..1 << 48,
            ) {
                let z = Zipf::new(min, min + span, s);
                let mut rng = SmallRng::seed_from_u64(seed);
                for v in z.sample_n(64, &mut rng) {
                    prop_assert!((min..=min + span).contains(&v));
                }
            }

            /// A degenerate single-value range is a constant sampler.
            #[test]
            fn single_value_range_is_constant(
                min in 0u64..10_000,
                s in exponent(),
                seed in 0u64..1 << 48,
            ) {
                let z = Zipf::new(min, min, s);
                let mut rng = SmallRng::seed_from_u64(seed);
                prop_assert!(z.sample_n(32, &mut rng).iter().all(|&v| v == min));
            }

            /// Identical seeds replay identical streams for any
            /// parameters — the determinism contract every experiment
            /// leans on.
            #[test]
            fn identical_seeds_identical_streams(
                min in 0u64..10_000,
                span in 0u64..400,
                s in exponent(),
                seed in 0u64..1 << 48,
            ) {
                let z = Zipf::new(min, min + span, s);
                let a = z.sample_n(50, &mut SmallRng::seed_from_u64(seed));
                let b = z.sample_n(50, &mut SmallRng::seed_from_u64(seed));
                prop_assert_eq!(a, b);
            }
        }
    }
}
