//! Fig 12 — computation-cost distribution.
//!
//! §6.6.1: for a count query, plot how many hosts processed how many
//! messages, on Power-Law and Grid. WILDFIRE's curve has the same shape
//! as SPANNINGTREE's, shifted right; the *maximum* is ~2× SPANNINGTREE's
//! on Power-Law, ~4× on Random, and a dramatic ~44× on Grid (8
//! neighbours hear every radio transmission × ~5× more transmissions).

use crate::report::Table;
use crate::workload;
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_sim::Medium;
use pov_topology::analysis;
use pov_topology::generators::TopologyKind;

/// Configuration for the Fig 12 measurement.
#[derive(Clone, Debug)]
pub struct Config {
    /// Topologies (with sizes) to measure.
    pub topologies: Vec<(TopologyKind, usize)>,
    /// FM repetitions.
    pub c: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Config {
            topologies: vec![
                (TopologyKind::PowerLaw, 40_000),
                (TopologyKind::Grid, 10_000),
            ],
            c: 8,
            seed: 12,
        }
    }

    /// A fast configuration for tests/benches.
    pub fn smoke() -> Self {
        Config {
            topologies: vec![(TopologyKind::PowerLaw, 600), (TopologyKind::Grid, 400)],
            c: 8,
            seed: 12,
        }
    }
}

/// Distribution summary for one (topology, protocol) pair.
#[derive(Clone, Debug)]
pub struct Row {
    /// Topology name.
    pub topology: String,
    /// Protocol name.
    pub protocol: String,
    /// Full histogram: `histogram[c]` = hosts that processed `c` messages.
    pub histogram: Vec<u64>,
    /// Median messages processed per host.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum (the protocol's computation cost, §6.3).
    pub max: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Run the measurement.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &(kind, n) in &cfg.topologies {
        let graph = kind.build(n, cfg.seed);
        let values = workload::paper_values(graph.num_hosts(), cfg.seed ^ 0xd15c);
        let d = analysis::diameter_estimate(&graph, 2, cfg.seed | 1).max(1);
        // Grid runs under radio (the sensor scenario of §6.6.1), overlay
        // topologies point-to-point.
        let medium = if kind == TopologyKind::Grid {
            Medium::Radio
        } else {
            Medium::PointToPoint
        };
        for (label, proto) in [
            ("WILDFIRE", ProtocolKind::Wildfire(WildfireOpts::default())),
            ("SPANNINGTREE", ProtocolKind::SpanningTree),
        ] {
            let run_cfg = RunPlan::query(Aggregate::Count)
                .d_hat(d + 2)
                .repetitions(cfg.c)
                .medium(medium)
                .seed(cfg.seed);
            let out = runner::run(proto, &graph, &values, &run_cfg);
            let mut sorted: Vec<u64> = out
                .metrics
                .processed_per_host
                .iter()
                .map(|&c| u64::from(c))
                .collect();
            sorted.sort_unstable();
            rows.push(Row {
                topology: kind.name().to_string(),
                protocol: label.to_string(),
                histogram: out.metrics.computation_histogram(),
                p50: percentile(&sorted, 0.50),
                p99: percentile(&sorted, 0.99),
                max: *sorted.last().unwrap_or(&0),
            });
        }
    }
    rows
}

/// Max-computation-cost ratio WILDFIRE / SPANNINGTREE per topology.
pub fn max_ratios(rows: &[Row]) -> Vec<(String, f64)> {
    let mut topologies: Vec<String> = rows.iter().map(|r| r.topology.clone()).collect();
    topologies.sort();
    topologies.dedup();
    topologies
        .into_iter()
        .filter_map(|t| {
            let wf = rows
                .iter()
                .find(|r| r.topology == t && r.protocol == "WILDFIRE")?
                .max as f64;
            let st = rows
                .iter()
                .find(|r| r.topology == t && r.protocol == "SPANNINGTREE")?
                .max as f64;
            Some((t, wf / st.max(1.0)))
        })
        .collect()
}

/// Render the distribution summary.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Fig 12 — computation cost per host (count query)",
        &["topology", "protocol", "p50", "p99", "max"],
    );
    for r in rows {
        t.push(vec![
            r.topology.clone(),
            r.protocol.clone(),
            r.p50.to_string(),
            r.p99.to_string(),
            r.max.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildfire_costs_more_computation() {
        let rows = run(&Config::smoke());
        for (topo, ratio) in max_ratios(&rows) {
            assert!(
                ratio > 1.0,
                "{topo}: WILDFIRE max should exceed ST, got {ratio:.2}"
            );
        }
    }

    #[test]
    fn grid_ratio_dwarfs_powerlaw_ratio() {
        // The paper's 44x-vs-2x contrast: the Grid (radio) ratio must be
        // far larger than the Power-Law one.
        let rows = run(&Config::smoke());
        let ratios = max_ratios(&rows);
        let get = |name: &str| {
            ratios
                .iter()
                .find(|(t, _)| t == name)
                .map(|&(_, r)| r)
                .unwrap()
        };
        assert!(
            get("Grid") > 2.0 * get("Power-law"),
            "Grid {:.1}x should dwarf Power-law {:.1}x",
            get("Grid"),
            get("Power-law")
        );
    }

    #[test]
    fn histograms_cover_all_hosts() {
        let cfg = Config::smoke();
        let rows = run(&cfg);
        for r in &rows {
            let hosts: u64 = r.histogram.iter().sum();
            let expected = cfg
                .topologies
                .iter()
                .find(|(k, _)| k.name() == r.topology)
                .map(|&(k, n)| k.build(n, cfg.seed).num_hosts() as u64)
                .unwrap();
            assert_eq!(hosts, expected, "{} / {}", r.topology, r.protocol);
        }
    }

    #[test]
    fn percentiles_ordered() {
        let rows = run(&Config::smoke());
        for r in &rows {
            assert!(r.p50 <= r.p99 && r.p99 <= r.max, "{r:?}");
        }
    }
}
