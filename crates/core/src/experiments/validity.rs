//! Figs 7, 8, 9 — achieving Single-Site Validity under dynamism.
//!
//! §6.5: plot the declared value `v` against the number `R` of host
//! departures, for count (Fig 7, Gnutella), sum (Fig 8, Gnutella) and
//! count on Grid (Fig 9). `R` sweeps 256…4096; each point is the mean of
//! 10 trials with a 95% CI. The ORACLE curves `q(HC)` and `q(HU)` bound
//! the valid range: WILDFIRE stays inside across all `R`, SPANNINGTREE
//! and DIRECTEDACYCLICGRAPH fall below as dynamism grows.

use crate::report::{fmt_mean_ci, Table};
use crate::workload;
use pov_oracle::{aggregate_bounds, host_sets};
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_sim::{ChurnPlan, Time};
use pov_sketch::stats;
use pov_topology::generators::TopologyKind;
use pov_topology::{analysis, HostId};

/// Configuration for one validity sweep (one figure).
#[derive(Clone, Debug)]
pub struct Config {
    /// Topology under test.
    pub topology: TopologyKind,
    /// Number of hosts.
    pub n: usize,
    /// Aggregate under test (count for Figs 7/9, sum for Fig 8).
    pub aggregate: Aggregate,
    /// Departure counts `R` to sweep.
    pub r_values: Vec<usize>,
    /// Trials per point.
    pub trials: usize,
    /// FM repetitions.
    pub c: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// Fig 7: count on Gnutella, paper scale.
    pub fn paper_fig07() -> Self {
        Config {
            topology: TopologyKind::Gnutella,
            n: 39_046,
            aggregate: Aggregate::Count,
            r_values: vec![256, 512, 1024, 2048, 4096],
            trials: 10,
            c: 8,
            seed: 7,
        }
    }

    /// Fig 8: sum on Gnutella, paper scale.
    pub fn paper_fig08() -> Self {
        Config {
            aggregate: Aggregate::Sum,
            seed: 8,
            ..Self::paper_fig07()
        }
    }

    /// Fig 9: count on Grid, paper scale.
    pub fn paper_fig09() -> Self {
        Config {
            topology: TopologyKind::Grid,
            n: 10_000,
            seed: 9,
            ..Self::paper_fig07()
        }
    }

    /// Scaled-down sweep for tests/benches: departures scale with `n` in
    /// the same proportion as the paper's (256…4096 out of ~40K), with
    /// one harsher point past the paper's top end so the best-effort
    /// collapse is visible even at small scale. `c = 16` keeps FM noise
    /// below the effects under study on small host counts.
    pub fn smoke(topology: TopologyKind, aggregate: Aggregate, n: usize) -> Self {
        let scale = |r: usize| (r * n / 39_046).max(1);
        Config {
            topology,
            n,
            aggregate,
            r_values: vec![scale(256), scale(2048), scale(8192)],
            trials: 5,
            c: 16,
            seed: 7,
        }
    }
}

/// Per-protocol statistics at one `R`.
#[derive(Clone, Debug)]
pub struct ProtocolPoint {
    /// Protocol label as plotted in the paper.
    pub label: String,
    /// Mean and 95% CI of the declared value.
    pub value: (f64, f64),
    /// Fraction of trials whose value fell strictly within
    /// `[q(HC), q(HU)]`.
    pub valid_fraction: f64,
    /// Mean multiplicative deviation from the valid envelope:
    /// `max(q(HC)/v, v/q(HU), 1)` averaged over trials. 1.0 means every
    /// trial was inside the bounds; WILDFIRE's Approximate SSV (Thm 5.3)
    /// keeps this within FM noise while best-effort protocols blow up.
    pub deviation: f64,
    /// Mean messages sent.
    pub messages: f64,
}

/// One `R` row of the figure.
#[derive(Clone, Debug)]
pub struct RowR {
    /// Departures injected.
    pub r: usize,
    /// Mean ± CI of the ORACLE lower bound `q(HC)`.
    pub oracle_hc: (f64, f64),
    /// Mean ± CI of the ORACLE upper bound `q(HU)`.
    pub oracle_hu: (f64, f64),
    /// Per-protocol statistics.
    pub protocols: Vec<ProtocolPoint>,
}

/// The protocols the §6.5 figures compare.
fn contestants() -> Vec<(String, ProtocolKind)> {
    vec![
        (
            "WILDFIRE".into(),
            ProtocolKind::Wildfire(WildfireOpts::default()),
        ),
        ("SPANNINGTREE".into(), ProtocolKind::SpanningTree),
        ("DAG(k=2)".into(), ProtocolKind::Dag { k: 2 }),
        ("DAG(k=3)".into(), ProtocolKind::Dag { k: 3 }),
    ]
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Vec<RowR> {
    let graph = cfg.topology.build(cfg.n, cfg.seed);
    let values = workload::paper_values(graph.num_hosts(), cfg.seed ^ 0xfeed);
    let d = analysis::diameter_estimate(&graph, 4, cfg.seed | 1);
    let d_hat = d + 2;
    let deadline = 2 * d_hat as u64;
    let hq = HostId(0);
    let names: Vec<(String, ProtocolKind)> = contestants();

    let mut rows = Vec::with_capacity(cfg.r_values.len());
    for &r in &cfg.r_values {
        let mut hc_stats = Vec::with_capacity(cfg.trials);
        let mut hu_stats = Vec::with_capacity(cfg.trials);
        #[derive(Default)]
        struct Acc {
            values: Vec<f64>,
            strictly_valid: usize,
            messages: Vec<f64>,
            deviations: Vec<f64>,
        }
        let mut per_proto: Vec<Acc> = names.iter().map(|_| Acc::default()).collect();

        for trial in 0..cfg.trials {
            let churn_seed = cfg
                .seed
                .wrapping_mul(31)
                .wrapping_add(r as u64)
                .wrapping_mul(31)
                .wrapping_add(trial as u64);
            let churn = ChurnPlan::uniform_failures(
                graph.num_hosts(),
                r,
                Time::ZERO,
                Time(deadline),
                hq,
                churn_seed,
            );
            let mut bounds_done = false;
            for (i, (_, kind)) in names.iter().enumerate() {
                let run_cfg = RunPlan::query(cfg.aggregate)
                    .d_hat(d_hat)
                    .repetitions(cfg.c)
                    .churn(churn.clone())
                    .seed(churn_seed ^ 0x5a5a)
                    .from_host(hq);
                let outcome = runner::run(*kind, &graph, &values, &run_cfg);
                // The oracle bounds depend only on the churn, which is
                // shared across protocols within a trial.
                if !bounds_done {
                    let sets = host_sets(&graph, &outcome.trace, hq, Time::ZERO, Time(deadline));
                    let (lo, hi) = aggregate_bounds(cfg.aggregate, &sets, &values)
                        .expect("count/sum always bounded");
                    hc_stats.push(lo);
                    hu_stats.push(hi);
                    bounds_done = true;
                }
                let (lo, hi) = (
                    *hc_stats.last().expect("bounds recorded"),
                    *hu_stats.last().expect("bounds recorded"),
                );
                if let Some(v) = outcome.value {
                    per_proto[i].values.push(v);
                    if v >= lo - 1e-9 && v <= hi + 1e-9 {
                        per_proto[i].strictly_valid += 1;
                    }
                    let deviation = if v <= 0.0 {
                        f64::INFINITY
                    } else {
                        (lo / v).max(v / hi.max(1e-12)).max(1.0)
                    };
                    per_proto[i].deviations.push(deviation);
                }
                per_proto[i]
                    .messages
                    .push(outcome.metrics.messages_sent as f64);
            }
        }

        rows.push(RowR {
            r,
            oracle_hc: stats::mean_ci95(&hc_stats),
            oracle_hu: stats::mean_ci95(&hu_stats),
            protocols: names
                .iter()
                .zip(per_proto)
                .map(|((label, _), acc)| ProtocolPoint {
                    label: label.clone(),
                    value: stats::mean_ci95(&acc.values),
                    valid_fraction: acc.strictly_valid as f64 / cfg.trials as f64,
                    deviation: stats::mean(&acc.deviations),
                    messages: stats::mean(&acc.messages),
                })
                .collect(),
        });
    }
    rows
}

/// Render as the paper's figure series.
pub fn table(cfg: &Config, rows: &[RowR]) -> Table {
    let title = format!(
        "{} query on the {} topology (n = {}) — declared value vs departures R",
        cfg.aggregate.name(),
        cfg.topology.name(),
        cfg.n
    );
    let mut t = Table::new(
        title,
        &[
            "R",
            "ORACLE q(HC)",
            "ORACLE q(HU)",
            "WILDFIRE",
            "wf-dev",
            "SPANNINGTREE",
            "st-dev",
            "DAG(k=2)",
            "DAG(k=3)",
        ],
    );
    for row in rows {
        let find = |label: &str| {
            row.protocols
                .iter()
                .find(|p| p.label == label)
                .expect("protocol present")
        };
        t.push(vec![
            row.r.to_string(),
            fmt_mean_ci(row.oracle_hc),
            fmt_mean_ci(row.oracle_hu),
            fmt_mean_ci(find("WILDFIRE").value),
            format!("{:.2}x", find("WILDFIRE").deviation),
            fmt_mean_ci(find("SPANNINGTREE").value),
            format!("{:.2}x", find("SPANNINGTREE").deviation),
            fmt_mean_ci(find("DAG(k=2)").value),
            fmt_mean_ci(find("DAG(k=3)").value),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_shapes_hold() {
        let cfg = Config::smoke(TopologyKind::Gnutella, Aggregate::Count, 600);
        let rows = run(&cfg);
        assert_eq!(rows.len(), cfg.r_values.len());
        for row in &rows {
            // Bounds nest.
            assert!(row.oracle_hc.0 <= row.oracle_hu.0 + 1e-9);
            let wf = row
                .protocols
                .iter()
                .find(|p| p.label == "WILDFIRE")
                .unwrap();
            // The headline claim, in its Thm 5.3 form: WILDFIRE tracks
            // the valid envelope within (small) FM noise at every R —
            // far tighter than the theorem's factor-c guarantee.
            assert!(
                wf.deviation <= 2.0,
                "WILDFIRE deviation at R={}: {:.2}x",
                row.r,
                wf.deviation
            );
        }
        // Best-effort protocols degrade by the largest R: their mean
        // falls below the oracle lower bound, and — comparing the means,
        // as the paper's figures do — deviates from the envelope more
        // than WILDFIRE's mean does.
        let dev_of_mean =
            |v: f64, row: &RowR| (row.oracle_hc.0 / v).max(v / row.oracle_hu.0).max(1.0);
        let last = rows.last().unwrap();
        let st = last
            .protocols
            .iter()
            .find(|p| p.label == "SPANNINGTREE")
            .unwrap();
        let wf = last
            .protocols
            .iter()
            .find(|p| p.label == "WILDFIRE")
            .unwrap();
        assert!(
            st.value.0 < last.oracle_hc.0,
            "ST mean {} should fall below q(HC) {} at R={}",
            st.value.0,
            last.oracle_hc.0,
            last.r
        );
        assert!(
            dev_of_mean(st.value.0, last) > dev_of_mean(wf.value.0, last),
            "ST mean-deviation {:.2}x should exceed WILDFIRE's {:.2}x",
            dev_of_mean(st.value.0, last),
            dev_of_mean(wf.value.0, last)
        );
    }

    #[test]
    fn grid_spanning_tree_collapses() {
        // Fig 9's observation: deep trees on Grid lose huge subtrees.
        let cfg = Config::smoke(TopologyKind::Grid, Aggregate::Count, 400);
        let rows = run(&cfg);
        let last = rows.last().unwrap();
        let st = last
            .protocols
            .iter()
            .find(|p| p.label == "SPANNINGTREE")
            .unwrap();
        let wf = last
            .protocols
            .iter()
            .find(|p| p.label == "WILDFIRE")
            .unwrap();
        assert!(
            st.value.0 < wf.value.0,
            "ST ({}) should trail WILDFIRE ({}) on Grid under churn",
            st.value.0,
            wf.value.0
        );
    }

    #[test]
    fn table_renders_all_rows() {
        let cfg = Config::smoke(TopologyKind::Random, Aggregate::Sum, 300);
        let rows = run(&cfg);
        let t = table(&cfg, &rows);
        assert_eq!(t.len(), rows.len());
    }
}
