//! Fig 11 — communication costs on Grid topologies under the radio
//! medium.
//!
//! §6.6: sensor hosts broadcast — one transmission reaches all 8
//! neighbours for the price of a single message — so DAG overlaps
//! SPANNINGTREE exactly, WILDFIRE's count costs ~5× SPANNINGTREE, and
//! (the striking result) WILDFIRE's min/max cost *less* than
//! SPANNINGTREE thanks to early aggregation: a host whose value is
//! already dominated never sends it.

use crate::report::Table;
use crate::workload;
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_sim::Medium;
use pov_topology::analysis;
use pov_topology::generators;

/// Configuration for the Fig 11 sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Grid side lengths (|H| = side²).
    pub sides: Vec<usize>,
    /// FM repetitions.
    pub c: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// The paper's configuration (grids up to 100×100 = 10K hosts).
    pub fn paper() -> Self {
        Config {
            sides: vec![50, 70, 85, 100],
            c: 8,
            seed: 11,
        }
    }

    /// A fast configuration for tests/benches.
    pub fn smoke() -> Self {
        Config {
            sides: vec![15, 20],
            c: 8,
            seed: 11,
        }
    }
}

/// One measured point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Hosts in the grid.
    pub n: usize,
    /// Series label.
    pub series: String,
    /// Total messages (radio transmissions).
    pub messages: u64,
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &side in &cfg.sides {
        let graph = generators::grid_square(side);
        let values = workload::paper_values(graph.num_hosts(), cfg.seed ^ 0xcafe);
        let d = analysis::diameter_estimate(&graph, 2, cfg.seed | 1).max(1);
        let mut measure = |series: &str, kind: ProtocolKind, aggregate: Aggregate| {
            let run_cfg = RunPlan::query(aggregate)
                .d_hat(d + 2)
                .repetitions(cfg.c)
                .medium(Medium::Radio)
                .seed(cfg.seed);
            let out = runner::run(kind, &graph, &values, &run_cfg);
            rows.push(Row {
                n: graph.num_hosts(),
                series: series.to_string(),
                messages: out.metrics.messages_sent,
            });
        };
        let wf = ProtocolKind::Wildfire(WildfireOpts::default());
        measure("WILDFIRE count", wf, Aggregate::Count);
        measure("WILDFIRE max", wf, Aggregate::Max);
        measure("WILDFIRE min", wf, Aggregate::Min);
        measure(
            "SPANNINGTREE count",
            ProtocolKind::SpanningTree,
            Aggregate::Count,
        );
        measure(
            "DAG(k=2) count",
            ProtocolKind::Dag { k: 2 },
            Aggregate::Count,
        );
    }
    rows
}

/// Render as the paper's figure series.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Fig 11 — communication cost on Grid (radio medium)",
        &["|H|", "series", "messages"],
    );
    for r in rows {
        t.push(vec![
            r.n.to_string(),
            r.series.clone(),
            r.messages.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rows: &[Row], n: usize, s: &str) -> u64 {
        rows.iter()
            .find(|r| r.n == n && r.series == s)
            .map(|r| r.messages)
            .unwrap()
    }

    #[test]
    fn dag_overlaps_spanning_tree_on_radio() {
        let rows = run(&Config::smoke());
        let n = 15 * 15;
        let st = series(&rows, n, "SPANNINGTREE count") as f64;
        let dag = series(&rows, n, "DAG(k=2) count") as f64;
        // §6.6: "the DIRECTEDACYCLICGRAPH curve overlaps SPANNINGTREE as
        // the cost of sending messages to k ≥ 1 parents is the same".
        // (Our DAG unicasts reports, so allow modest slack.)
        assert!((0.7..1.5).contains(&(dag / st)), "DAG {dag} vs ST {st}");
    }

    #[test]
    fn wildfire_count_costs_multiple_of_st() {
        let rows = run(&Config::smoke());
        let n = 20 * 20;
        let wf = series(&rows, n, "WILDFIRE count") as f64;
        let st = series(&rows, n, "SPANNINGTREE count") as f64;
        let ratio = wf / st;
        assert!(
            (1.5..12.0).contains(&ratio),
            "WILDFIRE/ST = {ratio:.2} (paper: ~5x)"
        );
    }

    #[test]
    fn wildfire_min_beats_count() {
        // §6.6: early aggregation makes min/max far cheaper than count.
        let rows = run(&Config::smoke());
        let n = 20 * 20;
        let count = series(&rows, n, "WILDFIRE count");
        let min = series(&rows, n, "WILDFIRE min");
        assert!(
            min < count,
            "min ({min}) should cost less than count ({count})"
        );
    }

    #[test]
    fn all_series_present_per_size() {
        let cfg = Config::smoke();
        let rows = run(&cfg);
        assert_eq!(rows.len(), cfg.sides.len() * 5);
    }
}
