//! Targeted vs uniform churn at equal event budget (ROADMAP:
//! "adversary targeting the sketch").
//!
//! §6.2 evaluates WILDFIRE under an *oblivious* adversary — `R` hosts
//! drawn uniformly before the run starts. The dynamic
//! [`SketchAdversary`](pov_sim::SketchAdversary) spends the same `R`
//! kills adaptively: each wave it inspects the live run and kills the
//! hosts whose partials currently hold the most sketch mass — the
//! carriers of the FM maxima as they converge toward `hq`. The hosts
//! carrying the answer die mid-query, wave after wave.
//!
//! The driver judges both regimes against *two* oracle envelopes, and
//! the split is the finding:
//!
//! * **Single-Site deviation** (`[q(HC), q(HU)]`) stays within FM
//!   noise for both regimes — Theorem 5.3's Approximate SSV really is
//!   adversary-proof, because every kill also shrinks `HC`: the
//!   guarantee *adapts* to the damage.
//! * **Interval deviation** (`[q(HI), q(HU)]`, `HI` = alive
//!   throughout, §4.1 — no reachability excusal) explodes under the
//!   targeted adversary while staying near 1 under uniform churn. The
//!   adversary strangles the convergecast: almost every host stays
//!   *alive* (still in `HI`) yet its contribution never reaches `hq`,
//!   so the declared count collapses to `hq`'s neighbourhood. This is
//!   Theorem 4.2's separation — Interval Validity is unachievable
//!   against adaptive failures — made constructive at equal budget.
//!
//! In other words: the adaptive adversary cannot break the SSV
//! envelope, but it can hollow it out — the answer degrades by an
//! order of magnitude while remaining "valid". That asymmetry is the
//! price of validity under worst-case dynamics (Casteigts' framing in
//! PAPERS.md: adversarial schedules, not random churn, set the price).

use crate::report::Table;
use crate::workload;
use pov_oracle::interval_bounds;
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, AdversarySpec, Aggregate, ProtocolKind, RunPlan};
use pov_sim::{ChurnPlan, Time, Trace};
use pov_topology::generators::TopologyKind;
use pov_topology::{Graph, HostId};

/// Configuration for the targeted-vs-uniform comparison.
#[derive(Clone, Debug)]
pub struct Config {
    /// Topology family.
    pub topology: TopologyKind,
    /// Host count.
    pub n: usize,
    /// Kill budgets to sweep, as fractions of `n`.
    pub budget_fractions: Vec<f64>,
    /// Hosts the adversary kills per wave.
    pub kills_per_wave: usize,
    /// Trials per budget (each with its own uniform draw / seed).
    pub trials: usize,
    /// FM repetitions.
    pub c: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// Paper-scale comparison.
    pub fn paper() -> Self {
        Config {
            topology: TopologyKind::Random,
            n: 10_000,
            budget_fractions: vec![0.10, 0.20],
            kills_per_wave: 192,
            trials: 5,
            c: 16,
            seed: 23,
        }
    }

    /// A fast configuration for tests/benches.
    pub fn smoke() -> Self {
        Config {
            topology: TopologyKind::Random,
            n: 300,
            budget_fractions: vec![0.15, 0.25],
            kills_per_wave: 6,
            trials: 4,
            c: 16,
            seed: 23,
        }
    }
}

/// One budget's comparison row (all metrics are means over trials).
#[derive(Clone, Debug)]
pub struct Row {
    /// Topology name.
    pub topology: String,
    /// Kill budget (number of hosts, equal for both regimes).
    pub budget: usize,
    /// Declared count under the sketch-targeting adversary.
    pub targeted_value: f64,
    /// Declared count under uniform churn.
    pub uniform_value: f64,
    /// `|HC|` under the adversary (how much the SSV envelope shrank).
    pub targeted_hc: f64,
    /// `|HC|` under uniform churn.
    pub uniform_hc: f64,
    /// Single-Site (§4.2) deviation under the adversary.
    pub targeted_ssv_dev: f64,
    /// Single-Site deviation under uniform churn.
    pub uniform_ssv_dev: f64,
    /// Interval-Validity (§4.1) deviation under the adversary.
    pub targeted_interval_dev: f64,
    /// Interval-Validity deviation under uniform churn.
    pub uniform_interval_dev: f64,
}

impl Row {
    /// Targeted / uniform *interval* deviation ratio — the constructive
    /// Theorem 4.2 separation at equal budget.
    pub fn interval_ratio(&self) -> f64 {
        self.targeted_interval_dev / self.uniform_interval_dev.max(1e-12)
    }
}

/// Multiplicative deviation of `v` from an envelope `[lo, hi]`.
fn envelope_deviation(v: f64, lo: f64, hi: f64) -> f64 {
    (lo / v.max(1e-12)).max(v / hi.max(1e-12)).max(1.0)
}

/// Judge one outcome against both envelopes; returns
/// `(value, |HC|, ssv_deviation, interval_deviation)`.
fn judge_both(
    graph: &Graph,
    trace: &Trace,
    values: &[u64],
    hq: HostId,
    deadline: Time,
    value: Option<f64>,
) -> (f64, f64, f64, f64) {
    let v = value.unwrap_or(0.0);
    let sets = pov_oracle::host_sets(graph, trace, hq, Time::ZERO, deadline);
    let (lo, hi) =
        pov_oracle::aggregate_bounds(Aggregate::Count, &sets, values).expect("count is bounded");
    let ssv = envelope_deviation(v, lo, hi);
    let (ilo, ihi) = interval_bounds(Aggregate::Count, trace, values, Time::ZERO, deadline)
        .expect("count is bounded");
    let interval = envelope_deviation(v, ilo, ihi);
    (v, sets.hc_len() as f64, ssv, interval)
}

/// Run the comparison.
pub fn run(cfg: &Config) -> Vec<Row> {
    let graph = cfg.topology.build(cfg.n, cfg.seed);
    let n = graph.num_hosts();
    let values = workload::paper_values(n, cfg.seed ^ 0xad5e);
    let d = pov_topology::analysis::diameter_estimate(&graph, 2, cfg.seed | 1).max(1);
    let d_hat = d + 2;
    let deadline = Time(2 * d_hat as u64);
    let kind = ProtocolKind::Wildfire(WildfireOpts::default());
    let mut rows = Vec::new();
    for &fraction in &cfg.budget_fractions {
        let budget = ((n as f64) * fraction).round() as usize;
        let mut acc = [Vec::new(), Vec::new(), Vec::new(), Vec::new()]; // t_val, t_hc, t_ssv, t_int
        let mut ucc = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for trial in 0..cfg.trials {
            let seed = cfg.seed.wrapping_add(1 + trial as u64);
            let base = RunPlan::query(Aggregate::Count)
                .d_hat(d_hat)
                .repetitions(cfg.c)
                .seed(seed);
            // Both regimes spend exactly `budget` kills inside the same
            // `[0, deadline]` window; only *who* dies differs.
            let uniform = base.clone().churn(ChurnPlan::uniform_failures(
                n,
                budget,
                Time::ZERO,
                deadline,
                HostId(0),
                seed,
            ));
            let targeted = base.adversary(AdversarySpec::fm_maxima(
                cfg.kills_per_wave,
                budget,
                Time::ZERO,
                deadline,
            ));
            for (plan, out) in [(&uniform, &mut ucc), (&targeted, &mut acc)] {
                let o = runner::run(kind, &graph, &values, plan);
                let end = o.declared_at.unwrap_or(deadline);
                let (v, hc, ssv, interval) =
                    judge_both(&graph, &o.trace, &values, HostId(0), end, o.value);
                out[0].push(v);
                out[1].push(hc);
                out[2].push(ssv);
                out[3].push(interval);
            }
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        rows.push(Row {
            topology: cfg.topology.name().to_string(),
            budget,
            targeted_value: mean(&acc[0]),
            uniform_value: mean(&ucc[0]),
            targeted_hc: mean(&acc[1]),
            uniform_hc: mean(&ucc[1]),
            targeted_ssv_dev: mean(&acc[2]),
            uniform_ssv_dev: mean(&ucc[2]),
            targeted_interval_dev: mean(&acc[3]),
            uniform_interval_dev: mean(&ucc[3]),
        });
    }
    rows
}

/// Render the comparison.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Adaptive adversary — sketch-targeted vs uniform churn, WILDFIRE count at equal budget",
        &[
            "topology",
            "budget",
            "value T/U",
            "|HC| T/U",
            "SSV dev T/U",
            "interval dev T/U",
            "interval ratio",
        ],
    );
    for r in rows {
        t.push(vec![
            r.topology.clone(),
            r.budget.to_string(),
            format!("{:.0} / {:.0}", r.targeted_value, r.uniform_value),
            format!("{:.0} / {:.0}", r.targeted_hc, r.uniform_hc),
            format!("{:.2}x / {:.2}x", r.targeted_ssv_dev, r.uniform_ssv_dev),
            format!(
                "{:.2}x / {:.2}x",
                r.targeted_interval_dev, r.uniform_interval_dev
            ),
            format!("{:.2}", r.interval_ratio()),
        ]);
    }
    t
}

/// The figure's headline: the smallest targeted/uniform interval-
/// deviation ratio across the sweep. Strictly above 1.0 means the
/// adaptive adversary pushes the declared answer further outside the
/// §4.1 interval envelope than oblivious churn does at *every* equal
/// budget — the constructive Theorem 4.2 separation.
pub fn min_interval_ratio(rows: &[Row]) -> f64 {
    rows.iter()
        .map(Row::interval_ratio)
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_beats_uniform_on_the_interval_envelope() {
        let rows = run(&Config::smoke());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // The headline: at equal budget the adaptive adversary
            // pushes the answer strictly (and decisively) further from
            // the interval envelope than uniform churn.
            assert!(
                r.interval_ratio() > 1.5,
                "budget {}: targeted interval dev {:.2}x vs uniform {:.2}x",
                r.budget,
                r.targeted_interval_dev,
                r.uniform_interval_dev
            );
            // It also collapses the declared answer and the SSV
            // envelope itself.
            assert!(
                r.targeted_value < r.uniform_value,
                "budget {}: value {:.0} vs {:.0}",
                r.budget,
                r.targeted_value,
                r.uniform_value
            );
            assert!(r.targeted_hc < r.uniform_hc);
        }
        assert!(min_interval_ratio(&rows) > 1.5);
    }

    #[test]
    fn ssv_envelope_survives_the_adversary() {
        // Theorem 5.3's robustness, confirmed adversarially: the
        // *Single-Site* deviation stays within FM noise for both
        // regimes — the adversary hollows the envelope out (|HC|
        // collapses) but cannot push the answer outside it.
        let rows = run(&Config::smoke());
        for r in &rows {
            assert!(
                r.targeted_ssv_dev < 2.0 && r.uniform_ssv_dev < 2.0,
                "budget {}: SSV dev {:.2}x / {:.2}x",
                r.budget,
                r.targeted_ssv_dev,
                r.uniform_ssv_dev
            );
        }
    }
}
