//! Fig 6 — accuracy of the duplicate-insensitive count and sum
//! operators.
//!
//! §6.4: a set `M` of Zipf-distributed elements in `[10, 500]` with
//! `|M| ∈ {2^10, 2^12, 2^14}`; estimate the cardinality (count) and the
//! total (sum); plot the ratio `m̂/m` against the repetition count `c`.
//! The paper observes the ratio converging to 1 by `c ≈ 8`.

use crate::report::Table;
use crate::workload::Zipf;
use pov_sketch::{stats, FmSketch};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for the Fig 6 sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Operand-set sizes `|M|`.
    pub set_sizes: Vec<u64>,
    /// Repetition counts `c` to sweep.
    pub c_values: Vec<usize>,
    /// Independent trials per point.
    pub trials: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Config {
            set_sizes: vec![1 << 10, 1 << 12, 1 << 14],
            c_values: (1..=16).collect(),
            trials: 10,
            seed: 2004,
        }
    }

    /// A fast configuration for tests/benches.
    pub fn smoke() -> Self {
        Config {
            set_sizes: vec![1 << 10],
            c_values: vec![2, 8, 16],
            trials: 3,
            seed: 2004,
        }
    }
}

/// One point of the figure.
#[derive(Clone, Debug)]
pub struct Row {
    /// `"count"` or `"sum"`.
    pub operator: &'static str,
    /// `|M|`.
    pub m: u64,
    /// Repetitions `c`.
    pub c: usize,
    /// Mean of `m̂/m` over the trials.
    pub ratio_mean: f64,
    /// 95% CI half-width of the ratio.
    pub ratio_ci: f64,
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &m in &cfg.set_sizes {
        for &c in &cfg.c_values {
            let mut count_ratios = Vec::with_capacity(cfg.trials);
            let mut sum_ratios = Vec::with_capacity(cfg.trials);
            for t in 0..cfg.trials {
                let seed = cfg
                    .seed
                    .wrapping_add(m)
                    .wrapping_mul(31)
                    .wrapping_add(c as u64)
                    .wrapping_mul(31)
                    .wrapping_add(t as u64);
                let mut rng = SmallRng::seed_from_u64(seed);
                let values = Zipf::paper().sample_n(m as usize, &mut rng);

                // count: each element of M sets one sketch entry.
                let mut count_sketch = FmSketch::new(c);
                for _ in 0..m {
                    count_sketch.insert_one(&mut rng);
                }
                count_ratios.push(count_sketch.estimate() / m as f64);

                // sum: each element contributes `value` pretend-elements.
                let total: u64 = values.iter().sum();
                let mut sum_sketch = FmSketch::new(c);
                for &v in &values {
                    sum_sketch.insert_elements_fast(v, &mut rng);
                }
                sum_ratios.push(sum_sketch.estimate() / total as f64);
            }
            let (cm, cci) = stats::mean_ci95(&count_ratios);
            rows.push(Row {
                operator: "count",
                m,
                c,
                ratio_mean: cm,
                ratio_ci: cci,
            });
            let (sm, sci) = stats::mean_ci95(&sum_ratios);
            rows.push(Row {
                operator: "sum",
                m,
                c,
                ratio_mean: sm,
                ratio_ci: sci,
            });
        }
    }
    rows
}

/// Render as the paper's series.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Fig 6 — accuracy of count and sum operators (ratio m̂/m vs repetitions c)",
        &["operator", "|M|", "c", "ratio", "±95% CI"],
    );
    for r in rows {
        t.push(vec![
            r.operator.to_string(),
            r.m.to_string(),
            r.c.to_string(),
            format!("{:.3}", r.ratio_mean),
            format!("{:.3}", r.ratio_ci),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_converges_toward_one_with_c() {
        let cfg = Config {
            set_sizes: vec![1 << 12],
            c_values: vec![2, 16],
            trials: 6,
            seed: 9,
        };
        let rows = run(&cfg);
        let err = |c: usize, op: &str| -> f64 {
            rows.iter()
                .find(|r| r.c == c && r.operator == op)
                .map(|r| (r.ratio_mean - 1.0).abs())
                .unwrap()
        };
        // More repetitions → closer to 1 (allow slack for randomness but
        // require the headline trend).
        assert!(
            err(16, "count") < err(2, "count") + 0.35,
            "count: c=16 err {} vs c=2 err {}",
            err(16, "count"),
            err(2, "count")
        );
        assert!(
            err(16, "count") < 0.5,
            "count at c=16: {}",
            err(16, "count")
        );
        assert!(err(16, "sum") < 0.6, "sum at c=16: {}", err(16, "sum"));
    }

    #[test]
    fn row_count_matches_grid() {
        let cfg = Config {
            set_sizes: vec![256, 512],
            c_values: vec![4, 8],
            trials: 2,
            seed: 1,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2 * 2 * 2); // sizes × c × operators
        let t = table(&rows);
        assert_eq!(t.len(), rows.len());
    }
}
