//! Fig 13 — (a) time cost on Random topologies; (b) messages sent per
//! time instant.
//!
//! §6.6.2: SPANNINGTREE provides the least latency (its echo terminates
//! as soon as the tree drains); WILDFIRE always declares at `2·D̂·δ`, so
//! an overestimated `D̂` inflates time cost proportionally — while the
//! per-tick message profile (b) shows traffic peaking near `D·δ` and
//! quiescing by `2·D·δ` regardless of `D̂`, which is why communication
//! cost stays flat.

use crate::report::Table;
use crate::workload;
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_topology::analysis;
use pov_topology::generators::TopologyKind;

/// Configuration for the Fig 13 measurements.
#[derive(Clone, Debug)]
pub struct Config {
    /// Random-topology sizes for part (a).
    pub sizes: Vec<usize>,
    /// `D̂` multipliers for WILDFIRE in part (a).
    pub d_hat_multipliers: Vec<u32>,
    /// Topologies (and sizes) for the per-tick profile (b).
    pub profile_topologies: Vec<(TopologyKind, usize)>,
    /// FM repetitions.
    pub c: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Config {
            sizes: vec![5_000, 10_000, 20_000, 40_000],
            d_hat_multipliers: vec![1, 2, 4],
            profile_topologies: vec![
                (TopologyKind::Gnutella, 39_046),
                (TopologyKind::Random, 40_000),
                (TopologyKind::PowerLaw, 40_000),
                (TopologyKind::Grid, 10_000),
            ],
            c: 8,
            seed: 13,
        }
    }

    /// A fast configuration for tests/benches.
    pub fn smoke() -> Self {
        Config {
            sizes: vec![300, 600],
            d_hat_multipliers: vec![1, 2],
            profile_topologies: vec![(TopologyKind::Random, 500), (TopologyKind::Grid, 400)],
            c: 8,
            seed: 13,
        }
    }
}

/// One time-cost point (part a).
#[derive(Clone, Debug)]
pub struct TimeRow {
    /// Network size.
    pub n: usize,
    /// Series label.
    pub series: String,
    /// Ticks until the result was declared at `hq`.
    pub time_cost: u64,
}

/// One per-tick profile (part b).
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// Topology name.
    pub topology: String,
    /// Measured diameter `D` of the instance.
    pub diameter: u32,
    /// Messages sent at each tick (WILDFIRE count query, `D̂ = 2D`).
    pub sent_per_tick: Vec<u64>,
}

impl ProfileRow {
    /// The tick with peak traffic (the paper observes it lands near `D`).
    pub fn peak_tick(&self) -> u64 {
        self.sent_per_tick
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i as u64)
            .unwrap_or(0)
    }

    /// The last tick with any traffic (quiescence; ≤ `2D` in the paper).
    pub fn quiesce_tick(&self) -> u64 {
        self.sent_per_tick
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i as u64)
            .unwrap_or(0)
    }
}

/// Run part (a): time cost vs network size on Random.
pub fn run_time_cost(cfg: &Config) -> Vec<TimeRow> {
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        let graph = TopologyKind::Random.build(n, cfg.seed);
        let values = workload::paper_values(n, cfg.seed ^ 0x7e11);
        let d = analysis::diameter_estimate(&graph, 4, cfg.seed | 1).max(1);
        let mut measure = |series: String, kind: ProtocolKind, d_hat: u32| {
            let run_cfg = RunPlan::query(Aggregate::Count)
                .d_hat(d_hat)
                .repetitions(cfg.c)
                .seed(cfg.seed);
            let out = runner::run(kind, &graph, &values, &run_cfg);
            rows.push(TimeRow {
                n,
                series,
                time_cost: out.time_cost().unwrap_or(0),
            });
        };
        for &mult in &cfg.d_hat_multipliers {
            measure(
                format!("WILDFIRE D̂={mult}D"),
                ProtocolKind::Wildfire(WildfireOpts::default()),
                d * mult,
            );
        }
        measure("SPANNINGTREE".into(), ProtocolKind::SpanningTree, d + 2);
    }
    rows
}

/// Run part (b): the per-tick message profile.
pub fn run_profile(cfg: &Config) -> Vec<ProfileRow> {
    let mut rows = Vec::new();
    for &(kind, n) in &cfg.profile_topologies {
        let graph = kind.build(n, cfg.seed);
        let values = workload::paper_values(graph.num_hosts(), cfg.seed ^ 0x7e12);
        let d = analysis::diameter_estimate(&graph, 4, cfg.seed | 1).max(1);
        let run_cfg = RunPlan::query(Aggregate::Count)
            .d_hat(2 * d) // a deliberate overestimate, as in Fig 13(b)
            .repetitions(cfg.c)
            .seed(cfg.seed);
        let out = runner::run(
            ProtocolKind::Wildfire(WildfireOpts::default()),
            &graph,
            &values,
            &run_cfg,
        );
        rows.push(ProfileRow {
            topology: kind.name().to_string(),
            diameter: d,
            sent_per_tick: out.metrics.sent_per_tick.clone(),
        });
    }
    rows
}

/// Render part (a).
pub fn time_table(rows: &[TimeRow]) -> Table {
    let mut t = Table::new(
        "Fig 13a — time cost on Random (count query)",
        &["|H|", "series", "time (δ)"],
    );
    for r in rows {
        t.push(vec![
            r.n.to_string(),
            r.series.clone(),
            r.time_cost.to_string(),
        ]);
    }
    t
}

/// Render part (b) as peak/quiesce summary.
pub fn profile_table(rows: &[ProfileRow]) -> Table {
    let mut t = Table::new(
        "Fig 13b — WILDFIRE messages per time instant (D̂ = 2D)",
        &["topology", "D", "peak tick", "quiesce tick", "deadline 2D̂"],
    );
    for r in rows {
        t.push(vec![
            r.topology.clone(),
            r.diameter.to_string(),
            r.peak_tick().to_string(),
            r.quiesce_tick().to_string(),
            (4 * r.diameter).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildfire_time_scales_with_d_hat() {
        let rows = run_time_cost(&Config::smoke());
        let get = |n: usize, s: &str| {
            rows.iter()
                .find(|r| r.n == n && r.series == s)
                .map(|r| r.time_cost)
                .unwrap()
        };
        // §6.6.2: doubling D̂ doubles WILDFIRE's time cost.
        assert_eq!(get(300, "WILDFIRE D̂=2D"), 2 * get(300, "WILDFIRE D̂=1D"));
        // SPANNINGTREE's echo beats WILDFIRE's deadline.
        assert!(get(600, "SPANNINGTREE") < get(600, "WILDFIRE D̂=2D"));
    }

    #[test]
    fn traffic_peaks_near_d_and_quiesces_by_2d() {
        let rows = run_profile(&Config::smoke());
        for r in &rows {
            let d = r.diameter as u64;
            assert!(
                r.peak_tick() <= 2 * d,
                "{}: peak at {} vs D = {d}",
                r.topology,
                r.peak_tick()
            );
            // Quiescence well before the 4D deadline (the point of 13b).
            assert!(
                r.quiesce_tick() <= 3 * d,
                "{}: quiesced at {} vs D = {d}",
                r.topology,
                r.quiesce_tick()
            );
        }
    }

    #[test]
    fn tables_render() {
        let cfg = Config::smoke();
        let a = run_time_cost(&cfg);
        let b = run_profile(&cfg);
        assert_eq!(time_table(&a).len(), a.len());
        assert_eq!(profile_table(&b).len(), b.len());
    }
}
