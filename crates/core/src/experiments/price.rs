//! The headline "price of validity" summary (§1.1, §7).
//!
//! *"WILDFIRE incurs similar costs as best-effort algorithms for min and
//! max queries, but has to pay 5 times higher communication cost for
//! count and sum queries."* This driver condenses the cost figures into
//! that one table: per topology, the WILDFIRE/SPANNINGTREE message ratio
//! for each aggregate, plus the validity rates both achieve under heavy
//! churn — cost is only half the story.

use crate::report::Table;
use crate::workload;
use pov_oracle::{aggregate_bounds, host_sets};
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_sim::{ChurnPlan, Medium, Time};
use pov_topology::generators::TopologyKind;
use pov_topology::{analysis, HostId};

/// Configuration for the summary.
#[derive(Clone, Debug)]
pub struct Config {
    /// Topologies (with sizes) to summarize.
    pub topologies: Vec<(TopologyKind, usize)>,
    /// Aggregates to price.
    pub aggregates: Vec<Aggregate>,
    /// Churn level (fraction of hosts failing) for the validity column.
    pub churn_fraction: f64,
    /// Trials for the validity estimate.
    pub trials: usize,
    /// FM repetitions.
    pub c: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// Paper-scale summary.
    pub fn paper() -> Self {
        Config {
            topologies: vec![
                (TopologyKind::Gnutella, 39_046),
                (TopologyKind::Random, 40_000),
                (TopologyKind::PowerLaw, 40_000),
                (TopologyKind::Grid, 10_000),
            ],
            aggregates: vec![Aggregate::Count, Aggregate::Sum, Aggregate::Min],
            churn_fraction: 0.10,
            trials: 5,
            c: 8,
            seed: 77,
        }
    }

    /// A fast configuration for tests/benches.
    pub fn smoke() -> Self {
        Config {
            topologies: vec![(TopologyKind::Gnutella, 500), (TopologyKind::Grid, 400)],
            aggregates: vec![Aggregate::Count, Aggregate::Min],
            churn_fraction: 0.10,
            trials: 3,
            c: 8,
            seed: 77,
        }
    }
}

/// One summary row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Topology name.
    pub topology: String,
    /// Aggregate name.
    pub aggregate: &'static str,
    /// WILDFIRE / SPANNINGTREE message ratio (failure-free).
    pub message_ratio: f64,
    /// WILDFIRE's mean multiplicative deviation from the Single-Site-
    /// Validity envelope under churn (1.0 = always inside; FM noise only).
    pub wildfire_deviation: f64,
    /// SPANNINGTREE's mean deviation — the semantics it forfeits.
    pub spanning_tree_deviation: f64,
}

/// Run the summary.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &(kind, n) in &cfg.topologies {
        let graph = kind.build(n, cfg.seed);
        let values = workload::paper_values(graph.num_hosts(), cfg.seed ^ 0x9e1c);
        let d = analysis::diameter_estimate(&graph, 2, cfg.seed | 1).max(1);
        let d_hat = d + 2;
        let deadline = 2 * d_hat as u64;
        let medium = if kind == TopologyKind::Grid {
            Medium::Radio
        } else {
            Medium::PointToPoint
        };
        let r = (n as f64 * cfg.churn_fraction) as usize;

        for &aggregate in &cfg.aggregates {
            let base_cfg = RunPlan::query(aggregate)
                .d_hat(d_hat)
                .repetitions(cfg.c)
                .medium(medium)
                .seed(cfg.seed);
            let wf_kind = ProtocolKind::Wildfire(WildfireOpts::default());
            let wf = runner::run(wf_kind, &graph, &values, &base_cfg);
            let st = runner::run(ProtocolKind::SpanningTree, &graph, &values, &base_cfg);
            let ratio = wf.metrics.messages_sent as f64 / st.metrics.messages_sent.max(1) as f64;

            let mut wf_devs = Vec::with_capacity(cfg.trials);
            let mut st_devs = Vec::with_capacity(cfg.trials);
            for trial in 0..cfg.trials {
                let churn_seed = cfg.seed.wrapping_add(1 + trial as u64);
                let churn = ChurnPlan::uniform_failures(
                    n,
                    r,
                    Time::ZERO,
                    Time(deadline),
                    HostId(0),
                    churn_seed,
                );
                let run_cfg = base_cfg.clone().churn(churn.clone()).seed(churn_seed);
                let wf_out = runner::run(wf_kind, &graph, &values, &run_cfg);
                let st_out = runner::run(ProtocolKind::SpanningTree, &graph, &values, &run_cfg);
                let sets = host_sets(&graph, &wf_out.trace, HostId(0), Time::ZERO, Time(deadline));
                if let Some((lo, hi)) = aggregate_bounds(aggregate, &sets, &values) {
                    let dev = |v: Option<f64>| match v {
                        Some(v) if v > 0.0 => (lo / v).max(v / hi.max(1e-12)).max(1.0),
                        _ => f64::INFINITY,
                    };
                    wf_devs.push(dev(wf_out.value));
                    st_devs.push(dev(st_out.value));
                }
            }
            let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
            rows.push(Row {
                topology: kind.name().to_string(),
                aggregate: aggregate.name(),
                message_ratio: ratio,
                wildfire_deviation: mean(&wf_devs),
                spanning_tree_deviation: mean(&st_devs),
            });
        }
    }
    rows
}

/// Render the summary.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "The price of validity — WILDFIRE vs SPANNINGTREE",
        &[
            "topology",
            "aggregate",
            "msg ratio (WF/ST)",
            "WF envelope dev @10% churn",
            "ST envelope dev @10% churn",
        ],
    );
    for r in rows {
        t.push(vec![
            r.topology.clone(),
            r.aggregate.to_string(),
            format!("{:.2}x", r.message_ratio),
            format!("{:.2}x", r.wildfire_deviation),
            format!("{:.2}x", r.spanning_tree_deviation),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_shape() {
        let rows = run(&Config::smoke());
        for r in &rows {
            // WILDFIRE always pays more messages than ST for count...
            if r.aggregate == "count" {
                assert!(
                    r.message_ratio > 1.2,
                    "{}/{}: ratio {:.2}",
                    r.topology,
                    r.aggregate,
                    r.message_ratio
                );
            }
            // ...but tracks the validity envelope within FM noise.
            assert!(
                r.wildfire_deviation <= 2.0,
                "{}/{}: WILDFIRE deviation {:.2}x",
                r.topology,
                r.aggregate,
                r.wildfire_deviation
            );
        }
        // And SPANNINGTREE forfeits semantics: somewhere at 10% churn it
        // deviates far more than WILDFIRE does anywhere.
        let st_worst = rows
            .iter()
            .filter(|r| r.aggregate == "count")
            .map(|r| r.spanning_tree_deviation)
            .fold(1.0, f64::max);
        let wf_worst = rows
            .iter()
            .map(|r| r.wildfire_deviation)
            .fold(1.0, f64::max);
        assert!(
            st_worst > wf_worst,
            "ST worst deviation {st_worst:.2}x should exceed WILDFIRE's {wf_worst:.2}x"
        );
    }

    #[test]
    fn min_is_cheap_for_wildfire() {
        let rows = run(&Config::smoke());
        let count = rows
            .iter()
            .find(|r| r.topology == "Grid" && r.aggregate == "count")
            .unwrap();
        let min = rows
            .iter()
            .find(|r| r.topology == "Grid" && r.aggregate == "min")
            .unwrap();
        assert!(
            min.message_ratio < count.message_ratio,
            "min ratio {:.2} should undercut count ratio {:.2}",
            min.message_ratio,
            count.message_ratio
        );
    }
}
