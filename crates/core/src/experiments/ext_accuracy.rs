//! Extension experiment: accuracy vs wire size of the duplicate-
//! insensitive count operators (the §7 design space).
//!
//! The paper fixes FM with `c` repetitions; this sweep puts FM and KMV
//! on the same axis — bytes a convergecast message spends on the sketch —
//! and measures the mean relative error of each at equal budgets.

use crate::report::Table;
use pov_sketch::{stats, FmSketch, KmvSketch};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for the operator-accuracy sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// True cardinality being estimated.
    pub n: u64,
    /// Wire budgets in bytes (each maps to FM `c = bytes/8` and KMV
    /// `k = bytes/8`).
    pub budgets: Vec<usize>,
    /// Trials per point.
    pub trials: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// Default sweep.
    pub fn paper() -> Self {
        Config {
            n: 40_000,
            budgets: vec![64, 128, 256, 512, 1024],
            trials: 20,
            seed: 70,
        }
    }

    /// A fast configuration for tests.
    pub fn smoke() -> Self {
        Config {
            n: 5_000,
            budgets: vec![64, 256],
            trials: 8,
            seed: 70,
        }
    }
}

/// One measured point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Sketch wire budget in bytes.
    pub bytes: usize,
    /// Operator name.
    pub operator: &'static str,
    /// Mean relative error |est/n − 1|.
    pub mean_error: f64,
    /// 95% CI half-width of the error.
    pub error_ci: f64,
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &bytes in &cfg.budgets {
        let words = (bytes / 8).max(2);
        let mut fm_errors = Vec::with_capacity(cfg.trials);
        let mut kmv_errors = Vec::with_capacity(cfg.trials);
        for t in 0..cfg.trials {
            let seed = cfg
                .seed
                .wrapping_mul(1000)
                .wrapping_add(bytes as u64)
                .wrapping_mul(1000)
                .wrapping_add(t as u64);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut fm = FmSketch::new(words);
            fm.insert_elements_fast(cfg.n, &mut rng);
            fm_errors.push((fm.estimate() / cfg.n as f64 - 1.0).abs());

            let mut rng = SmallRng::seed_from_u64(seed ^ 0xffff);
            let mut kmv = KmvSketch::new(words);
            kmv.insert_elements(cfg.n, &mut rng);
            kmv_errors.push((kmv.estimate() / cfg.n as f64 - 1.0).abs());
        }
        let (fm_mean, fm_ci) = stats::mean_ci95(&fm_errors);
        rows.push(Row {
            bytes,
            operator: "FM",
            mean_error: fm_mean,
            error_ci: fm_ci,
        });
        let (kmv_mean, kmv_ci) = stats::mean_ci95(&kmv_errors);
        rows.push(Row {
            bytes,
            operator: "KMV",
            mean_error: kmv_mean,
            error_ci: kmv_ci,
        });
    }
    rows
}

/// Render the sweep.
pub fn table(cfg: &Config, rows: &[Row]) -> Table {
    let mut t = Table::new(
        format!(
            "Extension — count-operator accuracy vs message size (n = {})",
            cfg.n
        ),
        &["bytes", "operator", "mean rel. error", "±95% CI"],
    );
    for r in rows {
        t.push(vec![
            r.bytes.to_string(),
            r.operator.to_string(),
            format!("{:.3}", r.mean_error),
            format!("{:.3}", r.error_ci),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_shrinks_with_budget() {
        let cfg = Config::smoke();
        let rows = run(&cfg);
        let err = |bytes: usize, op: &str| {
            rows.iter()
                .find(|r| r.bytes == bytes && r.operator == op)
                .map(|r| r.mean_error)
                .unwrap()
        };
        for op in ["FM", "KMV"] {
            assert!(
                err(256, op) < err(64, op) + 0.05,
                "{op}: 256 B ({:.3}) should beat 64 B ({:.3})",
                err(256, op),
                err(64, op)
            );
        }
        // At the bigger budget both land under 25% mean error.
        assert!(err(256, "FM") < 0.25);
        assert!(err(256, "KMV") < 0.25);
    }

    #[test]
    fn table_renders() {
        let cfg = Config::smoke();
        let rows = run(&cfg);
        let t = table(&cfg, &rows);
        assert_eq!(t.len(), rows.len());
    }
}
