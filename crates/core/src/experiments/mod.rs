//! Experiment drivers — one per figure of the paper's §6 evaluation.
//!
//! Every driver has a `paper()` configuration (the sizes and sweeps of
//! the paper) and a `smoke()` configuration (minutes → milliseconds, for
//! tests and Criterion benches), runs deterministically from its seed,
//! and renders its results as the same rows/series the paper plots.
//!
//! | Module | Paper figure |
//! |--------|--------------|
//! | [`fig06`] | Fig 6 — accuracy of the count/sum operators vs `c` |
//! | [`validity`] | Figs 7, 8, 9 — declared values vs ORACLE bounds under churn |
//! | [`fig10`] | Fig 10 — communication cost on Random (+ Gnutella) |
//! | [`fig11`] | Fig 11 — communication cost on Grid (radio) |
//! | [`fig12`] | Fig 12 — computation-cost distribution |
//! | [`fig13`] | Fig 13a/b — time cost; messages per time instant |
//! | [`price`] | §1.1/§7 headline — the price of validity |
//! | [`ablation`] | DESIGN.md A1–A3 — §5.3 optimizations, sketch paths |
//! | [`adversary`] | beyond the paper — sketch-targeted vs uniform churn at equal budget |
//! | [`overlay`] | beyond the paper — static graph vs maintained overlay at equal churn |

pub mod ablation;
pub mod adversary;
pub mod ext_accuracy;
pub mod fig06;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod overlay;
pub mod price;
pub mod validity;
