//! Ablations A1–A3 (DESIGN.md): the §5.3 WILDFIRE optimizations and the
//! §5.2 sum-insertion fast path.
//!
//! The paper asserts both engineering optimizations without isolating
//! them; these drivers quantify each one.

use crate::report::Table;
use crate::workload;
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_topology::analysis;
use pov_topology::generators::TopologyKind;

/// Configuration for the WILDFIRE-opts ablation (A1/A2).
#[derive(Clone, Debug)]
pub struct Config {
    /// Topology under test.
    pub topology: TopologyKind,
    /// Network size.
    pub n: usize,
    /// Aggregate under test.
    pub aggregate: Aggregate,
    /// FM repetitions.
    pub c: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// Paper-scale ablation on Random.
    pub fn paper() -> Self {
        Config {
            topology: TopologyKind::Random,
            n: 20_000,
            aggregate: Aggregate::Count,
            c: 8,
            seed: 99,
        }
    }

    /// A fast configuration for tests/benches.
    pub fn smoke() -> Self {
        Config {
            n: 500,
            ..Self::paper()
        }
    }
}

/// One ablation variant's cost.
#[derive(Clone, Debug)]
pub struct Row {
    /// Variant label.
    pub variant: String,
    /// Total messages.
    pub messages: u64,
    /// Declared-value correctness anchor (all variants must agree within
    /// FM noise; recorded for the table).
    pub value: f64,
}

/// Run WILDFIRE with each combination of the §5.3 optimizations.
pub fn run(cfg: &Config) -> Vec<Row> {
    let graph = cfg.topology.build(cfg.n, cfg.seed);
    let values = workload::paper_values(graph.num_hosts(), cfg.seed ^ 0xab1a);
    let d = analysis::diameter_estimate(&graph, 4, cfg.seed | 1).max(1);
    let variants = [
        ("baseline (no opts)", false, false),
        ("+early deadline", true, false),
        ("+piggyback", false, true),
        ("+both (paper)", true, true),
    ];
    variants
        .iter()
        .map(|&(label, early_deadline, piggyback)| {
            let run_cfg = RunPlan::query(cfg.aggregate)
                .d_hat(d + 2)
                .repetitions(cfg.c)
                .seed(cfg.seed);
            let out = runner::run(
                ProtocolKind::Wildfire(WildfireOpts {
                    early_deadline,
                    piggyback,
                }),
                &graph,
                &values,
                &run_cfg,
            );
            Row {
                variant: label.to_string(),
                messages: out.metrics.messages_sent,
                value: out.value.unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// Render the ablation.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Ablation A1/A2 — WILDFIRE §5.3 optimizations",
        &["variant", "messages", "declared value"],
    );
    for r in rows {
        t.push(vec![
            r.variant.clone(),
            r.messages.to_string(),
            format!("{:.1}", r.value),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piggyback_saves_messages() {
        let rows = run(&Config::smoke());
        let get = |v: &str| {
            rows.iter()
                .find(|r| r.variant == v)
                .map(|r| r.messages)
                .unwrap()
        };
        assert!(
            get("+piggyback") < get("baseline (no opts)"),
            "piggyback {} vs baseline {}",
            get("+piggyback"),
            get("baseline (no opts)")
        );
        assert!(
            get("+both (paper)") <= get("+early deadline"),
            "both opts should not exceed early-deadline alone"
        );
    }

    #[test]
    fn all_variants_return_plausible_values() {
        let cfg = Config::smoke();
        let rows = run(&cfg);
        for r in &rows {
            // count of 500 hosts, FM error: generous envelope.
            assert!(
                (100.0..2_500.0).contains(&r.value),
                "{}: value {}",
                r.variant,
                r.value
            );
        }
    }
}
