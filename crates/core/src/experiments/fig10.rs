//! Fig 10 — communication costs on Random topologies (plus the lone
//! Gnutella point).
//!
//! §6.6: count queries, failure-free, network sizes swept; series:
//! WILDFIRE for several overestimates `D̂ ∈ {D, 2D, 4D}` (the curves
//! overlap — cost is independent of `D̂`), DIRECTEDACYCLICGRAPH
//! (overlapping SPANNINGTREE) and SPANNINGTREE. The paper reads off a
//! 4× WILDFIRE/SPANNINGTREE ratio on Random and on Gnutella.

use crate::report::Table;
use crate::workload;
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_topology::generators::TopologyKind;
use pov_topology::{analysis, Graph};

/// Configuration for the Fig 10 sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Random-topology sizes to sweep.
    pub sizes: Vec<usize>,
    /// Multipliers on the measured diameter for WILDFIRE's `D̂`.
    pub d_hat_multipliers: Vec<u32>,
    /// Also measure the Gnutella topology at this size (None to skip).
    pub gnutella_n: Option<usize>,
    /// FM repetitions.
    pub c: usize,
    /// Root seed.
    pub seed: u64,
}

impl Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Config {
            sizes: vec![5_000, 10_000, 20_000, 40_000],
            d_hat_multipliers: vec![1, 2, 4],
            gnutella_n: Some(39_046),
            c: 8,
            seed: 10,
        }
    }

    /// A fast configuration for tests/benches.
    pub fn smoke() -> Self {
        Config {
            sizes: vec![300, 600],
            d_hat_multipliers: vec![1, 2],
            gnutella_n: Some(500),
            c: 8,
            seed: 10,
        }
    }
}

/// One measured point.
#[derive(Clone, Debug)]
pub struct Row {
    /// `"Random"` or `"Gnutella"`.
    pub topology: String,
    /// Network size.
    pub n: usize,
    /// Series label (protocol, with `D̂` multiplier for WILDFIRE).
    pub series: String,
    /// Total messages sent.
    pub messages: u64,
}

fn measure(
    graph: &Graph,
    values: &[u64],
    kind: ProtocolKind,
    d_hat: u32,
    c: usize,
    seed: u64,
) -> u64 {
    let plan = RunPlan::query(Aggregate::Count)
        .d_hat(d_hat)
        .repetitions(c)
        .seed(seed);
    runner::run(kind, graph, values, &plan)
        .metrics
        .messages_sent
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut measure_topology = |label: &str, graph: &Graph, seed: u64| {
        let values = workload::paper_values(graph.num_hosts(), seed ^ 0xbeef);
        let d = analysis::diameter_estimate(graph, 4, seed | 1).max(1);
        for &mult in &cfg.d_hat_multipliers {
            // §6.6 varies D̂ > D strictly; `+ 2` keeps even the 1× point
            // a genuine overestimate.
            let msgs = measure(
                graph,
                &values,
                ProtocolKind::Wildfire(WildfireOpts::default()),
                d * mult + 2,
                cfg.c,
                seed,
            );
            rows.push(Row {
                topology: label.to_string(),
                n: graph.num_hosts(),
                series: format!("WILDFIRE D̂={mult}D"),
                messages: msgs,
            });
        }
        for (series, kind) in [
            ("SPANNINGTREE", ProtocolKind::SpanningTree),
            ("DAG(k=2)", ProtocolKind::Dag { k: 2 }),
        ] {
            let msgs = measure(graph, &values, kind, d + 2, cfg.c, seed);
            rows.push(Row {
                topology: label.to_string(),
                n: graph.num_hosts(),
                series: series.to_string(),
                messages: msgs,
            });
        }
    };

    for &n in &cfg.sizes {
        let graph = TopologyKind::Random.build(n, cfg.seed);
        measure_topology("Random", &graph, cfg.seed);
    }
    if let Some(n) = cfg.gnutella_n {
        let graph = TopologyKind::Gnutella.build(n, cfg.seed);
        measure_topology("Gnutella", &graph, cfg.seed);
    }
    rows
}

/// WILDFIRE-to-SPANNINGTREE message ratio per (topology, n).
pub fn price_ratios(rows: &[Row]) -> Vec<(String, usize, f64)> {
    let mut out = Vec::new();
    let mut keys: Vec<(String, usize)> = rows.iter().map(|r| (r.topology.clone(), r.n)).collect();
    keys.sort();
    keys.dedup();
    for (topo, n) in keys {
        let wf = rows
            .iter()
            .find(|r| r.topology == topo && r.n == n && r.series.starts_with("WILDFIRE"))
            .map(|r| r.messages as f64);
        let st = rows
            .iter()
            .find(|r| r.topology == topo && r.n == n && r.series == "SPANNINGTREE")
            .map(|r| r.messages as f64);
        if let (Some(wf), Some(st)) = (wf, st) {
            out.push((topo, n, wf / st));
        }
    }
    out
}

/// Render as the paper's figure series.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Fig 10 — communication cost, count query (failure-free)",
        &["topology", "|H|", "series", "messages"],
    );
    for r in rows {
        t.push(vec![
            r.topology.clone(),
            r.n.to_string(),
            r.series.clone(),
            r.messages.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildfire_cost_independent_of_d_hat() {
        let cfg = Config {
            sizes: vec![400],
            d_hat_multipliers: vec![1, 2, 4],
            gnutella_n: None,
            c: 8,
            seed: 3,
        };
        let rows = run(&cfg);
        let wf: Vec<u64> = rows
            .iter()
            .filter(|r| r.series.starts_with("WILDFIRE"))
            .map(|r| r.messages)
            .collect();
        assert_eq!(wf.len(), 3);
        // §6.6: "the WILDFIRE curves for different D̂ overlap".
        let spread = (*wf.iter().max().unwrap() - *wf.iter().min().unwrap()) as f64;
        assert!(spread / wf[0] as f64 <= 0.02, "D̂ changed the cost: {wf:?}");
    }

    #[test]
    fn wildfire_pays_a_multiple_of_spanning_tree() {
        let rows = run(&Config::smoke());
        for (topo, n, ratio) in price_ratios(&rows) {
            assert!(
                ratio > 1.5,
                "{topo}/{n}: WILDFIRE should cost a multiple of ST, got {ratio:.2}x"
            );
            assert!(
                ratio < 12.0,
                "{topo}/{n}: ratio {ratio:.2}x wildly above the paper's ~4-5x"
            );
        }
    }

    #[test]
    fn dag_tracks_spanning_tree() {
        // §6.6: DAG ≈ ST because the broadcast cost |E| dominates.
        let rows = run(&Config {
            sizes: vec![500],
            d_hat_multipliers: vec![1],
            gnutella_n: None,
            c: 8,
            seed: 5,
        });
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.series == s)
                .map(|r| r.messages as f64)
                .unwrap()
        };
        let ratio = get("DAG(k=2)") / get("SPANNINGTREE");
        assert!(
            (0.8..1.6).contains(&ratio),
            "DAG should roughly overlap ST, got {ratio:.2}x"
        );
    }

    #[test]
    fn cost_grows_with_network_size() {
        let rows = run(&Config::smoke());
        let wf = |n: usize| {
            rows.iter()
                .find(|r| r.topology == "Random" && r.n == n && r.series == "WILDFIRE D̂=1D")
                .map(|r| r.messages)
                .unwrap()
        };
        assert!(wf(600) > wf(300));
    }
}
