//! Static graph vs maintained overlay at equal churn (ISSUE 8: the
//! validity/cost gap of overlay maintenance).
//!
//! The paper (§3.2) fixes the edge set over the survivors: hosts fail
//! and rejoin, but a rejoining host resurrects exactly its old links.
//! Real P2P deployments instead run a membership plane — bounded
//! partial views refreshed by shuffles, a SWIM-style failure detector
//! that evicts the confirmed-dead, rejoiners attaching at *new* points
//! ([`pov_overlay::OverlayMaintenance`]). This driver quantifies what
//! that plane buys and what it costs, under *oscillating* churn (hosts
//! blink off and rejoin, the regime where attachment points matter):
//!
//! * **Validity side.** Both arms run the same WILDFIRE count over the
//!   same churn realization. The static arm's flood must route around
//!   down hosts over a degree-≈4 graph; the maintained arm's detector
//!   cuts the dead out and shuffle promotions keep every live host at
//!   its target degree, so the declared count lands closer to the
//!   population ([`Row::value_gain`]). Both stay inside the §4.2
//!   Single-Site envelope — maintenance narrows *where in* the
//!   envelope the answer lands, it does not change the guarantee.
//! * **Cost side.** The gain is paid for in maintenance traffic
//!   (probes, indirect probes, shuffles) and in a denser overlay for
//!   the flood itself ([`Row::cost_ratio`]).
//!
//! The overlay's evolution is protocol-independent (the driver reads
//! only alive flags and its own RNG), so a third, protocol-free drive
//! of the same configuration snapshots the final [`OverlayView`] shape
//! — the degree/connectivity summaries of
//! [`pov_topology::analysis`] — without disturbing the paired runs.
//!
//! [`OverlayView`]: pov_topology::OverlayView

use crate::report::Table;
use crate::workload;
use pov_overlay::{OverlayConfig, OverlayMaintenance};
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{runner, Aggregate, ProtocolKind, RunPlan};
use pov_sim::{ChurnPlan, Ctx, NodeLogic, OverlayStats, SimBuilder, Time};
use pov_topology::analysis::{overlay_connectivity, overlay_degree_summary};
use pov_topology::generators::TopologyKind;
use pov_topology::HostId;

/// Configuration for the static-vs-maintained comparison.
#[derive(Clone, Debug)]
pub struct Config {
    /// Topology family.
    pub topology: TopologyKind,
    /// Host count.
    pub n: usize,
    /// Fractions of the population put on an oscillating fail/rejoin
    /// cycle (equal for both arms of each pair).
    pub churn_fractions: Vec<f64>,
    /// Trials per fraction (each with its own churn draw / seed).
    pub trials: usize,
    /// FM repetitions.
    pub c: usize,
    /// Maintenance knobs shared by every maintained arm (`seed` is
    /// replaced per trial).
    pub overlay: OverlayConfig,
    /// Root seed.
    pub seed: u64,
}

/// Maintenance cadences tightened to the few-tick deadline of a
/// one-shot query: probe every 2 ticks, shuffle every 4, short
/// timeouts. The defaults in [`OverlayConfig`] suit long-running
/// continuous scenarios; at `deadline ≈ 2·d̂` they would never fire.
fn query_scale_overlay() -> OverlayConfig {
    OverlayConfig {
        shuffle_every: 4,
        probe_every: 2,
        probe_timeout: 1,
        suspicion_timeout: 2,
        ..OverlayConfig::default()
    }
}

impl Config {
    /// Paper-scale comparison.
    pub fn paper() -> Self {
        Config {
            topology: TopologyKind::Random,
            n: 10_000,
            churn_fractions: vec![0.20, 0.40],
            trials: 5,
            c: 16,
            overlay: query_scale_overlay(),
            seed: 47,
        }
    }

    /// A fast configuration for tests/benches.
    pub fn smoke() -> Self {
        Config {
            topology: TopologyKind::Random,
            n: 300,
            churn_fractions: vec![0.20, 0.50],
            trials: 4,
            c: 16,
            overlay: query_scale_overlay(),
            seed: 47,
        }
    }
}

/// One churn fraction's comparison row (all metrics are means over
/// trials; the churn realization is identical within each pair).
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Topology name.
    pub topology: String,
    /// Hosts on the fail/rejoin cycle.
    pub oscillating: usize,
    /// `|HC|` of the shared churn realization (continuously connected).
    pub hc: f64,
    /// `|HU|` of the shared churn realization (union membership).
    pub hu: f64,
    /// Declared count over the static base graph.
    pub static_value: f64,
    /// Declared count under overlay maintenance.
    pub maintained_value: f64,
    /// Single-Site (§4.2) deviation, static arm.
    pub static_ssv_dev: f64,
    /// Single-Site deviation, maintained arm.
    pub maintained_ssv_dev: f64,
    /// Protocol messages, static arm.
    pub static_msgs: f64,
    /// Protocol messages, maintained arm.
    pub maintained_msgs: f64,
    /// Maintenance-plane counters of the maintained arm.
    pub stats: OverlayStats,
    /// Mean overlay degree at the horizon (maintained arm).
    pub final_mean_degree: f64,
    /// Isolated hosts at the horizon (maintained arm).
    pub final_isolated: f64,
    /// Connected components at the horizon (maintained arm).
    pub final_components: f64,
    /// Largest component at the horizon (maintained arm).
    pub final_largest: f64,
}

impl Row {
    /// Maintained / static declared count — how much closer to the
    /// population the flood lands when the overlay is maintained.
    pub fn value_gain(&self) -> f64 {
        self.maintained_value / self.static_value.max(1e-12)
    }

    /// (Maintained protocol + maintenance messages) / static protocol
    /// messages — the price of the gain.
    pub fn cost_ratio(&self) -> f64 {
        (self.maintained_msgs + self.stats.maintenance_msgs as f64) / self.static_msgs.max(1e-12)
    }
}

/// Multiplicative deviation of `v` from an envelope `[lo, hi]`.
fn envelope_deviation(v: f64, lo: f64, hi: f64) -> f64 {
    (lo / v.max(1e-12)).max(v / hi.max(1e-12)).max(1.0)
}

/// A host that does nothing — the protocol-free drive that snapshots
/// the maintained overlay's final shape.
struct Idle;

impl NodeLogic for Idle {
    type Msg = ();
    fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: HostId, _msg: ()) {}
}

/// Mean of a slice (0 when empty).
fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

/// Field-wise sum of two stats records.
fn stats_add(a: &mut OverlayStats, b: &OverlayStats) {
    a.edges_added += b.edges_added;
    a.edges_removed += b.edges_removed;
    a.probes += b.probes;
    a.suspicions += b.suspicions;
    a.false_suspicions += b.false_suspicions;
    a.evictions += b.evictions;
    a.rejoins += b.rejoins;
    a.shuffles += b.shuffles;
    a.maintenance_msgs += b.maintenance_msgs;
}

/// Field-wise integer mean over `t` trials.
fn stats_div(a: OverlayStats, t: u64) -> OverlayStats {
    OverlayStats {
        edges_added: a.edges_added / t,
        edges_removed: a.edges_removed / t,
        probes: a.probes / t,
        suspicions: a.suspicions / t,
        false_suspicions: a.false_suspicions / t,
        evictions: a.evictions / t,
        rejoins: a.rejoins / t,
        shuffles: a.shuffles / t,
        maintenance_msgs: a.maintenance_msgs / t,
    }
}

/// Run the comparison.
pub fn run(cfg: &Config) -> Vec<Row> {
    let graph = cfg.topology.build(cfg.n, cfg.seed);
    let n = graph.num_hosts();
    let values = workload::paper_values(n, cfg.seed ^ 0xad5e);
    let d = pov_topology::analysis::diameter_estimate(&graph, 2, cfg.seed | 1).max(1);
    let d_hat = d + 2;
    let deadline = Time(2 * d_hat as u64);
    // Fail/rejoin cycle sized to the deadline: every oscillator is down
    // for half a period and cycles at least twice before the horizon.
    let period = (deadline.ticks() / 2).max(3);
    let downtime = (period / 2).max(1);
    let kind = ProtocolKind::Wildfire(WildfireOpts::default());
    let mut rows = Vec::new();
    for &fraction in &cfg.churn_fractions {
        let k = ((n as f64) * fraction).round() as usize;
        // per-trial accumulators: hc, hu, s_val, m_val, s_dev, m_dev,
        // s_msg, m_msg, degree, isolated, components, largest
        let mut acc: [Vec<f64>; 12] = Default::default();
        let mut stats_sum = OverlayStats::default();
        for trial in 0..cfg.trials {
            let seed = cfg.seed.wrapping_add(1 + trial as u64);
            let churn = ChurnPlan::oscillating(
                n,
                k,
                Time::ZERO,
                deadline,
                period,
                downtime,
                HostId(0),
                seed,
            );
            let overlay = OverlayConfig {
                seed: seed ^ 0x08e51a9,
                ..cfg.overlay
            };
            let base = RunPlan::query(Aggregate::Count)
                .d_hat(d_hat)
                .repetitions(cfg.c)
                .seed(seed)
                .churn(churn.clone());
            let maintained_plan = base.clone().overlay(overlay);
            let horizon = deadline + 2;

            let s = runner::run(kind, &graph, &values, &base);
            let m = runner::run(kind, &graph, &values, &maintained_plan);
            let m_stats = m.overlay.expect("maintained arm reports overlay stats");
            stats_add(&mut stats_sum, &m_stats);

            // Both arms share one churn realization, so the §4.2
            // envelope is judged once, from the static arm's trace.
            let end = s.declared_at.unwrap_or(deadline);
            let sets = pov_oracle::host_sets(&graph, &s.trace, HostId(0), Time::ZERO, end);
            let (lo, hi) = pov_oracle::aggregate_bounds(Aggregate::Count, &sets, &values)
                .expect("count is bounded");
            let sv = s.value.unwrap_or(0.0);
            let mv = m.value.unwrap_or(0.0);

            // Protocol-free drive of the identical overlay
            // configuration: snapshot the final view's shape.
            let mut sim = SimBuilder::over(&graph)
                .churn(churn)
                .seed(seed)
                .overlay(OverlayMaintenance::new(overlay, horizon))
                .build(|_| Idle);
            sim.start();
            sim.run_until(horizon);
            let view = sim.overlay_view().expect("overlay drive exposes its view");
            let deg = overlay_degree_summary(view);
            let conn = overlay_connectivity(view);

            for (slot, v) in acc.iter_mut().zip([
                sets.hc_len() as f64,
                sets.hu_len() as f64,
                sv,
                mv,
                envelope_deviation(sv, lo, hi),
                envelope_deviation(mv, lo, hi),
                s.metrics.messages_sent as f64,
                m.metrics.messages_sent as f64,
                deg.mean,
                deg.isolated as f64,
                conn.components as f64,
                conn.largest_component as f64,
            ]) {
                slot.push(v);
            }
        }
        let t = cfg.trials.max(1) as u64;
        rows.push(Row {
            topology: cfg.topology.name().to_string(),
            oscillating: k,
            hc: mean(&acc[0]),
            hu: mean(&acc[1]),
            static_value: mean(&acc[2]),
            maintained_value: mean(&acc[3]),
            static_ssv_dev: mean(&acc[4]),
            maintained_ssv_dev: mean(&acc[5]),
            static_msgs: mean(&acc[6]),
            maintained_msgs: mean(&acc[7]),
            stats: stats_div(stats_sum, t),
            final_mean_degree: mean(&acc[8]),
            final_isolated: mean(&acc[9]),
            final_components: mean(&acc[10]),
            final_largest: mean(&acc[11]),
        });
    }
    rows
}

/// Render the comparison.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Overlay maintenance — static graph vs maintained overlay, WILDFIRE count at equal churn",
        &[
            "topology",
            "oscillating",
            "|HC| / |HU|",
            "value S/M",
            "SSV dev S/M",
            "msgs S/M",
            "maint msgs",
            "value gain",
            "cost ratio",
            "final degree",
            "components",
        ],
    );
    for r in rows {
        t.push(vec![
            r.topology.clone(),
            r.oscillating.to_string(),
            format!("{:.0} / {:.0}", r.hc, r.hu),
            format!("{:.0} / {:.0}", r.static_value, r.maintained_value),
            format!("{:.2}x / {:.2}x", r.static_ssv_dev, r.maintained_ssv_dev),
            format!("{:.0} / {:.0}", r.static_msgs, r.maintained_msgs),
            r.stats.maintenance_msgs.to_string(),
            format!("{:.2}", r.value_gain()),
            format!("{:.2}", r.cost_ratio()),
            format!("{:.2}", r.final_mean_degree),
            format!("{:.1}", r.final_components),
        ]);
    }
    t
}

/// The experiment's headline: the smallest maintained/static declared-
/// count ratio across the sweep. At or above 1.0 means overlay
/// maintenance never loses validity ground to the static graph at
/// equal churn — the gain it buys with [`Row::cost_ratio`] more
/// traffic.
pub fn min_value_gain(rows: &[Row]) -> f64 {
    rows.iter()
        .map(Row::value_gain)
        .fold(f64::INFINITY, f64::min)
}

/// The cost side of the headline: the largest total-message ratio
/// (maintained protocol + maintenance traffic over static protocol)
/// across the sweep.
pub fn max_cost_ratio(rows: &[Row]) -> f64 {
    rows.iter().map(Row::cost_ratio).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintenance_pays_in_messages_and_reports_its_shape() {
        let rows = run(&Config::smoke());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // The maintenance plane actually ran: probes, shuffles and
            // rejoin re-attachments all fired under oscillating churn.
            assert!(r.stats.probes > 0, "no probes at k={}", r.oscillating);
            assert!(r.stats.shuffles > 0, "no shuffles at k={}", r.oscillating);
            assert!(r.stats.rejoins > 0, "no rejoins at k={}", r.oscillating);
            assert!(r.stats.maintenance_msgs > 0);
            // …and is paid for: the maintained arm's total traffic
            // exceeds the static arm's.
            assert!(
                r.cost_ratio() > 1.0,
                "cost ratio {:.2} at k={}",
                r.cost_ratio(),
                r.oscillating
            );
            // Both arms stay inside the §4.2 Single-Site envelope.
            assert!(
                r.static_ssv_dev < 2.0 && r.maintained_ssv_dev < 2.0,
                "SSV dev {:.2}x / {:.2}x",
                r.static_ssv_dev,
                r.maintained_ssv_dev
            );
            // The final overlay kept the live population attached: the
            // largest component dwarfs any debris.
            assert!(r.final_mean_degree > 1.0);
            assert!(r.final_largest > 0.5 * r.hu);
        }
    }

    #[test]
    fn maintained_overlay_never_loses_validity_ground() {
        // The validity half of the headline, with a small tolerance for
        // FM noise between the two arms' independent sketch draws.
        let rows = run(&Config::smoke());
        assert!(
            min_value_gain(&rows) > 0.9,
            "min value gain {:.2}",
            min_value_gain(&rows)
        );
        // At the heavier churn fraction the maintained overlay's
        // re-attachment advantage shows up as a strictly better count.
        let heavy = rows.last().expect("two rows");
        assert!(
            heavy.value_gain() >= 1.0,
            "heavy-churn value gain {:.2}",
            heavy.value_gain()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&Config::smoke());
        let b = run(&Config::smoke());
        assert_eq!(a, b);
    }
}
