//! Continuous Single-Site Validity (§4.2).
//!
//! A continuous query registered at `hq` must return, at each report
//! time `t`, a value `v_t = q(H)` for some `HC ⊆ H ⊆ HU` where both sets
//! are taken **over the recent window** `[t − W, t]` — judging against
//! the whole registration interval `[0, t]` degenerates as `HC → ∅` in
//! any dynamic network (the paper's naive-adaptation remark).
//!
//! The driver here realizes the obvious algorithm the definition
//! suggests: re-issue a WILDFIRE one-shot every `W` ticks against the
//! evolving membership, and judge each report over its own window. `W`
//! must be at least `2·D̂·δ` so a window fits one full query round
//! (§4.2's `W < max D_i δ` impossibility). Since the `RunPlan`
//! redesign the window slicing lives in [`crate::judged::judged_plan`]
//! (any plan with a `.continuous(..)` spec runs this way, for any
//! protocol list); [`run_continuous`] remains as the WILDFIRE-shaped
//! convenience wrapper.

use crate::judged::judged_plan;
use pov_oracle::{host_sets, Verdict};
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{Aggregate, ProtocolKind, RunPlan};
use pov_sim::{ChurnPlan, Ctx, NodeLogic, SimBuilder, Time};
use pov_topology::{Graph, HostId};

/// Configuration of a continuous run.
#[derive(Clone, Debug)]
pub struct ContinuousConfig {
    /// The aggregate to maintain.
    pub aggregate: Aggregate,
    /// Window length `W` in ticks; must be ≥ `2·d_hat`.
    pub window: u64,
    /// Number of windows to run.
    pub windows: usize,
    /// Stable-diameter overestimate.
    pub d_hat: u32,
    /// FM repetitions.
    pub c: usize,
    /// Querying host.
    pub hq: HostId,
    /// Root seed.
    pub seed: u64,
}

/// One window's report.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Absolute start of the window.
    pub start: Time,
    /// The value reported at the end of the query round.
    pub value: Option<f64>,
    /// Oracle judgement over this window.
    pub verdict: Verdict,
    /// `|HC|` over this window.
    pub hc_size: usize,
    /// `|HU|` over this window.
    pub hu_size: usize,
    /// Messages spent in this window.
    pub messages: u64,
}

/// Run a continuous query over a network whose membership evolves under
/// `churn` (an absolute-time plan spanning all windows). Hosts that have
/// failed stay failed; the driver re-issues a WILDFIRE one-shot at the
/// start of each window.
pub fn run_continuous(
    graph: &Graph,
    values: &[u64],
    churn: &ChurnPlan,
    cfg: &ContinuousConfig,
) -> Vec<WindowReport> {
    assert!(
        cfg.window >= 2 * cfg.d_hat as u64,
        "window must fit a full query round (W >= 2*D̂)"
    );
    let plan = RunPlan::query(cfg.aggregate)
        .d_hat(cfg.d_hat)
        .repetitions(cfg.c)
        .from_host(cfg.hq)
        .seed(cfg.seed)
        .churn(churn.clone())
        .continuous(cfg.window, cfg.windows)
        .protocol(ProtocolKind::Wildfire(WildfireOpts::default()));
    judged_plan(graph, values, &plan)
        .remove(0)
        .windows
        .into_iter()
        .map(|w| WindowReport {
            start: w.start,
            value: w.judged.value,
            verdict: w.judged.verdict,
            hc_size: w.judged.hc_size,
            hu_size: w.judged.hu_size,
            messages: w.judged.metrics.messages_sent,
        })
        .collect()
}

/// The §4.2 degeneracy argument, quantified: per-window `|HC|` vs the
/// `|HC|` of the *naive* adaptation that judges every report over the
/// whole registration interval `[0, t]`.
///
/// Returns one pair `(windowed, cumulative)` per window. In any network
/// with sustained churn the cumulative column decays toward the trivial
/// bound — *"the resulting `HC` considered over a long interval could
/// easily become empty"* — while the windowed column tracks the live
/// population, which is exactly why the definition fixes a recent window
/// `[t − W, t]`.
pub fn hc_decay(
    graph: &Graph,
    churn: &ChurnPlan,
    hq: HostId,
    window: u64,
    windows: usize,
) -> Vec<(usize, usize)> {
    struct Idle;
    impl NodeLogic for Idle {
        type Msg = ();
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
    }
    let horizon = Time(window * windows as u64);
    let mut sim = SimBuilder::over(graph).churn(churn.clone()).build(|_| Idle);
    sim.run_until(horizon);
    let trace = sim.trace();
    (0..windows)
        .map(|w| {
            let end = Time((w as u64 + 1) * window);
            let start = Time(w as u64 * window);
            let windowed = host_sets(graph, trace, hq, start, end).hc_len();
            let cumulative = host_sets(graph, trace, hq, Time::ZERO, end).hc_len();
            (windowed, cumulative)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_topology::generators::random_average_degree;

    fn cfg(window: u64, windows: usize) -> ContinuousConfig {
        ContinuousConfig {
            aggregate: Aggregate::Max,
            window,
            windows,
            d_hat: 8,
            c: 8,
            hq: HostId(0),
            seed: 42,
        }
    }

    #[test]
    fn stable_network_reports_every_window() {
        let g = random_average_degree(200, 5.0, 1);
        let values: Vec<u64> = (0..200).map(|i| 10 + i % 90).collect();
        let reports = run_continuous(&g, &values, &ChurnPlan::none(), &cfg(20, 4));
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.verdict.is_valid(), "window at {:?}", r.start);
            assert_eq!(r.value, Some(99.0));
            assert_eq!(r.hc_size, 200);
        }
    }

    #[test]
    fn windows_see_progressive_decay() {
        let g = random_average_degree(200, 5.0, 2);
        let values = vec![1u64; 200];
        // 100 failures spread over 4 windows of 25 ticks each.
        let churn = ChurnPlan::uniform_failures(200, 100, Time(0), Time(100), HostId(0), 7);
        let mut c = cfg(25, 4);
        c.aggregate = Aggregate::Count;
        let reports = run_continuous(&g, &values, &churn, &c);
        assert_eq!(reports.len(), 4);
        // HU shrinks monotonically across windows as hosts die for good.
        for pair in reports.windows(2) {
            assert!(
                pair[1].hu_size <= pair[0].hu_size,
                "membership must only decay"
            );
        }
        // Per-window validity holds even though whole-interval HC would
        // be tiny: each report is judged over its own recent window.
        // WILDFIRE count is Approximate SSV (Thm 5.3), so allow the FM
        // estimation envelope.
        for r in &reports {
            assert!(
                r.verdict.is_approx_valid(1.5),
                "window {:?}: {:?} vs {:?} (factor {:?})",
                r.start,
                r.value,
                r.verdict.bounds,
                r.verdict.approx_factor
            );
        }
    }

    #[test]
    fn driver_stops_if_hq_dies() {
        let g = random_average_degree(50, 4.0, 3);
        let values = vec![1u64; 50];
        let churn = ChurnPlan::none().with_failure(Time(30), HostId(0));
        let mut c = cfg(25, 4);
        c.aggregate = Aggregate::Count;
        let reports = run_continuous(&g, &values, &churn, &c);
        // Window 0 (t=0..25) fine; window 1 contains hq's death at t=30?
        // No: t=30 is in window 1 (25..50), so window 1 runs (hq dies
        // mid-window), and window 2 cannot start.
        assert!(reports.len() <= 2, "got {} reports", reports.len());
    }

    #[test]
    fn naive_whole_interval_hc_degenerates() {
        // §4.2: under *turnover* — the norm in P2P networks — the
        // cumulative-interval HC decays toward {hq} because almost no
        // host is alive for the whole registration, while the per-window
        // HC keeps tracking the (large) current population. This is why
        // the definition judges over a recent window.
        let n = 300;
        // hq needs stable links into the joining cohort (150..300), or the
        // windowed HC collapses to {hq} as well once the original
        // population has turned over. Guarantee that structurally rather
        // than relying on the generator seed: anchor hq to every 10th
        // early joiner, so it reaches the cohort's giant component no
        // matter where the random edges landed.
        let g = {
            let base = random_average_degree(n, 6.0, 7);
            let mut b = pov_topology::GraphBuilder::with_hosts(n);
            for (a, bb) in base.edges() {
                b.add_edge(a, bb);
            }
            for anchor in (150..250).step_by(10) {
                b.add_edge(HostId(0), HostId(anchor));
            }
            b.build()
        };
        // Hosts 1..150 leave at a uniform rate; hosts 150..300 start
        // dead and join at a uniform rate. Population stays ~150 strong.
        let mut churn = ChurnPlan::none();
        for i in 1..150u32 {
            churn = churn.with_failure(Time(i as u64), HostId(i));
        }
        for i in 150..300u32 {
            churn = churn.with_join(Time((i - 150) as u64), HostId(i));
        }
        let pairs = hc_decay(&g, &churn, HostId(0), 25, 6);
        assert_eq!(pairs.len(), 6);
        // Cumulative HC is monotone non-increasing...
        for w in pairs.windows(2) {
            assert!(w[1].1 <= w[0].1, "cumulative HC grew: {pairs:?}");
        }
        // ...and ends near the trivial bound, while the window stays fat.
        let (last_windowed, last_cumulative) = *pairs.last().unwrap();
        assert!(
            last_cumulative <= 3,
            "cumulative HC should be nearly empty: {pairs:?}"
        );
        assert!(
            last_windowed > 30 * last_cumulative.max(1),
            "windowed {last_windowed} should dwarf cumulative {last_cumulative}: {pairs:?}"
        );
    }

    #[test]
    #[should_panic(expected = "full query round")]
    fn rejects_too_small_window() {
        let g = random_average_degree(20, 4.0, 3);
        run_continuous(&g, &[1; 20], &ChurnPlan::none(), &cfg(10, 2));
    }
}
