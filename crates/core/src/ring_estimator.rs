//! Protocol-specific network-size estimation on identifier rings (§5.4).
//!
//! Some P2P protocols (Viceroy \[23\], Pastry \[34\], Chord \[36\]) place hosts
//! at random positions on a unit ring, each managing the segment back to
//! its predecessor. If `X_s` is the total segment length managed by `s`
//! sampled hosts, `s / X_s` is an unbiased estimator of `|H|`, and it
//! satisfies Approximate Single-Site Validity under the §5.4 sampling
//! assumptions. This module drives [`pov_topology::ring::IdentifierRing`]
//! through churn and repeated estimation.

use pov_sketch::stats;
use pov_topology::ring::IdentifierRing;
use pov_topology::HostId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A continuous ring-based size estimator over a churning DHT.
#[derive(Clone, Debug)]
pub struct RingEstimator {
    ring: IdentifierRing,
    sample_size: usize,
    next_id: u32,
    rng: SmallRng,
    /// Messages spent (one request/response pair per sampled host).
    pub messages: u64,
}

impl RingEstimator {
    /// A ring of `n` hosts, sampling `sample_size` per estimate.
    pub fn new(n: usize, sample_size: usize, seed: u64) -> Self {
        assert!(sample_size >= 1, "need a positive sample size");
        RingEstimator {
            ring: IdentifierRing::new(n, seed),
            sample_size,
            next_id: n as u32,
            rng: SmallRng::seed_from_u64(seed ^ 0xabcd),
            messages: 0,
        }
    }

    /// True current size (ground truth for tests/experiments).
    pub fn true_size(&self) -> usize {
        self.ring.len()
    }

    /// One churn step: each host leaves with probability `leave_prob`;
    /// `joins` fresh hosts join.
    pub fn churn_step(&mut self, leave_prob: f64, joins: usize) {
        let present: Vec<HostId> = (0..self.next_id)
            .map(HostId)
            .filter(|&h| self.ring.contains(h))
            .collect();
        for h in present {
            if self.rng.gen_bool(leave_prob) {
                self.ring.leave(h);
            }
        }
        for _ in 0..joins {
            let h = HostId(self.next_id);
            self.next_id += 1;
            self.ring.join(h);
        }
    }

    /// One estimate: sample `s` hosts, sum their segment lengths,
    /// return `s / X_s`. `None` if the ring is empty.
    pub fn estimate(&mut self) -> Option<f64> {
        let sample = self.ring.sample(self.sample_size);
        self.messages += 2 * sample.len() as u64;
        self.ring.size_estimate(&sample)
    }

    /// Mean of `k` independent estimates (variance reduction used by the
    /// experiments; the estimator is unbiased, so averaging converges).
    pub fn estimate_mean(&mut self, k: usize) -> Option<f64> {
        let estimates: Vec<f64> = (0..k).filter_map(|_| self.estimate()).collect();
        if estimates.is_empty() {
            None
        } else {
            Some(stats::mean(&estimates))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_ring_estimate_near_truth() {
        let mut est = RingEstimator::new(5_000, 250, 1);
        let e = est.estimate_mean(30).unwrap();
        assert!(
            (3_000.0..8_000.0).contains(&e),
            "estimate {e} for 5000 hosts"
        );
    }

    #[test]
    fn estimate_tracks_churn() {
        let mut est = RingEstimator::new(4_000, 200, 2);
        // Halve the population.
        for _ in 0..14 {
            est.churn_step(0.05, 0);
        }
        let truth = est.true_size() as f64;
        assert!(truth < 2_500.0);
        let e = est.estimate_mean(30).unwrap();
        assert!(
            (0.5 * truth..2.0 * truth).contains(&e),
            "estimate {e} vs truth {truth}"
        );
    }

    #[test]
    fn joins_grow_the_estimate() {
        let mut est = RingEstimator::new(500, 100, 3);
        let before = est.estimate_mean(30).unwrap();
        for _ in 0..10 {
            est.churn_step(0.0, 100);
        }
        let after = est.estimate_mean(30).unwrap();
        assert!(
            after > before * 1.5,
            "estimate should grow: {before} -> {after}"
        );
    }

    #[test]
    fn empty_ring_yields_none() {
        let mut est = RingEstimator::new(10, 5, 4);
        for _ in 0..40 {
            est.churn_step(0.9, 0);
        }
        if est.true_size() == 0 {
            assert!(est.estimate().is_none());
        }
    }

    #[test]
    fn message_accounting() {
        let mut est = RingEstimator::new(100, 20, 5);
        est.estimate();
        assert_eq!(est.messages, 40);
    }
}
