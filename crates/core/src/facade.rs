//! High-level façade: build a network, issue a query, get a judged
//! answer. The experiment drivers use the lower-level crates directly;
//! this is the API a downstream user starts from.

use crate::judged::{judged_plan, JudgedOutcome};
use crate::workload;
use pov_oracle::Verdict;
use pov_protocols::allreport::ReportRouting;
use pov_protocols::wildfire::WildfireOpts;
use pov_protocols::{Aggregate, ProtocolKind, RunPlan};
use pov_sim::{ChurnPlan, DelayModel, Medium, Metrics, Time};
use pov_topology::generators::TopologyKind;
use pov_topology::{analysis, Graph, HostId};

/// The protocols exposed through the façade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// ALLREPORT with direct (underlay) report delivery.
    AllReport,
    /// SPANNINGTREE (TAG-style tree convergecast).
    SpanningTree,
    /// DIRECTEDACYCLICGRAPH with 2 parents.
    Dag2,
    /// DIRECTEDACYCLICGRAPH with 3 parents.
    Dag3,
    /// WILDFIRE with both §5.3 optimizations.
    Wildfire,
}

impl Protocol {
    fn kind(self) -> ProtocolKind {
        match self {
            Protocol::AllReport => ProtocolKind::AllReport(ReportRouting::Direct),
            Protocol::SpanningTree => ProtocolKind::SpanningTree,
            Protocol::Dag2 => ProtocolKind::Dag { k: 2 },
            Protocol::Dag3 => ProtocolKind::Dag { k: 3 },
            Protocol::Wildfire => ProtocolKind::Wildfire(WildfireOpts::default()),
        }
    }

    /// Paper name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::AllReport => "ALLREPORT",
            Protocol::SpanningTree => "SPANNINGTREE",
            Protocol::Dag2 => "DAG(k=2)",
            Protocol::Dag3 => "DAG(k=3)",
            Protocol::Wildfire => "WILDFIRE",
        }
    }
}

/// A topology with per-host attribute values and a calibrated
/// stable-diameter overestimate `D̂`.
#[derive(Clone, Debug)]
pub struct Network {
    graph: Graph,
    values: Vec<u64>,
    d_hat: u32,
    seed: u64,
}

impl Network {
    /// Build one of the §6.1 topologies with `n` hosts and paper-Zipf
    /// attribute values. `D̂` is set to the measured diameter plus a
    /// small slack, mirroring the paper's "overestimate by a reasonably
    /// small constant" (§4.1).
    pub fn build(kind: TopologyKind, n: usize, seed: u64) -> Self {
        let graph = kind.build(n, seed);
        Self::from_graph(graph, seed)
    }

    /// Wrap an existing graph, assigning paper-Zipf values.
    pub fn from_graph(graph: Graph, seed: u64) -> Self {
        let values = workload::paper_values(graph.num_hosts(), seed ^ 0x5eed_0001);
        let d = analysis::diameter_estimate(&graph, 4, seed | 1);
        Network {
            graph,
            values,
            d_hat: d + 2,
            seed,
        }
    }

    /// Wrap a graph with explicit values and `D̂`.
    pub fn with_values(graph: Graph, values: Vec<u64>, d_hat: u32, seed: u64) -> Self {
        assert_eq!(graph.num_hosts(), values.len(), "one value per host");
        Network {
            graph,
            values,
            d_hat,
            seed,
        }
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Per-host attribute values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The stable-diameter overestimate used for query deadlines.
    pub fn d_hat(&self) -> u32 {
        self.d_hat
    }

    /// Start describing a query.
    pub fn query(&self, aggregate: Aggregate) -> QueryBuilder<'_> {
        QueryBuilder {
            net: self,
            aggregate,
            failures: 0,
            c: 8,
            medium: Medium::PointToPoint,
            delay: DelayModel::default(),
            hq: HostId(0),
            seed: self.seed ^ 0xc0ffee,
        }
    }
}

/// Fluent query configuration — a thin front door over [`RunPlan`]:
/// [`QueryBuilder::run`] and [`QueryBuilder::compare`] lower to the
/// same plan and executor the scenario batch runner uses.
#[derive(Clone, Debug)]
pub struct QueryBuilder<'a> {
    net: &'a Network,
    aggregate: Aggregate,
    failures: usize,
    c: usize,
    medium: Medium,
    delay: DelayModel,
    hq: HostId,
    seed: u64,
}

impl<'a> QueryBuilder<'a> {
    /// Fail `r` random hosts at a uniform rate during query processing
    /// (the §6.2 dynamism model).
    pub fn churn(mut self, r: usize) -> Self {
        self.failures = r;
        self
    }

    /// FM repetitions `c` for sketched aggregates (default 8, per Fig 6).
    pub fn repetitions(mut self, c: usize) -> Self {
        self.c = c;
        self
    }

    /// Choose the communication medium (default point-to-point).
    pub fn medium(mut self, medium: Medium) -> Self {
        self.medium = medium;
        self
    }

    /// Choose the per-hop delay model (default fixed 1-tick hops). The
    /// query deadline in ticks scales by the model's bound `δ`, exactly
    /// as in scenario files.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Choose the querying host (default `h0`).
    pub fn from_host(mut self, hq: HostId) -> Self {
        self.hq = hq;
        self
    }

    /// Per-query seed (default derived from the network seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The [`RunPlan`] this builder describes, with `kinds` as the
    /// execution list.
    fn plan(&self, kinds: impl IntoIterator<Item = ProtocolKind>) -> RunPlan {
        let deadline = 2 * self.net.d_hat as u64 * self.delay.bound();
        let churn = ChurnPlan::uniform_failures(
            self.net.graph.num_hosts(),
            self.failures,
            Time::ZERO,
            Time(deadline),
            self.hq,
            self.seed ^ 0xdead,
        );
        RunPlan::query(self.aggregate)
            .d_hat(self.net.d_hat)
            .repetitions(self.c)
            .medium(self.medium)
            .delay(self.delay)
            .churn(churn)
            .seed(self.seed)
            .from_host(self.hq)
            .protocols(kinds)
    }

    /// Run the query under `protocol` and judge the outcome.
    pub fn run(&self, protocol: Protocol) -> Answer {
        self.compare(&[protocol]).remove(0)
    }

    /// Run the query under *each* protocol over one shared plan — same
    /// churn realization, same seed — and return the judged answers in
    /// argument order. Because the failure draw is fixed by the plan,
    /// the answers form a paired comparison: any verdict/cost gap is
    /// the protocols' doing, not the dynamism's.
    pub fn compare(&self, protocols: &[Protocol]) -> Vec<Answer> {
        let plan = self.plan(protocols.iter().map(|p| p.kind()));
        judged_plan(&self.net.graph, &self.net.values, &plan)
            .into_iter()
            .zip(protocols)
            .map(|(mut judged, &p)| Answer::from_judged(p, judged.windows.remove(0).judged))
            .collect()
    }
}

/// A declared value together with the oracle's judgement and the run's
/// cost metrics.
#[derive(Clone, Debug)]
pub struct Answer {
    /// The protocol that produced this answer (paper name).
    pub protocol: &'static str,
    /// The value `hq` declared (None if `hq` died first).
    pub value: Option<f64>,
    /// When it was declared.
    pub declared_at: Option<Time>,
    /// The oracle's Single-Site-Validity judgement.
    pub verdict: Verdict,
    /// `|HC|` over the query interval.
    pub hc_size: usize,
    /// `|HU|` over the query interval.
    pub hu_size: usize,
    /// §6.3 cost metrics.
    pub metrics: Metrics,
}

impl Answer {
    fn from_judged(protocol: Protocol, out: JudgedOutcome) -> Answer {
        Answer {
            protocol: protocol.name(),
            value: out.value,
            declared_at: out.declared_at,
            verdict: out.verdict,
            hc_size: out.hc_size,
            hu_size: out.hu_size,
            metrics: out.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let net = Network::build(TopologyKind::Random, 300, 11);
        let answer = net.query(Aggregate::Max).run(Protocol::Wildfire);
        assert!(answer.verdict.is_valid());
        let truth = *net.values().iter().max().unwrap() as f64;
        assert_eq!(answer.value, Some(truth));
    }

    #[test]
    fn wildfire_valid_under_churn() {
        let net = Network::build(TopologyKind::Gnutella, 400, 5);
        for seed in 0..3 {
            let answer = net
                .query(Aggregate::Min)
                .churn(40)
                .seed(seed)
                .run(Protocol::Wildfire);
            assert!(
                answer.verdict.is_valid(),
                "seed {seed}: {:?}",
                answer.verdict
            );
        }
    }

    #[test]
    fn spanning_tree_exact_without_churn() {
        let net = Network::build(TopologyKind::Random, 250, 3);
        let answer = net.query(Aggregate::Sum).run(Protocol::SpanningTree);
        let truth: u64 = net.values().iter().sum();
        assert_eq!(answer.value, Some(truth as f64));
        assert!(answer.verdict.within_bounds);
        assert_eq!(answer.hc_size, 250);
        assert_eq!(answer.hu_size, 250);
    }

    #[test]
    fn churn_shrinks_hc() {
        let net = Network::build(TopologyKind::Random, 300, 9);
        let answer = net
            .query(Aggregate::Count)
            .churn(60)
            .run(Protocol::SpanningTree);
        assert!(answer.hc_size < 300 - 59, "hc = {}", answer.hc_size);
        assert_eq!(answer.hu_size, 300);
    }

    #[test]
    fn all_facade_protocols_run() {
        let net = Network::build(TopologyKind::Grid, 100, 2);
        for p in [
            Protocol::AllReport,
            Protocol::SpanningTree,
            Protocol::Dag2,
            Protocol::Dag3,
            Protocol::Wildfire,
        ] {
            let answer = net.query(Aggregate::Max).run(p);
            assert!(answer.value.is_some(), "{}", p.name());
        }
    }

    #[test]
    fn compare_pairs_protocols_on_one_realization() {
        // WILDFIRE vs SPANNINGTREE under the same 60-failure draw: the
        // paired answers expose the validity gap without churn-sampling
        // noise, and each answer knows which protocol produced it.
        let net = Network::build(TopologyKind::Random, 300, 17);
        let answers = net
            .query(Aggregate::Count)
            .churn(60)
            .compare(&[Protocol::Wildfire, Protocol::SpanningTree]);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].protocol, "WILDFIRE");
        assert_eq!(answers[1].protocol, "SPANNINGTREE");
        // Shared realization: identical oracle population set.
        assert_eq!(answers[0].hu_size, answers[1].hu_size);
        // And identical to what a solo run of each protocol sees.
        let solo = net
            .query(Aggregate::Count)
            .churn(60)
            .run(Protocol::Wildfire);
        assert_eq!(solo.value, answers[0].value);
        assert_eq!(solo.metrics.messages_sent, answers[0].metrics.messages_sent);
    }

    #[test]
    fn facade_delay_scales_deadline() {
        // The two front doors must agree: a 2-tick hop bound doubles the
        // declaration instant through the façade exactly as it does
        // through scenario files.
        let g = pov_topology::generators::special::cycle(8);
        let net = Network::with_values(g, vec![5; 8], 6, 3);
        let fast = net.query(Aggregate::Max).run(Protocol::Wildfire);
        let slow = net
            .query(Aggregate::Max)
            .delay(DelayModel::Fixed(2))
            .run(Protocol::Wildfire);
        assert_eq!(fast.declared_at, Some(Time(12)));
        assert_eq!(slow.declared_at, Some(Time(24)));
        assert_eq!(slow.value, fast.value);
    }

    #[test]
    #[should_panic(expected = "one value per host")]
    fn with_values_checks_length() {
        let g = pov_topology::generators::special::chain(3);
        Network::with_values(g, vec![1, 2], 4, 0);
    }

    #[test]
    fn query_from_non_default_host() {
        // A mid-chain querying host sees the whole chain; HC/HU are
        // computed from *its* vantage point.
        let g = pov_topology::generators::special::chain(9);
        let values: Vec<u64> = (10..19).collect();
        let net = Network::with_values(g, values.clone(), 10, 1);
        let answer = net
            .query(Aggregate::Max)
            .from_host(HostId(4))
            .run(Protocol::Wildfire);
        assert_eq!(answer.value, Some(18.0));
        assert!(answer.verdict.is_valid());
        assert_eq!(answer.hc_size, 9);

        // The exact protocols agree from the same vantage point.
        let g = pov_topology::generators::special::chain(9);
        let net = Network::with_values(g, values, 10, 1);
        let answer = net
            .query(Aggregate::Count)
            .from_host(HostId(4))
            .run(Protocol::SpanningTree);
        assert_eq!(answer.value, Some(9.0));
    }

    #[test]
    fn custom_d_hat_controls_deadline() {
        let g = pov_topology::generators::special::cycle(8);
        let net = Network::with_values(g, vec![5; 8], 6, 3);
        assert_eq!(net.d_hat(), 6);
        let answer = net.query(Aggregate::Max).run(Protocol::Wildfire);
        // WILDFIRE declares at exactly 2·D̂.
        assert_eq!(answer.declared_at, Some(Time(12)));
    }
}
