//! # The Price of Validity in Dynamic Networks
//!
//! A faithful, laptop-scale reproduction of Bawa, Gionis, Garcia-Molina &
//! Motwani, *"The Price of Validity in Dynamic Networks"* (SIGMOD 2004 /
//! JCSS 73 (2007) 245–264): Single-Site-Validity semantics for aggregate
//! queries over networks whose hosts fail mid-query, the WILDFIRE
//! protocol that guarantees them, the best-effort baselines it is judged
//! against, and every experiment of the paper's evaluation section.
//!
//! ## Quick start
//!
//! ```
//! use pov_core::prelude::*;
//!
//! // A 500-host Gnutella-like overlay where 40 hosts fail mid-query.
//! let net = Network::build(TopologyKind::Gnutella, 500, 42);
//! let answer = net
//!     .query(Aggregate::Max)
//!     .churn(40)
//!     .run(Protocol::Wildfire);
//!
//! // The oracle judges the declared value against the Single-Site-
//! // Validity bounds (Theorem 5.1: WILDFIRE max is exactly valid).
//! assert!(answer.verdict.is_valid());
//! ```
//!
//! ## Layout
//!
//! * [`Network`] / [`QueryBuilder`] — the high-level façade used above;
//! * [`workload`] — Zipf attribute values on `[10, 500]` (§6.1);
//! * [`experiments`] — one driver per figure of §6 (see DESIGN.md's
//!   per-experiment index);
//! * [`judged`] — the shared execution layer: run one protocol and
//!   judge it, or execute a whole `RunPlan` (N protocols × continuous
//!   windows, one churn realization) for the façade and the
//!   `pov_scenario` batch runner;
//! * [`continuous`] — sliding-window Continuous Single-Site Validity
//!   (§4.2);
//! * [`capture_recapture`] — the Jolly–Seber network-size estimator
//!   (§5.4);
//! * [`ring_estimator`] — the DHT-ring segment-length estimator (§5.4);
//! * re-exported substrates: [`pov_topology`], [`pov_sim`],
//!   [`pov_sketch`], [`pov_protocols`], [`pov_oracle`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture_recapture;
pub mod continuous;
pub mod experiments;
mod facade;
pub mod judged;
pub mod mux;
pub mod report;
pub mod ring_estimator;
pub mod workload;

pub use facade::{Answer, Network, Protocol, QueryBuilder};

// Substrate re-exports so downstream users need only one dependency.
pub use pov_oracle;
pub use pov_protocols;
pub use pov_sim;
pub use pov_sketch;
pub use pov_topology;

/// One-line imports for examples and tests.
pub mod prelude {
    pub use crate::facade::{Answer, Network, Protocol, QueryBuilder};
    pub use crate::judged::{judged_plan, judged_run, JudgedOutcome, ProtocolJudged, WindowJudged};
    pub use crate::workload;
    pub use pov_oracle::{host_sets, Verdict};
    pub use pov_protocols::{Aggregate, ContinuousSpec, ProtocolKind, RunPlan};
    pub use pov_sim::{ChurnPlan, DelayModel, Medium, Time};
    pub use pov_topology::generators::TopologyKind;
    pub use pov_topology::{Graph, HostId};
}

#[cfg(test)]
mod smoke {
    use crate::prelude::*;

    #[test]
    fn crate_root_smoke() {
        // The crate-level quick start at reduced scale: 100-host overlay,
        // 10 failures mid-query, WILDFIRE max stays exactly valid.
        let net = Network::build(TopologyKind::Random, 100, 42);
        let answer = net.query(Aggregate::Max).churn(10).run(Protocol::Wildfire);
        assert!(answer.verdict.is_valid());
    }
}
