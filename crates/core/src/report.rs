//! Plain-text tables for the `repro` harness and EXPERIMENTS.md.

use std::fmt;

/// A fixed-width text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>w$}", cells[i], w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a `(mean, ci95-half-width)` pair as `mean ±ci`.
pub fn fmt_mean_ci(stat: (f64, f64)) -> String {
    format!("{:.1} ±{:.1}", stat.0, stat.1)
}

/// Format a float compactly (integers without decimals).
pub fn fmt_num(v: f64) -> String {
    if v.fract().abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.push(vec!["1".into(), "2".into(), "3".into()]);
        t.push(vec!["100".into(), "20000".into(), "3".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
        // all data lines same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(41.987), "41.99");
        assert_eq!(fmt_mean_ci((12.34, 0.5)), "12.3 ±0.5");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()]);
    }
}
