//! Continuous approximate network-size estimation by capture–recapture
//! (§5.4).
//!
//! The paper views a dynamic network as an *evolving ecology* and applies
//! the Jolly–Seber model for open populations: maintain a set of *marked*
//! hosts `M_t` (hosts sampled previously and verified alive by probing),
//! sample `N_t` fresh random hosts each period, count the recaptures
//! `m_t = |M_t ∩ N_t|`, and estimate
//!
//! ```text
//! Ĥ_t = |M_t| · |N_t| / m_t
//! ```
//!
//! The scheme assumes (1) uniform sampling, (2) instantaneous sampling
//! relative to host lifetimes, and (3) memoryless departures — all three
//! stated in §5.4. [`PopulationModel`] below satisfies them by
//! construction, providing the black-box "return `s` random alive hosts"
//! operation the paper requires.

use pov_topology::HostId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An open population with memoryless departures and Poisson-ish
/// arrivals — the §5.4 ecology, decoupled from any particular overlay.
#[derive(Clone, Debug)]
pub struct PopulationModel {
    alive: Vec<bool>,
    alive_count: usize,
    /// Per-step departure probability (assumption 3: identical for all).
    leave_prob: f64,
    /// Expected joins per step.
    join_rate: f64,
    rng: SmallRng,
}

impl PopulationModel {
    /// A population of `n` hosts with the given churn parameters.
    pub fn new(n: usize, leave_prob: f64, join_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&leave_prob), "probability range");
        PopulationModel {
            alive: vec![true; n],
            alive_count: n,
            leave_prob,
            join_rate,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Current population size `|H_t|` (the quantity to estimate).
    pub fn size(&self) -> usize {
        self.alive_count
    }

    /// Whether a host is currently alive (the probe primitive; §5.4
    /// maintains `M_t` by probing candidates).
    pub fn is_alive(&self, h: HostId) -> bool {
        self.alive.get(h.index()).copied().unwrap_or(false)
    }

    /// Advance one period: every host departs independently with
    /// `leave_prob`; `~join_rate` new hosts arrive.
    pub fn step(&mut self) {
        for i in 0..self.alive.len() {
            if self.alive[i] && self.rng.gen_bool(self.leave_prob) {
                self.alive[i] = false;
                self.alive_count -= 1;
            }
        }
        // Integer part plus Bernoulli remainder keeps the expectation.
        let whole = self.join_rate.floor() as usize;
        let frac = self.join_rate - self.join_rate.floor();
        let joins = whole + usize::from(frac > 0.0 && self.rng.gen_bool(frac));
        for _ in 0..joins {
            self.alive.push(true);
            self.alive_count += 1;
        }
    }

    /// Uniform sample of `s` distinct alive hosts (assumptions 1–2).
    pub fn sample(&mut self, s: usize) -> Vec<HostId> {
        let alive: Vec<HostId> = self
            .alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| HostId(i as u32))
            .collect();
        let mut idx: Vec<usize> = (0..alive.len()).collect();
        let take = s.min(alive.len());
        let mut out = Vec::with_capacity(take);
        for i in 0..take {
            let j = self.rng.gen_range(i..idx.len());
            idx.swap(i, j);
            out.push(alive[idx[i]]);
        }
        out
    }
}

/// The Jolly–Seber estimator state at the querying host.
#[derive(Clone, Debug)]
pub struct JollySeber {
    /// Marked hosts `M_t` (alive as of the last probe round).
    marked: Vec<HostId>,
    /// Last period's fresh sample `N_{t-1}`, merged into the mark pool
    /// next period (§5.4: `M'_t = M_{t−1} ∪ N_{t−1}`).
    last_sample: Vec<HostId>,
    /// Fresh hosts sampled per period.
    sample_size: usize,
    /// Cap on the marked pool (§5.4: "If the set M_t grows more than
    /// required, hq can arbitrarily remove hosts").
    max_marked: usize,
    /// Probe + sample messages spent so far (2 per probe: ping/ack).
    pub messages: u64,
}

/// One period's estimate.
#[derive(Clone, Copy, Debug)]
pub struct SizeEstimate {
    /// `Ĥ_t`, if any recaptures occurred.
    pub estimate: Option<f64>,
    /// `|M_t|` after probing.
    pub marked: usize,
    /// Recaptures `m_t`.
    pub recaptured: usize,
}

impl JollySeber {
    /// A fresh estimator sampling `sample_size` hosts per period and
    /// keeping at most `max_marked` marked hosts.
    pub fn new(sample_size: usize, max_marked: usize) -> Self {
        assert!(sample_size >= 1, "need a positive sample size");
        JollySeber {
            marked: Vec::new(),
            last_sample: Vec::new(),
            sample_size,
            max_marked,
            messages: 0,
        }
    }

    /// Run one period against the population: merge last period's sample
    /// into the candidate mark set, probe the candidates, draw a fresh
    /// sample, count recaptures, estimate. The first period only marks
    /// (`M_1 = ∅` in the paper; estimation begins at the second).
    pub fn observe(&mut self, pop: &mut PopulationModel) -> SizeEstimate {
        // M'_t = M_{t−1} ∪ N_{t−1}, then probe all candidates.
        let mut candidates = std::mem::take(&mut self.marked);
        candidates.append(&mut self.last_sample);
        candidates.sort_unstable();
        candidates.dedup();
        self.messages += 2 * candidates.len() as u64; // ping + ack each
        candidates.retain(|&h| pop.is_alive(h));
        candidates.truncate(self.max_marked);
        self.marked = candidates;

        let sample = pop.sample(self.sample_size);
        self.messages += sample.len() as u64; // one reply per sampled host
        let recaptured = sample
            .iter()
            .filter(|h| self.marked.binary_search(h).is_ok())
            .count();
        let estimate = if recaptured > 0 && !self.marked.is_empty() {
            Some(self.marked.len() as f64 * sample.len() as f64 / recaptured as f64)
        } else {
            None
        };
        let result = SizeEstimate {
            estimate,
            marked: self.marked.len(),
            recaptured,
        };
        self.last_sample = sample;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_population_estimate_converges() {
        let mut pop = PopulationModel::new(10_000, 0.0, 0.0, 1);
        let mut js = JollySeber::new(400, 4_000);
        let mut estimates = Vec::new();
        for _ in 0..12 {
            if let Some(e) = js.observe(&mut pop).estimate {
                estimates.push(e);
            }
        }
        assert!(estimates.len() >= 8, "should estimate most periods");
        let mean: f64 = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!(
            (7_000.0..14_000.0).contains(&mean),
            "mean estimate {mean} for 10000"
        );
    }

    #[test]
    fn first_period_has_no_estimate() {
        let mut pop = PopulationModel::new(1_000, 0.0, 0.0, 2);
        let mut js = JollySeber::new(100, 1_000);
        let first = js.observe(&mut pop);
        assert!(first.estimate.is_none());
        assert_eq!(first.marked, 0);
    }

    #[test]
    fn tracks_shrinking_population() {
        let mut pop = PopulationModel::new(8_000, 0.05, 0.0, 3);
        let mut js = JollySeber::new(500, 4_000);
        let mut last_estimates = Vec::new();
        for t in 0..25 {
            pop.step();
            if let Some(e) = js.observe(&mut pop).estimate {
                if t >= 20 {
                    last_estimates.push((e, pop.size()));
                }
            }
        }
        assert!(!last_estimates.is_empty());
        for (e, truth) in last_estimates {
            assert!(
                e > 0.2 * truth as f64 && e < 5.0 * truth as f64,
                "estimate {e} vs truth {truth}"
            );
        }
    }

    #[test]
    fn population_with_joins_grows_index_space() {
        let mut pop = PopulationModel::new(100, 0.0, 5.0, 4);
        pop.step();
        assert_eq!(pop.size(), 105);
        assert!(pop.is_alive(HostId(104)));
    }

    #[test]
    fn dead_hosts_leave_marked_pool() {
        let mut pop = PopulationModel::new(50, 0.0, 0.0, 5);
        let mut js = JollySeber::new(50, 100);
        js.observe(&mut pop); // everyone sampled and (next round) marked
                              // Kill everything; the probe round must empty the pool.
        let mut dead = PopulationModel::new(50, 1.0, 0.0, 6);
        dead.step();
        let e = js.observe(&mut dead);
        assert_eq!(e.marked, 0);
        assert!(e.estimate.is_none());
    }

    #[test]
    fn message_cost_accrues() {
        let mut pop = PopulationModel::new(1_000, 0.0, 0.0, 7);
        let mut js = JollySeber::new(100, 500);
        js.observe(&mut pop);
        let after_one = js.messages;
        assert_eq!(after_one, 100); // first period: sample only
        js.observe(&mut pop);
        assert!(js.messages > after_one, "probing must cost messages");
    }

    #[test]
    #[should_panic(expected = "positive sample size")]
    fn rejects_zero_sample() {
        JollySeber::new(0, 10);
    }
}
