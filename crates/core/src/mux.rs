//! Multiplexed query workloads and their per-query ORACLE verdicts.
//!
//! The protocol layer ([`pov_protocols::mux`]) executes many concurrent
//! queries over one simulation; this module supplies the two pieces the
//! paper-level evaluation needs on top:
//!
//! * [`WorkloadSpec`] — a *deterministic arrival process*: mixed
//!   aggregates (COUNT/SUM/MIN/MAX/AVG), uniform-random roots, arrivals
//!   spread over a span, and optional **sliding windows** (§4.2): a
//!   windowed base query expands into `instances` instances arriving
//!   `slide` ticks apart (`slide < window`), each judged over its own
//!   `[end − W, end]` interval. Successive instances share an
//!   `(aggregate, root)` pair, which is exactly what the engine's
//!   partial cache exploits.
//! * [`judge_workload`] — the per-query ORACLE: each query is judged
//!   over *its own* interval of the shared membership trace, yielding a
//!   [`MuxJudged`] verdict identical in shape to the single-query
//!   [`JudgedOutcome`](crate::judged::JudgedOutcome).
//!
//! [`solo_twin`] runs one query alone over the same environment — the
//! sequential baseline `repro mux` compares against, and the
//! equivalence witness `tests/it_mux.rs` checks per query.

use pov_oracle::{aggregate_bounds, host_sets, Verdict};
use pov_protocols::mux::{run_mux, MuxOutcome, MuxPlan, MuxQuery, QueryId};
use pov_protocols::Aggregate;
use pov_sim::Time;
use pov_topology::{Graph, HostId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sliding-window shape of a workload's queries (§4.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowSpec {
    /// Window width `W` in ticks.
    pub window: u64,
    /// Ticks between successive instances; must satisfy
    /// `1 ≤ slide < window` (overlapping windows).
    pub slide: u64,
    /// Instances each base query expands into.
    pub instances: usize,
}

/// A deterministic multiplexed-workload arrival process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Number of base queries.
    pub queries: usize,
    /// Arrivals are drawn uniformly from `[1, span]`.
    pub span: u64,
    /// Per-query diameter estimate (deadline = `arrival + 2·D̂`).
    pub d_hat: u32,
    /// Optional sliding-window expansion.
    pub window: Option<WindowSpec>,
    /// Workload seed: same seed, same workload, byte for byte.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Materialize the workload over an `n`-host network.
    ///
    /// One RNG stream drawn in query order: aggregate, root, arrival —
    /// so the realization is a function of `(spec, n)` alone. Windowed
    /// base queries expand into their instances inline (ids stay
    /// contiguous and ascending with arrival within a base query).
    ///
    /// # Panics
    /// Panics on an empty spec, `span == 0`, out-of-range window shape
    /// (`slide == 0`, `slide ≥ window`, `instances == 0`), or `n == 0`.
    pub fn generate(&self, n: usize) -> Vec<MuxQuery> {
        assert!(self.queries >= 1, "workload needs at least one query");
        assert!(self.span >= 1, "arrival span must be at least one tick");
        assert!(n >= 1, "workload needs at least one host");
        if let Some(w) = &self.window {
            assert!(w.instances >= 1, "window needs at least one instance");
            assert!(
                w.slide >= 1 && w.slide < w.window,
                "sliding windows require 1 <= slide < window (got slide {} window {})",
                w.slide,
                w.window
            );
        }
        const AGGS: [Aggregate; 5] = [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Average,
        ];
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x6d75_785f_7365_6564);
        let mut queries = Vec::new();
        let mut next_id = 0u32;
        for _ in 0..self.queries {
            let aggregate = AGGS[(rng.gen::<u64>() % AGGS.len() as u64) as usize];
            let root = HostId((rng.gen::<u64>() % n as u64) as u32);
            let arrival = 1 + rng.gen::<u64>() % self.span;
            let (instances, slide, window) = match &self.window {
                Some(w) => (w.instances, w.slide, Some(w.window)),
                None => (1, 0, None),
            };
            for k in 0..instances {
                queries.push(MuxQuery {
                    id: QueryId(next_id),
                    aggregate,
                    root,
                    arrival: arrival + k as u64 * slide,
                    d_hat: self.d_hat,
                    window,
                });
                next_id += 1;
            }
        }
        queries
    }
}

/// One query's declared value, ORACLE verdict and accounted cost inside
/// a multiplexed run.
#[derive(Clone, Debug)]
pub struct MuxJudged {
    /// The query as materialized by the workload.
    pub query: MuxQuery,
    /// The value its root declared (`None` if the root died first).
    pub value: Option<f64>,
    /// When it was declared.
    pub declared_at: Option<Time>,
    /// Single-Site-Validity judgement over the query's own interval.
    pub verdict: Verdict,
    /// `|HC|` over that interval.
    pub hc_size: usize,
    /// `|HU|` over that interval.
    pub hu_size: usize,
    /// The valid envelope `[q(HC), q(HU)]` (interval aggregates only).
    pub bounds: Option<(f64, f64)>,
    /// Payload items charged to this query across all hosts.
    pub payload_msgs: u64,
    /// Whether the query joined a live wave via the partial cache.
    pub joined: bool,
}

impl MuxJudged {
    /// Whether the declared value was judged Single-Site Valid.
    pub fn is_valid(&self) -> bool {
        self.verdict.is_valid()
    }
}

/// Judge every query of a finished multiplexed run against the shared
/// membership trace, each over its own interval: `[arrival, end]` for
/// one-shot queries, the sliding `[end − W, end]` for windowed ones,
/// with `end` the declaration instant (or the deadline when the root
/// never declared).
pub fn judge_workload(
    graph: &Graph,
    values: &[u64],
    queries: &[MuxQuery],
    out: &MuxOutcome,
) -> Vec<MuxJudged> {
    queries
        .iter()
        .map(|q| {
            let qid = q.id.0;
            let declared = out.results.get(&qid).copied();
            let (value, declared_at) = match declared {
                Some((v, at)) => (Some(v), Some(at)),
                None => (None, None),
            };
            let end = declared_at.unwrap_or(Time(q.deadline()));
            let start = match q.window {
                Some(w) => Time(end.ticks().saturating_sub(w)),
                None => Time(q.arrival),
            };
            let sets = host_sets(graph, &out.trace, q.root, start, end);
            let verdict = Verdict::judge(q.aggregate, &sets, values, value.unwrap_or(f64::NAN));
            MuxJudged {
                query: *q,
                value,
                declared_at,
                verdict,
                hc_size: sets.hc_len(),
                hu_size: sets.hu_len(),
                bounds: aggregate_bounds(q.aggregate, &sets, values),
                payload_msgs: out.per_query_payload.get(&qid).copied().unwrap_or(0),
                joined: out.aliased.binary_search(&qid).is_ok(),
            }
        })
        .collect()
}

/// Execute a workload multiplexed and judge every query: the one-call
/// entry the scenario runner and `repro mux` both use.
pub fn judged_mux(
    graph: &Graph,
    values: &[u64],
    queries: &[MuxQuery],
    plan: &MuxPlan,
) -> (Vec<MuxJudged>, MuxOutcome) {
    let out = run_mux(graph, values, queries, plan);
    let judged = judge_workload(graph, values, queries, &out);
    (judged, out)
}

/// Run one query *alone* over the same environment (same graph, values,
/// churn realization and engine seed) — the sequential baseline. The
/// synchronous-round engine makes a non-aliased query's multiplexed
/// trajectory independent of its co-residents, so its solo twin
/// declares the byte-identical `(value, time)`.
pub fn solo_twin(graph: &Graph, values: &[u64], query: &MuxQuery, plan: &MuxPlan) -> MuxJudged {
    let (mut judged, _) = judged_mux(graph, values, std::slice::from_ref(query), plan);
    judged.pop().expect("one query in, one verdict out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_sim::ChurnPlan;
    use pov_topology::generators::special;

    fn spec(queries: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            queries,
            span: 6,
            d_hat: 4,
            window: None,
            seed,
        }
    }

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let a = spec(40, 7).generate(30);
        let b = spec(40, 7).generate(30);
        assert_eq!(a, b, "same seed, same workload");
        let c = spec(40, 8).generate(30);
        assert_ne!(a, c, "different seed, different workload");
        // All five aggregates appear in a 40-query draw.
        for agg in [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Average,
        ] {
            assert!(
                a.iter().any(|q| q.aggregate == agg),
                "aggregate {agg:?} missing from the mix"
            );
        }
        for q in &a {
            assert!(q.arrival >= 1 && q.arrival <= 6);
            assert!((q.root.0 as usize) < 30);
        }
    }

    #[test]
    fn sliding_windows_expand_into_instances() {
        let mut s = spec(3, 5);
        s.window = Some(WindowSpec {
            window: 8,
            slide: 3,
            instances: 4,
        });
        let qs = s.generate(20);
        assert_eq!(qs.len(), 12, "3 base queries × 4 instances");
        // Instances of one base query: same (aggregate, root), arrivals
        // `slide` apart, contiguous ascending ids.
        for base in 0..3 {
            let inst = &qs[base * 4..(base + 1) * 4];
            for (k, q) in inst.iter().enumerate() {
                assert_eq!(q.id.0 as usize, base * 4 + k);
                assert_eq!(q.aggregate, inst[0].aggregate);
                assert_eq!(q.root, inst[0].root);
                assert_eq!(q.arrival, inst[0].arrival + k as u64 * 3);
                assert_eq!(q.window, Some(8));
            }
        }
    }

    #[test]
    #[should_panic(expected = "slide < window")]
    fn rejects_slide_ge_window() {
        let mut s = spec(1, 1);
        s.window = Some(WindowSpec {
            window: 4,
            slide: 4,
            instances: 2,
        });
        s.generate(10);
    }

    #[test]
    fn judged_static_network_all_valid() {
        let g = special::cycle(12);
        let values: Vec<u64> = (1..=12).collect();
        // D̂ must cover the cycle's diameter (6) or deadlines truncate
        // the echo and the partial answers are *correctly* invalid.
        let mut s = spec(10, 3);
        s.d_hat = 6;
        let queries = s.generate(12);
        let (judged, out) = judged_mux(&g, &values, &queries, &MuxPlan::default());
        assert_eq!(judged.len(), 10);
        for j in &judged {
            assert!(j.value.is_some(), "static network: every root declares");
            assert!(j.is_valid(), "static network: every answer valid");
            assert_eq!(j.hu_size, 12);
        }
        // Payload accounting covers every non-aliased query.
        for j in &judged {
            assert!(j.joined || j.payload_msgs > 0, "{:?}", j.query.id);
        }
        assert!(out.raw_messages > 0);
    }

    #[test]
    fn solo_twin_matches_multiplexed_declaration() {
        let g = special::cycle(16);
        let values: Vec<u64> = (0..16).collect();
        let queries = spec(8, 11).generate(16);
        let plan = MuxPlan {
            churn: ChurnPlan::none().with_failure(Time(4), HostId(5)),
            seed: 3,
            ..MuxPlan::default()
        };
        let (judged, _) = judged_mux(&g, &values, &queries, &plan);
        for j in judged.iter().filter(|j| !j.joined) {
            let twin = solo_twin(&g, &values, &j.query, &plan);
            assert_eq!(
                (j.value, j.declared_at),
                (twin.value, twin.declared_at),
                "query {:?} must match its solo twin",
                j.query.id
            );
            assert_eq!(j.is_valid(), twin.is_valid(), "query {:?}", j.query.id);
        }
    }

    #[test]
    fn windowed_instances_are_judged_over_their_own_slices() {
        // A failure between two instances' windows: the earlier
        // instance still counts the victim in HU, the later one may
        // not — the §4.2 slicing at work.
        let g = special::cycle(10);
        let values = vec![1u64; 10];
        let mut s = spec(1, 2);
        s.span = 1;
        s.d_hat = 3;
        s.window = Some(WindowSpec {
            window: 6,
            slide: 5,
            instances: 3,
        });
        let queries = s.generate(10);
        assert_eq!(queries.len(), 3);
        let victim = HostId((queries[0].root.0 + 5) % 10);
        let plan = MuxPlan {
            churn: ChurnPlan::none().with_failure(Time(2), victim),
            ..MuxPlan::default()
        };
        let (judged, _) = judged_mux(&g, &values, &queries, &plan);
        // All instances share a root that stays alive, so all declare.
        for j in &judged {
            assert!(j.value.is_some());
        }
        // The first window covers the failure instant (victim in HU);
        // the last window starts after it (victim absent from HU).
        assert_eq!(judged[0].hu_size, 10);
        assert_eq!(judged[2].hu_size, 9);
    }
}
