//! The §6.3 efficiency measures.
//!
//! * **Communication cost** — total messages sent between host pairs.
//!   Under the radio medium one transmission to all neighbours counts as
//!   a single message (§5.3, Grid experiments).
//! * **Computation cost** — messages *processed* per host; the protocol's
//!   computation cost is the maximum over hosts (Fig 12 plots the whole
//!   distribution).
//! * **Time cost** — length of the longest causal chain of messages,
//!   starting at `hq`'s broadcast initiation.
//! * **Per-tick sent counts** — messages sent at each instant (Fig 13b).

use crate::Time;
use pov_topology::HostId;
use serde::{Deserialize, Serialize};

/// Cost counters collected during a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Total messages sent (communication cost).
    pub messages_sent: u64,
    /// Messages processed per host (computation cost distribution).
    /// `u32` halves the dominant per-host buffer (4 MiB saved at
    /// n = 10⁶); no host plausibly processes 4 × 10⁹ messages in one
    /// run (the increment site debug-asserts it).
    pub processed_per_host: Vec<u32>,
    /// Messages sent at each tick (index = tick).
    pub sent_per_tick: Vec<u64>,
    /// Longest causal message chain observed (time cost).
    pub longest_chain: u32,
    /// Timer events fired (not part of any paper metric; useful for
    /// sanity checks).
    pub timers_fired: u64,
    /// Total events dispatched by the engine loop (fails, joins,
    /// deliveries, timers, churn polls). Not a paper metric — it is the
    /// denominator-free throughput counter the `repro bench` harness
    /// divides by wall time to get events/sec.
    pub events_dispatched: u64,
}

impl Metrics {
    /// Fresh counters with the host-indexed buffers drawn from the
    /// thread-local [`arena`](crate::arena) pool (the engine returns
    /// them on drop).
    pub(crate) fn from_arena(num_hosts: usize) -> Self {
        Metrics {
            messages_sent: 0,
            processed_per_host: crate::arena::take_u32s(num_hosts),
            sent_per_tick: crate::arena::take_u64s(0),
            longest_chain: 0,
            timers_fired: 0,
            events_dispatched: 0,
        }
    }

    pub(crate) fn record_dispatch(&mut self) {
        self.events_dispatched += 1;
    }

    pub(crate) fn record_send(&mut self, at: Time) {
        self.messages_sent += 1;
        let idx = at.ticks() as usize;
        if self.sent_per_tick.len() <= idx {
            self.sent_per_tick.resize(idx + 1, 0);
        }
        self.sent_per_tick[idx] += 1;
    }

    pub(crate) fn record_processed(&mut self, host: HostId, depth: u32) {
        let slot = &mut self.processed_per_host[host.index()];
        debug_assert!(*slot < u32::MAX, "per-host processed count overflow");
        *slot += 1;
        self.longest_chain = self.longest_chain.max(depth);
    }

    pub(crate) fn record_timer(&mut self) {
        self.timers_fired += 1;
    }

    /// The protocol's computation cost: max messages processed at any
    /// single host (§6.3).
    pub fn computation_cost(&self) -> u64 {
        u64::from(self.processed_per_host.iter().copied().max().unwrap_or(0))
    }

    /// Total messages processed across all hosts.
    pub fn total_processed(&self) -> u64 {
        self.processed_per_host.iter().map(|&c| u64::from(c)).sum()
    }

    /// Histogram for Fig 12: `hist[c]` = number of hosts that processed
    /// exactly `c` messages.
    pub fn computation_histogram(&self) -> Vec<u64> {
        let max = self.computation_cost() as usize;
        let mut hist = vec![0u64; max + 1];
        for &c in &self.processed_per_host {
            hist[c as usize] += 1;
        }
        hist
    }

    /// The last tick at which any message was sent (protocol quiescence;
    /// Fig 13b shows WILDFIRE quiescing by `2Dδ`).
    pub fn last_active_tick(&self) -> Option<u64> {
        self.sent_per_tick
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_accounting() {
        let mut m = Metrics::from_arena(3);
        m.record_send(Time(0));
        m.record_send(Time(2));
        m.record_send(Time(2));
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.sent_per_tick, vec![1, 0, 2]);
        assert_eq!(m.last_active_tick(), Some(2));
    }

    #[test]
    fn processed_accounting() {
        let mut m = Metrics::from_arena(3);
        m.record_processed(HostId(1), 4);
        m.record_processed(HostId(1), 2);
        m.record_processed(HostId(2), 7);
        assert_eq!(m.processed_per_host, vec![0, 2, 1]);
        assert_eq!(m.computation_cost(), 2);
        assert_eq!(m.total_processed(), 3);
        assert_eq!(m.longest_chain, 7);
    }

    #[test]
    fn histogram() {
        let mut m = Metrics::from_arena(4);
        m.record_processed(HostId(0), 1);
        m.record_processed(HostId(0), 1);
        m.record_processed(HostId(1), 1);
        let hist = m.computation_histogram();
        // host0: 2 msgs, host1: 1 msg, hosts 2,3: 0 msgs.
        assert_eq!(hist, vec![2, 1, 1]);
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::from_arena(0);
        assert_eq!(m.computation_cost(), 0);
        assert_eq!(m.last_active_tick(), None);
        assert_eq!(m.computation_histogram(), vec![0]);
    }
}
