//! Long-horizon membership regimes scripted as **phase schedules**.
//!
//! The paper's §6.2 model perturbs one query with a single burst of
//! uniform-rate departures; every workload in the repo so far is that
//! kind of short burst. Real deployments live through *regimes*: an
//! overlay grows as an audience arrives, plateaus, bleeds hosts, gets
//! cut in half by a backbone outage, heals, and keeps answering queries
//! throughout. A [`PhaseSchedule`] scripts exactly that arc — an
//! ordered list of [`Phase`]s (growth → stable → shrink → partition →
//! heal, each with its own tick budget) over horizons of 10⁴ ticks and
//! beyond — and [`PhaseSchedule::lower`] compiles it down to the
//! engine's existing primitives: one absolute-time [`ChurnPlan`] plus
//! an optional windowed [`PartitionPlan`]. Nothing downstream learns a
//! new mechanism; the continuous-window slicer, the oracle, and the
//! batch runner all consume the lowered plans unchanged.
//!
//! Lowering is a pure function of `(graph, spare, seed, schedule)`:
//! the same inputs always produce byte-identical plans, which is what
//! lets the soak harness and the scenario batch runner promise
//! thread-count-independent reports over phased regimes.

use crate::{ChurnPlan, PartitionPlan, Time};
use pov_topology::{Graph, HostId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// What happens to the membership during one phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PhaseKind {
    /// `fraction·|H|` currently-dead hosts join at a uniform rate
    /// across the phase (capped at the dead population).
    Growth {
        /// Fraction of the total population that joins (0..=1).
        fraction: f64,
    },
    /// No membership events; the network serves queries undisturbed.
    Stable,
    /// `fraction·|H|` currently-alive hosts fail at a uniform rate
    /// across the phase (the spare host never fails).
    Shrink {
        /// Fraction of the total population that fails (0..=1).
        fraction: f64,
    },
    /// A BFS-coherent cut severs `fraction·|H|` hosts from the rest for
    /// the whole phase, healing exactly at the phase boundary. Hosts on
    /// both sides stay alive — disconnection without departure.
    Partition {
        /// Fraction of hosts on the severed side (0..=1).
        fraction: f64,
    },
    /// Every currently-dead host rejoins, spread uniformly across the
    /// phase — the overlay recovers its full population.
    Heal,
}

impl PhaseKind {
    /// The phase's report label (`growth`, `stable`, `shrink`,
    /// `partition`, `heal`).
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Growth { .. } => "growth",
            PhaseKind::Stable => "stable",
            PhaseKind::Shrink { .. } => "shrink",
            PhaseKind::Partition { .. } => "partition",
            PhaseKind::Heal => "heal",
        }
    }

    fn fraction(self) -> Option<f64> {
        match self {
            PhaseKind::Growth { fraction }
            | PhaseKind::Shrink { fraction }
            | PhaseKind::Partition { fraction } => Some(fraction),
            PhaseKind::Stable | PhaseKind::Heal => None,
        }
    }
}

/// One phase: a regime kind and the tick span it occupies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Phase {
    /// The membership regime during the span.
    pub kind: PhaseKind,
    /// Phase length in ticks (≥ 1).
    pub ticks: u64,
}

/// An ordered list of [`Phase`]s plus the fraction of hosts alive at
/// tick 0. Build with [`PhaseSchedule::new`] /
/// [`PhaseSchedule::with_start_alive`] and chain
/// [`PhaseSchedule::then`]; compile with [`PhaseSchedule::lower`].
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSchedule {
    start_alive: f64,
    phases: Vec<Phase>,
}

/// What a schedule compiles down to: the engine's existing plan types,
/// ready for `RunPlan::churn` / `RunPlan::partition`.
#[derive(Clone, Debug)]
pub struct LoweredSchedule {
    /// All join/fail events plus the initially-dead pinning.
    pub churn: ChurnPlan,
    /// The stacked cuts of every `Partition` phase (`None` if the
    /// schedule has none).
    pub partition: Option<PartitionPlan>,
}

impl Default for PhaseSchedule {
    fn default() -> Self {
        PhaseSchedule::new()
    }
}

impl PhaseSchedule {
    /// A schedule starting with the whole population alive.
    pub fn new() -> Self {
        PhaseSchedule::with_start_alive(1.0)
    }

    /// A schedule starting with only `fraction` of the population alive
    /// (the rest are pinned dead until a growth/heal phase revives
    /// them). The spare host is always alive.
    pub fn with_start_alive(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "start-alive fraction {fraction} outside (0, 1]"
        );
        PhaseSchedule {
            start_alive: fraction,
            phases: Vec::new(),
        }
    }

    /// Append a phase spanning `ticks` ticks.
    pub fn then(mut self, kind: PhaseKind, ticks: u64) -> Self {
        assert!(ticks >= 1, "a phase needs at least one tick");
        if let Some(f) = kind.fraction() {
            assert!(
                (0.0..=1.0).contains(&f),
                "{} fraction {f} outside [0, 1]",
                kind.label()
            );
        }
        self.phases.push(Phase { kind, ticks });
        self
    }

    /// The scripted phases, in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Fraction of hosts alive at tick 0.
    pub fn start_alive(&self) -> f64 {
        self.start_alive
    }

    /// Total horizon in ticks: the sum of every phase span.
    pub fn total_ticks(&self) -> u64 {
        self.phases.iter().map(|p| p.ticks).sum()
    }

    /// The label of the phase covering instant `t` (phases tile
    /// `[0, total_ticks)`; instants past the end keep the last phase's
    /// label — the regime that is still in force).
    ///
    /// # Panics
    /// Panics on an empty schedule.
    pub fn label_at(&self, t: Time) -> &'static str {
        assert!(!self.phases.is_empty(), "label_at on an empty schedule");
        let mut end = 0u64;
        for p in &self.phases {
            end += p.ticks;
            if t.ticks() < end {
                return p.kind.label();
            }
        }
        self.phases.last().expect("non-empty").kind.label()
    }

    /// Compile the schedule into engine plans. Pure in
    /// `(graph, spare, seed, self)`: the same inputs yield identical
    /// plans, event for event. `spare` (normally the querying host
    /// `hq`) is always alive and never severed onto a partition's
    /// minority side.
    ///
    /// # Panics
    /// Panics on an empty schedule.
    pub fn lower(&self, graph: &Graph, spare: HostId, seed: u64) -> LoweredSchedule {
        assert!(!self.phases.is_empty(), "lowering an empty schedule");
        let n = graph.num_hosts();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut candidates: Vec<HostId> =
            (0..n as u32).map(HostId).filter(|&h| h != spare).collect();
        candidates.shuffle(&mut rng);

        // Alive tracking: the spare plus the first `start_alive` slice
        // of the shuffled candidates; everyone else is pinned dead from
        // tick 0 (they come back only when a growth/heal phase schedules
        // their join).
        let alive_quota = ((self.start_alive * n as f64).round() as usize)
            .clamp(1, n)
            .saturating_sub(1); // the spare fills one alive slot
        let mut alive = vec![false; n];
        alive[spare.index()] = true;
        for &h in candidates.iter().take(alive_quota) {
            alive[h.index()] = true;
        }
        let mut plan = ChurnPlan::none();
        for &h in candidates.iter().skip(alive_quota) {
            plan = plan.with_initially_dead(h);
        }

        let mut partition: Option<PartitionPlan> = None;
        let mut t = 0u64;
        for phase in &self.phases {
            let span = phase.ticks;
            match phase.kind {
                PhaseKind::Stable => {}
                PhaseKind::Growth { fraction } => {
                    // Fresh shuffle per phase so consecutive growth/shrink
                    // phases do not keep recycling the same victims.
                    candidates.shuffle(&mut rng);
                    let dead: Vec<HostId> = candidates
                        .iter()
                        .copied()
                        .filter(|h| !alive[h.index()])
                        .collect();
                    let k = ((fraction * n as f64).round() as usize).min(dead.len());
                    for (i, &h) in dead[..k].iter().enumerate() {
                        plan = plan.with_join(Time(t + (i as u64 * span) / k.max(1) as u64), h);
                        alive[h.index()] = true;
                    }
                }
                PhaseKind::Shrink { fraction } => {
                    candidates.shuffle(&mut rng);
                    let up: Vec<HostId> = candidates
                        .iter()
                        .copied()
                        .filter(|h| alive[h.index()])
                        .collect();
                    let k = ((fraction * n as f64).round() as usize).min(up.len());
                    for (i, &h) in up[..k].iter().enumerate() {
                        plan = plan.with_failure(Time(t + (i as u64 * span) / k.max(1) as u64), h);
                        alive[h.index()] = false;
                    }
                }
                PhaseKind::Heal => {
                    candidates.shuffle(&mut rng);
                    let dead: Vec<HostId> = candidates
                        .iter()
                        .copied()
                        .filter(|h| !alive[h.index()])
                        .collect();
                    let k = dead.len();
                    for (i, &h) in dead.iter().enumerate() {
                        plan = plan.with_join(Time(t + (i as u64 * span) / k.max(1) as u64), h);
                        alive[h.index()] = true;
                    }
                }
                PhaseKind::Partition { fraction } => {
                    // Same pivot discipline as the scenario runner: a
                    // random non-spare pivot seeds the BFS cut, and if
                    // the spare lands on the severed side the cut is
                    // re-split from the spare and flipped so the
                    // querying side is always the majority.
                    let pivot = loop {
                        let h = HostId(rng.gen_range(0..n as u32));
                        if h != spare {
                            break h;
                        }
                    };
                    let mut cut = PartitionPlan::split_bfs(graph, pivot, fraction);
                    if cut.sides()[spare.index()] == 1 {
                        cut = PartitionPlan::split_bfs(graph, spare, 1.0 - fraction);
                        let flipped: Vec<u8> = cut.sides().iter().map(|&s| 1 - s).collect();
                        cut = PartitionPlan::new(flipped);
                    }
                    let cut = cut.window(Time(t), Time(t + span));
                    partition = Some(match partition {
                        None => cut,
                        Some(acc) => acc.stack(cut),
                    });
                }
            }
            t += span;
        }
        LoweredSchedule {
            // merge(none) canonicalizes: both event streams sorted by
            // (time, host) and deduplicated.
            churn: plan.merge(ChurnPlan::none()),
            partition,
        }
    }

    /// The ewok-style default arc used by the soak harness and the
    /// documentation examples: start at `start_alive = 0.7`, grow by
    /// 25%, plateau, shed 30%, suffer a 30% cut, then heal — phase
    /// spans proportioned 2 : 3 : 2 : 2 : 1 over `horizon` ticks.
    ///
    /// # Panics
    /// Panics if `horizon < 10` (the five phases need at least a tick
    /// each).
    pub fn lifecycle(horizon: u64) -> Self {
        assert!(horizon >= 10, "lifecycle horizon too short: {horizon}");
        let unit = horizon / 10;
        PhaseSchedule::with_start_alive(0.7)
            .then(PhaseKind::Growth { fraction: 0.25 }, 2 * unit)
            .then(PhaseKind::Stable, 3 * unit)
            .then(PhaseKind::Shrink { fraction: 0.3 }, 2 * unit)
            .then(PhaseKind::Partition { fraction: 0.3 }, 2 * unit)
            .then(PhaseKind::Heal, horizon - 9 * unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_topology::generators;

    fn graph() -> Graph {
        generators::random_average_degree(120, 5.0, 9)
    }

    /// Replay the lowered plan and return the alive count at `t` (after
    /// all events at `t` applied; joins rank after failures at equal
    /// instants, matching the engine's tie-break).
    fn alive_at(plan: &ChurnPlan, n: usize, t: Time) -> usize {
        let mut events: Vec<(Time, bool, HostId)> = plan
            .failures
            .iter()
            .filter(|&&(ft, _)| ft <= t)
            .map(|&(ft, h)| (ft, false, h))
            .chain(
                plan.joins
                    .iter()
                    .filter(|&&(jt, _)| jt <= t)
                    .map(|&(jt, h)| (jt, true, h)),
            )
            .collect();
        events.sort_by_key(|&(et, is_join, h)| (et, is_join, h.0));
        let mut alive = vec![true; n];
        for h in plan.initially_dead() {
            alive[h.index()] = false;
        }
        for (_, is_join, h) in events {
            alive[h.index()] = is_join;
        }
        alive.iter().filter(|&&a| a).count()
    }

    #[test]
    fn lowering_is_deterministic() {
        let g = graph();
        let s = PhaseSchedule::lifecycle(10_000);
        let a = s.lower(&g, HostId(0), 42);
        let b = s.lower(&g, HostId(0), 42);
        assert_eq!(a.churn.failures, b.churn.failures);
        assert_eq!(a.churn.joins, b.churn.joins);
        assert_eq!(a.churn.dead_from_start, b.churn.dead_from_start);
        assert_eq!(a.partition, b.partition);
        let c = s.lower(&g, HostId(0), 43);
        assert_ne!(a.churn.joins, c.churn.joins, "seed must matter");
    }

    #[test]
    fn lifecycle_population_arc() {
        let g = graph();
        let n = g.num_hosts();
        let s = PhaseSchedule::lifecycle(10_000);
        assert_eq!(s.total_ticks(), 10_000);
        let lowered = s.lower(&g, HostId(0), 7);
        // Start: 70% alive.
        let start = alive_at(&lowered.churn, n, Time(0));
        assert!(
            (start as f64 - 0.7 * n as f64).abs() <= 2.0,
            "start alive {start} of {n}"
        );
        // After growth (ticks 0..2000): +25% of n.
        let grown = alive_at(&lowered.churn, n, Time(2_000));
        assert!(grown > start, "growth must add hosts: {grown} vs {start}");
        // After shrink (ticks 5000..7000): −30% of n.
        let shrunk = alive_at(&lowered.churn, n, Time(7_000));
        assert!(shrunk < grown, "shrink must remove hosts");
        // After heal: everyone is back.
        let healed = alive_at(&lowered.churn, n, Time(10_000));
        assert_eq!(healed, n, "heal revives the whole population");
        // The partition phase lowered to one cut windowed inside it.
        let partition = lowered.partition.expect("lifecycle has a cut");
        let cuts: Vec<_> = partition.cuts().collect();
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].1, &[(Time(7_000), Time(9_000))]);
    }

    #[test]
    fn spare_is_never_dead_or_severed() {
        let g = graph();
        let spare = HostId(5);
        let s = PhaseSchedule::with_start_alive(0.4)
            .then(PhaseKind::Shrink { fraction: 0.9 }, 500)
            .then(PhaseKind::Partition { fraction: 0.45 }, 500);
        let lowered = s.lower(&g, spare, 11);
        assert!(lowered.churn.failures.iter().all(|&(_, h)| h != spare));
        assert!(!lowered.churn.dead_from_start.contains(&spare));
    }

    #[test]
    fn labels_tile_the_horizon() {
        let s = PhaseSchedule::new()
            .then(PhaseKind::Growth { fraction: 0.1 }, 100)
            .then(PhaseKind::Stable, 50)
            .then(PhaseKind::Heal, 10);
        assert_eq!(s.label_at(Time(0)), "growth");
        assert_eq!(s.label_at(Time(99)), "growth");
        assert_eq!(s.label_at(Time(100)), "stable");
        assert_eq!(s.label_at(Time(149)), "stable");
        assert_eq!(s.label_at(Time(150)), "heal");
        assert_eq!(s.label_at(Time(159)), "heal");
        // Past the horizon the last regime stays in force.
        assert_eq!(s.label_at(Time(10_000)), "heal");
    }

    #[test]
    fn events_stay_inside_their_phases() {
        let g = graph();
        let s = PhaseSchedule::with_start_alive(0.5)
            .then(PhaseKind::Stable, 1_000)
            .then(PhaseKind::Growth { fraction: 0.3 }, 1_000)
            .then(PhaseKind::Stable, 1_000)
            .then(PhaseKind::Shrink { fraction: 0.2 }, 1_000);
        let lowered = s.lower(&g, HostId(0), 3);
        assert!(lowered
            .churn
            .joins
            .iter()
            .all(|&(t, _)| t >= Time(1_000) && t < Time(2_000)));
        assert!(lowered
            .churn
            .failures
            .iter()
            .all(|&(t, _)| t >= Time(3_000) && t < Time(4_000)));
        assert!(lowered.partition.is_none());
    }

    #[test]
    fn growth_caps_at_dead_population() {
        let g = graph();
        let n = g.num_hosts();
        // Everyone starts alive; a growth phase has nobody to add.
        let s = PhaseSchedule::new().then(PhaseKind::Growth { fraction: 0.5 }, 100);
        let lowered = s.lower(&g, HostId(0), 1);
        assert!(lowered.churn.joins.is_empty());
        assert_eq!(alive_at(&lowered.churn, n, Time(0)), n);
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_tick_phase_rejected() {
        let _ = PhaseSchedule::new().then(PhaseKind::Stable, 0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn bad_start_alive_rejected() {
        let _ = PhaseSchedule::with_start_alive(0.0);
    }
}
