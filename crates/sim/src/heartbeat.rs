//! Heartbeat failure detection (§3.1).
//!
//! *"Hosts can monitor a neighbouring host for failures using heartbeats
//! sent periodically at intervals of time `Thb`. If a host `h` does not
//! receive a heartbeat from its neighbour `h'` within `Thb + δ` time of
//! the last heartbeat, then `h` can deduce that there must have been a
//! failure at `h'`."*
//!
//! [`HeartbeatMonitor`] is the per-host bookkeeping for that rule. The
//! evaluated one-shot protocols do not need it (best-effort protocols do
//! not repair, and WILDFIRE tolerates failures by design), but the
//! continuous-query machinery (§4.2, §5.4) uses it to maintain the set of
//! *marked* hosts `Mt`.

use crate::Time;
use pov_topology::HostId;
use std::collections::HashMap;

/// Tracks the last heartbeat received from each monitored peer and
/// applies the `Thb + δ` suspicion rule.
#[derive(Clone, Debug)]
pub struct HeartbeatMonitor {
    interval: u64,
    delta: u64,
    last_seen: HashMap<HostId, Time>,
}

impl HeartbeatMonitor {
    /// Create a monitor with heartbeat interval `Thb` and delay bound `δ`
    /// (both in ticks).
    pub fn new(interval: u64, delta: u64) -> Self {
        assert!(interval >= 1, "heartbeat interval must be positive");
        HeartbeatMonitor {
            interval,
            delta,
            last_seen: HashMap::new(),
        }
    }

    /// Start monitoring `peer`, treating `now` as an implicit heartbeat
    /// (a freshly-established connection proves liveness).
    pub fn watch(&mut self, peer: HostId, now: Time) {
        self.last_seen.insert(peer, now);
    }

    /// Stop monitoring `peer`.
    pub fn unwatch(&mut self, peer: HostId) {
        self.last_seen.remove(&peer);
    }

    /// Record a heartbeat from `peer` at `now`.
    pub fn heartbeat(&mut self, peer: HostId, now: Time) {
        self.last_seen.insert(peer, now);
    }

    /// Whether `peer` is suspected failed at `now`: no heartbeat within
    /// `Thb + δ` of the last one. Unmonitored peers are not suspected.
    pub fn suspects(&self, peer: HostId, now: Time) -> bool {
        match self.last_seen.get(&peer) {
            Some(&last) => now - last.min(now) > self.interval + self.delta,
            None => false,
        }
    }

    /// All currently suspected peers at `now`.
    pub fn suspected(&self, now: Time) -> Vec<HostId> {
        let mut out: Vec<HostId> = self
            .last_seen
            .iter()
            .filter(|&(_, &last)| now - last.min(now) > self.interval + self.delta)
            .map(|(&h, _)| h)
            .collect();
        out.sort_unstable();
        out
    }

    /// The deadline by which the next heartbeat from `peer` must arrive
    /// before suspicion kicks in; `None` if not monitored.
    pub fn deadline(&self, peer: HostId) -> Option<Time> {
        self.last_seen
            .get(&peer)
            .map(|&last| last + self.interval + self.delta + 1)
    }

    /// The monitoring interval `Thb`.
    pub fn interval(&self) -> u64 {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_peer_not_suspected() {
        let mut m = HeartbeatMonitor::new(5, 1);
        m.watch(HostId(1), Time(0));
        assert!(!m.suspects(HostId(1), Time(6))); // exactly Thb + δ: still fine
        assert!(m.suspects(HostId(1), Time(7))); // one past the bound
    }

    #[test]
    fn heartbeat_resets_deadline() {
        let mut m = HeartbeatMonitor::new(5, 1);
        m.watch(HostId(1), Time(0));
        m.heartbeat(HostId(1), Time(5));
        assert!(!m.suspects(HostId(1), Time(10)));
        assert!(m.suspects(HostId(1), Time(12)));
        assert_eq!(m.deadline(HostId(1)), Some(Time(12)));
    }

    #[test]
    fn unmonitored_never_suspected() {
        let m = HeartbeatMonitor::new(5, 1);
        assert!(!m.suspects(HostId(9), Time(1_000)));
        assert_eq!(m.deadline(HostId(9)), None);
    }

    #[test]
    fn unwatch_clears_suspicion() {
        let mut m = HeartbeatMonitor::new(2, 1);
        m.watch(HostId(3), Time(0));
        assert!(m.suspects(HostId(3), Time(10)));
        m.unwatch(HostId(3));
        assert!(!m.suspects(HostId(3), Time(10)));
    }

    #[test]
    fn suspected_lists_all_late_peers() {
        let mut m = HeartbeatMonitor::new(2, 1);
        m.watch(HostId(1), Time(0));
        m.watch(HostId(2), Time(8));
        m.watch(HostId(3), Time(0));
        m.heartbeat(HostId(3), Time(9));
        assert_eq!(m.suspected(Time(10)), vec![HostId(1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        HeartbeatMonitor::new(0, 1);
    }
}
