//! Engine telemetry hooks: a zero-overhead-when-disabled event sink.
//!
//! Every future perf or robustness PR needs to *see* what happens
//! inside a wave — which ticks carry the frontier, where deliveries die
//! on a cut, how churn eats the alive set — without perturbing the
//! determinism contract. The [`TelemetrySink`] trait is that tap: the
//! engine calls it at tick boundaries (and, on request, with periodic
//! protocol-state samples), and when no sink is installed every hook
//! collapses to a single `Option` discriminant test on the hot path.
//!
//! Two invariants the engine guarantees to every sink:
//!
//! * **Virtual time only.** Samples are keyed by the simulation tick,
//!   never by wall clock, so recorded series are a pure function of the
//!   run's seeds — byte-identical across machines and thread counts.
//! * **No behavioural feedback.** Sinks observe; they cannot send,
//!   schedule, or touch the run's RNG. A run with a sink attached
//!   produces the identical trace, metrics and declared values as one
//!   without.

use crate::time::Time;

/// Aggregated engine activity for one *active* tick (a tick during
/// which at least one event dispatched). Quiet ticks produce no sample
/// — consumers reconstruct gaps from the `tick` key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TickSample {
    /// The tick being closed out.
    pub tick: u64,
    /// Hosts alive at the end of the tick.
    pub alive: u32,
    /// Events still pending in the queue at the end of the tick.
    pub queue_depth: u64,
    /// Events dispatched during the tick (all payload kinds).
    pub dispatched: u64,
    /// Messages delivered to an alive host during the tick.
    pub delivered: u64,
    /// Messages lost during the tick (dead destination or an active
    /// partition cut).
    pub dropped: u64,
    /// Messages sent by protocol logic during the tick.
    pub sent: u64,
    /// Hosts that transitioned alive → failed during the tick
    /// (scheduled churn and dynamic churn-source kills alike).
    pub fails: u64,
    /// Hosts that transitioned failed → alive during the tick.
    pub joins: u64,
    /// Timers fired during the tick.
    pub timers: u64,
    /// Wave frontier: *distinct* hosts that processed at least one
    /// delivery during the tick.
    pub frontier: u32,
    /// Overlay edges added by the maintenance driver during the tick
    /// (engine-applied; idempotent no-ops excluded). Zero without an
    /// [`OverlayDriver`](crate::OverlayDriver) installed.
    pub overlay_added: u64,
    /// Overlay edges removed by the maintenance driver during the tick.
    pub overlay_removed: u64,
    /// Failure-detector suspicions the overlay driver raised during the
    /// tick.
    pub overlay_suspicions: u64,
}

/// A passive observer of engine activity. All methods have no-op
/// defaults, so a sink implements only the hooks it cares about.
///
/// Attach one with [`SimBuilder::telemetry`](crate::SimBuilder::telemetry).
/// The engine borrows the sink mutably for the simulation's lifetime;
/// the caller keeps ownership and reads the recording afterwards.
pub trait TelemetrySink {
    /// Called once at build time, before any event fires.
    /// `arena_pooled` is the number of recycled host-indexed buffers
    /// currently held by this worker thread's engine arena — the
    /// occupancy figure behind the allocation-free batch hot path.
    fn on_run_start(&mut self, num_hosts: usize, arena_pooled: usize) {
        let _ = (num_hosts, arena_pooled);
    }

    /// Called when an active tick closes (virtual time advances past it
    /// or the run ends).
    fn on_tick(&mut self, sample: &TickSample);

    /// How often, in ticks, the sink wants a protocol-state summary
    /// sample ([`on_summary`](TelemetrySink::on_summary)). `None`
    /// (default) disables summary sampling; sampling walks every host's
    /// [`NodeLogic::summary`](crate::NodeLogic::summary), an `O(hosts)`
    /// scan per sample.
    fn summary_every(&self) -> Option<u64> {
        None
    }

    /// A protocol-state sample: how many hosts report an active query
    /// and the total sketch mass ([`StateSummary::sketch_weight`]
    /// summed in ascending host order — deterministic) they carry.
    ///
    /// [`StateSummary::sketch_weight`]: crate::StateSummary::sketch_weight
    fn on_summary(&mut self, at: Time, active: u32, sketch_mass: f64) {
        let _ = (at, active, sketch_mass);
    }
}

/// A sink that discards everything. Useful for measuring the overhead
/// of the *enabled* telemetry path itself (hooks firing, samples
/// aggregated) with no recording cost on top.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn on_tick(&mut self, _sample: &TickSample) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_are_noops() {
        struct Minimal(u64);
        impl TelemetrySink for Minimal {
            fn on_tick(&mut self, s: &TickSample) {
                self.0 += s.dispatched;
            }
        }
        let mut m = Minimal(0);
        m.on_run_start(10, 0);
        m.on_summary(Time(3), 1, 2.0);
        assert_eq!(m.summary_every(), None);
        m.on_tick(&TickSample {
            dispatched: 4,
            ..TickSample::default()
        });
        assert_eq!(m.0, 4);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.on_run_start(5, 2);
        s.on_tick(&TickSample::default());
        s.on_summary(Time(1), 0, 0.0);
        assert_eq!(s.summary_every(), None);
    }
}
