//! The §6.2 dynamism model.
//!
//! *"We model host failures by removing a total of R randomly selected
//! hosts from G at a uniform rate during `[t0, tn]`."* Joins are also
//! supported (they matter for the `HU` upper bound of Single-Site
//! Validity) though the paper's simulations do not exercise them.

use crate::Time;
use pov_topology::HostId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A schedule of host failures (and optionally joins).
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    /// `(time, host)` failure events, sorted by time.
    pub failures: Vec<(Time, HostId)>,
    /// `(time, host)` join events for hosts that start dead.
    pub joins: Vec<(Time, HostId)>,
}

impl ChurnPlan {
    /// No churn at all: the static-network baseline.
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// The paper's model: `r` distinct hosts drawn uniformly from
    /// `0..num_hosts` (excluding `spare`, normally the querying host
    /// `hq`, which must survive to declare a result) fail at a uniform
    /// rate over `[window_start, window_end]`.
    pub fn uniform_failures(
        num_hosts: usize,
        r: usize,
        window_start: Time,
        window_end: Time,
        spare: HostId,
        seed: u64,
    ) -> Self {
        assert!(window_end >= window_start, "empty failure window");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut candidates: Vec<HostId> = (0..num_hosts as u32)
            .map(HostId)
            .filter(|&h| h != spare)
            .collect();
        candidates.shuffle(&mut rng);
        let r = r.min(candidates.len());
        let span = (window_end - window_start).max(1);
        let failures = candidates[..r]
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                // Evenly spaced instants across the window: uniform *rate*.
                let t = window_start + (i as u64 * span) / r.max(1) as u64;
                (t, h)
            })
            .collect();
        ChurnPlan {
            failures,
            joins: Vec::new(),
        }
    }

    /// Add a single failure.
    pub fn with_failure(mut self, at: Time, host: HostId) -> Self {
        self.failures.push((at, host));
        self
    }

    /// Add a single join (the host starts dead and appears at `at`).
    pub fn with_join(mut self, at: Time, host: HostId) -> Self {
        self.joins.push((at, host));
        self
    }

    /// Hosts that join at some point (and therefore start dead).
    pub fn initially_dead(&self) -> impl Iterator<Item = HostId> + '_ {
        self.joins.iter().map(|&(_, h)| h)
    }

    /// Number of scheduled failures.
    pub fn num_failures(&self) -> usize {
        self.failures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_failures_basic() {
        let plan = ChurnPlan::uniform_failures(100, 10, Time(0), Time(50), HostId(0), 7);
        assert_eq!(plan.num_failures(), 10);
        // Spare host is never selected.
        assert!(plan.failures.iter().all(|&(_, h)| h != HostId(0)));
        // Distinct victims.
        let mut hosts: Vec<u32> = plan.failures.iter().map(|&(_, h)| h.0).collect();
        hosts.sort_unstable();
        hosts.dedup();
        assert_eq!(hosts.len(), 10);
        // All within the window.
        assert!(plan
            .failures
            .iter()
            .all(|&(t, _)| t >= Time(0) && t <= Time(50)));
    }

    #[test]
    fn uniform_rate_spacing() {
        let plan = ChurnPlan::uniform_failures(1000, 5, Time(10), Time(60), HostId(0), 1);
        let times: Vec<u64> = plan.failures.iter().map(|&(t, _)| t.0).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn r_capped_at_population() {
        let plan = ChurnPlan::uniform_failures(5, 50, Time(0), Time(10), HostId(2), 3);
        assert_eq!(plan.num_failures(), 4); // everyone but the spare
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ChurnPlan::uniform_failures(100, 8, Time(0), Time(20), HostId(0), 5);
        let b = ChurnPlan::uniform_failures(100, 8, Time(0), Time(20), HostId(0), 5);
        assert_eq!(a.failures, b.failures);
        let c = ChurnPlan::uniform_failures(100, 8, Time(0), Time(20), HostId(0), 6);
        assert_ne!(a.failures, c.failures);
    }

    #[test]
    fn joins_tracked_as_initially_dead() {
        let plan = ChurnPlan::none()
            .with_join(Time(4), HostId(9))
            .with_failure(Time(2), HostId(1));
        let dead: Vec<HostId> = plan.initially_dead().collect();
        assert_eq!(dead, vec![HostId(9)]);
    }

    #[test]
    fn zero_failures() {
        let plan = ChurnPlan::uniform_failures(10, 0, Time(0), Time(10), HostId(0), 1);
        assert_eq!(plan.num_failures(), 0);
    }
}
