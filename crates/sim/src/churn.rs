//! The §6.2 dynamism model.
//!
//! *"We model host failures by removing a total of R randomly selected
//! hosts from G at a uniform rate during `[t0, tn]`."* Joins are also
//! supported (they matter for the `HU` upper bound of Single-Site
//! Validity) though the paper's simulations do not exercise them.

use crate::Time;
use pov_topology::{analysis, Graph, HostId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A schedule of host failures (and optionally joins).
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    /// `(time, host)` failure events, sorted by time.
    pub failures: Vec<(Time, HostId)>,
    /// `(time, host)` join events for hosts that start dead.
    pub joins: Vec<(Time, HostId)>,
    /// Hosts explicitly marked dead from time 0, independent of any
    /// events (they rejoin only if a join is scheduled). Window slicers
    /// use this to say "down for the whole window" without resorting to
    /// a sentinel join at `Time(u64::MAX)`, which any later shift or
    /// merge arithmetic could silently wrap.
    pub dead_from_start: Vec<HostId>,
}

impl ChurnPlan {
    /// No churn at all: the static-network baseline.
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// The paper's model: `r` distinct hosts drawn uniformly from
    /// `0..num_hosts` (excluding `spare`, normally the querying host
    /// `hq`, which must survive to declare a result) fail at a uniform
    /// rate over `[window_start, window_end]`.
    pub fn uniform_failures(
        num_hosts: usize,
        r: usize,
        window_start: Time,
        window_end: Time,
        spare: HostId,
        seed: u64,
    ) -> Self {
        assert!(window_end >= window_start, "empty failure window");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut candidates: Vec<HostId> = (0..num_hosts as u32)
            .map(HostId)
            .filter(|&h| h != spare)
            .collect();
        candidates.shuffle(&mut rng);
        let r = r.min(candidates.len());
        let span = (window_end - window_start).max(1);
        let failures = candidates[..r]
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                // Evenly spaced instants across the window: uniform *rate*.
                let t = window_start + (i as u64 * span) / r.max(1) as u64;
                (t, h)
            })
            .collect();
        ChurnPlan {
            failures,
            ..ChurnPlan::default()
        }
    }

    /// Flash-crowd join burst: `j` distinct hosts drawn uniformly from
    /// `0..num_hosts` (excluding `spare`) start dead and join at a
    /// uniform rate over `[window_start, window_end]` — the sudden
    /// audience-arrival regime the paper's failure-only model cannot
    /// express (joins grow `HU`, stressing the upper validity bound).
    pub fn flash_crowd(
        num_hosts: usize,
        j: usize,
        window_start: Time,
        window_end: Time,
        spare: HostId,
        seed: u64,
    ) -> Self {
        assert!(window_end >= window_start, "empty join window");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut candidates: Vec<HostId> = (0..num_hosts as u32)
            .map(HostId)
            .filter(|&h| h != spare)
            .collect();
        candidates.shuffle(&mut rng);
        let j = j.min(candidates.len());
        let span = (window_end - window_start).max(1);
        let joins = candidates[..j]
            .iter()
            .enumerate()
            .map(|(i, &h)| (window_start + (i as u64 * span) / j.max(1) as u64, h))
            .collect();
        ChurnPlan {
            joins,
            ..ChurnPlan::default()
        }
    }

    /// Correlated (clustered) failures: `clusters` random centres each
    /// take their BFS neighbourhood of up to `cluster_size` hosts down
    /// *together*, cluster `i` at the `i`-th of evenly spaced instants
    /// across `[window_start, window_end]`. Models rack/region outages,
    /// where failures are spatially dependent rather than the paper's
    /// independent uniform draws. `spare` (normally `hq`) never fails.
    pub fn correlated_failures(
        graph: &Graph,
        clusters: usize,
        cluster_size: usize,
        window_start: Time,
        window_end: Time,
        spare: HostId,
        seed: u64,
    ) -> Self {
        assert!(window_end >= window_start, "empty failure window");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut centres: Vec<HostId> = (0..graph.num_hosts() as u32)
            .map(HostId)
            .filter(|&h| h != spare)
            .collect();
        centres.shuffle(&mut rng);
        let clusters = clusters.min(centres.len());
        let span = (window_end - window_start).max(1);
        let mut failed = vec![false; graph.num_hosts()];
        failed[spare.index()] = true; // never select the spare
        let mut failures: Vec<(Time, HostId)> = Vec::new();
        for (i, &centre) in centres[..clusters].iter().enumerate() {
            let at = window_start + (i as u64 * span) / clusters.max(1) as u64;
            // BFS outward from the centre, taking fresh hosts only.
            let mut frontier = std::collections::VecDeque::from([centre]);
            let mut seen = vec![false; graph.num_hosts()];
            seen[centre.index()] = true;
            let mut taken = 0usize;
            while let Some(h) = frontier.pop_front() {
                if !failed[h.index()] {
                    failed[h.index()] = true;
                    failures.push((at, h));
                    taken += 1;
                    if taken == cluster_size {
                        break;
                    }
                }
                for &nb in graph.neighbors(h) {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        frontier.push_back(nb);
                    }
                }
            }
        }
        failures.sort_by_key(|&(t, h)| (t, h.0));
        ChurnPlan {
            failures,
            ..ChurnPlan::default()
        }
    }

    /// The adaptive adversary of the Theorem 4.2 flavour: at instant
    /// `at`, kill every host within `radius` hops of `root` (except
    /// `root` itself). Against tree-based protocols rooted at `hq` this
    /// orphans the *entire* tree below the blast radius in one stroke.
    /// Deterministic — the adversary knows the topology.
    pub fn root_neighbourhood_failures(graph: &Graph, root: HostId, radius: u32, at: Time) -> Self {
        let dist = analysis::bfs_distances(graph, root);
        let failures = (0..graph.num_hosts() as u32)
            .map(HostId)
            .filter(|&h| h != root && dist[h.index()] >= 1 && dist[h.index()] <= radius)
            .map(|h| (at, h))
            .collect();
        ChurnPlan {
            failures,
            ..ChurnPlan::default()
        }
    }

    /// Oscillating membership: `k` distinct hosts drawn uniformly from
    /// `0..num_hosts` (excluding `spare`) repeatedly fail and rejoin —
    /// the host-rejoining regime of Casteigts' dynamic-network classes
    /// that the paper's depart-forever model cannot express. Host `i`
    /// starts its first outage at a staggered phase inside
    /// `[window_start, window_end)`, stays down for `downtime` ticks,
    /// and repeats every `period` ticks until the window closes. A host
    /// whose rejoin would land past `window_end` stays down.
    ///
    /// The signature mirrors the other generators (population, count,
    /// window, spare, seed) plus the two cycle parameters — clippy's
    /// argument budget loses to consistency here.
    #[allow(clippy::too_many_arguments)]
    pub fn oscillating(
        num_hosts: usize,
        k: usize,
        window_start: Time,
        window_end: Time,
        period: u64,
        downtime: u64,
        spare: HostId,
        seed: u64,
    ) -> Self {
        assert!(window_end >= window_start, "empty oscillation window");
        assert!(period >= 1, "oscillation period must be >= 1 tick");
        assert!(
            downtime >= 1 && downtime < period,
            "downtime must satisfy 1 <= downtime < period"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut candidates: Vec<HostId> = (0..num_hosts as u32)
            .map(HostId)
            .filter(|&h| h != spare)
            .collect();
        candidates.shuffle(&mut rng);
        let k = k.min(candidates.len());
        let mut plan = ChurnPlan::default();
        for (i, &h) in candidates[..k].iter().enumerate() {
            // Stagger first outages across one period so the population
            // dips smoothly instead of k hosts blinking in lock-step.
            let phase = window_start.ticks() + (i as u64 * period) / k.max(1) as u64;
            let mut t = phase;
            while t < window_end.ticks() {
                plan.failures.push((Time(t), h));
                let up = t + downtime;
                if up < window_end.ticks() {
                    plan.joins.push((Time(up), h));
                }
                t += period;
            }
        }
        plan.normalize();
        plan
    }

    /// Merge two plans into one schedule with deterministic event
    /// interleaving: the result is sorted by `(time, host)` within each
    /// event class and is independent of argument order —
    /// `a.merge(b)` and `b.merge(a)` yield identical event streams. This
    /// is the combinator that lets a run stack regimes (uniform failures
    /// plus a flash crowd plus rejoin cycles) that the single-generator
    /// API could only express one at a time.
    ///
    /// **Same-tick tie-break.** Merging (and `oscillating` plans in
    /// particular) can schedule a failure *and* a join for one host at
    /// the same tick; deduplication is per-stream, so both survive. The
    /// engine resolves the tie explicitly — failures apply before joins
    /// at equal instants (the event queue ranks `Fail < Join`, not push
    /// order) — so such a host dies, restarts via `on_start`, and ends
    /// the tick **alive**. `initially_dead` and the window slicers
    /// follow the same fail-before-join convention.
    pub fn merge(mut self, other: ChurnPlan) -> ChurnPlan {
        self.failures.extend(other.failures);
        self.joins.extend(other.joins);
        self.dead_from_start.extend(other.dead_from_start);
        self.normalize();
        self
    }

    /// Sort both event streams by `(time, host)` and drop exact
    /// duplicates, the canonical form [`ChurnPlan::merge`] relies on for
    /// order-determinism.
    fn normalize(&mut self) {
        self.failures.sort_unstable_by_key(|&(t, h)| (t, h.0));
        self.failures.dedup();
        self.joins.sort_unstable_by_key(|&(t, h)| (t, h.0));
        self.joins.dedup();
        self.dead_from_start.sort_unstable_by_key(|h| h.0);
        self.dead_from_start.dedup();
    }

    /// Add a single failure.
    pub fn with_failure(mut self, at: Time, host: HostId) -> Self {
        self.failures.push((at, host));
        self
    }

    /// Add a single join (the host starts dead and appears at `at`).
    pub fn with_join(mut self, at: Time, host: HostId) -> Self {
        self.joins.push((at, host));
        self
    }

    /// Mark a host dead from time 0, independent of any scheduled
    /// events — it comes back only if a join is also scheduled. This is
    /// the explicit spelling window slicers use for "down for the whole
    /// window"; a sentinel join at `Time(u64::MAX)` would expose later
    /// shift/merge arithmetic to wrap-around.
    pub fn with_initially_dead(mut self, host: HostId) -> Self {
        self.dead_from_start.push(host);
        self
    }

    /// Hosts that start dead: those explicitly marked via
    /// [`ChurnPlan::with_initially_dead`], plus hosts whose *first*
    /// scheduled event is a join — they appear later. A host that fails
    /// first and rejoins afterwards (fail-then-rejoin) starts alive
    /// like everyone else; "first" follows the engine's same-tick
    /// tie-break (failures apply before joins at equal instants), so a
    /// host with both events at one tick starts alive, blips dead, and
    /// ends the tick alive.
    pub fn initially_dead(&self) -> impl Iterator<Item = HostId> + '_ {
        self.dead_from_start
            .iter()
            .copied()
            .chain(self.joins.iter().filter_map(move |&(jt, h)| {
                // Hosts already pinned dead are not re-yielded here, so
                // the iterator stays duplicate-free for count-based
                // consumers even when a pinned host also rejoins.
                if self.dead_from_start.contains(&h) {
                    return None;
                }
                let fails_earlier = self.failures.iter().any(|&(ft, fh)| fh == h && ft <= jt);
                (!fails_earlier).then_some(h)
            }))
    }

    /// Number of scheduled failures.
    pub fn num_failures(&self) -> usize {
        self.failures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_failures_basic() {
        let plan = ChurnPlan::uniform_failures(100, 10, Time(0), Time(50), HostId(0), 7);
        assert_eq!(plan.num_failures(), 10);
        // Spare host is never selected.
        assert!(plan.failures.iter().all(|&(_, h)| h != HostId(0)));
        // Distinct victims.
        let mut hosts: Vec<u32> = plan.failures.iter().map(|&(_, h)| h.0).collect();
        hosts.sort_unstable();
        hosts.dedup();
        assert_eq!(hosts.len(), 10);
        // All within the window.
        assert!(plan
            .failures
            .iter()
            .all(|&(t, _)| t >= Time(0) && t <= Time(50)));
    }

    #[test]
    fn uniform_rate_spacing() {
        let plan = ChurnPlan::uniform_failures(1000, 5, Time(10), Time(60), HostId(0), 1);
        let times: Vec<u64> = plan.failures.iter().map(|&(t, _)| t.0).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn r_capped_at_population() {
        let plan = ChurnPlan::uniform_failures(5, 50, Time(0), Time(10), HostId(2), 3);
        assert_eq!(plan.num_failures(), 4); // everyone but the spare
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ChurnPlan::uniform_failures(100, 8, Time(0), Time(20), HostId(0), 5);
        let b = ChurnPlan::uniform_failures(100, 8, Time(0), Time(20), HostId(0), 5);
        assert_eq!(a.failures, b.failures);
        let c = ChurnPlan::uniform_failures(100, 8, Time(0), Time(20), HostId(0), 6);
        assert_ne!(a.failures, c.failures);
    }

    #[test]
    fn joins_tracked_as_initially_dead() {
        let plan = ChurnPlan::none()
            .with_join(Time(4), HostId(9))
            .with_failure(Time(2), HostId(1));
        let dead: Vec<HostId> = plan.initially_dead().collect();
        assert_eq!(dead, vec![HostId(9)]);
    }

    #[test]
    fn zero_failures() {
        let plan = ChurnPlan::uniform_failures(10, 0, Time(0), Time(10), HostId(0), 1);
        assert_eq!(plan.num_failures(), 0);
    }

    #[test]
    fn flash_crowd_spacing_and_spare() {
        let plan = ChurnPlan::flash_crowd(100, 5, Time(10), Time(60), HostId(3), 7);
        assert_eq!(plan.joins.len(), 5);
        assert!(plan.joins.iter().all(|&(_, h)| h != HostId(3)));
        let times: Vec<u64> = plan.joins.iter().map(|&(t, _)| t.0).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
        // All joiners start dead.
        assert_eq!(plan.initially_dead().count(), 5);
        // Deterministic per seed.
        let again = ChurnPlan::flash_crowd(100, 5, Time(10), Time(60), HostId(3), 7);
        assert_eq!(plan.joins, again.joins);
    }

    #[test]
    fn correlated_failures_form_clusters() {
        let g = pov_topology::generators::grid_square(10);
        let plan = ChurnPlan::correlated_failures(&g, 3, 8, Time(0), Time(30), HostId(0), 11);
        assert_eq!(plan.num_failures(), 24);
        assert!(plan.failures.iter().all(|&(_, h)| h != HostId(0)));
        // Distinct victims.
        let mut hosts: Vec<u32> = plan.failures.iter().map(|&(_, h)| h.0).collect();
        hosts.sort_unstable();
        hosts.dedup();
        assert_eq!(hosts.len(), 24);
        // Hosts failing at the same instant form a connected-ish blast
        // zone: every victim has another victim of the same instant
        // within 2 hops (BFS cluster growth guarantees adjacency).
        for &(t, h) in &plan.failures {
            let near = plan.failures.iter().any(|&(t2, h2)| {
                t2 == t && h2 != h && pov_topology::analysis::bfs_distances(&g, h)[h2.index()] <= 2
            });
            assert!(near, "victim {h:?} at {t:?} is isolated");
        }
        // Sorted by time.
        assert!(plan.failures.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn root_neighbourhood_kills_ball_not_root() {
        use pov_topology::generators::special;
        let g = special::chain(8);
        let plan = ChurnPlan::root_neighbourhood_failures(&g, HostId(2), 2, Time(4));
        let mut victims: Vec<u32> = plan.failures.iter().map(|&(_, h)| h.0).collect();
        victims.sort_unstable();
        // Hosts within 2 hops of h2 on a chain: h0, h1, h3, h4.
        assert_eq!(victims, vec![0, 1, 3, 4]);
        assert!(plan.failures.iter().all(|&(t, _)| t == Time(4)));
    }

    #[test]
    fn oscillating_hosts_fail_and_rejoin() {
        let plan = ChurnPlan::oscillating(50, 5, Time(0), Time(40), 10, 4, HostId(0), 9);
        // Each host cycles ~4 times inside the window.
        assert!(
            plan.failures.len() >= 15,
            "{} failures",
            plan.failures.len()
        );
        assert!(plan.joins.len() >= 10, "{} joins", plan.joins.len());
        assert!(plan.failures.iter().all(|&(_, h)| h != HostId(0)));
        // Every host's first event is a failure, so nobody starts dead.
        assert_eq!(plan.initially_dead().count(), 0);
        // Per host, events alternate fail → join → fail …
        let mut hosts: Vec<u32> = plan.failures.iter().map(|&(_, h)| h.0).collect();
        hosts.sort_unstable();
        hosts.dedup();
        assert_eq!(hosts.len(), 5);
        for &h in &hosts {
            let mut events: Vec<(u64, bool)> = plan
                .failures
                .iter()
                .filter(|&&(_, fh)| fh.0 == h)
                .map(|&(t, _)| (t.ticks(), false))
                .chain(
                    plan.joins
                        .iter()
                        .filter(|&&(_, jh)| jh.0 == h)
                        .map(|&(t, _)| (t.ticks(), true)),
                )
                .collect();
            events.sort_unstable();
            for (i, &(_, is_join)) in events.iter().enumerate() {
                assert_eq!(is_join, i % 2 == 1, "host {h} events {events:?}");
            }
        }
        // Deterministic per seed.
        let again = ChurnPlan::oscillating(50, 5, Time(0), Time(40), 10, 4, HostId(0), 9);
        assert_eq!(plan.failures, again.failures);
        assert_eq!(plan.joins, again.joins);
    }

    #[test]
    fn merge_is_order_deterministic() {
        let a = ChurnPlan::uniform_failures(60, 8, Time(0), Time(30), HostId(0), 4);
        let b = ChurnPlan::flash_crowd(60, 6, Time(5), Time(25), HostId(0), 5);
        let ab = a.clone().merge(b.clone());
        let ba = b.merge(a);
        assert_eq!(ab.failures, ba.failures);
        assert_eq!(ab.joins, ba.joins);
        assert_eq!(ab.failures.len(), 8);
        assert_eq!(ab.joins.len(), 6);
        // Sorted by (time, host).
        assert!(ab
            .failures
            .windows(2)
            .all(|w| (w[0].0, w[0].1 .0) <= (w[1].0, w[1].1 .0)));
    }

    #[test]
    fn merge_round_trips_initially_dead() {
        // Host 3 fails in plan A and rejoins in plan B: after the merge
        // its first event is the failure, so it must start alive.
        let a = ChurnPlan::none().with_failure(Time(2), HostId(3));
        let b = ChurnPlan::none().with_join(Time(7), HostId(3));
        let merged = a.merge(b);
        assert_eq!(merged.initially_dead().count(), 0);
        // The reverse stacking — join first, fail later — starts dead.
        let a = ChurnPlan::none().with_join(Time(2), HostId(3));
        let b = ChurnPlan::none().with_failure(Time(7), HostId(3));
        let merged = a.merge(b);
        assert_eq!(merged.initially_dead().collect::<Vec<_>>(), vec![HostId(3)]);
    }

    // --- joins interacting with failures (engine-backed orderings) ---

    use crate::{Ctx, NodeLogic, SimBuilder};

    #[derive(Debug, Default)]
    struct Starts {
        count: u32,
    }
    impl NodeLogic for Starts {
        type Msg = ();
        fn on_start(&mut self, _: &mut Ctx<'_, ()>) {
            self.count += 1;
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
    }

    #[test]
    fn join_then_fail_ordering() {
        use pov_topology::generators::special;
        // h1 starts dead, joins at t=2, fails again at t=6.
        let plan = ChurnPlan::none()
            .with_join(Time(2), HostId(1))
            .with_failure(Time(6), HostId(1));
        let dead: Vec<HostId> = plan.initially_dead().collect();
        assert_eq!(dead, vec![HostId(1)]);
        let mut sim = SimBuilder::new(special::chain(3))
            .churn(plan)
            .build(|_| Starts::default());
        sim.run_until(Time(10));
        // Started exactly once (at the join), and is dead at the end.
        assert_eq!(sim.logic(HostId(1)).count, 1);
        assert!(!sim.is_alive(HostId(1)));
        assert_eq!(sim.num_alive(), 2);
        // Trace records the join before the failure.
        assert_eq!(sim.trace().events.len(), 2);
    }

    #[test]
    fn fail_then_rejoin_ordering() {
        use pov_topology::generators::special;
        // h1 starts alive, fails at t=2, rejoins at t=6.
        let plan = ChurnPlan::none()
            .with_failure(Time(2), HostId(1))
            .with_join(Time(6), HostId(1));
        // First event is the failure, so h1 must NOT start dead.
        assert_eq!(plan.initially_dead().count(), 0);
        let mut sim = SimBuilder::new(special::chain(3))
            .churn(plan)
            .build(|_| Starts::default());
        sim.run_until(Time(10));
        // Started at t=0 and again on rejoin; alive at the end.
        assert_eq!(sim.logic(HostId(1)).count, 2);
        assert!(sim.is_alive(HostId(1)));
        assert_eq!(sim.num_alive(), 3);
        assert_eq!(sim.trace().events.len(), 2);
    }
}
