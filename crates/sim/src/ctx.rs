//! The capability handle a host's logic receives during a callback.

use crate::delay::DelayModel;
use crate::engine::Medium;
use crate::event::{EventQueue, Payload};
use crate::metrics::Metrics;
use crate::overlay::TopoRef;
use crate::Time;
use pov_topology::HostId;
use rand::rngs::SmallRng;

/// Where a `Ctx` sends the events a handler schedules. The sequential
/// engine writes straight into the global queue; a sharded-delivery
/// worker appends to its shard's private buffer (tagged with the
/// triggering event's within-batch origin index) and the engine merges
/// the buffers back into the queue in global origin order afterwards —
/// reproducing exactly the push sequence sequential processing would
/// have produced.
pub(crate) enum EventSink<'a, M> {
    /// Sequential path: push straight into the event queue.
    Direct(&'a mut EventQueue<M>),
    /// Sharded path: buffer `(origin, at, payload)` for the post-batch
    /// deterministic merge.
    Shard {
        buf: &'a mut Vec<(u32, Time, Payload<M>)>,
        origin: u32,
    },
}

impl<M> EventSink<'_, M> {
    #[inline]
    pub(crate) fn push(&mut self, at: Time, payload: Payload<M>) {
        match self {
            EventSink::Direct(q) => q.push(at, payload),
            EventSink::Shard { buf, origin } => buf.push((*origin, at, payload)),
        }
    }
}

/// Where a `Ctx` records message costs. Handlers only ever record
/// *sends*, and every send in a delivery batch happens at the same
/// instant, so the sharded side is a single counter merged into
/// [`Metrics`] (messages_sent + sent_per_tick) after the batch.
pub(crate) enum CostSink<'a> {
    /// Sequential path: record against the run's metrics directly.
    Direct(&'a mut Metrics),
    /// Sharded path: count sends; the engine folds them in post-batch.
    Shard { sends: &'a mut u64 },
}

impl CostSink<'_> {
    #[inline]
    pub(crate) fn record_send(&mut self, at: Time) {
        match self {
            CostSink::Direct(m) => m.record_send(at),
            CostSink::Shard { sends } => {
                let _ = at; // all batch sends share one instant
                **sends += 1;
            }
        }
    }
}

/// Everything a host may do while handling an event: inspect its
/// current neighbourhood, send messages, set timers and draw
/// randomness.
///
/// Deliberately *not* exposed: other hosts' state, liveness of
/// neighbours (hosts cannot observe failures instantaneously in the
/// relaxed asynchronous model), or global time-travel.
pub struct Ctx<'a, M> {
    pub(crate) now: Time,
    pub(crate) me: HostId,
    pub(crate) topo: TopoRef<'a>,
    pub(crate) queue: EventSink<'a, M>,
    pub(crate) metrics: CostSink<'a>,
    pub(crate) medium: Medium,
    pub(crate) delay: DelayModel,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) chain_depth: u32,
    pub(crate) in_timer: bool,
}

impl<'a, M: Clone> Ctx<'a, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The host this callback runs on.
    #[inline]
    pub fn me(&self) -> HostId {
        self.me
    }

    /// Neighbour list `N(me)` from the topology — the base graph's, or
    /// the maintained overlay's current merged adjacency when an
    /// [`OverlayDriver`](crate::OverlayDriver) is installed. A
    /// neighbour may have failed; sends to it are silently lost,
    /// exactly as a message to a crashed host would be.
    #[inline]
    pub fn neighbors(&self) -> &'a [HostId] {
        self.topo.neighbors(self.me)
    }

    /// Degree of this host.
    #[inline]
    pub fn degree(&self) -> usize {
        self.topo.degree(self.me)
    }

    /// Send `msg` to a single neighbour. Costs one message in both media
    /// (§3.1: sensors address unicast messages by MAC id; non-recipients
    /// drop them in hardware at no processing cost).
    ///
    /// Under a maintained overlay the target may be a *stale contact*:
    /// a host whose link the overlay has torn down since the sender
    /// learned of it (an eviction, a shuffle shed). Such a send is lost
    /// on the floor — the sender still pays the message cost, exactly
    /// like a send to a crashed host. On a static topology a
    /// non-neighbour target is a protocol bug and asserts in debug
    /// builds.
    pub fn send(&mut self, to: HostId, msg: M) {
        if let TopoRef::Overlay(view) = self.topo {
            if !view.has_edge(self.me, to) {
                self.metrics.record_send(self.now);
                return;
            }
        }
        debug_assert!(
            self.topo.has_edge(self.me, to),
            "{:?} tried to send to non-neighbor {:?}",
            self.me,
            to
        );
        self.metrics.record_send(self.now);
        let d = self.delay.sample(self.rng);
        self.queue.push(
            self.now + d,
            Payload::Deliver {
                to,
                from: self.me,
                msg,
                depth: self.chain_depth + 1,
            },
        );
    }

    /// Send `msg` to every neighbour. Under [`Medium::Radio`] this is a
    /// single transmission (one message of communication cost) heard by
    /// all neighbours (§5.3); under [`Medium::PointToPoint`] it is one
    /// message per neighbour.
    pub fn broadcast(&mut self, msg: M) {
        self.broadcast_except(None, msg);
    }

    /// Send `msg` to every neighbour except `skip` (the common flooding
    /// idiom: do not echo a message straight back to whoever sent it).
    ///
    /// Radio caveat: a radio transmission physically reaches *all*
    /// neighbours — there is no way to exclude one — so under
    /// [`Medium::Radio`] the excluded neighbour still receives the
    /// message, and the cost is one message either way.
    pub fn broadcast_except(&mut self, skip: Option<HostId>, msg: M) {
        match self.medium {
            Medium::Radio => {
                self.metrics.record_send(self.now);
                let d = self.delay.sample(self.rng);
                for &n in self.topo.neighbors(self.me) {
                    self.queue.push(
                        self.now + d,
                        Payload::Deliver {
                            to: n,
                            from: self.me,
                            msg: msg.clone(),
                            depth: self.chain_depth + 1,
                        },
                    );
                }
            }
            Medium::PointToPoint => {
                let neighbors = self.topo.neighbors(self.me);
                for &n in neighbors {
                    if Some(n) == skip {
                        continue;
                    }
                    self.metrics.record_send(self.now);
                    let d = self.delay.sample(self.rng);
                    self.queue.push(
                        self.now + d,
                        Payload::Deliver {
                            to: n,
                            from: self.me,
                            msg: msg.clone(),
                            depth: self.chain_depth + 1,
                        },
                    );
                }
            }
        }
    }

    /// Send `msg` to several neighbours at once. Under
    /// [`Medium::Radio`] this is a single MAC-multicast transmission —
    /// one message of communication cost, received (and processed) only
    /// by the addressed neighbours, everyone else drops it in hardware
    /// (§3.1). Under [`Medium::PointToPoint`] it is one message per
    /// target. This is how a DAG host reports to its `k` parents for the
    /// price of one radio message (§4.4 / Considine et al.).
    pub fn multicast(&mut self, targets: &[HostId], msg: M) {
        if targets.is_empty() {
            return;
        }
        match self.medium {
            Medium::Radio => {
                self.metrics.record_send(self.now);
                let d = self.delay.sample(self.rng);
                for &to in targets {
                    // Same stale-contact rule as `send`: a target the
                    // overlay has unlinked is simply out of radio range.
                    if let TopoRef::Overlay(view) = self.topo {
                        if !view.has_edge(self.me, to) {
                            continue;
                        }
                    }
                    debug_assert!(self.topo.has_edge(self.me, to));
                    self.queue.push(
                        self.now + d,
                        Payload::Deliver {
                            to,
                            from: self.me,
                            msg: msg.clone(),
                            depth: self.chain_depth + 1,
                        },
                    );
                }
            }
            Medium::PointToPoint => {
                for &to in targets {
                    self.send(to, msg.clone());
                }
            }
        }
    }

    /// Send `msg` to *any* host over the underlay, bypassing the overlay
    /// topology. P2P overlays sit on the Internet (§3.1, Example 3.1):
    /// once a host learns `hq`'s address from the query it can reply
    /// directly, which is exactly what ALLREPORT's *Direct Delivery* does
    /// (§4.4). Costs one message; takes one `δ` like any other hop.
    ///
    /// Not available to sensor-network protocols — radio reaches only
    /// physical neighbours — so experiment drivers must not pair this
    /// with [`Medium::Radio`] (enforced by debug assertion).
    pub fn send_direct(&mut self, to: HostId, msg: M) {
        debug_assert!(
            self.medium == Medium::PointToPoint,
            "direct underlay sends require a point-to-point medium"
        );
        self.metrics.record_send(self.now);
        let d = self.delay.sample(self.rng);
        self.queue.push(
            self.now + d,
            Payload::Deliver {
                to,
                from: self.me,
                msg,
                depth: self.chain_depth + 1,
            },
        );
    }

    /// Schedule `on_timer(key)` to fire on this host after `delay` ticks
    /// (minimum 1: zero-delay wake-ups would allow Zeno loops).
    pub fn set_timer(&mut self, delay: u64, key: u64) {
        self.queue.push(
            self.now + delay.max(1),
            Payload::Timer { host: self.me, key },
        );
    }

    /// Schedule `on_timer(key)` to fire at the *end of the current tick*,
    /// after every message delivery of this instant has been processed.
    ///
    /// This is the batching idiom of the paper's Example 5.1: a host that
    /// receives several partial aggregates at time `t` combines them all
    /// and sends a single update at `t`. Timers order after deliveries at
    /// the same instant, so pushing one "now" achieves exactly that.
    ///
    /// May only be called while handling a message (calling it from
    /// `on_timer` could loop forever within one instant — debug-asserted).
    pub fn set_timer_at_tick_end(&mut self, key: u64) {
        debug_assert!(
            !self.in_timer,
            "set_timer_at_tick_end called from on_timer would Zeno-loop"
        );
        self.queue
            .push(self.now, Payload::Timer { host: self.me, key });
    }

    /// The communication medium of this run (protocols adapt their
    /// flushing strategy: radio cannot address a subset of neighbours).
    pub fn medium(&self) -> Medium {
        self.medium
    }

    /// Deterministic per-run randomness (for randomized protocols such as
    /// RANDOMIZEDREPORT and the FM coin flips).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}
