//! Dense alive-set index: the engine's "active hosts" invariant.
//!
//! Every per-wave structure the engine used to maintain with an
//! `O(hosts)` scan — churn/overlay summary refreshes, telemetry
//! protocol-state samples, alive counts — now iterates this bitset
//! instead, making per-poll work proportional to the *active*
//! population rather than the full host range (the n = 10⁶ requirement;
//! see `docs/SCALING.md`). The index is maintained incrementally at the
//! four membership toggle sites (static Fail/Join dispatch, dynamic
//! churn-source Fail/Join application) alongside the flat `Vec<bool>`
//! that [`EngineView`](crate::EngineView) exposes for O(1) reads.
//!
//! Cost model: one bit per host (1/8 the `Vec<bool>`), O(1) toggles, an
//! O(count + words) ascending iteration, and an O(1) count.

use crate::arena;

/// A bitset over dense host ids with an incrementally maintained
/// population count. Backed by a pooled `Vec<u64>` word buffer that
/// returns to the engine arena when released.
pub(crate) struct AliveSet {
    words: Vec<u64>,
    num_hosts: usize,
    count: usize,
}

impl AliveSet {
    /// An all-dead set over `n` hosts, words drawn from the arena pool.
    pub(crate) fn with_hosts(n: usize) -> Self {
        AliveSet {
            words: arena::take_u64s(n.div_ceil(64)),
            num_hosts: n,
            count: 0,
        }
    }

    /// Build from existing flags (the builder's initial membership).
    pub(crate) fn from_flags(flags: &[bool]) -> Self {
        let mut set = AliveSet::with_hosts(flags.len());
        for (i, &alive) in flags.iter().enumerate() {
            if alive {
                set.words[i / 64] |= 1u64 << (i % 64);
                set.count += 1;
            }
        }
        set
    }

    /// Set host `i`'s membership; returns whether the bit changed.
    #[inline]
    pub(crate) fn set(&mut self, i: usize, alive: bool) -> bool {
        debug_assert!(i < self.num_hosts);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        let was = self.words[word] & mask != 0;
        if was == alive {
            return false;
        }
        self.words[word] ^= mask;
        if alive {
            self.count += 1;
        } else {
            self.count -= 1;
        }
        true
    }

    /// Number of alive hosts. O(1).
    #[inline]
    pub(crate) fn count(&self) -> usize {
        self.count
    }

    /// Ascending iteration over alive host indices. O(count) bit pops
    /// plus O(hosts / 64) word loads.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            std::iter::successors((bits != 0).then_some(bits), |&b| {
                let rest = b & (b - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |b| w * 64 + b.trailing_zeros() as usize)
        })
    }

    /// Hand the word buffer back to the arena pool (engine drop path).
    pub(crate) fn release(&mut self) {
        arena::put_u64s(std::mem::take(&mut self.words));
        self.num_hosts = 0;
        self.count = 0;
    }

    /// Debug-only consistency check: the incremental count matches a
    /// recount of the raw words.
    #[cfg(any(debug_assertions, test))]
    pub(crate) fn verify(&self) {
        let recount: usize = self.words.iter().map(|w| w.count_ones() as usize).sum();
        assert_eq!(recount, self.count, "alive-set count drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggles_and_counts() {
        let mut s = AliveSet::with_hosts(130);
        assert_eq!(s.count(), 0);
        assert!(s.set(0, true));
        assert!(s.set(64, true));
        assert!(s.set(129, true));
        assert!(!s.set(64, true), "idempotent set");
        assert_eq!(s.count(), 3);
        assert!(s.set(64, false));
        assert!(!s.set(64, false), "idempotent clear");
        assert_eq!(s.count(), 2);
        s.verify();
    }

    #[test]
    fn iteration_is_ascending_and_exact() {
        let mut s = AliveSet::with_hosts(200);
        for i in [0usize, 3, 63, 64, 65, 127, 128, 199] {
            s.set(i, true);
        }
        s.set(65, false);
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn from_flags_matches() {
        let flags: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let s = AliveSet::from_flags(&flags);
        assert_eq!(s.count(), flags.iter().filter(|&&a| a).count());
        for i in s.iter() {
            assert!(flags[i]);
        }
        s.verify();
    }

    #[test]
    fn empty_set() {
        let s = AliveSet::with_hosts(0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().count(), 0);
    }
}
