//! The overlay-maintenance hook: edges that evolve *during* a run.
//!
//! The engine's base topology is a frozen CSR [`Graph`]. A maintained
//! overlay — partial views with shuffles, failure-detector evictions,
//! rejoining hosts attaching at new points — needs the edge set itself
//! to change while queries execute. The [`OverlayDriver`] trait is that
//! hook, symmetric with [`ChurnSource`](crate::ChurnSource):
//!
//! * the event loop polls the installed driver at the virtual instants
//!   it requests (first poll at time 0), handing it the same
//!   [`EngineView`](crate::EngineView) churn sources get — with the
//!   overlay's *current* merged edge set visible;
//! * the driver answers with the edge mutations to apply now
//!   ([`OverlayEvent`]); the engine applies them to an
//!   [`OverlayView`](pov_topology::OverlayView) layered over the base
//!   CSR and compacts the delta periodically;
//! * from that instant on, every neighbour read — protocol `Ctx`
//!   sends/broadcasts and churn-source views alike — serves the merged
//!   adjacency.
//!
//! Determinism discipline is identical to the churn and telemetry
//! hooks: polls are keyed by virtual tick only, the driver owns its own
//! seeded RNG (it never touches the engine's), and with no driver
//! installed every hook on the hot path collapses to a single `Option`
//! discriminant test — a run without an overlay is byte-identical to
//! one built before this module existed.

use crate::dynamic::EngineView;
use crate::time::Time;
use pov_topology::{Graph, HostId, OverlayView};

/// One edge mutation an [`OverlayDriver`] requests at the current
/// instant. Mutations are idempotent at the engine: adding a present
/// edge or removing an absent one is a no-op (and does not count in the
/// view-churn telemetry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlayEvent {
    /// Add the undirected overlay edge `(a, b)`.
    AddEdge(HostId, HostId),
    /// Remove the undirected overlay edge `(a, b)`.
    RemoveEdge(HostId, HostId),
}

/// Counters describing what an overlay-maintenance protocol did over a
/// run. The engine fills [`edges_added`](OverlayStats::edges_added) /
/// [`edges_removed`](OverlayStats::edges_removed) from the mutations it
/// actually applied; drivers report the protocol-level figures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverlayStats {
    /// Undirected edges added to the overlay (engine-applied).
    pub edges_added: u64,
    /// Undirected edges removed from the overlay (engine-applied).
    pub edges_removed: u64,
    /// Failure-detector probes issued (direct probes).
    pub probes: u64,
    /// Suspicions raised (a probe and its indirect fallbacks all went
    /// unanswered).
    pub suspicions: u64,
    /// Suspicions raised against a host that was in fact alive (the
    /// SWIM false-positive path; refuted before eviction).
    pub false_suspicions: u64,
    /// Confirmed-failed hosts evicted from the overlay (all incident
    /// edges dropped).
    pub evictions: u64,
    /// Hosts (re)attached at new points after joining or eviction.
    pub rejoins: u64,
    /// Passive-view shuffle rounds executed.
    pub shuffles: u64,
    /// Estimated maintenance-plane messages (probes, indirect probes,
    /// shuffle exchanges). Out-of-band accounting: not charged to the
    /// engine's query-protocol metrics.
    pub maintenance_msgs: u64,
}

/// An overlay-maintenance protocol polled by the event loop.
///
/// Within one instant, overlay polls run after the tick's failures,
/// joins and churn-source polls (the driver sees the instant's final
/// membership) and before message deliveries — a message already in
/// flight across a removed edge still arrives, like a packet on the
/// wire when a link goes down, but nothing new is sent over it.
pub trait OverlayDriver {
    /// Write the edge mutations to apply at `now` into `out` (cleared
    /// by the engine before the call; applied in `out` order). Called
    /// exactly once per polled instant. `view.neighbors(..)` serves the
    /// overlay's current merged adjacency.
    fn next_events(&mut self, now: Time, view: &EngineView<'_>, out: &mut Vec<OverlayEvent>);

    /// The next instant this driver wants to be polled, strictly after
    /// `now`; `None` once the driver is done (lets
    /// `run_to_quiescence` terminate).
    fn next_poll(&self, now: Time) -> Option<Time>;

    /// Protocol-level counters accumulated so far. The engine merges in
    /// the edge-mutation counts it applied when reporting
    /// [`Simulation::overlay_stats`](crate::Simulation::overlay_stats).
    fn stats(&self) -> OverlayStats {
        OverlayStats::default()
    }
}

/// The neighbour source handed to protocol [`Ctx`](crate::Ctx)
/// callbacks: the frozen CSR when no overlay is maintained, the merged
/// overlay view when one is. One discriminant test per read — the
/// static arm is exactly the pre-overlay hot path.
#[derive(Clone, Copy)]
pub(crate) enum TopoRef<'a> {
    /// No overlay installed: read the CSR arena directly.
    Static(&'a Graph),
    /// Maintained overlay: read the merged delta view.
    Overlay(&'a OverlayView),
}

impl<'a> TopoRef<'a> {
    #[inline]
    pub fn neighbors(&self, h: HostId) -> &'a [HostId] {
        match self {
            TopoRef::Static(g) => g.neighbors(h),
            TopoRef::Overlay(v) => v.neighbors(h),
        }
    }

    #[inline]
    pub fn degree(&self, h: HostId) -> usize {
        match self {
            TopoRef::Static(g) => g.degree(h),
            TopoRef::Overlay(v) => v.degree(h),
        }
    }

    #[inline]
    pub fn has_edge(&self, a: HostId, b: HostId) -> bool {
        match self {
            TopoRef::Static(g) => g.has_edge(a, b),
            TopoRef::Overlay(v) => v.has_edge(a, b),
        }
    }
}

/// How large the overlay's add/remove delta may grow (in directed
/// half-edges) before the engine folds it back into a fresh CSR base.
/// Compaction is `O(|H| + |E|)`; the threshold amortizes it over at
/// least that many mutations on big graphs while keeping small test
/// graphs compacting eagerly enough to exercise the path.
pub(crate) fn compact_threshold(num_hosts: usize) -> usize {
    num_hosts.max(64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_topology::GraphBuilder;

    fn chain(n: usize) -> Graph {
        let mut b = GraphBuilder::with_hosts(n);
        for i in 0..n - 1 {
            b.add_edge(HostId(i as u32), HostId(i as u32 + 1));
        }
        b.build()
    }

    #[test]
    fn topo_ref_static_and_overlay_agree_until_mutation() {
        let g = chain(4);
        let mut v = OverlayView::new(g.clone());
        assert_eq!(
            TopoRef::Static(&g).neighbors(HostId(1)),
            TopoRef::Overlay(&v).neighbors(HostId(1)),
        );
        v.add_edge(HostId(0), HostId(3));
        let t = TopoRef::Overlay(&v);
        assert_eq!(t.neighbors(HostId(0)), &[HostId(1), HostId(3)]);
        assert_eq!(t.degree(HostId(0)), 2);
        assert_eq!(TopoRef::Static(&g).degree(HostId(0)), 1);
    }

    #[test]
    fn default_driver_stats_are_zero() {
        struct Noop;
        impl OverlayDriver for Noop {
            fn next_events(&mut self, _: Time, _: &EngineView<'_>, _: &mut Vec<OverlayEvent>) {}
            fn next_poll(&self, _: Time) -> Option<Time> {
                None
            }
        }
        assert_eq!(Noop.stats(), OverlayStats::default());
    }

    #[test]
    fn compact_threshold_scales_with_hosts() {
        assert_eq!(compact_threshold(10), 64);
        assert_eq!(compact_threshold(10_000), 10_000);
    }
}
