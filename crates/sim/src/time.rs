//! Virtual time in units of the universal delay bound `δ` (§3.1).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time. One tick is one `δ` — the known universal
/// upper bound on per-hop message delay in the relaxed asynchronous model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub u64);

impl Time {
    /// Time zero: the instant the query is issued at `hq` (§4.1).
    pub const ZERO: Time = Time(0);

    /// The tick count as `u64`.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }
}

impl Add<u64> for Time {
    type Output = Time;
    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    fn sub(self, rhs: Time) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + 5;
        assert_eq!(t.ticks(), 5);
        assert_eq!(t - Time(2), 3);
        assert_eq!(Time(1).saturating_sub(Time(9)), Time::ZERO);
        let mut u = Time(1);
        u += 2;
        assert_eq!(u, Time(3));
    }

    #[test]
    fn ordering() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time::ZERO, Time(0));
    }
}
