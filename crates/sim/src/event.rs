//! The event queue driving the simulation.

use crate::Time;
use pov_topology::HostId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Clone, Debug)]
pub(crate) enum Payload<M> {
    /// A host leaves the network (§3.2 dynamism model).
    Fail(HostId),
    /// A host joins the network.
    Join(HostId),
    /// A message arrives at `to`.
    Deliver {
        /// Receiving host.
        to: HostId,
        /// Sending host.
        from: HostId,
        /// Protocol payload.
        msg: M,
        /// Causal chain depth (time-cost accounting, §6.3).
        depth: u32,
    },
    /// A timer set by `host` with protocol-chosen `key` fires.
    Timer {
        /// Host whose timer fires.
        host: HostId,
        /// Protocol-chosen timer key.
        key: u64,
    },
    /// Poll the installed dynamic churn source
    /// (`SimBuilder::dynamic_churn`).
    ChurnPoll,
}

impl<M> Payload<M> {
    /// Events at the same instant are processed in rank order:
    /// failures first (a host that fails at `t` does not see messages
    /// delivered at `t` — and within a tick the static fail-before-join
    /// tie-break means a host scheduled for both dies, restarts, and
    /// ends the tick alive), then joins, then churn-source polls (a
    /// dynamically killed host misses the same tick's deliveries, like
    /// a static failure), then deliveries, then timers (so a deadline
    /// timer at `t` observes every message arriving at `t`).
    fn rank(&self) -> u8 {
        match self {
            Payload::Fail(_) => 0,
            Payload::Join(_) => 1,
            Payload::ChurnPoll => 2,
            Payload::Deliver { .. } => 3,
            Payload::Timer { .. } => 4,
        }
    }
}

pub(crate) struct Event<M> {
    pub at: Time,
    pub seq: u64,
    pub payload: Payload<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl<M> Eq for Event<M> {}

impl<M> Event<M> {
    fn cmp_key(&self) -> (Time, u8, u64) {
        (self.at, self.payload.rank(), self.seq)
    }
}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        other.cmp_key().cmp(&self.cmp_key())
    }
}

/// Deterministic priority queue: ties broken by (rank, insertion order).
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: Time, payload: Payload<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, payload });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(Time(5), Payload::Fail(HostId(0)));
        q.push(Time(1), Payload::Fail(HostId(1)));
        q.push(Time(3), Payload::Fail(HostId(2)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn same_time_rank_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(
            Time(1),
            Payload::Timer {
                host: HostId(0),
                key: 0,
            },
        );
        q.push(
            Time(1),
            Payload::Deliver {
                to: HostId(0),
                from: HostId(1),
                msg: 9,
                depth: 0,
            },
        );
        q.push(Time(1), Payload::Fail(HostId(2)));
        let first = q.pop().unwrap();
        assert!(matches!(first.payload, Payload::Fail(_)));
        let second = q.pop().unwrap();
        assert!(matches!(second.payload, Payload::Deliver { .. }));
        let third = q.pop().unwrap();
        assert!(matches!(third.payload, Payload::Timer { .. }));
    }

    #[test]
    fn fifo_among_equal_events() {
        let mut q: EventQueue<u8> = EventQueue::new();
        for i in 0..10u8 {
            q.push(
                Time(2),
                Payload::Deliver {
                    to: HostId(0),
                    from: HostId(1),
                    msg: i,
                    depth: 0,
                },
            );
        }
        let msgs: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                Payload::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(msgs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(7), Payload::Join(HostId(0)));
        assert_eq!(q.peek_time(), Some(Time(7)));
        assert_eq!(q.len(), 1);
    }
}
