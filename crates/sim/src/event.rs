//! The event queue driving the simulation.
//!
//! Events are totally ordered by `(time, rank, seq)` — instant first,
//! then the same-instant rank of the payload (fails < joins < churn
//! polls < overlay polls < deliveries < timers), then insertion order. The production
//! implementation is a **bucketed calendar queue** ([`BucketQueue`]):
//! simulation events are overwhelmingly near-future (a send lands
//! `1..=δ` ticks ahead, a timer at most a deadline ahead), so a ring of
//! per-tick buckets — each a rank-sorted FIFO — turns every push and
//! pop into `O(1)` bucket ops instead of a `BinaryHeap`'s `O(log n)`
//! sift that repeatedly moves whole payloads. The original heap
//! implementation survives as the `#[cfg(test)]` oracle
//! ([`HeapQueue`]); property tests assert the two pop identical event
//! sequences.

use crate::Time;
use pov_topology::HostId;
use std::collections::VecDeque;

/// What happens when an event fires.
#[derive(Clone, Debug)]
pub(crate) enum Payload<M> {
    /// A host leaves the network (§3.2 dynamism model).
    Fail(HostId),
    /// A host joins the network.
    Join(HostId),
    /// A message arrives at `to`.
    Deliver {
        /// Receiving host.
        to: HostId,
        /// Sending host.
        from: HostId,
        /// Protocol payload.
        msg: M,
        /// Causal chain depth (time-cost accounting, §6.3).
        depth: u32,
    },
    /// A timer set by `host` with protocol-chosen `key` fires.
    Timer {
        /// Host whose timer fires.
        host: HostId,
        /// Protocol-chosen timer key.
        key: u64,
    },
    /// Poll the installed dynamic churn source
    /// (`SimBuilder::dynamic_churn`).
    ChurnPoll,
    /// Poll the installed overlay-maintenance driver
    /// (`SimBuilder::overlay`).
    OverlayPoll,
}

impl<M> Payload<M> {
    /// Events at the same instant are processed in rank order:
    /// failures first (a host that fails at `t` does not see messages
    /// delivered at `t` — and within a tick the static fail-before-join
    /// tie-break means a host scheduled for both dies, restarts, and
    /// ends the tick alive), then joins, then churn-source polls (a
    /// dynamically killed host misses the same tick's deliveries, like
    /// a static failure), then overlay polls (the maintenance plane
    /// sees the instant's final membership, and a message already in
    /// flight across a removed edge still delivers this tick), then
    /// deliveries, then timers (so a deadline timer at `t` observes
    /// every message arriving at `t`).
    fn rank(&self) -> u8 {
        match self {
            Payload::Fail(_) => 0,
            Payload::Join(_) => 1,
            Payload::ChurnPoll => 2,
            Payload::OverlayPoll => 3,
            Payload::Deliver { .. } => 4,
            Payload::Timer { .. } => 5,
        }
    }
}

/// The deterministic event queue: ties broken by (rank, insertion
/// order). Dispatches to the bucketed production implementation, or —
/// in test builds only — to the heap oracle a simulation was explicitly
/// built with (`SimBuilder::heap_queue_oracle`).
pub(crate) enum EventQueue<M> {
    /// The bucketed calendar queue (always used outside tests).
    Bucket(BucketQueue<M>),
    /// The pre-refactor `BinaryHeap` implementation, kept as the
    /// equivalence oracle.
    #[cfg(test)]
    Heap(HeapQueue<M>),
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue::Bucket(BucketQueue::new())
    }

    /// A queue backed by the original `BinaryHeap` ordering — the
    /// oracle side of the equivalence property tests.
    #[cfg(test)]
    pub fn heap_oracle() -> Self {
        EventQueue::Heap(HeapQueue::new())
    }

    #[inline]
    pub fn push(&mut self, at: Time, payload: Payload<M>) {
        match self {
            EventQueue::Bucket(q) => q.push(at, payload),
            #[cfg(test)]
            EventQueue::Heap(q) => q.push(at, payload),
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<(Time, Payload<M>)> {
        match self {
            EventQueue::Bucket(q) => q.pop(),
            #[cfg(test)]
            EventQueue::Heap(q) => q.pop(),
        }
    }

    /// Instant of the next event, if any. `&mut` because the bucketed
    /// queue advances its ring to the next non-empty bucket here (the
    /// amortized-O(1) part of the calendar-queue contract).
    #[inline]
    pub fn peek_time(&mut self) -> Option<Time> {
        match self {
            EventQueue::Bucket(q) => q.peek_time(),
            #[cfg(test)]
            EventQueue::Heap(q) => q.peek_time(),
        }
    }

    /// Pop the next event only if it is a [`Payload::Deliver`] at exactly
    /// instant `at` — the batch-collection primitive of sharded delivery.
    /// Sound because the `at`-tick delivery run is *closed* once draining
    /// reaches rank 4: sends always land ≥ 1 tick ahead, so no handler
    /// can append another delivery to the current instant (only tick-end
    /// timers, rank 5, which this refuses to pop).
    pub fn pop_deliver_at(&mut self, at: Time) -> Option<Payload<M>> {
        match self {
            EventQueue::Bucket(q) => q.pop_deliver_at(at),
            #[cfg(test)]
            EventQueue::Heap(q) => q.pop_deliver_at(at),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn len(&self) -> usize {
        match self {
            EventQueue::Bucket(q) => q.len(),
            #[cfg(test)]
            EventQueue::Heap(q) => q.len(),
        }
    }
}

/// How many ticks ahead of the ring base an event may land and still be
/// bucketed; anything further goes to the `far` overflow heap until the
/// ring catches up. Covers every per-hop delay and protocol timer the
/// workloads use; only pre-materialized churn plans over long horizons
/// routinely overflow.
const WINDOW: u64 = 1 << 12;

/// One tick's events: pushed in seq order, rank-sorted once when the
/// tick becomes current, then drained from the front.
type Bucket<M> = VecDeque<(u8, Payload<M>)>;

/// The bucketed calendar queue.
///
/// # Ordering invariants
///
/// * `buckets[i]` holds the events of tick `base + i`; the ring is
///   rotated (never reallocated) as ticks drain, so steady-state
///   operation is allocation-free.
/// * Within a bucket, events are appended in push order, which **is**
///   `seq` order; a single *stable* sort by rank when the tick becomes
///   current yields exactly the `(rank, seq)` order the heap produced.
/// * After the current bucket is rank-sorted, the engine may still push
///   into it — but only tick-end timers can target the current instant
///   (sends have delay ≥ 1, `set_timer` clamps to ≥ 1, churn polls move
///   strictly forward). A timer's rank (5) is the maximum, so appending
///   keeps the bucket sorted; the debug assertion in `push` enforces
///   this so any future same-tick event class fails loudly instead of
///   silently reordering.
/// * Events at or beyond `base + WINDOW` wait in the `far` min-heap,
///   ordered by `(time, rank, seq)`, and migrate into the ring the
///   moment the base advances to within `WINDOW` of them — i.e. before
///   any ring push could target their tick, preserving FIFO.
pub(crate) struct BucketQueue<M> {
    buckets: VecDeque<Bucket<M>>,
    /// Tick of `buckets[0]`.
    base: u64,
    /// Whether `buckets[0]` has been rank-sorted for draining.
    prepared: bool,
    /// Events in `buckets`, excluding `far`.
    in_buckets: usize,
    /// Far-future overflow, min-ordered by `(time, rank, seq)`.
    far: std::collections::BinaryHeap<FarEvent<M>>,
    /// Insertion counter for `far` ordering.
    far_seq: u64,
}

struct FarEvent<M> {
    at: u64,
    rank: u8,
    seq: u64,
    payload: Payload<M>,
}

impl<M> FarEvent<M> {
    fn key(&self) -> (u64, u8, u64) {
        (self.at, self.rank, self.seq)
    }
}

impl<M> PartialEq for FarEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for FarEvent<M> {}
impl<M> PartialOrd for FarEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for FarEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.key().cmp(&self.key())
    }
}

impl<M> BucketQueue<M> {
    pub fn new() -> Self {
        BucketQueue {
            buckets: VecDeque::new(),
            base: 0,
            prepared: false,
            in_buckets: 0,
            far: std::collections::BinaryHeap::new(),
            far_seq: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.in_buckets + self.far.len()
    }

    pub fn push(&mut self, at: Time, payload: Payload<M>) {
        debug_assert!(at.0 >= self.base, "event scheduled in the past");
        let offset = at.0 - self.base;
        if offset >= WINDOW {
            self.far.push(FarEvent {
                at: at.0,
                rank: payload.rank(),
                seq: self.far_seq,
                payload,
            });
            self.far_seq += 1;
            return;
        }
        let idx = offset as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize_with(idx + 1, VecDeque::new);
        }
        let rank = payload.rank();
        if idx == 0 && self.prepared {
            // The current tick is mid-drain: appending is only correct
            // if the new event sorts after everything still in the
            // bucket (see the ordering invariants above).
            debug_assert!(
                self.buckets[0].back().is_none_or(|&(r, _)| r <= rank),
                "same-tick push would reorder the current bucket"
            );
        }
        self.buckets[idx].push_back((rank, payload));
        self.in_buckets += 1;
    }

    /// Advance the ring so `buckets[0]` is the earliest non-empty tick
    /// (rank-sorted, ready to drain), migrating far-future events as
    /// the window slides over them.
    fn settle(&mut self) {
        loop {
            if self.in_buckets == 0 {
                if self.far.is_empty() {
                    return;
                }
                // Jump the base straight to the earliest far event — no
                // point rotating through an empty window one tick at a
                // time.
                self.base = self.far.peek().expect("non-empty").at;
                self.prepared = false;
                self.migrate_far();
                continue;
            }
            if self.buckets.front().is_some_and(|b| !b.is_empty()) {
                if !self.prepared {
                    // Stable sort: equal ranks keep push (= seq) order.
                    self.buckets[0]
                        .make_contiguous()
                        .sort_by_key(|&(rank, _)| rank);
                    self.prepared = true;
                }
                return;
            }
            // Rotate the drained front bucket to the back, retaining
            // its capacity for a future tick.
            let mut spent = self.buckets.pop_front().expect("in_buckets > 0");
            spent.clear();
            self.buckets.push_back(spent);
            self.base += 1;
            self.prepared = false;
            self.migrate_far();
        }
    }

    /// Move every far event whose tick now falls inside the ring window
    /// into its bucket. Popped in `(time, rank, seq)` order, so same-
    /// bucket appends preserve the global FIFO contract.
    fn migrate_far(&mut self) {
        while self.far.peek().is_some_and(|fe| fe.at < self.base + WINDOW) {
            let fe = self.far.pop().expect("peeked");
            let idx = (fe.at - self.base) as usize;
            if self.buckets.len() <= idx {
                self.buckets.resize_with(idx + 1, VecDeque::new);
            }
            self.buckets[idx].push_back((fe.rank, fe.payload));
            self.in_buckets += 1;
        }
    }

    pub fn peek_time(&mut self) -> Option<Time> {
        self.settle();
        (self.len() > 0).then_some(Time(self.base))
    }

    pub fn pop(&mut self) -> Option<(Time, Payload<M>)> {
        self.settle();
        let (_, payload) = self.buckets.front_mut()?.pop_front()?;
        self.in_buckets -= 1;
        Some((Time(self.base), payload))
    }

    /// See [`EventQueue::pop_deliver_at`]. The prepared bucket is rank-
    /// sorted, so the remaining deliveries of the instant sit contiguous
    /// at its front; pop while the head is rank 4. Deliberately does
    /// *not* settle: the caller just popped an event at `at`, so the
    /// ring base already sits on this tick, and settling after the
    /// bucket empties would advance the base past `at` — making the
    /// batch's post-merge pushes (tick-end timers at `at`, sends at
    /// `at + d`) look scheduled in the past.
    pub fn pop_deliver_at(&mut self, at: Time) -> Option<Payload<M>> {
        if self.base != at.0 {
            return None;
        }
        let front = self.buckets.front_mut()?;
        if front.front().is_some_and(|&(rank, _)| rank == 4) {
            let (_, payload) = front.pop_front().expect("head checked");
            self.in_buckets -= 1;
            Some(payload)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------- oracle

/// The pre-refactor implementation: a `BinaryHeap` over explicit
/// `(time, rank, seq)` keys. Kept (test builds only) as the ordering
/// oracle the bucketed queue is property-tested against.
#[cfg(test)]
pub(crate) struct HeapQueue<M> {
    heap: std::collections::BinaryHeap<Event<M>>,
    next_seq: u64,
}

#[cfg(test)]
struct Event<M> {
    at: Time,
    seq: u64,
    payload: Payload<M>,
}

#[cfg(test)]
impl<M> Event<M> {
    fn cmp_key(&self) -> (Time, u8, u64) {
        (self.at, self.payload.rank(), self.seq)
    }
}

#[cfg(test)]
impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
#[cfg(test)]
impl<M> Eq for Event<M> {}
#[cfg(test)]
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
#[cfg(test)]
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        other.cmp_key().cmp(&self.cmp_key())
    }
}

#[cfg(test)]
impl<M> HeapQueue<M> {
    pub fn new() -> Self {
        HeapQueue {
            heap: std::collections::BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: Time, payload: Payload<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, payload });
    }

    pub fn pop(&mut self) -> Option<(Time, Payload<M>)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    pub fn peek_time(&mut self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn pop_deliver_at(&mut self, at: Time) -> Option<Payload<M>> {
        let head = self.heap.peek()?;
        if head.at == at && head.payload.rank() == 4 {
            Some(self.heap.pop().expect("peeked").payload)
        } else {
            None
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(Time(5), Payload::Fail(HostId(0)));
        q.push(Time(1), Payload::Fail(HostId(1)));
        q.push(Time(3), Payload::Fail(HostId(2)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn same_time_rank_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(
            Time(1),
            Payload::Timer {
                host: HostId(0),
                key: 0,
            },
        );
        q.push(
            Time(1),
            Payload::Deliver {
                to: HostId(0),
                from: HostId(1),
                msg: 9,
                depth: 0,
            },
        );
        q.push(Time(1), Payload::Fail(HostId(2)));
        let first = q.pop().unwrap();
        assert!(matches!(first.1, Payload::Fail(_)));
        let second = q.pop().unwrap();
        assert!(matches!(second.1, Payload::Deliver { .. }));
        let third = q.pop().unwrap();
        assert!(matches!(third.1, Payload::Timer { .. }));
    }

    #[test]
    fn fifo_among_equal_events() {
        let mut q: EventQueue<u8> = EventQueue::new();
        for i in 0..10u8 {
            q.push(
                Time(2),
                Payload::Deliver {
                    to: HostId(0),
                    from: HostId(1),
                    msg: i,
                    depth: 0,
                },
            );
        }
        let msgs: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|(_, p)| match p {
                Payload::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(msgs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(7), Payload::Join(HostId(0)));
        assert_eq!(q.peek_time(), Some(Time(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_events_cross_the_window() {
        // Events far past the ring window detour through the overflow
        // heap and still pop in exact (time, rank, seq) order.
        let mut q: EventQueue<u8> = EventQueue::new();
        let far = WINDOW * 3 + 17;
        q.push(
            Time(far),
            Payload::Timer {
                host: HostId(0),
                key: 2,
            },
        );
        q.push(Time(far), Payload::Fail(HostId(1)));
        q.push(Time(2), Payload::Join(HostId(2)));
        q.push(Time(far + WINDOW), Payload::Join(HostId(3)));
        assert_eq!(q.peek_time(), Some(Time(2)));
        assert!(matches!(q.pop(), Some((Time(2), Payload::Join(_)))));
        // Jumps straight to the far tick: fail (rank 0) before timer.
        let (t, p) = q.pop().unwrap();
        assert_eq!(t, Time(far));
        assert!(matches!(p, Payload::Fail(_)));
        assert!(matches!(q.pop(), Some((_, Payload::Timer { .. }))));
        assert_eq!(q.pop().unwrap().0, Time(far + WINDOW));
        assert!(q.is_empty());
    }

    #[test]
    fn same_tick_timer_push_mid_drain() {
        // The tick-end-timer idiom: while draining tick 3's deliveries,
        // a timer lands on the same tick and must fire after them.
        let mut q: EventQueue<u8> = EventQueue::new();
        for i in 0..3u8 {
            q.push(
                Time(3),
                Payload::Deliver {
                    to: HostId(0),
                    from: HostId(1),
                    msg: i,
                    depth: 0,
                },
            );
        }
        assert!(matches!(
            q.pop(),
            Some((_, Payload::Deliver { msg: 0, .. }))
        ));
        q.push(
            Time(3),
            Payload::Timer {
                host: HostId(0),
                key: 9,
            },
        );
        assert!(matches!(
            q.pop(),
            Some((_, Payload::Deliver { msg: 1, .. }))
        ));
        assert!(matches!(
            q.pop(),
            Some((_, Payload::Deliver { msg: 2, .. }))
        ));
        assert!(matches!(
            q.pop(),
            Some((Time(3), Payload::Timer { key: 9, .. }))
        ));
    }

    /// A compact encodable action stream for the equivalence property:
    /// interleaved pushes (time offset, payload class) and pops.
    fn arb_actions() -> impl Strategy<Value = Vec<(u16, u8, u8)>> {
        prop::collection::vec((0u16..2_000, 0u8..6, 0u8..2), 1..400)
    }

    fn payload_of(class: u8, tag: u8) -> Payload<u8> {
        match class {
            0 => Payload::Fail(HostId(u32::from(tag))),
            1 => Payload::Join(HostId(u32::from(tag))),
            2 => Payload::ChurnPoll,
            3 => Payload::OverlayPoll,
            4 => Payload::Deliver {
                to: HostId(u32::from(tag)),
                from: HostId(0),
                msg: tag,
                depth: 0,
            },
            _ => Payload::Timer {
                host: HostId(u32::from(tag)),
                key: u64::from(tag),
            },
        }
    }

    fn fingerprint(t: Time, p: &Payload<u8>) -> (u64, u8, u32, u8) {
        let (host, msg) = match *p {
            Payload::Fail(h) | Payload::Join(h) => (h.0, 0),
            Payload::ChurnPoll | Payload::OverlayPoll => (0, 0),
            Payload::Deliver { to, msg, .. } => (to.0, msg),
            Payload::Timer { host, key } => (host.0, key as u8),
        };
        (t.0, p.rank(), host, msg)
    }

    proptest! {
        /// The tentpole equivalence bar at the queue level: for any
        /// interleaving of pushes and pops (with monotone lower bounds
        /// on push times, as the engine guarantees), the bucketed queue
        /// and the BinaryHeap oracle emit the identical event sequence.
        #[test]
        fn bucket_queue_matches_heap_oracle(actions in arb_actions()) {
            let mut bucket: EventQueue<u8> = EventQueue::new();
            let mut heap: EventQueue<u8> = EventQueue::heap_oracle();
            let mut now = 0u64; // events may never be pushed in the past
            let mut tag = 0u8;
            for (dt, class, do_pop) in actions {
                let at = Time(now + u64::from(dt));
                tag = tag.wrapping_add(1);
                bucket.push(at, payload_of(class, tag));
                heap.push(at, payload_of(class, tag));
                prop_assert_eq!(bucket.len(), heap.len());
                if do_pop == 1 {
                    let b = bucket.pop();
                    let h = heap.pop();
                    match (b, h) {
                        (Some((bt, bp)), Some((ht, hp))) => {
                            prop_assert_eq!(
                                fingerprint(bt, &bp),
                                fingerprint(ht, &hp)
                            );
                            now = bt.0;
                        }
                        (None, None) => {}
                        _ => prop_assert!(false, "one queue emptied before the other"),
                    }
                }
            }
            // Drain both to the end.
            loop {
                prop_assert_eq!(bucket.peek_time(), heap.peek_time());
                match (bucket.pop(), heap.pop()) {
                    (Some((bt, bp)), Some((ht, hp))) => {
                        prop_assert_eq!(fingerprint(bt, &bp), fingerprint(ht, &hp));
                    }
                    (None, None) => break,
                    _ => prop_assert!(false, "one queue emptied before the other"),
                }
            }
        }
    }
}
