//! Ground-truth event trace.
//!
//! The oracle of §6.2 *"observes all events in G"* and uses them to
//! compute the Single-Site-Validity bounds. The simulator records every
//! membership change here; the `pov-oracle` crate replays it.

use crate::Time;
use pov_topology::HostId;
use serde::{Deserialize, Serialize};

/// One membership change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Host left the network (failed) at the given time.
    Fail(Time, HostId),
    /// Host joined the network at the given time.
    Join(Time, HostId),
}

impl TraceEvent {
    /// The instant of the event.
    pub fn time(&self) -> Time {
        match *self {
            TraceEvent::Fail(t, _) | TraceEvent::Join(t, _) => t,
        }
    }

    /// The host involved.
    pub fn host(&self) -> HostId {
        match *self {
            TraceEvent::Fail(_, h) | TraceEvent::Join(_, h) => h,
        }
    }
}

/// Full ground truth of a run: which hosts were alive initially and every
/// later membership change, in time order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Alive flags at time 0, indexed by host.
    pub initially_alive: Vec<bool>,
    /// Membership changes in the order they occurred.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn new(initially_alive: Vec<bool>) -> Self {
        Trace {
            initially_alive,
            events: Vec::new(),
        }
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Alive flags at time `t` (inclusive of events at `t`).
    pub fn alive_at(&self, t: Time) -> Vec<bool> {
        let mut alive = self.initially_alive.clone();
        for ev in &self.events {
            if ev.time() > t {
                break;
            }
            match *ev {
                TraceEvent::Fail(_, h) => alive[h.index()] = false,
                TraceEvent::Join(_, h) => alive[h.index()] = true,
            }
        }
        alive
    }

    /// Hosts alive at *every* instant of `[start, end]` — the building
    /// block of `HI` and of stable-path computations.
    pub fn alive_throughout(&self, start: Time, end: Time) -> Vec<bool> {
        let mut alive = self.alive_at(start);
        for ev in &self.events {
            if ev.time() <= start {
                continue;
            }
            if ev.time() > end {
                break;
            }
            match *ev {
                TraceEvent::Fail(_, h) => alive[h.index()] = false,
                // A host that joined mid-interval was not alive throughout.
                TraceEvent::Join(_, h) => alive[h.index()] = false,
            }
        }
        alive
    }

    /// Hosts alive at *some* instant of `[start, end]` — the `HU` bound.
    ///
    /// A host that fails exactly at `start` *was* alive at that instant,
    /// so the baseline applies only events strictly before `start`.
    pub fn alive_sometime(&self, start: Time, end: Time) -> Vec<bool> {
        let mut alive = self.initially_alive.clone();
        for ev in &self.events {
            if ev.time() >= start {
                break;
            }
            match *ev {
                TraceEvent::Fail(_, h) => alive[h.index()] = false,
                TraceEvent::Join(_, h) => alive[h.index()] = true,
            }
        }
        for ev in &self.events {
            if ev.time() < start {
                continue;
            }
            if ev.time() > end {
                break;
            }
            if let TraceEvent::Join(_, h) = *ev {
                alive[h.index()] = true;
            }
            // Failures do not clear the flag: the host *was* alive.
        }
        alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        // 4 hosts; host 3 starts dead and joins at t=5; host 1 fails at t=3.
        let mut tr = Trace::new(vec![true, true, true, false]);
        tr.record(TraceEvent::Fail(Time(3), HostId(1)));
        tr.record(TraceEvent::Join(Time(5), HostId(3)));
        tr
    }

    #[test]
    fn alive_at_points_in_time() {
        let tr = sample_trace();
        assert_eq!(tr.alive_at(Time(0)), vec![true, true, true, false]);
        assert_eq!(tr.alive_at(Time(3)), vec![true, false, true, false]);
        assert_eq!(tr.alive_at(Time(9)), vec![true, false, true, true]);
    }

    #[test]
    fn alive_throughout_interval() {
        let tr = sample_trace();
        // Over [0,10]: host 0 and 2 never change; 1 fails; 3 joins late.
        assert_eq!(
            tr.alive_throughout(Time(0), Time(10)),
            vec![true, false, true, false]
        );
        // Over [4,10]: host 1 already dead at start; 3 joins inside.
        assert_eq!(
            tr.alive_throughout(Time(4), Time(10)),
            vec![true, false, true, false]
        );
        // Over [6,10]: host 3 alive the whole window.
        assert_eq!(
            tr.alive_throughout(Time(6), Time(10)),
            vec![true, false, true, true]
        );
    }

    #[test]
    fn alive_sometime_interval() {
        let tr = sample_trace();
        // HU over [0,10]: everyone was alive at some point.
        assert_eq!(
            tr.alive_sometime(Time(0), Time(10)),
            vec![true, true, true, true]
        );
        // Over [4,4]: host 1 dead, host 3 not yet joined.
        assert_eq!(
            tr.alive_sometime(Time(4), Time(4)),
            vec![true, false, true, false]
        );
    }

    #[test]
    fn alive_at_same_tick_fail_then_join() {
        // Fail and Join of the same host at the same tick apply in trace
        // order: the later event wins at that instant.
        let mut tr = Trace::new(vec![true, true]);
        tr.record(TraceEvent::Fail(Time(4), HostId(0)));
        tr.record(TraceEvent::Join(Time(4), HostId(0)));
        assert_eq!(tr.alive_at(Time(3)), vec![true, true]);
        assert_eq!(tr.alive_at(Time(4)), vec![true, true], "rejoin wins");
        assert_eq!(tr.alive_at(Time(5)), vec![true, true]);

        let mut tr = Trace::new(vec![false, true]);
        tr.record(TraceEvent::Join(Time(4), HostId(0)));
        tr.record(TraceEvent::Fail(Time(4), HostId(0)));
        assert_eq!(tr.alive_at(Time(4)), vec![false, true], "fail wins");
    }

    #[test]
    fn alive_throughout_window_edges() {
        let tr = sample_trace();
        // A fail exactly at `start` is inclusive: host 1 is not alive
        // throughout [3, x] for any x.
        assert_eq!(
            tr.alive_throughout(Time(3), Time(3)),
            vec![true, false, true, false]
        );
        // One tick earlier the window [2,2] closes before the failure.
        assert_eq!(
            tr.alive_throughout(Time(2), Time(2)),
            vec![true, true, true, false]
        );
        // A join exactly at `end` still counts as mid-interval: host 3
        // was dead for every instant of [4,5) and so is excluded.
        assert_eq!(
            tr.alive_throughout(Time(4), Time(5)),
            vec![true, false, true, false]
        );
        // Starting exactly at the join instant includes the host:
        // alive_at(5) already sees the join, and nothing later clears it.
        assert_eq!(
            tr.alive_throughout(Time(5), Time(10)),
            vec![true, false, true, true]
        );
        // Degenerate window [t, t] equals alive_at(t).
        assert_eq!(tr.alive_throughout(Time(5), Time(5)), tr.alive_at(Time(5)));
    }

    #[test]
    fn alive_throughout_rejoin_within_window_excludes_host() {
        // Fail then rejoin inside the window: the host missed an instant,
        // so it is not alive throughout — even though it is alive at both
        // window edges.
        let mut tr = Trace::new(vec![true]);
        tr.record(TraceEvent::Fail(Time(4), HostId(0)));
        tr.record(TraceEvent::Join(Time(6), HostId(0)));
        assert_eq!(tr.alive_throughout(Time(0), Time(10)), vec![false]);
        assert_eq!(tr.alive_at(Time(0)), vec![true]);
        assert_eq!(tr.alive_at(Time(10)), vec![true]);
    }

    #[test]
    fn alive_sometime_window_edges() {
        let tr = sample_trace();
        // A host failing exactly at `start` *was* alive at that instant:
        // the baseline applies only events strictly before `start`.
        assert_eq!(
            tr.alive_sometime(Time(3), Time(10)),
            vec![true, true, true, true]
        );
        // One tick later the failure is history: host 1 is out.
        assert_eq!(
            tr.alive_sometime(Time(4), Time(10)),
            vec![true, false, true, true]
        );
        // A join exactly at `end` is inclusive: host 3 counts over [0,5].
        assert_eq!(
            tr.alive_sometime(Time(0), Time(5)),
            vec![true, true, true, true]
        );
        // ...but not over [0,4].
        assert_eq!(
            tr.alive_sometime(Time(0), Time(4)),
            vec![true, true, true, false]
        );
        // Degenerate window [t, t]: join at that very tick counts.
        assert_eq!(
            tr.alive_sometime(Time(5), Time(5)),
            vec![true, false, true, true]
        );
    }

    #[test]
    fn alive_sometime_same_tick_fail_and_join() {
        // Host fails at the window start and a different host joins at
        // the same tick: both count as "alive sometime".
        let mut tr = Trace::new(vec![true, false]);
        tr.record(TraceEvent::Fail(Time(7), HostId(0)));
        tr.record(TraceEvent::Join(Time(7), HostId(1)));
        assert_eq!(tr.alive_sometime(Time(7), Time(9)), vec![true, true]);
        // Before the window both changes are baseline: host 0 gone,
        // host 1 in.
        assert_eq!(tr.alive_sometime(Time(8), Time(9)), vec![false, true]);
    }

    #[test]
    fn event_accessors() {
        let ev = TraceEvent::Fail(Time(2), HostId(7));
        assert_eq!(ev.time(), Time(2));
        assert_eq!(ev.host(), HostId(7));
    }
}
