//! Dynamic churn sources: dynamism decided *during* the run.
//!
//! A pre-materialized [`ChurnPlan`](crate::ChurnPlan) fixes every
//! failure and join before the first event fires, which is exactly the
//! §6.2 oblivious-adversary model — and exactly what an *adaptive*
//! adversary is not. The [`ChurnSource`] trait inverts the flow: the
//! event loop polls the source at instants of its choosing, handing it
//! an [`EngineView`] of the live run (alive set, per-host protocol
//! state summaries), and the source answers with the membership changes
//! to apply *now*. Casteigts' taxonomy of dynamic-network classes puts
//! worst-case adaptive schedules strictly above random churn; this is
//! the hook that makes them expressible.
//!
//! Two sources ship with the crate:
//!
//! * every [`ChurnPlan`](crate::ChurnPlan) is the trivial *static*
//!   source — it replays its pre-materialized schedule and ignores the
//!   view (the engine's fast path keeps pre-pushing plan events into
//!   the queue directly, which is behaviourally identical);
//! * [`SketchAdversary`] — the protocol-state-aware attacker from the
//!   ROADMAP's "adversary targeting the sketch" item: each wave it
//!   kills the `k` alive hosts whose current partials hold the FM
//!   sketch maxima, under a fixed total event budget so runs are
//!   comparable to [`ChurnPlan::uniform_failures`] at equal cost.

use crate::churn::ChurnPlan;
use crate::time::Time;
use pov_topology::{Graph, HostId, OverlayView};

/// A host's observable protocol state, as exposed to [`ChurnSource`]s
/// through [`EngineView`]. Protocol crates fill it in via
/// [`NodeLogic::summary`](crate::NodeLogic::summary) (the default is
/// [`StateSummary::default`]: inactive, nothing observable).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StateSummary {
    /// Whether the host currently participates in an active query.
    pub active: bool,
    /// Scalar "height" of the host's current partial aggregate — for
    /// FM-sketched aggregates the sketch's own estimate (the mass its
    /// accumulated bit maxima induce), for exact ones a value-derived
    /// proxy. Higher means the host carries more of the answer; `None`
    /// means nothing observable (not yet activated).
    pub sketch_weight: Option<f64>,
}

/// One membership change a [`ChurnSource`] requests at the current
/// instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Kill the host (no-op if already dead).
    Fail(HostId),
    /// Revive the host (no-op if already alive).
    Join(HostId),
}

/// The engine state a [`ChurnSource`] may inspect when polled. This is
/// the adaptive adversary's entire sensorium: topology, the omniscient
/// alive set, and whatever each host's protocol chose to expose.
pub struct EngineView<'a> {
    /// Current virtual time.
    pub now: Time,
    /// The *base* topology (the CSR the simulation was built over).
    pub graph: &'a Graph,
    /// The maintained overlay, when an
    /// [`OverlayDriver`](crate::OverlayDriver) is installed. Prefer the
    /// accessor methods ([`EngineView::neighbors`] and friends), which
    /// serve the overlay's current merged adjacency when present and
    /// fall back to the base CSR otherwise.
    pub overlay: Option<&'a OverlayView>,
    /// Omniscient alive flags, indexed by host.
    pub alive: &'a [bool],
    /// Number of `true` flags in [`EngineView::alive`], maintained
    /// incrementally by the engine — sources can read the population
    /// without an `O(hosts)` scan.
    pub alive_count: u32,
    /// Per-host protocol state summaries, indexed by host. Failed hosts
    /// retain their last summary.
    pub summaries: &'a [StateSummary],
}

impl<'a> EngineView<'a> {
    /// Number of currently alive hosts. O(1).
    pub fn num_alive(&self) -> usize {
        self.alive_count as usize
    }

    /// `h`'s current neighbours: the overlay's merged adjacency when an
    /// overlay is maintained, the base CSR otherwise. Sources that
    /// react to the topology must read through this (not
    /// [`EngineView::graph`]) or they will act on stale edges.
    pub fn neighbors(&self, h: HostId) -> &'a [HostId] {
        match self.overlay {
            Some(v) => v.neighbors(h),
            None => self.graph.neighbors(h),
        }
    }

    /// `h`'s current degree (overlay-aware, like
    /// [`EngineView::neighbors`]).
    pub fn degree(&self, h: HostId) -> usize {
        match self.overlay {
            Some(v) => v.degree(h),
            None => self.graph.degree(h),
        }
    }

    /// Whether the undirected edge `(a, b)` currently exists
    /// (overlay-aware, like [`EngineView::neighbors`]).
    pub fn has_edge(&self, a: HostId, b: HostId) -> bool {
        match self.overlay {
            Some(v) => v.has_edge(a, b),
            None => self.graph.has_edge(a, b),
        }
    }
}

/// A churn schedule decided while the simulation runs.
///
/// The engine polls the source with a [`Payload::ChurnPoll`] event:
/// once at time 0, then at every instant [`ChurnSource::next_poll`]
/// requests. Within an instant, poll-injected events apply after the
/// pre-materialized plan's failures and joins but before message
/// deliveries — a host killed by a source at `t` does not see messages
/// delivered at `t`, exactly like a statically scheduled failure.
///
/// [`Payload::ChurnPoll`]: crate::Simulation
pub trait ChurnSource {
    /// Write the membership changes to apply at `now` into `out`
    /// (cleared by the engine before the call; events are applied in
    /// `out` order). Called exactly once per polled instant. The
    /// out-parameter shape lets the engine reuse one pooled wave buffer
    /// across every poll of a run instead of allocating a `Vec` per
    /// wave.
    fn next_events(&mut self, now: Time, view: &EngineView<'_>, out: &mut Vec<ChurnEvent>);

    /// The next instant this source wants to be polled, strictly after
    /// `now`; `None` once the source is exhausted (lets
    /// `run_to_quiescence` terminate).
    fn next_poll(&self, now: Time) -> Option<Time>;
}

/// The trivial static source: replay the pre-materialized schedule,
/// ignore the view. Within one instant failures are yielded before
/// joins — the same fail-before-join tie-break the event queue applies
/// to pre-pushed plan events, so routing a plan through the dynamic
/// path produces an identical trace. Plans with pinned
/// [`ChurnPlan::dead_from_start`] hosts are rejected (panic): only the
/// builder's static path can seed the time-0 alive set, and silently
/// dropping the pin would resurrect hosts a window slicer put down.
impl ChurnSource for ChurnPlan {
    fn next_events(&mut self, now: Time, _view: &EngineView<'_>, out: &mut Vec<ChurnEvent>) {
        assert!(
            self.dead_from_start.is_empty(),
            "a ChurnPlan with initially-dead hosts cannot run as a dynamic source; \
             install it with SimBuilder::churn instead"
        );
        out.extend(
            self.failures
                .iter()
                .filter(|&&(t, _)| t == now)
                .map(|&(_, h)| ChurnEvent::Fail(h))
                .chain(
                    self.joins
                        .iter()
                        .filter(|&&(t, _)| t == now)
                        .map(|&(_, h)| ChurnEvent::Join(h)),
                ),
        );
    }

    fn next_poll(&self, now: Time) -> Option<Time> {
        self.failures
            .iter()
            .chain(&self.joins)
            .map(|&(t, _)| t)
            .filter(|&t| t > now)
            .min()
    }
}

/// The sketch-targeting adaptive adversary.
///
/// At evenly spaced wave instants across `[start, until]` it inspects
/// the [`EngineView`] and kills the `kills_per_wave` alive hosts whose
/// protocol summaries report the highest [`StateSummary::sketch_weight`]
/// — the hosts currently holding the FM sketch maxima — never touching
/// `spare` (the querying host, which must survive to declare) and never
/// exceeding `budget` kills in total. Hosts that expose no weight (not
/// yet activated, or a protocol without an observer) are only struck
/// once no weighted target remains, so the budget is spent on the hosts
/// that actually carry the answer.
///
/// The adversary is deterministic: selection is a pure function of the
/// view with ties broken by ascending host id, so scenario reports stay
/// byte-identical across thread counts.
#[derive(Clone, Debug)]
pub struct SketchAdversary {
    budget: usize,
    killed: usize,
    start: Time,
    until: Time,
    spare: HostId,
    /// Precomputed wave instants with their kill quotas (ascending,
    /// distinct instants; quotas sum to `budget`). Waves whose evenly
    /// spaced instants quantize to the same tick merge their quotas, so
    /// a short window in ticks never silently underspends the budget —
    /// the equal-cost comparability contract with `uniform_failures`.
    waves: Vec<(Time, usize)>,
}

impl SketchAdversary {
    /// An adversary spending `budget` kills in waves of
    /// `kills_per_wave`, the waves evenly spaced across
    /// `[start, until]`, sparing `spare`.
    ///
    /// # Panics
    /// Panics if `kills_per_wave == 0` or `until < start`.
    pub fn new(
        kills_per_wave: usize,
        budget: usize,
        start: Time,
        until: Time,
        spare: HostId,
    ) -> Self {
        assert!(kills_per_wave >= 1, "kills_per_wave must be >= 1");
        assert!(until >= start, "empty adversary window");
        let num_waves = budget.div_ceil(kills_per_wave).max(1);
        let span = until.ticks() - start.ticks();
        let mut waves: Vec<(Time, usize)> = Vec::new();
        let mut remaining = budget;
        for i in 0..num_waves {
            let at = Time(start.ticks() + (i as u64 * span) / num_waves as u64);
            let quota = kills_per_wave.min(remaining);
            remaining -= quota;
            match waves.last_mut() {
                Some((t, q)) if *t == at => *q += quota,
                _ => waves.push((at, quota)),
            }
        }
        SketchAdversary {
            budget,
            killed: 0,
            start,
            until,
            spare,
            waves,
        }
    }

    /// Kills performed so far.
    pub fn kills(&self) -> usize {
        self.killed
    }

    /// The fixed total event budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The attack window `[start, until]`.
    pub fn window(&self) -> (Time, Time) {
        (self.start, self.until)
    }
}

impl ChurnSource for SketchAdversary {
    fn next_events(&mut self, now: Time, view: &EngineView<'_>, out: &mut Vec<ChurnEvent>) {
        let quota = match self.waves.iter().find(|&&(t, _)| t == now) {
            Some(&(_, q)) => q.min(self.budget - self.killed),
            None => return,
        };
        if quota == 0 {
            return;
        }
        // Rank alive, non-spare hosts: weighted targets first (highest
        // sketch weight wins), then active-but-weightless, then the
        // rest; ties by ascending host id for determinism.
        let mut targets: Vec<HostId> = (0..view.alive.len() as u32)
            .map(HostId)
            .filter(|&h| h != self.spare && view.alive[h.index()])
            .collect();
        targets.sort_by(|&a, &b| {
            let key = |h: HostId| {
                let s = &view.summaries[h.index()];
                (s.sketch_weight.unwrap_or(f64::NEG_INFINITY), s.active)
            };
            let (wa, aa) = key(a);
            let (wb, ab) = key(b);
            wb.partial_cmp(&wa)
                .expect("sketch weights are never NaN")
                .then(ab.cmp(&aa))
                .then(a.0.cmp(&b.0))
        });
        let before = out.len();
        out.extend(targets.into_iter().take(quota).map(ChurnEvent::Fail));
        self.killed += out.len() - before;
    }

    fn next_poll(&self, now: Time) -> Option<Time> {
        if self.killed >= self.budget {
            return None;
        }
        self.waves.iter().map(|&(t, _)| t).find(|&t| t > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_topology::generators::special;

    fn view_of<'a>(
        graph: &'a Graph,
        alive: &'a [bool],
        summaries: &'a [StateSummary],
        now: Time,
    ) -> EngineView<'a> {
        EngineView {
            now,
            graph,
            overlay: None,
            alive,
            alive_count: alive.iter().filter(|&&a| a).count() as u32,
            summaries,
        }
    }

    /// Collect one poll's wave into a fresh buffer (tests only; the
    /// engine reuses a pooled buffer instead).
    fn events_of(src: &mut impl ChurnSource, now: Time, view: &EngineView<'_>) -> Vec<ChurnEvent> {
        let mut out = Vec::new();
        src.next_events(now, view, &mut out);
        out
    }

    #[test]
    fn plan_as_source_yields_fails_before_joins() {
        let g = special::chain(4);
        let mut plan = ChurnPlan::none()
            .with_failure(Time(3), HostId(1))
            .with_join(Time(3), HostId(2))
            .with_failure(Time(7), HostId(2));
        let alive = vec![true; 4];
        let summaries = vec![StateSummary::default(); 4];
        assert_eq!(plan.next_poll(Time(0)), Some(Time(3)));
        let view = view_of(&g, &alive, &summaries, Time(3));
        assert_eq!(
            events_of(&mut plan, Time(3), &view),
            vec![ChurnEvent::Fail(HostId(1)), ChurnEvent::Join(HostId(2))]
        );
        assert_eq!(plan.next_poll(Time(3)), Some(Time(7)));
        assert_eq!(plan.next_poll(Time(7)), None);
    }

    #[test]
    #[should_panic(expected = "cannot run as a dynamic source")]
    fn plan_with_pinned_dead_rejected_as_source() {
        let g = special::chain(3);
        let alive = vec![true; 3];
        let summaries = vec![StateSummary::default(); 3];
        let mut plan = ChurnPlan::none().with_initially_dead(HostId(1));
        let view = view_of(&g, &alive, &summaries, Time::ZERO);
        events_of(&mut plan, Time::ZERO, &view);
    }

    #[test]
    fn pinned_dead_host_yielded_once_even_with_a_rejoin() {
        let plan = ChurnPlan::none()
            .with_initially_dead(HostId(3))
            .merge(ChurnPlan::none().with_join(Time(5), HostId(3)));
        let dead: Vec<HostId> = plan.initially_dead().collect();
        assert_eq!(dead, vec![HostId(3)], "no duplicate yield");
    }

    #[test]
    fn adversary_targets_highest_weight_and_spares_hq() {
        let g = special::cycle(6);
        let alive = vec![true; 6];
        let mut summaries = vec![StateSummary::default(); 6];
        for (h, w) in [(0, 50.0), (2, 9.0), (3, 30.0), (4, 30.0)] {
            summaries[h] = StateSummary {
                active: true,
                sketch_weight: Some(w),
            };
        }
        let mut adv = SketchAdversary::new(2, 2, Time(0), Time(10), HostId(0));
        let view = view_of(&g, &alive, &summaries, Time(0));
        // hq (weight 50) is spared; the two weight-30 hosts die, the
        // tie broken by ascending id.
        assert_eq!(
            events_of(&mut adv, Time(0), &view),
            vec![ChurnEvent::Fail(HostId(3)), ChurnEvent::Fail(HostId(4))]
        );
        assert_eq!(adv.kills(), 2);
        // Budget exhausted: no further polls, no further kills.
        assert_eq!(adv.next_poll(Time(0)), None);
    }

    #[test]
    fn adversary_budget_spreads_across_waves() {
        let g = special::cycle(20);
        let alive = vec![true; 20];
        let summaries: Vec<StateSummary> = (0..20)
            .map(|i| StateSummary {
                active: true,
                sketch_weight: Some(i as f64),
            })
            .collect();
        let mut adv = SketchAdversary::new(2, 6, Time(0), Time(12), HostId(0));
        let mut killed = Vec::new();
        let mut t = Time(0);
        loop {
            let view = view_of(&g, &alive, &summaries, t);
            killed.extend(events_of(&mut adv, t, &view));
            match adv.next_poll(t) {
                Some(next) => t = next,
                None => break,
            }
        }
        assert_eq!(killed.len(), 6, "exactly the budget");
        assert_eq!(adv.kills(), 6);
        // Highest weights die first (h19 down), hq never.
        assert_eq!(killed[0], ChurnEvent::Fail(HostId(19)));
        assert!(!killed.contains(&ChurnEvent::Fail(HostId(0))));
    }

    #[test]
    fn budget_survives_wave_quantization() {
        let g = special::cycle(20);
        let alive = vec![true; 20];
        let summaries = vec![StateSummary::default(); 20];
        // 10 one-kill waves over a 5-tick window quantize to 5 instants;
        // their quotas merge, so the full budget still lands.
        let mut adv = SketchAdversary::new(1, 10, Time(0), Time(5), HostId(0));
        let mut killed = 0;
        let mut t = Time(0);
        loop {
            let view = view_of(&g, &alive, &summaries, t);
            killed += events_of(&mut adv, t, &view).len();
            match adv.next_poll(t) {
                Some(next) => t = next,
                None => break,
            }
        }
        assert_eq!(killed, 10, "quantized waves must not underspend");
        assert_eq!(adv.kills(), 10);
        // The degenerate window start == until collapses to one
        // all-budget wave.
        let mut adv = SketchAdversary::new(3, 7, Time(4), Time(4), HostId(0));
        let view = view_of(&g, &alive, &summaries, Time(4));
        assert_eq!(events_of(&mut adv, Time(4), &view).len(), 7);
        assert_eq!(adv.next_poll(Time(4)), None);
    }

    #[test]
    fn adversary_ignores_off_wave_polls() {
        let g = special::cycle(4);
        let alive = vec![true; 4];
        let summaries = vec![StateSummary::default(); 4];
        let mut adv = SketchAdversary::new(1, 2, Time(4), Time(8), HostId(0));
        let view = view_of(&g, &alive, &summaries, Time(0));
        assert!(events_of(&mut adv, Time(0), &view).is_empty());
        assert_eq!(adv.next_poll(Time(0)), Some(Time(4)));
    }
}
