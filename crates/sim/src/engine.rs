//! The simulation engine: deterministic event loop over a dynamic network.

use crate::alive::AliveSet;
use crate::arena;
use crate::churn::ChurnPlan;
use crate::ctx::{CostSink, Ctx, EventSink};
use crate::delay::{DelayModel, PartitionPlan};
use crate::dynamic::{ChurnEvent, ChurnSource, EngineView, StateSummary};
use crate::event::{EventQueue, Payload};
use crate::metrics::Metrics;
use crate::node::NodeLogic;
use crate::overlay::{compact_threshold, OverlayDriver, OverlayEvent, OverlayStats, TopoRef};
use crate::sink::{TelemetrySink, TickSample};
use crate::time::Time;
use crate::trace::{Trace, TraceEvent};
use pov_topology::{Graph, HostId, OverlayView};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::borrow::Cow;

/// The physical communication medium (§3.1 examples).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Medium {
    /// P2P overlay: one message per (sender, receiver) pair.
    #[default]
    PointToPoint,
    /// Wireless sensor radio: one transmission reaches every neighbour
    /// at the cost of a single message (§5.3).
    Radio,
}

/// Builder for [`Simulation`].
pub struct SimBuilder<'g> {
    graph: Cow<'g, Graph>,
    medium: Medium,
    delay: DelayModel,
    churn: ChurnPlan,
    dynamic: Option<Box<dyn ChurnSource>>,
    overlay: Option<Box<dyn OverlayDriver>>,
    partition: Option<PartitionPlan>,
    seed: u64,
    tele: Option<&'g mut (dyn TelemetrySink + 'static)>,
    #[cfg(test)]
    heap_queue_oracle: bool,
}

impl SimBuilder<'static> {
    /// Start building a simulation that owns `graph`.
    pub fn new(graph: Graph) -> Self {
        SimBuilder::with_graph(Cow::Owned(graph))
    }
}

impl<'g> SimBuilder<'g> {
    /// Start building a simulation that *borrows* `graph` — the batch
    /// entry point: a thousand-cell sweep over one topology shares a
    /// single CSR arena instead of cloning the adjacency per run.
    pub fn over(graph: &'g Graph) -> Self {
        SimBuilder::with_graph(Cow::Borrowed(graph))
    }

    fn with_graph(graph: Cow<'g, Graph>) -> Self {
        SimBuilder {
            graph,
            medium: Medium::PointToPoint,
            delay: DelayModel::default(),
            churn: ChurnPlan::none(),
            dynamic: None,
            overlay: None,
            partition: None,
            seed: 0,
            tele: None,
            #[cfg(test)]
            heap_queue_oracle: false,
        }
    }

    /// Select the communication medium (default: point-to-point).
    pub fn medium(mut self, medium: Medium) -> Self {
        self.medium = medium;
        self
    }

    /// Select the per-hop delay model (default: fixed 1 tick).
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Install a churn plan (default: no churn).
    pub fn churn(mut self, churn: ChurnPlan) -> Self {
        self.churn = churn;
        self
    }

    /// Install a *dynamic* churn source, polled by the event loop while
    /// the run executes (default: none). Composes with a static
    /// [`ChurnPlan`]: plan events are pre-materialized into the queue,
    /// source events are injected at poll time — within one tick the
    /// plan's failures and joins apply first, then the source's.
    pub fn dynamic_churn(mut self, source: impl ChurnSource + 'static) -> Self {
        self.dynamic = Some(Box::new(source));
        self
    }

    /// Install an overlay-maintenance driver, polled by the event loop
    /// while the run executes (default: none). The engine layers a
    /// mutable [`OverlayView`] over the base graph and applies the edge
    /// mutations the driver answers with; from then on protocol `Ctx`
    /// neighbour reads and churn-source [`EngineView`]s serve the
    /// overlay's current merged adjacency. Within a tick, overlay polls
    /// run after failures, joins and churn-source polls and before
    /// message deliveries.
    pub fn overlay(mut self, driver: impl OverlayDriver + 'static) -> Self {
        self.overlay = Some(Box::new(driver));
        self
    }

    /// Install a temporary partition: messages crossing any of its cuts
    /// while one of that cut's windows is active are lost in transit
    /// (default: none).
    pub fn partition(mut self, partition: PartitionPlan) -> Self {
        assert_eq!(
            partition.num_hosts(),
            self.graph.num_hosts(),
            "one partition side per host"
        );
        self.partition = Some(partition);
        self
    }

    /// Seed for all randomness inside the run (delays, protocol RNG).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a telemetry sink observing the run (default: none). The
    /// engine borrows the sink for the simulation's lifetime and feeds
    /// it per-tick activity samples — see [`TelemetrySink`] for the
    /// determinism guarantees. With no sink attached every telemetry
    /// hook on the hot path reduces to one `Option` discriminant test.
    pub fn telemetry(mut self, sink: &'g mut (dyn TelemetrySink + 'static)) -> Self {
        self.tele = Some(sink);
        self
    }

    /// Route the event queue through the pre-refactor `BinaryHeap`
    /// implementation — the oracle side of the engine-level equivalence
    /// property tests.
    #[cfg(test)]
    pub(crate) fn heap_queue_oracle(mut self) -> Self {
        self.heap_queue_oracle = true;
        self
    }

    /// Instantiate per-host logic with `factory` and produce a runnable
    /// [`Simulation`]. `on_start` has not run yet — call
    /// [`Simulation::start`] (or one of the `run_*` helpers).
    ///
    /// All host-indexed engine buffers come from the crate's
    /// thread-local arena pool and return to it when the simulation
    /// drops, so a batch worker reuses one engine arena across every
    /// cell it runs.
    pub fn build<L: NodeLogic>(self, mut factory: impl FnMut(HostId) -> L) -> Simulation<'g, L> {
        let n = self.graph.num_hosts();
        let mut alive = arena::take_bools(n);
        for flag in alive.iter_mut() {
            *flag = true;
        }
        for h in self.churn.initially_dead() {
            alive[h.index()] = false;
        }
        let alive_set = AliveSet::from_flags(&alive);
        #[cfg(test)]
        let mut queue = if self.heap_queue_oracle {
            EventQueue::heap_oracle()
        } else {
            EventQueue::new()
        };
        #[cfg(not(test))]
        let mut queue = EventQueue::new();
        for &(t, h) in &self.churn.failures {
            queue.push(t, Payload::Fail(h));
        }
        for &(t, h) in &self.churn.joins {
            queue.push(t, Payload::Join(h));
        }
        if self.dynamic.is_some() {
            // First poll at time 0; each poll schedules the next.
            queue.push(Time::ZERO, Payload::ChurnPoll);
        }
        let overlay = self.overlay.map(|driver| {
            // The overlay owns a mutable copy of the base CSR; batch
            // cells that share a borrowed graph still get independent
            // edge evolution.
            queue.push(Time::ZERO, Payload::OverlayPoll);
            OverlayState {
                view: OverlayView::new(Graph::clone(&self.graph)),
                driver,
                buf: Vec::new(),
                edges_added: 0,
                edges_removed: 0,
            }
        });
        let logic: Vec<Option<L>> = (0..n as u32).map(|i| Some(factory(HostId(i)))).collect();
        // Summaries are read only through poll-time EngineViews. Seeding
        // every slot once here (pre-`on_start`, same state the old
        // refresh-everyone poll loop would observe for never-activated
        // hosts) lets each poll refresh *alive* hosts only: a dead
        // host's logic never activates, so its seeded (or fail-time
        // captured) summary stays exact.
        let track_summaries = self.dynamic.is_some() || overlay.is_some();
        let mut summaries = arena::take_summaries(n);
        if track_summaries {
            for (slot, l) in summaries.iter_mut().zip(&logic) {
                *slot = l.as_ref().expect("logic present").summary();
            }
        }
        let mut initially_alive = arena::take_bools(n);
        initially_alive.copy_from_slice(&alive);
        let tele = self.tele.map(|sink| {
            sink.on_run_start(n, arena::pooled_buffers());
            Telemetry {
                next_summary: sink.summary_every().map(|_| 0),
                sink,
                alive: alive_set.count() as u32,
                touched: arena::take_u32s(n),
                counts: TickCounts::default(),
                flushed_through: 0,
            }
        });
        Simulation {
            tele,
            trace: Trace::new(initially_alive),
            graph: self.graph,
            hosts: Hosts {
                logic,
                alive,
                alive_set,
                last_depth: arena::take_u32s(n),
            },
            queue,
            metrics: Metrics::from_arena(n),
            medium: self.medium,
            delay: self.delay,
            dynamic: self.dynamic,
            overlay,
            partition: self.partition,
            rng: SmallRng::seed_from_u64(self.seed),
            seed: self.seed,
            shard: None,
            shard_batches: 0,
            track_summaries,
            summaries,
            churn_buf: arena::take_churn(),
            now: Time::ZERO,
            started: false,
        }
    }
}

/// Per-host engine state in struct-of-arrays layout: the three arrays
/// every dispatch touches (`logic`, `alive`, `last_depth`), flattened
/// behind one accessor so the hot path indexes parallel dense arrays
/// rather than chasing per-host structs.
struct Hosts<L> {
    logic: Vec<Option<L>>,
    alive: Vec<bool>,
    /// Bitset mirror of `alive` with an O(1) count and O(active)
    /// ascending iteration — the index behind every per-poll loop that
    /// must not scan the full host range (see `crate::alive`). The flat
    /// `Vec<bool>` stays for O(1) reads and the `EngineView` slice.
    alive_set: AliveSet,
    /// Deepest causal chain seen by each host; timers continue the
    /// chain from here.
    last_depth: Vec<u32>,
}

impl<L> Hosts<L> {
    #[inline]
    fn len(&self) -> usize {
        self.logic.len()
    }

    #[inline]
    fn is_alive(&self, h: HostId) -> bool {
        self.alive[h.index()]
    }

    #[inline]
    fn set_alive(&mut self, h: HostId, alive: bool) {
        self.alive[h.index()] = alive;
        self.alive_set.set(h.index(), alive);
    }

    #[inline]
    fn logic(&self, h: HostId) -> &L {
        self.logic[h.index()].as_ref().expect("logic present")
    }

    #[inline]
    fn take_logic(&mut self, h: HostId) -> L {
        self.logic[h.index()].take().expect("logic present")
    }

    #[inline]
    fn put_logic(&mut self, h: HostId, logic: L) {
        self.logic[h.index()] = Some(logic);
    }

    #[inline]
    fn last_depth(&self, h: HostId) -> u32 {
        self.last_depth[h.index()]
    }

    #[inline]
    fn raise_depth(&mut self, h: HostId, depth: u32) {
        let slot = &mut self.last_depth[h.index()];
        *slot = (*slot).max(depth);
    }

    fn num_alive(&self) -> usize {
        self.alive_set.count()
    }
}

/// Per-tick counters aggregated for the telemetry sink. Reset when the
/// tick's sample is flushed.
#[derive(Default)]
struct TickCounts {
    dispatched: u64,
    delivered: u64,
    dropped: u64,
    fails: u64,
    joins: u64,
    timers: u64,
    frontier: u32,
    overlay_added: u64,
    overlay_removed: u64,
    overlay_suspicions: u64,
}

/// Engine-side state of a maintained overlay: the mutable view layered
/// over the base CSR, the installed driver, and reused poll scratch.
struct OverlayState {
    view: OverlayView,
    driver: Box<dyn OverlayDriver>,
    /// Reused per-poll scratch: the driver's mutation wave.
    buf: Vec<OverlayEvent>,
    /// Engine-applied undirected edge additions (idempotent no-ops
    /// excluded).
    edges_added: u64,
    /// Engine-applied undirected edge removals.
    edges_removed: u64,
}

/// Telemetry state carried by a simulation with a sink attached. Lives
/// entirely outside the disabled path: a sink-less run never allocates
/// or touches any of this.
struct Telemetry<'s> {
    sink: &'s mut (dyn TelemetrySink + 'static),
    /// Incrementally maintained alive count (avoids an `O(hosts)` scan
    /// per flushed tick).
    alive: u32,
    /// Per-host stamp (`tick + 1`) marking wave-frontier membership.
    /// `u32` halves the buffer (4 MiB saved at n = 10⁶); runs are
    /// bounded well under 2³² ticks (debug-asserted at the stamp site).
    touched: Vec<u32>,
    counts: TickCounts,
    /// Next tick at or after which to take a protocol-state sample.
    next_summary: Option<u64>,
    /// Ticks `< flushed_through` have already emitted their sample —
    /// guards against re-sampling a tick when `run_until` is called
    /// again with a later horizon.
    flushed_through: u64,
}

/// A running simulation: the network graph (owned or borrowed from the
/// batch driver), per-host logic, the event queue and the collected
/// metrics/trace.
pub struct Simulation<'g, L: NodeLogic> {
    graph: Cow<'g, Graph>,
    hosts: Hosts<L>,
    queue: EventQueue<L::Msg>,
    metrics: Metrics,
    trace: Trace,
    medium: Medium,
    delay: DelayModel,
    dynamic: Option<Box<dyn ChurnSource>>,
    overlay: Option<OverlayState>,
    partition: Option<PartitionPlan>,
    rng: SmallRng,
    /// Builder seed, retained to derive per-event RNG streams under
    /// sharded delivery.
    seed: u64,
    /// Sharded-delivery configuration; `None` = sequential dispatch
    /// (see [`Simulation::enable_sharded_delivery`]).
    shard: Option<ShardCfg<L>>,
    /// Delivery batches drained so far — the per-event RNG's batch
    /// ordinal, advanced identically for every thread count.
    shard_batches: u64,
    tele: Option<Telemetry<'g>>,
    /// Whether `summaries` is live (a churn source or overlay driver is
    /// installed). Gates the fail-time summary captures; stored as a
    /// flag because `dynamic` is `take()`n to `None` mid-poll.
    track_summaries: bool,
    /// Reused per-poll scratch: one summary slot per host. Seeded once
    /// at build, refreshed for *alive* hosts at each poll, captured at
    /// fail sites — dead hosts' logic never changes, so the invariant
    /// "slot == current summary" holds without full-range scans.
    summaries: Vec<StateSummary>,
    /// Reused per-poll scratch: the churn source's event wave.
    churn_buf: Vec<ChurnEvent>,
    now: Time,
    started: bool,
}

impl<'g, L: NodeLogic> Drop for Simulation<'g, L> {
    fn drop(&mut self) {
        // Hand the host-indexed buffers back to the thread-local arena
        // for the next cell of the batch.
        arena::put_bools(std::mem::take(&mut self.hosts.alive));
        self.hosts.alive_set.release();
        arena::put_u32s(std::mem::take(&mut self.hosts.last_depth));
        arena::put_bools(std::mem::take(&mut self.trace.initially_alive));
        arena::put_u32s(std::mem::take(&mut self.metrics.processed_per_host));
        arena::put_u64s(std::mem::take(&mut self.metrics.sent_per_tick));
        arena::put_summaries(std::mem::take(&mut self.summaries));
        arena::put_churn(std::mem::take(&mut self.churn_buf));
        if let Some(t) = self.tele.as_mut() {
            arena::put_u32s(std::mem::take(&mut t.touched));
        }
    }
}

impl<'g, L: NodeLogic> Simulation<'g, L> {
    /// Fire `on_start` for every initially-alive host (ascending id
    /// order). Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.hosts.len() {
            if self.hosts.alive[i] {
                self.activate(HostId(i as u32), Activation::Start);
            }
        }
    }

    /// Turn on sharded message delivery: each tick's delivery run is
    /// collected as one closed batch (sends always land ≥ 1 tick ahead,
    /// so no handler can extend the current instant's deliveries),
    /// partitioned across `threads` scoped worker threads by contiguous
    /// destination-host range, and the handlers' buffered pushes merged
    /// back into the queue in global origin order.
    ///
    /// **Determinism contract:** every observable of the run — metrics,
    /// trace, telemetry, per-host protocol state — is byte-identical
    /// for *any* `threads` value (including 1), because per-destination
    /// processing order, queue push order and per-event RNG streams are
    /// all derived from batch origin indices, never from thread
    /// scheduling. Output is *not* required to match the sequential
    /// (non-sharded) engine for protocols that draw from [`Ctx::rng`]:
    /// sharding gives each delivery its own seeded stream instead of
    /// one stream threaded through all events. RNG-free protocols (and
    /// the default fixed delay model, which never samples) match the
    /// sequential engine exactly.
    pub fn enable_sharded_delivery(&mut self, threads: usize)
    where
        L: Send,
        L::Msg: Send,
    {
        self.shard = Some(ShardCfg {
            threads: threads.max(1),
            drain: drain_deliver_batch::<L>,
        });
    }

    /// Run until the event queue is exhausted or virtual time would
    /// exceed `horizon`. Events exactly at `horizon` are processed.
    pub fn run_until(&mut self, horizon: Time) {
        self.start();
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            if self.tele.is_some() && t != self.now {
                self.tele_flush_tick();
            }
            let (at, payload) = self.queue.pop().expect("peeked event exists");
            self.now = at;
            self.dispatch(payload);
        }
        if self.tele.is_some() {
            self.tele_flush_tick();
        }
        // Advance the clock to the horizon so callers polling `now()` see
        // time progress even across event-free stretches.
        self.now = self.now.max(horizon);
    }

    /// Run until no events remain. Panics if more than `max_events`
    /// events fire — a guard against protocol livelock.
    pub fn run_to_quiescence(&mut self, max_events: u64) {
        self.start();
        let mut n = 0u64;
        while let Some(t) = self.queue.peek_time() {
            if self.tele.is_some() && t != self.now {
                self.tele_flush_tick();
            }
            let (at, payload) = self.queue.pop().expect("peeked event exists");
            self.now = at;
            self.dispatch(payload);
            n += 1;
            assert!(
                n <= max_events,
                "protocol did not quiesce after {max_events} events"
            );
        }
        if self.tele.is_some() {
            self.tele_flush_tick();
        }
    }

    /// Close out the current tick for the telemetry sink: emit a
    /// [`TickSample`] if anything happened, and take a periodic
    /// protocol-state sample when the sink asked for one. Called only
    /// when a sink is attached.
    fn tele_flush_tick(&mut self) {
        let tick = self.now.ticks();
        let sent = self
            .metrics
            .sent_per_tick
            .get(tick as usize)
            .copied()
            .unwrap_or(0);
        let queue_depth = self.queue.len() as u64;
        let Some(t) = self.tele.as_mut() else { return };
        if (t.counts.dispatched != 0 || sent != 0) && t.flushed_through <= tick {
            t.flushed_through = tick + 1;
            let sample = TickSample {
                tick,
                alive: t.alive,
                queue_depth,
                dispatched: t.counts.dispatched,
                delivered: t.counts.delivered,
                dropped: t.counts.dropped,
                sent,
                fails: t.counts.fails,
                joins: t.counts.joins,
                timers: t.counts.timers,
                frontier: t.counts.frontier,
                overlay_added: t.counts.overlay_added,
                overlay_removed: t.counts.overlay_removed,
                overlay_suspicions: t.counts.overlay_suspicions,
            };
            t.sink.on_tick(&sample);
            t.counts = TickCounts::default();
        }
        if t.next_summary.is_some_and(|next| tick >= next) {
            let every = t.sink.summary_every().unwrap_or(1).max(1);
            t.next_summary = Some(tick + every);
            // Mass still present in the network: alive hosts only
            // (failed hosts retain a summary, but their partials are
            // gone with them). The alive-set iterates in ascending host
            // order, keeping the f64 sum deterministic, and touches
            // O(active) hosts rather than the full range.
            let mut active = 0u32;
            let mut mass = 0.0f64;
            let mut visited = 0usize;
            for i in self.hosts.alive_set.iter() {
                visited += 1;
                let s = self.hosts.logic[i]
                    .as_ref()
                    .expect("logic present")
                    .summary();
                if s.active {
                    active += 1;
                }
                if let Some(w) = s.sketch_weight {
                    mass += w;
                }
            }
            debug_assert!(
                visited <= 2 * self.hosts.alive_set.count().max(1),
                "summary sample scanned {visited} hosts for {} active",
                self.hosts.alive_set.count()
            );
            t.sink.on_summary(Time(tick), active, mass);
        }
    }

    fn dispatch(&mut self, payload: Payload<L::Msg>) {
        self.metrics.record_dispatch();
        if let Some(t) = self.tele.as_mut() {
            t.counts.dispatched += 1;
        }
        match payload {
            Payload::Fail(h) => {
                if self.hosts.is_alive(h) {
                    self.hosts.set_alive(h, false);
                    self.trace.record(TraceEvent::Fail(self.now, h));
                    if let Some(t) = self.tele.as_mut() {
                        t.counts.fails += 1;
                        t.alive -= 1;
                    }
                    if self.track_summaries {
                        // Capture the host's final summary: its slot is
                        // no longer refreshed by the alive-only poll
                        // loops, and dead logic never changes.
                        self.summaries[h.index()] = self.hosts.logic(h).summary();
                    }
                }
            }
            Payload::Join(h) => {
                if !self.hosts.is_alive(h) {
                    self.hosts.set_alive(h, true);
                    self.trace.record(TraceEvent::Join(self.now, h));
                    if let Some(t) = self.tele.as_mut() {
                        t.counts.joins += 1;
                        t.alive += 1;
                    }
                    self.activate(h, Activation::Start);
                }
            }
            Payload::Deliver {
                to,
                from,
                msg,
                depth,
            } => {
                if self.shard.is_some() {
                    // Sharded path: collect the whole (closed) delivery
                    // run of this instant and fan it out across worker
                    // threads; `drain` is the bound-carrying fn pointer
                    // installed by `enable_sharded_delivery`.
                    let drain = self.shard.as_ref().expect("checked").drain;
                    drain(
                        self,
                        DeliverEvent {
                            to,
                            from,
                            msg,
                            depth,
                        },
                    );
                    return;
                }
                // Delivery only to hosts alive *now*; messages to failed
                // hosts vanish (the sender has already paid for them).
                // Likewise messages crossing an active partition cut.
                let severed = self
                    .partition
                    .as_ref()
                    .is_some_and(|p| p.blocks(self.now, from, to));
                let live = self.hosts.is_alive(to) && !severed;
                if let Some(t) = self.tele.as_mut() {
                    if live {
                        t.counts.delivered += 1;
                        // Frontier = distinct hosts reached this tick;
                        // the stamp dedups repeat deliveries.
                        debug_assert!(self.now.ticks() < u64::from(u32::MAX));
                        let stamp = (self.now.ticks() + 1) as u32;
                        let slot = &mut t.touched[to.index()];
                        if *slot != stamp {
                            *slot = stamp;
                            t.counts.frontier += 1;
                        }
                    } else {
                        t.counts.dropped += 1;
                    }
                }
                if live {
                    self.metrics.record_processed(to, depth);
                    self.hosts.raise_depth(to, depth);
                    self.activate(to, Activation::Message { from, msg, depth });
                }
            }
            Payload::Timer { host, key } => {
                if self.hosts.is_alive(host) {
                    self.metrics.record_timer();
                    if let Some(t) = self.tele.as_mut() {
                        t.counts.timers += 1;
                    }
                    self.activate(host, Activation::Timer { key });
                }
            }
            Payload::ChurnPoll => self.poll_churn_source(),
            Payload::OverlayPoll => self.poll_overlay_driver(),
        }
    }

    /// Bring the summary scratch up to date for the next
    /// [`EngineView`]: refresh *alive* hosts only. Dead hosts keep the
    /// summary captured when they failed (or the build-time seed if
    /// they never lived) — their logic cannot have changed since. The
    /// debug assertion is the scan-audit bar: per-poll work must track
    /// the active population, not the host range.
    fn refresh_alive_summaries(&mut self) {
        let mut visited = 0usize;
        for i in self.hosts.alive_set.iter() {
            visited += 1;
            self.summaries[i] = self.hosts.logic[i]
                .as_ref()
                .expect("logic present")
                .summary();
        }
        debug_assert!(
            visited <= 2 * self.hosts.alive_set.count().max(1),
            "summary refresh scanned {visited} hosts for {} alive",
            self.hosts.alive_set.count()
        );
        #[cfg(debug_assertions)]
        self.hosts.alive_set.verify();
    }

    /// Poll the dynamic churn source: summarize the *alive* hosts'
    /// protocol state, hand the source an [`EngineView`], apply the events it
    /// writes into the (pooled, reused) wave buffer — source failures
    /// and joins have the same semantics as statically scheduled ones,
    /// including trace recording — and schedule the next poll it asks
    /// for.
    fn poll_churn_source(&mut self) {
        let Some(mut source) = self.dynamic.take() else {
            return;
        };
        self.refresh_alive_summaries();
        let mut wave = std::mem::take(&mut self.churn_buf);
        wave.clear();
        let view = EngineView {
            now: self.now,
            graph: &self.graph,
            overlay: self.overlay.as_ref().map(|st| &st.view),
            alive: &self.hosts.alive,
            alive_count: self.hosts.alive_set.count() as u32,
            summaries: &self.summaries,
        };
        source.next_events(self.now, &view, &mut wave);
        for &ev in &wave {
            match ev {
                ChurnEvent::Fail(h) => {
                    if self.hosts.is_alive(h) {
                        self.hosts.set_alive(h, false);
                        self.trace.record(TraceEvent::Fail(self.now, h));
                        if let Some(t) = self.tele.as_mut() {
                            t.counts.fails += 1;
                            t.alive -= 1;
                        }
                        // Final-summary capture, as in the static Fail
                        // path (`track_summaries` is always true here —
                        // a source is installed).
                        self.summaries[h.index()] = self.hosts.logic(h).summary();
                    }
                }
                ChurnEvent::Join(h) => {
                    if !self.hosts.is_alive(h) {
                        self.hosts.set_alive(h, true);
                        self.trace.record(TraceEvent::Join(self.now, h));
                        if let Some(t) = self.tele.as_mut() {
                            t.counts.joins += 1;
                            t.alive += 1;
                        }
                        self.activate(h, Activation::Start);
                    }
                }
            }
        }
        self.churn_buf = wave;
        if let Some(at) = source.next_poll(self.now) {
            assert!(at > self.now, "churn source must poll strictly forward");
            self.queue.push(at, Payload::ChurnPoll);
        }
        self.dynamic = Some(source);
    }

    /// Poll the overlay-maintenance driver: summarize the *alive*
    /// hosts' protocol state, hand the driver an [`EngineView`] with the
    /// overlay's current merged adjacency, apply the edge mutations it
    /// writes into the (reused) wave buffer, fold the delta back into a
    /// fresh CSR when it has grown past the compaction threshold, and
    /// schedule the next poll it asks for.
    fn poll_overlay_driver(&mut self) {
        self.refresh_alive_summaries();
        let Some(st) = self.overlay.as_mut() else {
            return;
        };
        let alive_count = self.hosts.alive_set.count() as u32;
        let OverlayState {
            view,
            driver,
            buf,
            edges_added,
            edges_removed,
        } = st;
        buf.clear();
        let suspicions_before = driver.stats().suspicions;
        let engine_view = EngineView {
            now: self.now,
            graph: &self.graph,
            overlay: Some(&*view),
            alive: &self.hosts.alive,
            alive_count,
            summaries: &self.summaries,
        };
        driver.next_events(self.now, &engine_view, buf);
        let mut added = 0u64;
        let mut removed = 0u64;
        for &ev in buf.iter() {
            match ev {
                OverlayEvent::AddEdge(a, b) => {
                    if view.add_edge(a, b) {
                        added += 1;
                    }
                }
                OverlayEvent::RemoveEdge(a, b) => {
                    if view.remove_edge(a, b) {
                        removed += 1;
                    }
                }
            }
        }
        if view.delta_len() >= compact_threshold(view.num_hosts()) {
            view.compact();
        }
        *edges_added += added;
        *edges_removed += removed;
        let suspicions_now = driver.stats().suspicions;
        if let Some(at) = driver.next_poll(self.now) {
            assert!(at > self.now, "overlay driver must poll strictly forward");
            self.queue.push(at, Payload::OverlayPoll);
        }
        if let Some(t) = self.tele.as_mut() {
            t.counts.overlay_added += added;
            t.counts.overlay_removed += removed;
            t.counts.overlay_suspicions += suspicions_now - suspicions_before;
        }
    }

    fn activate(&mut self, h: HostId, activation: Activation<L::Msg>) {
        let mut logic = self.hosts.take_logic(h);
        let chain_depth = match &activation {
            Activation::Message { depth, .. } => *depth,
            _ => self.hosts.last_depth(h),
        };
        let mut ctx = Ctx {
            now: self.now,
            me: h,
            topo: match &self.overlay {
                Some(st) => TopoRef::Overlay(&st.view),
                None => TopoRef::Static(&self.graph),
            },
            queue: EventSink::Direct(&mut self.queue),
            metrics: CostSink::Direct(&mut self.metrics),
            medium: self.medium,
            delay: self.delay,
            rng: &mut self.rng,
            chain_depth,
            in_timer: matches!(activation, Activation::Timer { .. }),
        };
        match activation {
            Activation::Start => logic.on_start(&mut ctx),
            Activation::Message { from, msg, .. } => logic.on_message(&mut ctx, from, msg),
            Activation::Timer { key } => logic.on_timer(&mut ctx, key),
        }
        self.hosts.put_logic(h, logic);
    }

    /// Immutable view of a host's logic (alive or failed — failed hosts
    /// retain their last state for post-mortem inspection).
    pub fn logic(&self, h: HostId) -> &L {
        self.hosts.logic(h)
    }

    /// Whether `h` is currently alive. This is the omniscient view used
    /// by oracles and by out-of-band probing (the §5.4 capture–recapture
    /// estimator models probes as ping/ack pairs; account for their cost
    /// with [`Simulation::charge_messages`]).
    pub fn is_alive(&self, h: HostId) -> bool {
        self.hosts.is_alive(h)
    }

    /// Number of currently alive hosts.
    pub fn num_alive(&self) -> usize {
        self.hosts.num_alive()
    }

    /// Account for `n` out-of-band messages (e.g. probe traffic of
    /// estimators implemented outside the event loop).
    pub fn charge_messages(&mut self, n: u64) {
        for _ in 0..n {
            self.metrics.record_send(self.now);
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The *base* topology the simulation was built over. With an
    /// overlay driver installed the edges protocols actually route over
    /// are [`Simulation::overlay_view`]'s, not these.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The maintained overlay's current merged view, when an
    /// [`OverlayDriver`] is installed.
    pub fn overlay_view(&self) -> Option<&OverlayView> {
        self.overlay.as_ref().map(|st| &st.view)
    }

    /// Overlay maintenance counters: the driver's protocol-level stats
    /// with the engine-applied edge mutation counts merged in. `None`
    /// when no driver is installed.
    pub fn overlay_stats(&self) -> Option<OverlayStats> {
        self.overlay.as_ref().map(|st| {
            let mut s = st.driver.stats();
            s.edges_added = st.edges_added;
            s.edges_removed = st.edges_removed;
            s
        })
    }

    /// Collected efficiency metrics (§6.3).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Ground-truth membership trace for the oracle.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// True when no events remain.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }
}

enum Activation<M> {
    Start,
    Message { from: HostId, msg: M, depth: u32 },
    Timer { key: u64 },
}

// ------------------------------------------------- sharded delivery

/// Sharded-delivery configuration installed by
/// [`Simulation::enable_sharded_delivery`]. The drain routine needs
/// `L: Send, L::Msg: Send` bounds that `Simulation` itself does not
/// carry; the enable method — the only place those bounds are checked —
/// coerces the generic fn to this pointer, keeping the dispatch hot
/// path bound-free.
struct ShardCfg<L: NodeLogic> {
    /// Worker threads the delivery batch is partitioned across.
    threads: usize,
    /// `drain_deliver_batch::<L>`, coerced to a pointer.
    drain: for<'s, 'g> fn(&'s mut Simulation<'g, L>, DeliverEvent<L::Msg>),
}

/// One delivery popped from the queue, awaiting shard processing.
struct DeliverEvent<M> {
    to: HostId,
    from: HostId,
    msg: M,
    depth: u32,
}

/// Per-shard accumulator, merged deterministically after the batch.
struct ShardOut<M> {
    /// Handler pushes tagged with the triggering event's origin index,
    /// in processing (= ascending-origin) order.
    pushes: Vec<(u32, Time, Payload<M>)>,
    /// Sends recorded by handlers (all at the batch instant).
    sends: u64,
    delivered: u64,
    dropped: u64,
    /// Distinct hosts newly stamped into this tick's wave frontier.
    frontier: u32,
    /// Deepest causal chain observed (max-merged into metrics).
    longest_chain: u32,
}

/// State shared read-only by every shard worker.
#[derive(Clone, Copy)]
struct ShardShared<'a> {
    topo: TopoRef<'a>,
    alive: &'a [bool],
    partition: Option<&'a PartitionPlan>,
    medium: Medium,
    delay: DelayModel,
    now: Time,
    seed: u64,
    batch_no: u64,
    tele_on: bool,
}

/// One worker's slice of the mutable per-host state: the contiguous
/// destination range `[base, base + len)` of each host-indexed array,
/// plus the batch items addressed to it.
struct ShardTask<'a, L: NodeLogic> {
    items: Vec<(u32, DeliverEvent<L::Msg>)>,
    logic: &'a mut [Option<L>],
    last_depth: &'a mut [u32],
    processed: &'a mut [u32],
    touched: Option<&'a mut [u32]>,
    base: usize,
}

/// Deterministic per-event RNG seed: mixes the run seed, the batch
/// ordinal and the event's origin index (splitmix64-style finalizer),
/// so each handler draws from its own stream regardless of which
/// worker thread runs it.
fn event_seed(seed: u64, batch: u64, origin: u32) -> u64 {
    let mut x = seed
        ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(origin).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Collect the closed delivery run of the current instant (`first` has
/// already been popped and dispatch-counted), fan it out across worker
/// threads by destination range, and merge the results back in a
/// thread-count-invariant order. See
/// [`Simulation::enable_sharded_delivery`] for the determinism
/// contract.
fn drain_deliver_batch<L>(sim: &mut Simulation<'_, L>, first: DeliverEvent<L::Msg>)
where
    L: NodeLogic + Send,
    L::Msg: Send,
{
    let now = sim.now;
    let mut batch = vec![first];
    while let Some(p) = sim.queue.pop_deliver_at(now) {
        match p {
            Payload::Deliver {
                to,
                from,
                msg,
                depth,
            } => batch.push(DeliverEvent {
                to,
                from,
                msg,
                depth,
            }),
            _ => unreachable!("pop_deliver_at returns deliveries only"),
        }
    }
    // The first event's dispatch was counted by `dispatch` already;
    // account for the rest of the batch.
    let extra = (batch.len() - 1) as u64;
    sim.metrics.events_dispatched += extra;
    if let Some(t) = sim.tele.as_mut() {
        t.counts.dispatched += extra;
    }
    let batch_no = sim.shard_batches;
    sim.shard_batches += 1;

    // Partition by contiguous destination range: shard s owns hosts
    // [s * chunk, (s + 1) * chunk). Within a shard, items stay in
    // ascending origin order, preserving per-destination FIFO.
    let n = sim.hosts.len();
    let threads = sim.shard.as_ref().expect("sharding enabled").threads;
    let chunk = n.div_ceil(threads).max(1);
    let num_shards = n.div_ceil(chunk).max(1);
    let mut items: Vec<Vec<(u32, DeliverEvent<L::Msg>)>> =
        (0..num_shards).map(|_| Vec::new()).collect();
    debug_assert!(batch.len() < u32::MAX as usize);
    for (o, ev) in batch.into_iter().enumerate() {
        items[ev.to.index() / chunk].push((o as u32, ev));
    }

    let shared = ShardShared {
        topo: match &sim.overlay {
            Some(st) => TopoRef::Overlay(&st.view),
            None => TopoRef::Static(&sim.graph),
        },
        alive: &sim.hosts.alive,
        partition: sim.partition.as_ref(),
        medium: sim.medium,
        delay: sim.delay,
        now,
        seed: sim.seed,
        batch_no,
        tele_on: sim.tele.is_some(),
    };
    let mut logic_it = sim.hosts.logic.chunks_mut(chunk);
    let mut depth_it = sim.hosts.last_depth.chunks_mut(chunk);
    let mut proc_it = sim.metrics.processed_per_host.chunks_mut(chunk);
    let mut touched_it = sim.tele.as_mut().map(|t| t.touched.chunks_mut(chunk));

    let mut outs: Vec<ShardOut<L::Msg>> = Vec::with_capacity(num_shards);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_shards);
        for (s, shard_items) in items.into_iter().enumerate() {
            let logic = logic_it.next().expect("one chunk per shard");
            let last_depth = depth_it.next().expect("one chunk per shard");
            let processed = proc_it.next().expect("one chunk per shard");
            let touched = touched_it
                .as_mut()
                .map(|it| it.next().expect("one chunk per shard"));
            if shard_items.is_empty() {
                continue;
            }
            let task = ShardTask {
                items: shard_items,
                logic,
                last_depth,
                processed,
                touched,
                base: s * chunk,
            };
            handles.push(scope.spawn(move || run_shard(shared, task)));
        }
        for h in handles {
            outs.push(h.join().expect("delivery shard worker panicked"));
        }
    });

    // Commutative merges first: counters and maxima.
    let mut sends = 0u64;
    for out in &outs {
        sends += out.sends;
        sim.metrics.longest_chain = sim.metrics.longest_chain.max(out.longest_chain);
    }
    sim.metrics.messages_sent += sends;
    if sends > 0 {
        let idx = now.ticks() as usize;
        if sim.metrics.sent_per_tick.len() <= idx {
            sim.metrics.sent_per_tick.resize(idx + 1, 0);
        }
        sim.metrics.sent_per_tick[idx] += sends;
    }
    if let Some(t) = sim.tele.as_mut() {
        for out in &outs {
            t.counts.delivered += out.delivered;
            t.counts.dropped += out.dropped;
            t.counts.frontier += out.frontier;
        }
    }
    // Order-sensitive merge: replay every buffered push in ascending
    // global origin order — exactly the sequence sequential processing
    // would have pushed — so queue insertion (seq) order, and with it
    // every downstream tie-break, is thread-count-invariant. Each
    // origin's pushes live contiguously in one shard's buffer.
    let mut iters: Vec<_> = outs
        .into_iter()
        .map(|o| o.pushes.into_iter().peekable())
        .collect();
    loop {
        let mut best: Option<(u32, usize)> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some(&(o, _, _)) = it.peek() {
                if best.is_none_or(|(bo, _)| o < bo) {
                    best = Some((o, i));
                }
            }
        }
        let Some((origin, i)) = best else { break };
        while iters[i].peek().is_some_and(|&(o, _, _)| o == origin) {
            let (_, at, payload) = iters[i].next().expect("peeked");
            sim.queue.push(at, payload);
        }
    }
}

/// Process one shard's slice of a delivery batch. Mirrors the
/// sequential `Deliver` arm of `dispatch` exactly, with writes confined
/// to the shard's destination range and pushes/sends buffered for the
/// deterministic post-batch merge.
fn run_shard<L>(shared: ShardShared<'_>, task: ShardTask<'_, L>) -> ShardOut<L::Msg>
where
    L: NodeLogic + Send,
    L::Msg: Send,
{
    let ShardTask {
        items,
        logic,
        last_depth,
        processed,
        mut touched,
        base,
    } = task;
    let mut out = ShardOut {
        pushes: Vec::new(),
        sends: 0,
        delivered: 0,
        dropped: 0,
        frontier: 0,
        longest_chain: 0,
    };
    debug_assert!(shared.now.ticks() < u64::from(u32::MAX));
    let stamp = (shared.now.ticks() + 1) as u32;
    for (origin, ev) in items {
        let DeliverEvent {
            to,
            from,
            msg,
            depth,
        } = ev;
        let li = to.index() - base;
        let severed = shared
            .partition
            .is_some_and(|p| p.blocks(shared.now, from, to));
        let live = shared.alive[to.index()] && !severed;
        if shared.tele_on {
            if live {
                out.delivered += 1;
                let slot = &mut touched.as_mut().expect("tele on => touched chunk")[li];
                if *slot != stamp {
                    *slot = stamp;
                    out.frontier += 1;
                }
            } else {
                out.dropped += 1;
            }
        }
        if !live {
            continue;
        }
        debug_assert!(
            processed[li] < u32::MAX,
            "per-host processed count overflow"
        );
        processed[li] += 1;
        out.longest_chain = out.longest_chain.max(depth);
        last_depth[li] = last_depth[li].max(depth);
        let mut logic_inst = logic[li].take().expect("logic present");
        let mut rng = SmallRng::seed_from_u64(event_seed(shared.seed, shared.batch_no, origin));
        let mut ctx = Ctx {
            now: shared.now,
            me: to,
            topo: shared.topo,
            queue: EventSink::Shard {
                buf: &mut out.pushes,
                origin,
            },
            metrics: CostSink::Shard {
                sends: &mut out.sends,
            },
            medium: shared.medium,
            delay: shared.delay,
            rng: &mut rng,
            chain_depth: depth,
            in_timer: false,
        };
        logic_inst.on_message(&mut ctx, from, msg);
        logic[li] = Some(logic_inst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_topology::generators::special;

    /// Flood-and-count test logic: the origin broadcasts a token; every
    /// host forwards it once; each host records when it first saw it.
    #[derive(Debug)]
    struct Flood {
        origin: bool,
        seen_at: Option<Time>,
    }

    impl NodeLogic for Flood {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if self.origin {
                self.seen_at = Some(ctx.now());
                ctx.broadcast(());
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, from: HostId, _msg: ()) {
            if self.seen_at.is_none() {
                self.seen_at = Some(ctx.now());
                ctx.broadcast_except(Some(from), ());
            }
        }
    }

    fn flood_sim(graph: Graph, medium: Medium) -> Simulation<'static, Flood> {
        SimBuilder::new(graph).medium(medium).build(|h| Flood {
            origin: h == HostId(0),
            seen_at: None,
        })
    }

    #[test]
    fn flood_reaches_chain_in_hop_time() {
        let mut sim = flood_sim(special::chain(6), Medium::PointToPoint);
        sim.run_to_quiescence(1_000);
        for i in 0..6u32 {
            assert_eq!(
                sim.logic(HostId(i)).seen_at,
                Some(Time(i as u64)),
                "host {i}"
            );
        }
    }

    #[test]
    fn flood_message_cost_point_to_point() {
        // Chain of 4: h0 sends 1; h1 forwards to h2 (skip h0); h2 to h3;
        // h3 forwards to nobody (only neighbor is sender). Total 3.
        let mut sim = flood_sim(special::chain(4), Medium::PointToPoint);
        sim.run_to_quiescence(1_000);
        assert_eq!(sim.metrics().messages_sent, 3);
    }

    #[test]
    fn flood_message_cost_radio() {
        // Radio: each of the 4 hosts transmits at most once; h3 has only
        // the sender as neighbor but radio cannot exclude it, so it still
        // transmits. Total 4.
        let mut sim = flood_sim(special::chain(4), Medium::Radio);
        sim.run_to_quiescence(1_000);
        assert_eq!(sim.metrics().messages_sent, 4);
    }

    #[test]
    fn radio_duplicate_receipts_are_processed() {
        // In a triangle under radio, every transmission reaches both other
        // hosts; hosts process duplicates even though they forward once.
        let mut sim = flood_sim(special::cycle(3), Medium::Radio);
        sim.run_to_quiescence(1_000);
        assert_eq!(sim.metrics().messages_sent, 3);
        // Each host receives from both others: 2 processed each.
        assert_eq!(sim.metrics().total_processed(), 6);
    }

    #[test]
    fn failed_host_blocks_flood() {
        let churn = ChurnPlan::none().with_failure(Time(1), HostId(2));
        let mut sim = SimBuilder::new(special::chain(5))
            .churn(churn)
            .build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
        sim.run_to_quiescence(1_000);
        // h2 fails at t=1, before the flood (sent at t=1 by h1) arrives at
        // t=2; h3, h4 never hear it.
        assert_eq!(sim.logic(HostId(1)).seen_at, Some(Time(1)));
        assert_eq!(sim.logic(HostId(2)).seen_at, None);
        assert_eq!(sim.logic(HostId(3)).seen_at, None);
        assert!(sim.trace().events.len() == 1);
    }

    #[test]
    fn join_activates_logic() {
        #[derive(Debug)]
        struct Joiner {
            started_at: Option<Time>,
        }
        impl NodeLogic for Joiner {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                self.started_at = Some(ctx.now());
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
        }
        let churn = ChurnPlan::none().with_join(Time(5), HostId(1));
        let mut sim = SimBuilder::new(special::chain(2))
            .churn(churn)
            .build(|_| Joiner { started_at: None });
        sim.run_to_quiescence(100);
        assert_eq!(sim.logic(HostId(0)).started_at, Some(Time(0)));
        assert_eq!(sim.logic(HostId(1)).started_at, Some(Time(5)));
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Debug)]
        struct Timers {
            fired: Vec<u64>,
        }
        impl NodeLogic for Timers {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(5, 5);
                ctx.set_timer(1, 1);
                ctx.set_timer(3, 3);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, key: u64) {
                self.fired.push(key);
            }
        }
        let mut sim = SimBuilder::new(special::chain(2)).build(|_| Timers { fired: vec![] });
        sim.run_to_quiescence(100);
        assert_eq!(sim.logic(HostId(0)).fired, vec![1, 3, 5]);
        assert_eq!(sim.metrics().timers_fired, 6);
    }

    #[test]
    fn dead_hosts_lose_timers_and_messages() {
        #[derive(Debug)]
        struct T {
            fired: bool,
        }
        impl NodeLogic for T {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == HostId(1) {
                    ctx.set_timer(10, 0);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: u64) {
                self.fired = true;
            }
        }
        let churn = ChurnPlan::none().with_failure(Time(5), HostId(1));
        let mut sim = SimBuilder::new(special::chain(2))
            .churn(churn)
            .build(|_| T { fired: false });
        sim.run_to_quiescence(100);
        assert!(!sim.logic(HostId(1)).fired);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = flood_sim(special::chain(10), Medium::PointToPoint);
        sim.run_until(Time(3));
        assert_eq!(sim.logic(HostId(3)).seen_at, Some(Time(3)));
        assert_eq!(sim.logic(HostId(4)).seen_at, None);
        // Continue to the end.
        sim.run_until(Time(100));
        assert_eq!(sim.logic(HostId(9)).seen_at, Some(Time(9)));
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut sim = flood_sim(
                pov_topology::generators::random_average_degree(200, 4.0, 3),
                Medium::PointToPoint,
            );
            sim.run_to_quiescence(100_000);
            (
                sim.metrics().messages_sent,
                sim.metrics().total_processed(),
                sim.metrics().longest_chain,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chain_depth_tracks_hops() {
        let mut sim = flood_sim(special::chain(7), Medium::PointToPoint);
        sim.run_to_quiescence(1_000);
        // Longest causal chain = 6 hops to the end of the chain.
        assert_eq!(sim.metrics().longest_chain, 6);
    }

    #[test]
    fn multicast_accounting_per_medium() {
        // A star centre multicasts to 3 of its 5 leaves: one message
        // under radio, three under point-to-point; only the addressed
        // leaves process it either way.
        #[derive(Debug)]
        struct M {
            got: bool,
        }
        impl NodeLogic for M {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == HostId(0) {
                    ctx.multicast(&[HostId(1), HostId(2), HostId(3)], ());
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {
                self.got = true;
            }
        }
        for (medium, cost) in [(Medium::Radio, 1u64), (Medium::PointToPoint, 3u64)] {
            let mut sim = SimBuilder::new(special::star(6))
                .medium(medium)
                .build(|_| M { got: false });
            sim.run_to_quiescence(100);
            assert_eq!(sim.metrics().messages_sent, cost, "{medium:?}");
            for h in 1..=3u32 {
                assert!(sim.logic(HostId(h)).got, "{medium:?} host {h}");
            }
            for h in 4..=5u32 {
                assert!(
                    !sim.logic(HostId(h)).got,
                    "{medium:?} host {h} (MAC filter)"
                );
            }
            assert_eq!(sim.metrics().total_processed(), 3, "{medium:?}");
        }
    }

    #[test]
    fn tick_end_timer_fires_after_same_tick_deliveries() {
        // Host 1 receives two messages at t=1 and schedules a tick-end
        // flush on the first; the flush must observe both.
        #[derive(Debug, Default)]
        struct F {
            received: u32,
            flushed_with: Option<u32>,
        }
        impl NodeLogic for F {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == HostId(0) {
                    ctx.send(HostId(1), ());
                    ctx.send(HostId(1), ());
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _: HostId, _: ()) {
                if self.received == 0 {
                    ctx.set_timer_at_tick_end(9);
                }
                self.received += 1;
            }
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, key: u64) {
                assert_eq!(key, 9);
                self.flushed_with = Some(self.received);
            }
        }
        let mut sim = SimBuilder::new(special::chain(2)).build(|_| F::default());
        sim.run_to_quiescence(100);
        assert_eq!(sim.logic(HostId(1)).flushed_with, Some(2));
    }

    #[test]
    fn partition_blocks_flood_until_heal() {
        // Chain of 6 partitioned between h2 and h3 during [0, 10): the
        // flood reaches h0..h2 immediately, and crosses only after heal.
        let cut = PartitionPlan::new(vec![1, 1, 1, 0, 0, 0]).window(Time(0), Time(10));
        let mut sim = SimBuilder::new(special::chain(6))
            .partition(cut)
            .build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
        sim.run_until(Time(9));
        assert_eq!(sim.logic(HostId(2)).seen_at, Some(Time(2)));
        assert_eq!(sim.logic(HostId(3)).seen_at, None, "cut still active");
        // Flood logic forwards once; the h2→h3 copy died in transit, so
        // after the heal nobody re-sends: the two sides stay disjoint.
        sim.run_until(Time(50));
        assert_eq!(sim.logic(HostId(3)).seen_at, None);
    }

    #[test]
    fn healed_partition_delivers_again() {
        // Cut active only during [1, 3): a message sent at t=3 (after
        // heal) crosses fine. h0 re-broadcasts every 2 ticks via timers.
        #[derive(Debug)]
        struct Pinger {
            got: Option<Time>,
        }
        impl NodeLogic for Pinger {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == HostId(0) {
                    ctx.send(HostId(1), ());
                    ctx.set_timer(2, 0);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _: HostId, _: ()) {
                if self.got.is_none() {
                    self.got = Some(ctx.now());
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: u64) {
                ctx.send(HostId(1), ());
                ctx.set_timer(2, 0);
            }
        }
        let cut = PartitionPlan::new(vec![0, 1]).window(Time(1), Time(3));
        let mut sim = SimBuilder::new(special::chain(2))
            .partition(cut)
            .build(|_| Pinger { got: None });
        sim.run_until(Time(6));
        // t=1 delivery blocked (window active), t=3 delivery (sent at
        // t=2) arrives exactly as the window closes.
        assert_eq!(sim.logic(HostId(1)).got, Some(Time(3)));
    }

    #[test]
    fn plan_through_dynamic_path_matches_static_path() {
        // The trivial static source: routing a fail/rejoin plan through
        // the dynamic poll path produces the same trace, metrics and
        // final membership as the pre-materialized fast path.
        let plan = ChurnPlan::none()
            .with_failure(Time(2), HostId(1))
            .with_failure(Time(3), HostId(4))
            .with_join(Time(5), HostId(1));
        let run = |dynamic: bool| {
            let b = SimBuilder::new(special::chain(6));
            let b = if dynamic {
                b.dynamic_churn(plan.clone())
            } else {
                b.churn(plan.clone())
            };
            let mut sim = b.build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
            sim.run_until(Time(50));
            let alive: Vec<bool> = (0..6u32).map(|h| sim.is_alive(HostId(h))).collect();
            (
                sim.trace().events.clone(),
                sim.metrics().messages_sent,
                sim.metrics().total_processed(),
                alive,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn dynamic_source_sees_node_summaries() {
        use crate::dynamic::StateSummary;

        // Logic that exposes its host id as the sketch weight; a
        // SketchAdversary must kill the highest ids first and spare h0.
        #[derive(Debug)]
        struct Weighted(HostId);
        impl NodeLogic for Weighted {
            type Msg = ();
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
            fn summary(&self) -> StateSummary {
                StateSummary {
                    active: true,
                    sketch_weight: Some(f64::from(self.0 .0)),
                }
            }
        }
        let adversary = crate::SketchAdversary::new(2, 4, Time(1), Time(9), HostId(0));
        let mut sim = SimBuilder::new(special::cycle(8))
            .dynamic_churn(adversary)
            .build(Weighted);
        sim.run_until(Time(20));
        // Budget 4, highest weights first: h7, h6, h5, h4 die; h0 lives.
        let alive: Vec<bool> = (0..8u32).map(|h| sim.is_alive(HostId(h))).collect();
        assert_eq!(
            alive,
            vec![true, true, true, true, false, false, false, false]
        );
        assert_eq!(sim.trace().events.len(), 4);
    }

    #[test]
    fn dynamic_source_kills_block_same_tick_deliveries() {
        // A host killed by a churn-source poll at t misses messages
        // delivered at t — same semantics as a static failure.
        struct KillAt(Time, HostId);
        impl crate::ChurnSource for KillAt {
            fn next_events(
                &mut self,
                now: Time,
                _: &crate::EngineView<'_>,
                out: &mut Vec<crate::ChurnEvent>,
            ) {
                if now == self.0 {
                    out.push(crate::ChurnEvent::Fail(self.1));
                }
            }
            fn next_poll(&self, now: Time) -> Option<Time> {
                (now < self.0).then_some(self.0)
            }
        }
        // Flood along a chain: h2 dies exactly when the flood (sent at
        // t=1 by h1) would arrive at t=2.
        let mut sim = SimBuilder::new(special::chain(5))
            .dynamic_churn(KillAt(Time(2), HostId(2)))
            .build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
        sim.run_until(Time(30));
        assert_eq!(sim.logic(HostId(1)).seen_at, Some(Time(1)));
        assert_eq!(sim.logic(HostId(2)).seen_at, None);
        assert_eq!(sim.logic(HostId(3)).seen_at, None);
    }

    /// The tentpole equivalence bar at the engine level: across random
    /// churn plans (and an optional partition), a simulation driven by
    /// the bucketed calendar queue produces the *identical* trace,
    /// metrics and final state as one driven by the pre-refactor
    /// `BinaryHeap` oracle.
    mod heap_oracle_equivalence {
        use super::*;
        use proptest::prelude::*;

        fn arb_churn(n: u32) -> impl Strategy<Value = ChurnPlan> {
            (
                prop::collection::vec((0u64..30, 1..n), 0..10),
                prop::collection::vec((0u64..30, 1..n), 0..10),
            )
                .prop_map(|(fails, joins)| {
                    let mut plan = ChurnPlan::none();
                    for (t, h) in fails {
                        plan = plan.with_failure(Time(t), HostId(h));
                    }
                    for (t, h) in joins {
                        plan = plan.with_join(Time(t), HostId(h));
                    }
                    plan
                })
        }

        #[derive(Debug, PartialEq)]
        struct Fingerprint {
            trace: Vec<TraceEvent>,
            seen: Vec<Option<Time>>,
            alive: Vec<bool>,
            messages: u64,
            processed: u64,
            chain: u32,
            dispatched: u64,
            hist: Vec<u64>,
            last_active: Option<u64>,
        }

        fn run(n: u32, plan: &ChurnPlan, cut: bool, heap: bool) -> Fingerprint {
            let graph = pov_topology::generators::special::cycle(n as usize);
            let mut b = SimBuilder::new(graph).churn(plan.clone()).seed(7);
            if cut {
                let sides = (0..n).map(|i| u8::from(i >= n / 2)).collect();
                b = b.partition(PartitionPlan::new(sides).window(Time(3), Time(11)));
            }
            if heap {
                b = b.heap_queue_oracle();
            }
            let mut sim = b.build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
            sim.run_until(Time(60));
            Fingerprint {
                trace: sim.trace().events.clone(),
                seen: (0..n).map(|h| sim.logic(HostId(h)).seen_at).collect(),
                alive: (0..n).map(|h| sim.is_alive(HostId(h))).collect(),
                messages: sim.metrics().messages_sent,
                processed: sim.metrics().total_processed(),
                chain: sim.metrics().longest_chain,
                dispatched: sim.metrics().events_dispatched,
                hist: sim.metrics().computation_histogram(),
                last_active: sim.metrics().last_active_tick(),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn identical_trace_and_metrics(
                (n, plan, cut) in (4u32..24).prop_flat_map(|n| {
                    (Just(n), arb_churn(n), 0u8..2)
                }),
            ) {
                let bucket = run(n, &plan, cut == 1, false);
                let heap = run(n, &plan, cut == 1, true);
                prop_assert_eq!(bucket, heap);
            }
        }
    }

    /// A sink that records everything — the test double for the
    /// telemetry invariants.
    #[derive(Default)]
    struct Recorder {
        started: Option<(usize, usize)>,
        ticks: Vec<TickSample>,
        summaries: Vec<(Time, u32, u64)>,
        every: Option<u64>,
    }

    impl TelemetrySink for Recorder {
        fn on_run_start(&mut self, num_hosts: usize, arena_pooled: usize) {
            self.started = Some((num_hosts, arena_pooled));
        }
        fn on_tick(&mut self, sample: &TickSample) {
            self.ticks.push(*sample);
        }
        fn summary_every(&self) -> Option<u64> {
            self.every
        }
        fn on_summary(&mut self, at: Time, active: u32, sketch_mass: f64) {
            self.summaries.push((at, active, sketch_mass.to_bits()));
        }
    }

    #[test]
    fn telemetry_sink_does_not_perturb_the_run() {
        // The "no behavioural feedback" invariant: identical trace,
        // metrics and per-host state with and without a sink attached.
        let churn = ChurnPlan::none()
            .with_failure(Time(2), HostId(3))
            .with_join(Time(6), HostId(3));
        let run = |attach: bool| {
            let mut rec = Recorder::default();
            let b = SimBuilder::new(special::cycle(8))
                .churn(churn.clone())
                .seed(11);
            let b = if attach { b.telemetry(&mut rec) } else { b };
            let mut sim = b.build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
            sim.run_until(Time(40));
            (
                sim.trace().events.clone(),
                sim.metrics().messages_sent,
                sim.metrics().total_processed(),
                sim.metrics().events_dispatched,
                (0..8u32)
                    .map(|h| sim.logic(HostId(h)).seen_at)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn telemetry_samples_account_for_every_event() {
        let churn = ChurnPlan::none()
            .with_failure(Time(2), HostId(3))
            .with_join(Time(6), HostId(3));
        let mut rec = Recorder::default();
        let mut sim = SimBuilder::new(special::cycle(8))
            .churn(churn)
            .telemetry(&mut rec)
            .build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
        sim.run_until(Time(40));
        let dispatched = sim.metrics().events_dispatched;
        let sent = sim.metrics().messages_sent;
        let processed = sim.metrics().total_processed();
        drop(sim);
        assert_eq!(rec.started, Some((8, 0)));
        // Every dispatched event, sent message and processed delivery
        // lands in exactly one tick sample.
        assert_eq!(
            rec.ticks.iter().map(|s| s.dispatched).sum::<u64>(),
            dispatched
        );
        assert_eq!(rec.ticks.iter().map(|s| s.sent).sum::<u64>(), sent);
        assert_eq!(
            rec.ticks.iter().map(|s| s.delivered).sum::<u64>(),
            processed
        );
        assert_eq!(rec.ticks.iter().map(|s| s.fails).sum::<u64>(), 1);
        assert_eq!(rec.ticks.iter().map(|s| s.joins).sum::<u64>(), 1);
        // Samples arrive in strictly increasing tick order, the frontier
        // never exceeds deliveries, and the alive count tracks churn.
        for w in rec.ticks.windows(2) {
            assert!(w[0].tick < w[1].tick);
        }
        for s in &rec.ticks {
            assert!(u64::from(s.frontier) <= s.delivered);
            let expected = if (2..6).contains(&s.tick) { 7 } else { 8 };
            assert_eq!(s.alive, expected, "tick {}", s.tick);
        }
        // The final sample drains the queue.
        assert_eq!(rec.ticks.last().unwrap().queue_depth, 0);
    }

    #[test]
    fn telemetry_summary_sampling_observes_protocol_state() {
        use crate::dynamic::StateSummary;

        #[derive(Debug)]
        struct Weighted(HostId);
        impl NodeLogic for Weighted {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                // Keep ticks active so flushes happen.
                if ctx.now() < Time(10) {
                    ctx.set_timer(1, 0);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: u64) {
                if ctx.now() < Time(10) {
                    ctx.set_timer(1, 0);
                }
            }
            fn summary(&self) -> StateSummary {
                StateSummary {
                    active: true,
                    sketch_weight: Some(f64::from(self.0 .0)),
                }
            }
        }
        let churn = ChurnPlan::none().with_failure(Time(4), HostId(3));
        let mut rec = Recorder {
            every: Some(4),
            ..Recorder::default()
        };
        let mut sim = SimBuilder::new(special::cycle(4))
            .churn(churn)
            .telemetry(&mut rec)
            .build(Weighted);
        sim.run_until(Time(20));
        drop(sim);
        assert!(!rec.summaries.is_empty());
        // First sample at t=0: all four alive, mass 0+1+2+3.
        let (at, active, mass) = rec.summaries[0];
        assert_eq!(at, Time(0));
        assert_eq!(active, 4);
        assert_eq!(f64::from_bits(mass), 6.0);
        // After the failure at t=4, host 3's weight is gone.
        let late = rec
            .summaries
            .iter()
            .find(|&&(at, _, _)| at > Time(4))
            .expect("a post-failure summary sample");
        assert_eq!(late.1, 3);
        assert_eq!(f64::from_bits(late.2), 3.0);
    }

    /// Scripted overlay driver: applies the given mutations at their
    /// ticks, polling every tick through the last scripted one.
    struct Scripted {
        /// (tick, mutation) pairs; any order, applied in script order
        /// within a tick.
        script: Vec<(u64, OverlayEvent)>,
    }

    impl OverlayDriver for Scripted {
        fn next_events(&mut self, now: Time, _: &EngineView<'_>, out: &mut Vec<OverlayEvent>) {
            out.extend(
                self.script
                    .iter()
                    .filter(|&&(t, _)| t == now.ticks())
                    .map(|&(_, ev)| ev),
            );
        }
        fn next_poll(&self, now: Time) -> Option<Time> {
            self.script
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| t > now.ticks())
                .min()
                .map(Time)
        }
    }

    #[test]
    fn overlay_noop_driver_does_not_perturb_the_run() {
        // The zero-feedback bar for the overlay hook, mirroring the
        // telemetry one: a driver that never mutates an edge leaves the
        // trace, metrics and per-host state identical to a run without
        // any driver installed.
        struct Idle;
        impl OverlayDriver for Idle {
            fn next_events(&mut self, _: Time, _: &EngineView<'_>, _: &mut Vec<OverlayEvent>) {}
            fn next_poll(&self, now: Time) -> Option<Time> {
                (now < Time(30)).then(|| now + 1)
            }
        }
        let churn = ChurnPlan::none()
            .with_failure(Time(2), HostId(3))
            .with_join(Time(6), HostId(3));
        let run = |attach: bool| {
            let b = SimBuilder::new(special::cycle(8))
                .churn(churn.clone())
                .seed(5);
            let b = if attach { b.overlay(Idle) } else { b };
            let mut sim = b.build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
            sim.run_until(Time(40));
            (
                sim.trace().events.clone(),
                sim.metrics().messages_sent,
                sim.metrics().total_processed(),
                sim.metrics().longest_chain,
                (0..8u32)
                    .map(|h| sim.logic(HostId(h)).seen_at)
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn overlay_mutations_rewire_routing() {
        // Chain 0-1-2-3. At t=0 (after on_start broadcasts, before any
        // delivery) the driver splices in (1,3) and severs (2,3): the
        // flood reaches h3 at t=2 through the new edge, and h2's
        // forward no longer crosses the removed one.
        let script = vec![
            (0, OverlayEvent::AddEdge(HostId(1), HostId(3))),
            (0, OverlayEvent::RemoveEdge(HostId(2), HostId(3))),
        ];
        let mut sim = SimBuilder::new(special::chain(4))
            .overlay(Scripted { script })
            .build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
        sim.run_to_quiescence(1_000);
        assert_eq!(sim.logic(HostId(2)).seen_at, Some(Time(2)));
        assert_eq!(sim.logic(HostId(3)).seen_at, Some(Time(2)), "via (1,3)");
        let v = sim.overlay_view().expect("driver installed");
        assert!(v.has_edge(HostId(1), HostId(3)));
        assert!(!v.has_edge(HostId(2), HostId(3)));
        // Base CSR untouched.
        assert!(sim.graph().has_edge(HostId(2), HostId(3)));
        let stats = sim.overlay_stats().expect("driver installed");
        assert_eq!((stats.edges_added, stats.edges_removed), (1, 1));
    }

    #[test]
    fn overlay_send_to_stale_contact_is_lost_not_fatal() {
        // A protocol that cached a contact before the overlay tore the
        // link down: the unicast is dropped on the floor (still costing
        // one message), mirroring a send to a crashed host — it must
        // not trip the static-topology non-neighbour assertion.
        #[derive(Debug)]
        struct Stale {
            me: HostId,
            got: bool,
        }
        impl NodeLogic for Stale {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if self.me == HostId(0) {
                    ctx.set_timer(2, 0);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {
                self.got = true;
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: u64) {
                ctx.send(HostId(1), ());
            }
        }
        let script = vec![(1, OverlayEvent::RemoveEdge(HostId(0), HostId(1)))];
        let mut sim = SimBuilder::new(special::chain(2))
            .overlay(Scripted { script })
            .build(|h| Stale { me: h, got: false });
        sim.run_to_quiescence(1_000);
        assert!(!sim.logic(HostId(1)).got, "torn-down link delivers nothing");
        assert_eq!(sim.metrics().messages_sent, 1, "the sender still paid");
    }

    #[test]
    fn overlay_delta_compacts_back_into_csr() {
        // Enough mutations to cross the compaction threshold mid-run;
        // adjacency reads stay correct and the delta ends small.
        let n = 12u32;
        let mut script = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                script.push((
                    u64::from(a) + 1,
                    OverlayEvent::AddEdge(HostId(a), HostId(b)),
                ));
            }
        }
        let mut sim = SimBuilder::new(special::cycle(n as usize))
            .overlay(Scripted { script })
            .build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
        sim.run_until(Time(n as u64 + 2));
        let v = sim.overlay_view().unwrap();
        assert_eq!(v.num_edges(), (n as usize) * (n as usize - 1) / 2);
        assert!(
            v.delta_len() < compact_threshold(n as usize),
            "delta folded back into the CSR"
        );
        for a in 0..n {
            assert_eq!(v.degree(HostId(a)), n as usize - 1);
        }
    }

    #[test]
    fn churn_source_sees_overlay_current_neighbors() {
        use std::cell::RefCell;
        use std::rc::Rc;

        // A churn source that snapshots every host's neighbour list at
        // each poll — through the overlay-aware EngineView methods.
        type AdjLog = Rc<RefCell<Vec<(u64, Vec<Vec<HostId>>)>>>;
        struct Snapshot {
            until: u64,
            log: AdjLog,
        }
        impl ChurnSource for Snapshot {
            fn next_events(&mut self, now: Time, view: &EngineView<'_>, _: &mut Vec<ChurnEvent>) {
                let adj = (0..view.alive.len() as u32)
                    .map(|h| view.neighbors(HostId(h)).to_vec())
                    .collect();
                self.log.borrow_mut().push((now.ticks(), adj));
            }
            fn next_poll(&self, now: Time) -> Option<Time> {
                (now.ticks() < self.until).then(|| now + 1)
            }
        }

        let script = vec![
            (1, OverlayEvent::AddEdge(HostId(0), HostId(3))),
            (2, OverlayEvent::RemoveEdge(HostId(1), HostId(2))),
            (4, OverlayEvent::AddEdge(HostId(2), HostId(4))),
        ];
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = SimBuilder::new(special::chain(5))
            .overlay(Scripted {
                script: script.clone(),
            })
            .dynamic_churn(Snapshot {
                until: 6,
                log: Rc::clone(&log),
            })
            .build(|_| Flood {
                origin: false,
                seen_at: None,
            });
        sim.run_until(Time(10));

        // Replay the script into a stand-alone view: within a tick the
        // churn poll (rank 2) runs before the overlay poll (rank 3), so
        // at tick t the source must observe exactly the mutations of
        // ticks < t — the overlay's current adjacency, never the stale
        // base CSR once mutations exist.
        let mut expect = OverlayView::new(special::chain(5));
        for (tick, adj_at_tick) in log.borrow().iter() {
            for &(t, ev) in &script {
                if t >= *tick {
                    continue;
                }
                // Idempotent re-apply across log entries is harmless.
                match ev {
                    OverlayEvent::AddEdge(a, b) => expect.add_edge(a, b),
                    OverlayEvent::RemoveEdge(a, b) => expect.remove_edge(a, b),
                };
            }
            let want: Vec<Vec<HostId>> = (0..5u32)
                .map(|h| expect.neighbors(HostId(h)).to_vec())
                .collect();
            assert_eq!(adj_at_tick, &want, "tick {tick}");
        }
    }

    #[test]
    fn overlay_telemetry_counts_view_churn() {
        let script = vec![
            (1, OverlayEvent::AddEdge(HostId(0), HostId(2))),
            (1, OverlayEvent::AddEdge(HostId(0), HostId(2))), // dup: no-op
            (3, OverlayEvent::RemoveEdge(HostId(0), HostId(1))),
        ];
        let mut rec = Recorder::default();
        let mut sim = SimBuilder::new(special::chain(3))
            .overlay(Scripted { script })
            .telemetry(&mut rec)
            .build(|h| Flood {
                origin: h == HostId(0),
                seen_at: None,
            });
        sim.run_until(Time(10));
        drop(sim);
        assert_eq!(rec.ticks.iter().map(|s| s.overlay_added).sum::<u64>(), 1);
        assert_eq!(rec.ticks.iter().map(|s| s.overlay_removed).sum::<u64>(), 1);
    }

    #[test]
    fn num_alive_reflects_churn() {
        let churn = ChurnPlan::none()
            .with_failure(Time(2), HostId(0))
            .with_failure(Time(4), HostId(1));
        let mut sim = SimBuilder::new(special::chain(3))
            .churn(churn)
            .build(|_| Flood {
                origin: false,
                seen_at: None,
            });
        sim.run_to_quiescence(100);
        assert_eq!(sim.num_alive(), 1);
        assert!(!sim.is_alive(HostId(0)));
        assert!(sim.is_alive(HostId(2)));
    }

    /// A deliberately awkward protocol for the sharding invariance bar:
    /// draws per-event randomness, sets tick-end batching timers and
    /// ordinary delayed timers, and folds message/sender/timer history
    /// into an order-sensitive accumulator.
    #[derive(Debug)]
    struct Churner {
        hops: u32,
        acc: u64,
    }

    impl NodeLogic for Churner {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == HostId(0) {
                ctx.broadcast(1);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: HostId, msg: u64) {
            // Order-sensitive fold: any reordering of deliveries to this
            // host changes the value.
            self.acc = self
                .acc
                .wrapping_mul(0x100000001b3)
                .wrapping_add(msg ^ u64::from(from.0));
            if self.hops < 3 {
                self.hops += 1;
                use rand::Rng;
                let jitter = ctx.rng().gen_range(0..4u64);
                ctx.broadcast_except(Some(from), msg.wrapping_add(jitter));
                ctx.set_timer_at_tick_end(u64::from(self.hops));
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, key: u64) {
            self.acc = self.acc.rotate_left(7) ^ key;
            if key == 1 {
                ctx.set_timer(2, 99);
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn sharded_fingerprint(threads: usize) -> (Metrics, Vec<(Time, bool, u32)>, Vec<(u32, u64)>) {
        let n = 24u32;
        let churn = ChurnPlan::none()
            .with_failure(Time(2), HostId(3))
            .with_failure(Time(3), HostId(17))
            .with_join(Time(4), HostId(3));
        let mut sim = SimBuilder::new(special::cycle(n as usize))
            .churn(churn)
            .seed(7)
            .build(|_| Churner { hops: 0, acc: 0 });
        sim.enable_sharded_delivery(threads);
        sim.run_to_quiescence(100_000);
        let trace: Vec<(Time, bool, u32)> = sim
            .trace()
            .events
            .iter()
            .map(|e| match *e {
                TraceEvent::Fail(t, h) => (t, false, h.0),
                TraceEvent::Join(t, h) => (t, true, h.0),
            })
            .collect();
        let states: Vec<(u32, u64)> = (0..n)
            .map(|i| {
                let l = sim.logic(HostId(i));
                (l.hops, l.acc)
            })
            .collect();
        (sim.metrics().clone(), trace, states)
    }

    #[test]
    fn sharded_delivery_thread_count_invariance() {
        // The tentpole determinism bar: metrics, trace and every host's
        // final protocol state are byte-identical for any thread count.
        let (base_metrics, base_trace, base_states) = sharded_fingerprint(1);
        assert!(base_metrics.messages_sent > 0, "workload actually ran");
        assert!(base_metrics.timers_fired > 0, "timers exercised");
        for threads in [2, 3, 8] {
            let (m, trace, states) = sharded_fingerprint(threads);
            assert_eq!(m.messages_sent, base_metrics.messages_sent, "t={threads}");
            assert_eq!(m.sent_per_tick, base_metrics.sent_per_tick, "t={threads}");
            assert_eq!(
                m.processed_per_host, base_metrics.processed_per_host,
                "t={threads}"
            );
            assert_eq!(m.longest_chain, base_metrics.longest_chain, "t={threads}");
            assert_eq!(m.timers_fired, base_metrics.timers_fired, "t={threads}");
            assert_eq!(
                m.events_dispatched, base_metrics.events_dispatched,
                "t={threads}"
            );
            assert_eq!(trace, base_trace, "t={threads}");
            assert_eq!(states, base_states, "t={threads}");
        }
    }

    #[test]
    fn sharded_matches_sequential_for_rng_free_protocols() {
        // Flood never touches Ctx::rng and the default delay model is
        // fixed, so sharded output must equal the sequential engine's
        // exactly — including the dispatch counter (a batch member is
        // one dispatched event either way).
        let run = |shard: Option<usize>| {
            let churn = ChurnPlan::none().with_failure(Time(1), HostId(5));
            let mut sim = SimBuilder::new(special::cycle(16))
                .churn(churn)
                .medium(Medium::Radio)
                .build(|h| Flood {
                    origin: h == HostId(0),
                    seen_at: None,
                });
            if let Some(t) = shard {
                sim.enable_sharded_delivery(t);
            }
            sim.run_to_quiescence(10_000);
            let seen: Vec<Option<Time>> = (0..16).map(|i| sim.logic(HostId(i)).seen_at).collect();
            (sim.metrics().clone(), seen)
        };
        let (seq_m, seq_seen) = run(None);
        for threads in [1, 4] {
            let (m, seen) = run(Some(threads));
            assert_eq!(m.messages_sent, seq_m.messages_sent, "t={threads}");
            assert_eq!(m.sent_per_tick, seq_m.sent_per_tick, "t={threads}");
            assert_eq!(
                m.processed_per_host, seq_m.processed_per_host,
                "t={threads}"
            );
            assert_eq!(m.longest_chain, seq_m.longest_chain, "t={threads}");
            assert_eq!(m.events_dispatched, seq_m.events_dispatched, "t={threads}");
            assert_eq!(seen, seq_seen, "t={threads}");
        }
    }

    #[test]
    fn sharded_delivery_respects_partitions_and_telemetry() {
        // Two halves of an 8-cycle severed for ticks 1..=2: sharded
        // runs must agree on drops, and telemetry per-tick aggregates
        // must be thread-count-invariant.
        let sides: Vec<u8> = (0..8u8).map(|i| u8::from(i >= 4)).collect();
        let plan = PartitionPlan::new(sides).window(Time(1), Time(3));
        let run = |threads: usize| {
            let mut rec = Recorder::default();
            let mut sim = SimBuilder::new(special::cycle(8))
                .partition(plan.clone())
                .telemetry(&mut rec)
                .build(|h| Flood {
                    origin: h == HostId(0),
                    seen_at: None,
                });
            sim.enable_sharded_delivery(threads);
            sim.run_to_quiescence(10_000);
            drop(sim);
            rec.ticks
        };
        let base = run(1);
        assert!(
            base.iter().any(|s| s.dropped > 0),
            "partition actually dropped messages"
        );
        for threads in [2, 5] {
            assert_eq!(run(threads), base, "t={threads}");
        }
    }
}
