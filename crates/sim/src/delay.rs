//! Per-message delay models under the known bound `δ` (§3.1).

use rand::rngs::SmallRng;
use rand::Rng;

/// How long a message takes to cross one edge, in ticks. The relaxed
/// asynchronous model only promises an *upper bound* `δ`; these models
/// let experiments exercise both the deterministic best case and
/// bounded jitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly `d` ticks (the paper's simulations use
    /// lock-step hops, i.e. `Fixed(1)`).
    Fixed(u64),
    /// Each message independently takes a uniform number of ticks in
    /// `[min, max]`. `max` plays the role of `δ`.
    Uniform {
        /// Minimum per-hop delay (≥ 1).
        min: u64,
        /// Maximum per-hop delay (the bound `δ`).
        max: u64,
    },
}

impl DelayModel {
    /// Sample the delay for one message.
    pub fn sample(self, rng: &mut SmallRng) -> u64 {
        match self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => {
                let lo = min.max(1);
                let hi = max.max(lo);
                rng.gen_range(lo..=hi)
            }
        }
    }

    /// The upper bound `δ` this model guarantees.
    pub fn bound(self) -> u64 {
        match self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => max.max(min).max(1),
        }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Fixed(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(DelayModel::Fixed(3).sample(&mut rng), 3);
        assert_eq!(DelayModel::Fixed(3).bound(), 3);
    }

    #[test]
    fn fixed_zero_clamps_to_one() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(DelayModel::Fixed(0).sample(&mut rng), 1);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        let m = DelayModel::Uniform { min: 1, max: 4 };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!((1..=4).contains(&d));
        }
        assert_eq!(m.bound(), 4);
    }

    #[test]
    fn uniform_covers_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = DelayModel::Uniform { min: 1, max: 3 };
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[m.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn default_is_one_tick() {
        assert_eq!(DelayModel::default(), DelayModel::Fixed(1));
    }
}
