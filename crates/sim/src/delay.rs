//! Per-message delay models under the known bound `δ` (§3.1), and
//! temporary network partitions layered on top of them.

use crate::Time;
use pov_topology::{analysis, Graph, HostId};
use rand::rngs::SmallRng;
use rand::Rng;

/// How long a message takes to cross one edge, in ticks. The relaxed
/// asynchronous model only promises an *upper bound* `δ`; these models
/// let experiments exercise both the deterministic best case and
/// bounded jitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly `d` ticks (the paper's simulations use
    /// lock-step hops, i.e. `Fixed(1)`).
    Fixed(u64),
    /// Each message independently takes a uniform number of ticks in
    /// `[min, max]`. `max` plays the role of `δ`.
    Uniform {
        /// Minimum per-hop delay (≥ 1).
        min: u64,
        /// Maximum per-hop delay (the bound `δ`).
        max: u64,
    },
}

impl DelayModel {
    /// Sample the delay for one message.
    pub fn sample(self, rng: &mut SmallRng) -> u64 {
        match self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => {
                let lo = min.max(1);
                let hi = max.max(lo);
                rng.gen_range(lo..=hi)
            }
        }
    }

    /// The upper bound `δ` this model guarantees.
    pub fn bound(self) -> u64 {
        match self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => max.max(min).max(1),
        }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Fixed(1)
    }
}

/// One cut of a [`PartitionPlan`]: a side assignment plus the windows
/// during which it severs cross-side traffic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Cut {
    /// Per-host side assignment (index = host id).
    sides: Vec<u8>,
    /// Half-open windows `[from, until)` during which the cut is active.
    windows: Vec<(Time, Time)>,
}

impl Cut {
    fn is_active(&self, at: Time) -> bool {
        self.windows.iter().any(|&(f, u)| at >= f && at < u)
    }

    fn blocks(&self, at: Time, a: HostId, b: HostId) -> bool {
        self.sides[a.index()] != self.sides[b.index()] && self.is_active(at)
    }
}

/// A temporary network partition: while one of its windows is active,
/// messages whose endpoints sit on opposite sides of the cut are lost in
/// transit (the sender has already paid their communication cost, exactly
/// as for a message to a crashed host). Hosts on both sides stay alive —
/// this models *disconnection without departure*, the regime of
/// possibly-disconnected dynamic networks that the paper's §6.2 churn
/// model cannot express.
///
/// A plan holds one or more **cuts** — independent side assignments,
/// each with its own active windows. A single `new`/`split_bfs` plan is
/// one cut; [`PartitionPlan::stack`] overlays further cuts, which is how
/// the scenario grammar's repeated `[[partition]]` tables lower to
/// *cascading* partitions (overlapping outages with different
/// geometry). A message is dropped iff **any** cut both separates its
/// endpoints and is active at the *delivery* instant: traffic already
/// in flight when the links are severed is lost with them, and traffic
/// sent during the last `δ` before the heal completes normally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionPlan {
    cuts: Vec<Cut>,
}

impl PartitionPlan {
    /// A single-cut partition over an explicit side assignment (one
    /// entry per host). Add active windows with
    /// [`PartitionPlan::window`]; a plan with no windows never blocks
    /// anything.
    pub fn new(sides: Vec<u8>) -> Self {
        PartitionPlan {
            cuts: vec![Cut {
                sides,
                windows: Vec::new(),
            }],
        }
    }

    /// Split `graph` in two by BFS distance from `pivot`: the `fraction`
    /// of hosts nearest `pivot` (ties broken by host id; `pivot` first)
    /// form side 1, the rest side 0. This yields a geometrically coherent
    /// cut — one region of a grid, one neighbourhood of an overlay —
    /// rather than a random bisection no real outage produces.
    pub fn split_bfs(graph: &Graph, pivot: HostId, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        let n = graph.num_hosts();
        let dist = analysis::bfs_distances(graph, pivot);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&h| (dist[h as usize], h));
        let take = ((n as f64) * fraction).round() as usize;
        let mut sides = vec![0u8; n];
        for &h in order.iter().take(take) {
            sides[h as usize] = 1;
        }
        PartitionPlan::new(sides)
    }

    /// Add an active window `[from, until)` to the most recently added
    /// cut. A zero-length window (`from == until`) is accepted but
    /// inert — it never activates the cut; window slicers clamp
    /// absolute-time windows into local time and must be able to
    /// represent (and then skip) the degenerate result. Inverted
    /// windows are rejected.
    pub fn window(mut self, from: Time, until: Time) -> Self {
        assert!(from <= until, "inverted partition window");
        self.cuts
            .last_mut()
            .expect("PartitionPlan::window on a cut-less plan")
            .windows
            .push((from, until));
        self
    }

    /// Overlay every cut of `other` on top of this plan — the cascading
    /// composition: each cut keeps its own side map and windows, and a
    /// message is lost if *any* of them severs it at delivery time.
    ///
    /// # Panics
    /// Panics if the two plans disagree on the host count.
    pub fn stack(mut self, other: PartitionPlan) -> Self {
        assert_eq!(
            self.num_hosts(),
            other.num_hosts(),
            "stacked partitions must cover the same host set"
        );
        self.cuts.extend(other.cuts);
        self
    }

    /// Number of hosts every cut's side map covers (0 for a cut-less
    /// plan).
    pub fn num_hosts(&self) -> usize {
        self.cuts.first().map_or(0, |c| c.sides.len())
    }

    /// Whether any cut's window covers instant `at`.
    pub fn is_active(&self, at: Time) -> bool {
        self.cuts.iter().any(|c| c.is_active(at))
    }

    /// Whether a message between `a` and `b` delivered at `at` is lost
    /// (some active cut separates them).
    pub fn blocks(&self, at: Time, a: HostId, b: HostId) -> bool {
        self.cuts.iter().any(|c| c.blocks(at, a, b))
    }

    /// Side assignment of the *primary* (first) cut — the whole story
    /// for single-cut plans, which every constructor produces.
    pub fn sides(&self) -> &[u8] {
        self.cuts.first().map_or(&[], |c| &c.sides)
    }

    /// Active windows `[from, until)` of the primary cut, in insertion
    /// order. Exposed so window-slicing executors (continuous queries)
    /// can re-express an absolute-time plan in a sub-interval's local
    /// time; multi-cut plans are sliced via [`PartitionPlan::cuts`].
    pub fn windows(&self) -> &[(Time, Time)] {
        self.cuts.first().map_or(&[], |c| &c.windows)
    }

    /// Every cut as `(sides, windows)`, in stacking order.
    pub fn cuts(&self) -> impl Iterator<Item = (&[u8], &[(Time, Time)])> + '_ {
        self.cuts
            .iter()
            .map(|c| (c.sides.as_slice(), c.windows.as_slice()))
    }

    /// Number of hosts on side 1 of the primary cut.
    pub fn minority_len(&self) -> usize {
        self.sides().iter().filter(|&&s| s == 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(DelayModel::Fixed(3).sample(&mut rng), 3);
        assert_eq!(DelayModel::Fixed(3).bound(), 3);
    }

    #[test]
    fn fixed_zero_clamps_to_one() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(DelayModel::Fixed(0).sample(&mut rng), 1);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        let m = DelayModel::Uniform { min: 1, max: 4 };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!((1..=4).contains(&d));
        }
        assert_eq!(m.bound(), 4);
    }

    #[test]
    fn uniform_covers_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = DelayModel::Uniform { min: 1, max: 3 };
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[m.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn default_is_one_tick() {
        assert_eq!(DelayModel::default(), DelayModel::Fixed(1));
    }

    #[test]
    fn partition_blocks_only_cross_cut_during_window() {
        let plan = PartitionPlan::new(vec![0, 0, 1, 1]).window(Time(5), Time(10));
        // Outside the window: nothing blocked.
        assert!(!plan.blocks(Time(4), HostId(0), HostId(2)));
        assert!(!plan.blocks(Time(10), HostId(0), HostId(2)));
        // Inside: only cross-cut pairs.
        assert!(plan.blocks(Time(5), HostId(0), HostId(2)));
        assert!(plan.blocks(Time(9), HostId(3), HostId(1)));
        assert!(!plan.blocks(Time(7), HostId(0), HostId(1)));
        assert!(!plan.blocks(Time(7), HostId(2), HostId(3)));
    }

    #[test]
    fn partition_multiple_windows() {
        let plan = PartitionPlan::new(vec![0, 1])
            .window(Time(1), Time(2))
            .window(Time(5), Time(7));
        let active: Vec<u64> = (0u64..8).filter(|&t| plan.is_active(Time(t))).collect();
        assert_eq!(active, vec![1, 5, 6]);
    }

    #[test]
    fn split_bfs_takes_pivot_region() {
        use pov_topology::generators::special;
        let g = special::chain(10);
        let plan = PartitionPlan::split_bfs(&g, HostId(0), 0.4);
        // The 4 hosts nearest h0 on a chain are h0..h3.
        assert_eq!(plan.sides(), &[1, 1, 1, 1, 0, 0, 0, 0, 0, 0]);
        assert_eq!(plan.minority_len(), 4);
    }

    #[test]
    fn empty_plan_never_blocks() {
        let plan = PartitionPlan::new(vec![0, 1]);
        assert!(!plan.blocks(Time(0), HostId(0), HostId(1)));
        assert!(!plan.is_active(Time(100)));
    }

    #[test]
    fn zero_length_window_is_inert() {
        let plan = PartitionPlan::new(vec![0, 1]).window(Time(5), Time(5));
        assert!(!plan.is_active(Time(5)));
        assert!(!plan.blocks(Time(5), HostId(0), HostId(1)));
    }

    #[test]
    #[should_panic(expected = "inverted partition window")]
    fn rejects_inverted_window() {
        let _ = PartitionPlan::new(vec![0, 1]).window(Time(5), Time(4));
    }

    #[test]
    fn stacked_cuts_block_independently() {
        // Cut A separates {0,1} | {2,3} during [0, 10); cut B separates
        // {0,2} | {1,3} during [5, 15). Overlap [5, 10) blocks both.
        let a = PartitionPlan::new(vec![0, 0, 1, 1]).window(Time(0), Time(10));
        let b = PartitionPlan::new(vec![0, 1, 0, 1]).window(Time(5), Time(15));
        let plan = a.stack(b);
        assert_eq!(plan.num_hosts(), 4);
        assert_eq!(plan.cuts().count(), 2);
        // t=2: only cut A active.
        assert!(plan.blocks(Time(2), HostId(0), HostId(2)));
        assert!(!plan.blocks(Time(2), HostId(0), HostId(1)));
        // t=7: both active — 0↔1 (cut B) and 0↔2 (cut A) both severed,
        // while 0↔3 crosses both.
        assert!(plan.blocks(Time(7), HostId(0), HostId(1)));
        assert!(plan.blocks(Time(7), HostId(0), HostId(2)));
        assert!(plan.blocks(Time(7), HostId(0), HostId(3)));
        // t=12: only cut B remains.
        assert!(!plan.blocks(Time(12), HostId(0), HostId(2)));
        assert!(plan.blocks(Time(12), HostId(0), HostId(1)));
        // t=15: everything healed.
        assert!(!plan.is_active(Time(15)));
        // The primary-cut accessors still describe cut A.
        assert_eq!(plan.sides(), &[0, 0, 1, 1]);
        assert_eq!(plan.windows(), &[(Time(0), Time(10))]);
        assert_eq!(plan.minority_len(), 2);
    }

    #[test]
    #[should_panic(expected = "same host set")]
    fn stack_rejects_host_count_mismatch() {
        let a = PartitionPlan::new(vec![0, 1]);
        let b = PartitionPlan::new(vec![0, 1, 1]);
        let _ = a.stack(b);
    }
}
