//! Discrete-event simulator for dynamic networks, implementing the
//! *relaxed asynchronous model* of §3.1 of *"The Price of Validity in
//! Dynamic Networks"* (Bawa et al.): known bounded message delay `δ`,
//! reliable in-order delivery to alive neighbours, and hosts that fail
//! (leave) at arbitrary times (§3.2).
//!
//! Key pieces:
//!
//! * [`Simulation`] — the event loop. Protocol code implements
//!   [`NodeLogic`]; one logic instance runs per host and interacts with
//!   the world only through [`Ctx`] (send / broadcast / timers), which
//!   keeps every run a pure function of its seeds.
//! * [`Medium`] — point-to-point (P2P overlay, §3.1 Example 3.1) or
//!   radio (sensor network: one transmission reaches all neighbours at
//!   the cost of a single message, §5.3).
//! * [`ChurnPlan`] — the §6.2 dynamism model (`R` uniformly random hosts
//!   fail at a uniform rate over an interval, plus optional host joins)
//!   and richer regimes beyond the paper: flash-crowd join bursts,
//!   correlated cluster failures, adversarial root-neighbourhood kills.
//! * [`ChurnSource`] — *dynamic* churn decided during the run: the
//!   event loop polls the source each announced instant with an
//!   [`EngineView`] (alive set, per-host protocol state summaries via
//!   [`NodeLogic::summary`]), which is what adaptive adversaries such
//!   as the sketch-targeting [`SketchAdversary`] need; every
//!   [`ChurnPlan`] doubles as the trivial static source.
//! * [`OverlayDriver`] — overlay *maintenance* decided during the run:
//!   the event loop polls the installed driver like a churn source and
//!   applies the edge mutations it answers with to a mutable
//!   [`OverlayView`](pov_topology::OverlayView) layered over the base
//!   CSR, so partial-view membership protocols can rewire the topology
//!   protocols route over while queries execute.
//! * [`PartitionPlan`] — temporary cuts severing cross-partition
//!   messages for a window, then healing (disconnection without
//!   departure).
//! * [`PhaseSchedule`] — long-horizon membership regimes (growth →
//!   stable → shrink → partition → heal over 10⁴+ ticks) scripted as
//!   phases and lowered to the `ChurnPlan`/`PartitionPlan` primitives
//!   above; the soak harness and the scenario `[phases]` grammar both
//!   compile through it.
//! * [`Metrics`] — the §6.3 efficiency measures: communication cost,
//!   per-host computation cost, time cost (longest causal message chain),
//!   and per-tick message counts (Fig 13b).
//! * [`Trace`] — timestamped join/fail record consumed by the oracle to
//!   compute the Single-Site-Validity bounds `HC`/`HU`.
//! * [`heartbeat`] — the heartbeat failure detector described in §3.1.
//!
//! Time is measured in ticks of `δ`: a message sent at `t` to an alive
//! neighbour arrives at `t + d` with `1 ≤ d ≤ delay_bound` (default 1).
//!
//! The hot path is engineered for batch sweeps: the event loop runs on
//! a bucketed calendar queue (O(1) push/pop; ordering invariants
//! documented in `event.rs`, equivalence to the original binary heap
//! property-tested), [`SimBuilder::over`] borrows a topology so a
//! thousand cells share one CSR neighbour arena, and every host-indexed
//! engine buffer recycles through a thread-local pool across the
//! simulations a worker thread builds and drops.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod alive;
mod arena;
mod churn;
mod ctx;
mod delay;
mod dynamic;
mod engine;
mod event;
pub mod heartbeat;
mod metrics;
mod node;
mod overlay;
pub mod phase;
mod sink;
mod time;
mod trace;

pub use churn::ChurnPlan;
pub use ctx::Ctx;
pub use delay::{DelayModel, PartitionPlan};
pub use dynamic::{ChurnEvent, ChurnSource, EngineView, SketchAdversary, StateSummary};
pub use engine::{Medium, SimBuilder, Simulation};
pub use metrics::Metrics;
pub use node::NodeLogic;
pub use overlay::{OverlayDriver, OverlayEvent, OverlayStats};
pub use phase::{LoweredSchedule, Phase, PhaseKind, PhaseSchedule};
pub use sink::{NullSink, TelemetrySink, TickSample};
pub use time::Time;
pub use trace::{Trace, TraceEvent};

#[cfg(test)]
mod smoke {
    use super::*;
    use pov_topology::generators::special;
    use pov_topology::HostId;

    /// Ten hosts on a cycle forward one token each; one host fails.
    struct Forward {
        seen: bool,
    }

    impl NodeLogic for Forward {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.me() == HostId(0) {
                self.seen = true;
                ctx.broadcast(());
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, from: HostId, _: ()) {
            if !self.seen {
                self.seen = true;
                ctx.broadcast_except(Some(from), ());
            }
        }
    }

    #[test]
    fn crate_root_smoke() {
        let churn = ChurnPlan::none().with_failure(Time(2), HostId(5));
        let mut sim = SimBuilder::new(special::cycle(10))
            .churn(churn)
            .build(|_| Forward { seen: false });
        sim.run_to_quiescence(10_000);
        assert_eq!(sim.num_alive(), 9);
        assert!(sim.metrics().messages_sent > 0);
        assert_eq!(sim.trace().events.len(), 1);
    }
}
