//! The protocol-side interface: one [`NodeLogic`] instance per host.

use crate::dynamic::StateSummary;
use crate::Ctx;
use pov_topology::HostId;

/// Behaviour of a single host. Implementations hold all per-host protocol
/// state; the only way to affect the world is through the [`Ctx`] passed
/// into each callback, which keeps runs deterministic and replayable.
pub trait NodeLogic: Sized {
    /// The protocol's message type.
    type Msg: Clone + std::fmt::Debug;

    /// Called once when the host becomes part of the running network: at
    /// simulation start for initially-alive hosts, or at join time.
    /// Typically only the querying host does anything here (it initiates
    /// the Broadcast phase, §4.1).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message from neighbour `from` is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: HostId, msg: Self::Msg);

    /// Called when a timer previously set with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, key: u64) {
        let _ = (ctx, key);
    }

    /// Observable protocol state for dynamic churn sources
    /// ([`ChurnSource`](crate::ChurnSource)): a protocol-state-aware
    /// adversary sees exactly what this returns, nothing more. The
    /// default exposes nothing (inactive, no sketch weight), which
    /// keeps oblivious sources oblivious; protocol crates override it
    /// through their observer hooks.
    fn summary(&self) -> StateSummary {
        StateSummary::default()
    }
}
