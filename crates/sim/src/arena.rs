//! A thread-local arena of recycled host-indexed buffers.
//!
//! Batch drivers (the scenario runner, the experiment sweeps, `repro
//! bench`) build and drop thousands of [`Simulation`](crate::Simulation)
//! values per worker thread, each needing the same handful of
//! `O(hosts)` vectors: alive flags, causal depths, per-host message
//! counters, per-tick send counters, churn-poll scratch. Rather than
//! hitting the allocator per cell, the engine *takes* those buffers
//! from this pool at build time and *returns* them on drop — one engine
//! arena per worker thread, reused across every `(seed, rep)` cell it
//! executes.
//!
//! Determinism is unaffected: every buffer is cleared and re-initialized
//! on take, so a pooled run is bit-identical to a fresh-allocation run.
//! The pool keeps at most [`KEEP`] buffers per shape to bound memory on
//! long-lived threads.

use crate::dynamic::{ChurnEvent, StateSummary};
use std::cell::RefCell;

/// Maximum recycled buffers retained per shape.
const KEEP: usize = 16;

#[derive(Default)]
struct Pool {
    bools: Vec<Vec<bool>>,
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    summaries: Vec<Vec<StateSummary>>,
    churn: Vec<Vec<ChurnEvent>>,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

macro_rules! pooled {
    ($take:ident, $put:ident, $field:ident, $t:ty) => {
        /// Take a cleared buffer of `n` default elements from the pool
        /// (allocating only if the pool is empty).
        pub(crate) fn $take(n: usize) -> Vec<$t> {
            let mut v = POOL
                .with(|p| p.borrow_mut().$field.pop())
                .unwrap_or_default();
            v.clear();
            v.resize(n, Default::default());
            v
        }

        /// Return a buffer to the pool for reuse.
        pub(crate) fn $put(v: Vec<$t>) {
            if v.capacity() == 0 {
                return;
            }
            POOL.with(|p| {
                let pool = &mut p.borrow_mut().$field;
                if pool.len() < KEEP {
                    pool.push(v);
                }
            });
        }
    };
}

pooled!(take_bools, put_bools, bools, bool);
pooled!(take_u32s, put_u32s, u32s, u32);
pooled!(take_u64s, put_u64s, u64s, u64);
pooled!(take_summaries, put_summaries, summaries, StateSummary);

/// Take an empty (but capacity-retaining) churn wave buffer.
pub(crate) fn take_churn() -> Vec<ChurnEvent> {
    let mut v = POOL
        .with(|p| p.borrow_mut().churn.pop())
        .unwrap_or_default();
    v.clear();
    v
}

/// Number of recycled buffers currently held by this thread's pool,
/// across all shapes — the arena-occupancy figure reported to telemetry
/// sinks at run start.
pub(crate) fn pooled_buffers() -> usize {
    POOL.with(|p| {
        let p = p.borrow();
        p.bools.len() + p.u32s.len() + p.u64s.len() + p.summaries.len() + p.churn.len()
    })
}

/// Return a churn wave buffer to the pool for reuse.
pub(crate) fn put_churn(v: Vec<ChurnEvent>) {
    if v.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let pool = &mut p.borrow_mut().churn;
        if pool.len() < KEEP {
            pool.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_cleared_resized_buffers() {
        let mut v = take_bools(3);
        v[0] = true;
        put_bools(v);
        let v = take_bools(5);
        assert_eq!(v, vec![false; 5], "recycled buffer must be re-zeroed");
        put_bools(v);
        let v = take_bools(0);
        assert!(v.is_empty());
    }

    #[test]
    fn pool_bounds_retention() {
        for _ in 0..100 {
            put_u64s(vec![0; 8]);
        }
        let kept = POOL.with(|p| p.borrow().u64s.len());
        assert!(kept <= KEEP);
    }
}
