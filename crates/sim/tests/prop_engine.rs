//! Property-based tests for the simulator: the relaxed-asynchronous-model
//! guarantees of §3.1 hold for arbitrary topologies and churn.

use pov_sim::{ChurnPlan, Ctx, DelayModel, Medium, NodeLogic, SimBuilder, Time};
use pov_topology::{analysis, GraphBuilder, HostId};
use proptest::prelude::*;

/// Echo logic that records every delivery with its timestamp and
/// re-broadcasts the token once.
#[derive(Debug, Default)]
struct Recorder {
    origin: bool,
    received: Vec<(Time, HostId, u64)>,
    forwarded: bool,
}

impl NodeLogic for Recorder {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.origin {
            // Send a burst of sequenced messages to every neighbour.
            for seq in 0..4u64 {
                for &n in ctx.neighbors() {
                    ctx.send(n, seq);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: HostId, msg: u64) {
        self.received.push((ctx.now(), from, msg));
        if !self.forwarded {
            self.forwarded = true;
            ctx.broadcast_except(Some(from), msg);
        }
    }
}

fn arb_graph(max_n: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        (
            Just(n),
            prop::collection::vec((0..n, 0..n), 1..(3 * n as usize)),
        )
    })
}

fn build(n: u32, es: &[(u32, u32)]) -> pov_topology::Graph {
    let mut b = GraphBuilder::with_hosts(n as usize);
    b.add_edge(HostId(0), HostId(1 % n));
    for &(a, bb) in es {
        b.add_edge(HostId(a), HostId(bb));
    }
    let (g, _) = analysis::connect_components(&b.build());
    g
}

proptest! {
    #[test]
    fn delivery_respects_delay_bound((n, es) in arb_graph(20), dmax in 1u64..4) {
        let g = build(n, &es);
        let mut sim = SimBuilder::new(g)
            .delay(DelayModel::Uniform { min: 1, max: dmax })
            .seed(42)
            .build(|h| Recorder { origin: h == HostId(0), ..Default::default() });
        sim.run_to_quiescence(1_000_000);
        // Origin's initial burst was sent at t=0: everything it caused
        // lands within (hops × dmax); in particular first-hop deliveries
        // arrive within [1, dmax].
        for h in 1..n {
            for &(t, from, _) in &sim.logic(HostId(h)).received {
                if from == HostId(0) {
                    // could be a forward (sent later) — only check direct
                    // burst messages, which are the only u64 < 4 sent by
                    // host 0 at t=0 *if* h is a neighbour... simpler
                    // invariant: nothing arrives at t=0 and nothing
                    // arrives later than it could possibly be sent.
                    prop_assert!(t.ticks() >= 1);
                }
            }
        }
    }

    #[test]
    fn fixed_delay_preserves_fifo((n, es) in arb_graph(20)) {
        // §3.1: reliable *ordered* communication. With the fixed delay
        // model, the burst 0,1,2,3 arrives in order at every neighbour.
        let g = build(n, &es);
        let mut sim = SimBuilder::new(g)
            .delay(DelayModel::Fixed(1))
            .build(|h| Recorder { origin: h == HostId(0), ..Default::default() });
        sim.run_to_quiescence(1_000_000);
        for h in 1..n {
            let seqs: Vec<u64> = sim
                .logic(HostId(h))
                .received
                .iter()
                .filter(|&&(_, from, _)| from == HostId(0))
                .map(|&(_, _, s)| s)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(seqs, sorted, "out-of-order delivery at {}", h);
        }
    }

    #[test]
    fn runs_are_deterministic((n, es) in arb_graph(16), seed in 0u64..50) {
        let g = build(n, &es);
        let run = || {
            let mut sim = SimBuilder::new(g.clone())
                .delay(DelayModel::Uniform { min: 1, max: 3 })
                .seed(seed)
                .build(|h| Recorder { origin: h == HostId(0), ..Default::default() });
            sim.run_to_quiescence(1_000_000);
            let mut log = Vec::new();
            for h in 0..n {
                log.extend(sim.logic(HostId(h)).received.iter().copied());
            }
            (sim.metrics().messages_sent, log)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn failed_hosts_receive_nothing(
        (n, es) in arb_graph(16),
        victim in 1u32..16,
        fail_at in 0u64..3,
    ) {
        let victim = HostId(victim % n);
        if victim == HostId(0) {
            return Ok(());
        }
        let g = build(n, &es);
        let churn = ChurnPlan::none().with_failure(Time(fail_at), victim);
        let mut sim = SimBuilder::new(g)
            .churn(churn)
            .build(|h| Recorder { origin: h == HostId(0), ..Default::default() });
        sim.run_to_quiescence(1_000_000);
        for &(t, _, _) in &sim.logic(victim).received {
            prop_assert!(
                t < Time(fail_at),
                "delivery at {t:?} after failure at {fail_at}"
            );
        }
    }

    #[test]
    fn radio_broadcast_costs_one((n, es) in arb_graph(16)) {
        let g = build(n, &es);
        let expected_receipts: u64 = 4 * g.degree(HostId(0)) as u64;
        let mut sim = SimBuilder::new(g)
            .medium(Medium::Radio)
            .build(|h| Recorder { origin: h == HostId(0), ..Default::default() });
        sim.start();
        sim.run_until(Time(0));
        // The origin sent 4 bursts; under radio, `send` is unicast so the
        // cost is per message, but each forwarded broadcast later costs 1.
        // Here we only check the initial burst accounting: 4 × degree
        // unicast sends.
        prop_assert_eq!(sim.metrics().messages_sent, expected_receipts);
    }

    #[test]
    fn trace_alive_sets_nest(
        (n, es) in arb_graph(16),
        fails in prop::collection::vec((1u32..16, 0u64..10), 0..8),
    ) {
        let g = build(n, &es);
        let mut churn = ChurnPlan::none();
        for (h, t) in fails {
            if h % n != 0 {
                churn = churn.with_failure(Time(t), HostId(h % n));
            }
        }
        let mut sim = SimBuilder::new(g)
            .churn(churn)
            .build(|h| Recorder { origin: h == HostId(0), ..Default::default() });
        sim.run_to_quiescence(1_000_000);
        let trace = sim.trace();
        let throughout = trace.alive_throughout(Time(0), Time(10));
        let sometime = trace.alive_sometime(Time(0), Time(10));
        for i in 0..n as usize {
            prop_assert!(!throughout[i] || sometime[i], "nesting violated at {i}");
        }
    }
}
