//! Property tests for [`ChurnPlan`]'s combinators: `merge` must be a
//! deterministic, commutative way to stack dynamism regimes, and the
//! `initially_dead` convention must survive merging — a host failing in
//! one plan and rejoining in another behaves exactly like a host doing
//! both in a single plan.

use pov_sim::{ChurnPlan, Time, TraceEvent};
use pov_topology::HostId;
use proptest::prelude::*;

/// An arbitrary small plan: failures and joins over hosts 0..n at
/// times 0..40.
fn arb_plan(n: u32) -> impl Strategy<Value = ChurnPlan> {
    (
        prop::collection::vec((0u64..40, 0..n), 0..12),
        prop::collection::vec((0u64..40, 0..n), 0..12),
    )
        .prop_map(|(fails, joins)| {
            let mut plan = ChurnPlan::none();
            for (t, h) in fails {
                plan = plan.with_failure(Time(t), HostId(h));
            }
            for (t, h) in joins {
                plan = plan.with_join(Time(t), HostId(h));
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) and merge(b, a) produce identical event streams —
    /// the combinator is order-deterministic, so "uniform failures +
    /// flash crowd" is one plan no matter how a caller stacks them.
    #[test]
    fn merge_is_commutative(a in arb_plan(16), b in arb_plan(16)) {
        let ab = a.clone().merge(b.clone());
        let ba = b.merge(a);
        prop_assert_eq!(&ab.failures, &ba.failures);
        prop_assert_eq!(&ab.joins, &ba.joins);
    }

    /// Merging is associative up to the canonical event order, and
    /// merging a plan with the empty plan is the identity.
    #[test]
    fn merge_has_identity_and_associativity(
        a in arb_plan(16),
        b in arb_plan(16),
        c in arb_plan(16),
    ) {
        // Identity up to the canonical event order merge normalizes to.
        let canonical = |plan: &ChurnPlan| {
            let mut fails = plan.failures.clone();
            fails.sort_by_key(|&(t, h)| (t, h.0));
            fails.dedup();
            let mut joins = plan.joins.clone();
            joins.sort_by_key(|&(t, h)| (t, h.0));
            joins.dedup();
            (fails, joins)
        };
        let with_none = a.clone().merge(ChurnPlan::none());
        prop_assert_eq!(canonical(&with_none), canonical(&a));
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.merge(b.merge(c));
        prop_assert_eq!(&left.failures, &right.failures);
        prop_assert_eq!(&left.joins, &right.joins);
    }

    /// The merged stream is sorted by (time, host) within each event
    /// class — the canonical order the engine and slicers rely on.
    #[test]
    fn merge_yields_canonical_order(a in arb_plan(16), b in arb_plan(16)) {
        let merged = a.merge(b);
        for events in [&merged.failures, &merged.joins] {
            prop_assert!(events
                .windows(2)
                .all(|w| (w[0].0, w[0].1 .0) <= (w[1].0, w[1].1 .0)));
        }
    }

    /// `initially_dead` round-trips through merge: splitting a plan's
    /// events arbitrarily across two plans and merging them back
    /// changes nothing about who starts dead. In particular, a host
    /// failing in plan A and rejoining in plan B starts alive (its
    /// first event is the failure), while a join-first host stays dead.
    #[test]
    fn initially_dead_round_trips_through_merge(
        plan in arb_plan(16),
        mask in prop::collection::vec(0u8..2, 24),
    ) {
        let whole: Vec<HostId> = plan.initially_dead().collect();
        let picked = |i: usize| mask[i % mask.len()] == 1;
        let mut a = ChurnPlan::none();
        let mut b = ChurnPlan::none();
        for (i, &(t, h)) in plan.failures.iter().enumerate() {
            let target = if picked(i) { &mut a } else { &mut b };
            *target = target.clone().with_failure(t, h);
        }
        for (i, &(t, h)) in plan.joins.iter().enumerate() {
            let target = if picked(i + 7) { &mut a } else { &mut b };
            *target = target.clone().with_join(t, h);
        }
        let merged = a.merge(b);
        let mut split: Vec<HostId> = merged.initially_dead().collect();
        let mut whole = whole;
        split.sort_by_key(|h| h.0);
        whole.sort_by_key(|h| h.0);
        prop_assert_eq!(split, whole);
    }

    /// No combination of generated and merged plans ever carries a
    /// sentinel `u64::MAX` timestamp — dead-at-start hosts are encoded
    /// through the explicit initially-dead marker, so shift/merge
    /// arithmetic over plans can never wrap.
    #[test]
    fn merged_plans_never_carry_sentinel_timestamps(
        a in arb_plan(16),
        b in arb_plan(16),
        dead in prop::collection::vec(0u32..16, 0..4),
    ) {
        let mut a = a;
        for h in dead {
            a = a.with_initially_dead(HostId(h));
        }
        let merged = a.merge(b);
        for &(t, _) in merged.failures.iter().chain(&merged.joins) {
            prop_assert!(t < Time(u64::MAX), "sentinel timestamp leaked");
        }
        // The marker survives the merge (it is part of the canonical
        // form, not an event), and marked hosts start dead.
        for &h in &merged.dead_from_start {
            prop_assert!(merged.initially_dead().any(|d| d == h));
        }
    }

    /// Stacking an oscillating plan on top of uniform failures keeps
    /// both schedules intact: every event of each constituent appears
    /// in the merge.
    #[test]
    fn merged_regimes_preserve_constituents(seed in 0u64..500) {
        let uniform =
            ChurnPlan::uniform_failures(40, 6, Time(0), Time(30), HostId(0), seed);
        let osc =
            ChurnPlan::oscillating(40, 4, Time(0), Time(30), 10, 4, HostId(0), seed ^ 1);
        let merged = uniform.clone().merge(osc.clone());
        for &(t, h) in uniform.failures.iter().chain(&osc.failures) {
            prop_assert!(merged.failures.contains(&(t, h)));
        }
        for &(t, h) in &osc.joins {
            prop_assert!(merged.joins.contains(&(t, h)));
        }
    }
}

/// Engine-backed regression for the same-tick tie-break: `merge` can
/// legally schedule a failure *and* a join for one host at the same
/// tick (per-stream dedup keeps both, and `oscillating` stacked on a
/// failure regime makes this easy). The outcome is explicit, not an
/// accident of push order: failures apply before joins at equal
/// instants, so the host starts alive, blips dead at the tick, restarts
/// via `on_start`, and ends the tick alive — identically for either
/// merge order.
#[test]
fn same_tick_fail_plus_join_dies_then_rejoins() {
    use pov_sim::{Ctx, NodeLogic, SimBuilder};
    use pov_topology::generators::special;

    #[derive(Debug, Default)]
    struct Starts {
        count: u32,
    }
    impl NodeLogic for Starts {
        type Msg = ();
        fn on_start(&mut self, _: &mut Ctx<'_, ()>) {
            self.count += 1;
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
    }

    let a = ChurnPlan::none().with_failure(Time(5), HostId(1));
    let b = ChurnPlan::none().with_join(Time(5), HostId(1));
    for merged in [a.clone().merge(b.clone()), b.merge(a)] {
        // The failure is the host's first event under the tie-break, so
        // it must NOT start dead.
        assert_eq!(merged.initially_dead().count(), 0);
        let mut sim = SimBuilder::new(special::chain(3))
            .churn(merged)
            .build(|_| Starts::default());
        sim.run_until(Time(10));
        assert!(sim.is_alive(HostId(1)), "ends the tick alive");
        assert_eq!(sim.num_alive(), 3);
        assert_eq!(
            sim.logic(HostId(1)).count,
            2,
            "started at t=0 and restarted at the same-tick rejoin"
        );
        assert_eq!(
            sim.trace().events,
            vec![
                TraceEvent::Fail(Time(5), HostId(1)),
                TraceEvent::Join(Time(5), HostId(1)),
            ],
            "fail recorded before join at the tied instant"
        );
    }
}
