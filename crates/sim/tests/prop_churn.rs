//! Property tests for [`ChurnPlan`]'s combinators: `merge` must be a
//! deterministic, commutative way to stack dynamism regimes, and the
//! `initially_dead` convention must survive merging — a host failing in
//! one plan and rejoining in another behaves exactly like a host doing
//! both in a single plan.

use pov_sim::{ChurnPlan, Time};
use pov_topology::HostId;
use proptest::prelude::*;

/// An arbitrary small plan: failures and joins over hosts 0..n at
/// times 0..40.
fn arb_plan(n: u32) -> impl Strategy<Value = ChurnPlan> {
    (
        prop::collection::vec((0u64..40, 0..n), 0..12),
        prop::collection::vec((0u64..40, 0..n), 0..12),
    )
        .prop_map(|(fails, joins)| {
            let mut plan = ChurnPlan::none();
            for (t, h) in fails {
                plan = plan.with_failure(Time(t), HostId(h));
            }
            for (t, h) in joins {
                plan = plan.with_join(Time(t), HostId(h));
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) and merge(b, a) produce identical event streams —
    /// the combinator is order-deterministic, so "uniform failures +
    /// flash crowd" is one plan no matter how a caller stacks them.
    #[test]
    fn merge_is_commutative(a in arb_plan(16), b in arb_plan(16)) {
        let ab = a.clone().merge(b.clone());
        let ba = b.merge(a);
        prop_assert_eq!(&ab.failures, &ba.failures);
        prop_assert_eq!(&ab.joins, &ba.joins);
    }

    /// Merging is associative up to the canonical event order, and
    /// merging a plan with the empty plan is the identity.
    #[test]
    fn merge_has_identity_and_associativity(
        a in arb_plan(16),
        b in arb_plan(16),
        c in arb_plan(16),
    ) {
        // Identity up to the canonical event order merge normalizes to.
        let canonical = |plan: &ChurnPlan| {
            let mut fails = plan.failures.clone();
            fails.sort_by_key(|&(t, h)| (t, h.0));
            fails.dedup();
            let mut joins = plan.joins.clone();
            joins.sort_by_key(|&(t, h)| (t, h.0));
            joins.dedup();
            (fails, joins)
        };
        let with_none = a.clone().merge(ChurnPlan::none());
        prop_assert_eq!(canonical(&with_none), canonical(&a));
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.merge(b.merge(c));
        prop_assert_eq!(&left.failures, &right.failures);
        prop_assert_eq!(&left.joins, &right.joins);
    }

    /// The merged stream is sorted by (time, host) within each event
    /// class — the canonical order the engine and slicers rely on.
    #[test]
    fn merge_yields_canonical_order(a in arb_plan(16), b in arb_plan(16)) {
        let merged = a.merge(b);
        for events in [&merged.failures, &merged.joins] {
            prop_assert!(events
                .windows(2)
                .all(|w| (w[0].0, w[0].1 .0) <= (w[1].0, w[1].1 .0)));
        }
    }

    /// `initially_dead` round-trips through merge: splitting a plan's
    /// events arbitrarily across two plans and merging them back
    /// changes nothing about who starts dead. In particular, a host
    /// failing in plan A and rejoining in plan B starts alive (its
    /// first event is the failure), while a join-first host stays dead.
    #[test]
    fn initially_dead_round_trips_through_merge(
        plan in arb_plan(16),
        mask in prop::collection::vec(0u8..2, 24),
    ) {
        let whole: Vec<HostId> = plan.initially_dead().collect();
        let picked = |i: usize| mask[i % mask.len()] == 1;
        let mut a = ChurnPlan::none();
        let mut b = ChurnPlan::none();
        for (i, &(t, h)) in plan.failures.iter().enumerate() {
            let target = if picked(i) { &mut a } else { &mut b };
            *target = target.clone().with_failure(t, h);
        }
        for (i, &(t, h)) in plan.joins.iter().enumerate() {
            let target = if picked(i + 7) { &mut a } else { &mut b };
            *target = target.clone().with_join(t, h);
        }
        let merged = a.merge(b);
        let mut split: Vec<HostId> = merged.initially_dead().collect();
        let mut whole = whole;
        split.sort_by_key(|h| h.0);
        whole.sort_by_key(|h| h.0);
        prop_assert_eq!(split, whole);
    }

    /// Stacking an oscillating plan on top of uniform failures keeps
    /// both schedules intact: every event of each constituent appears
    /// in the merge.
    #[test]
    fn merged_regimes_preserve_constituents(seed in 0u64..500) {
        let uniform =
            ChurnPlan::uniform_failures(40, 6, Time(0), Time(30), HostId(0), seed);
        let osc =
            ChurnPlan::oscillating(40, 4, Time(0), Time(30), 10, 4, HostId(0), seed ^ 1);
        let merged = uniform.clone().merge(osc.clone());
        for &(t, h) in uniform.failures.iter().chain(&osc.failures) {
            prop_assert!(merged.failures.contains(&(t, h)));
        }
        for &(t, h) in &osc.joins {
            prop_assert!(merged.joins.contains(&(t, h)));
        }
    }
}
