//! The ORACLE of §6.2: an omniscient observer that replays the
//! simulator's membership trace and computes the Single-Site-Validity
//! bounds against which every protocol is judged.
//!
//! *"As a frame of reference, an ORACLE was devised that observes all
//! events in G. The ORACLE detects reachability of each host from `hq`,
//! and using this information it computes `HC` and `HU` as the lower and
//! upper bounds of Single-Site Validity. Clearly, such an ORACLE is not
//! feasible in practice."*
//!
//! * [`HostSets`] — `HC` (hosts with a stable path to `hq` over the
//!   whole query interval) and `HU` (hosts alive at some instant of it);
//! * [`Verdict`] — whether a declared value `v` equals `q(H)` for some
//!   `HC ⊆ H ⊆ HU` (§4.1), with interval bounds per aggregate;
//! * [`metrics`] — the §2.4 post-hoc validity metrics (Completeness,
//!   Relative Error).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
pub mod metrics;
pub mod semantics;
mod verdict;

pub use bounds::{host_sets, HostSets};
pub use semantics::{interval_bounds, interval_sets, interval_valid, snapshot_valid};
pub use verdict::{aggregate_bounds, Verdict};

#[cfg(test)]
mod smoke {
    use super::*;
    use pov_sim::{ChurnPlan, Ctx, NodeLogic, SimBuilder, Time};
    use pov_topology::{generators::special, HostId};

    struct Idle;
    impl NodeLogic for Idle {
        type Msg = ();
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
    }

    #[test]
    fn crate_root_smoke() {
        let g = special::chain(4);
        let mut sim = SimBuilder::new(g.clone())
            .churn(ChurnPlan::none().with_failure(Time(1), HostId(1)))
            .build(|_| Idle);
        sim.run_until(Time(10));
        let sets = host_sets(&g, sim.trace(), HostId(0), Time(0), Time(10));
        // Host 1 died mid-interval: hosts 2 and 3 lose their stable path.
        assert_eq!(sets.hc_len(), 1);
        assert_eq!(sets.hu_len(), 4);
    }
}
