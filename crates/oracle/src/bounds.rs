//! Computing `HC` and `HU` from a ground-truth trace.

use pov_sim::{Time, Trace};
use pov_topology::{analysis, Graph, HostId};

/// The Single-Site-Validity host sets for a query interval `[start, end]`
/// observed from `hq`.
#[derive(Clone, Debug)]
pub struct HostSets {
    /// `HC`: hosts with at least one *stable path* to `hq` — a path whose
    /// every host (and hence every edge) stayed alive during the whole
    /// interval (§4.1). Contains `hq` itself iff `hq` survived.
    pub hc: Vec<bool>,
    /// `HU`: hosts alive at some instant of the interval.
    pub hu: Vec<bool>,
}

impl HostSets {
    /// Hosts in `HC`, ascending.
    pub fn hc_hosts(&self) -> Vec<HostId> {
        collect(&self.hc)
    }

    /// Hosts in `HU`, ascending.
    pub fn hu_hosts(&self) -> Vec<HostId> {
        collect(&self.hu)
    }

    /// `|HC|`.
    pub fn hc_len(&self) -> usize {
        self.hc.iter().filter(|&&b| b).count()
    }

    /// `|HU|`.
    pub fn hu_len(&self) -> usize {
        self.hu.iter().filter(|&&b| b).count()
    }

    /// Attribute values of the `HC` hosts.
    pub fn hc_values(&self, values: &[u64]) -> Vec<u64> {
        self.hc
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| values[i])
            .collect()
    }

    /// Attribute values of the `HU` hosts.
    pub fn hu_values(&self, values: &[u64]) -> Vec<u64> {
        self.hu
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| values[i])
            .collect()
    }
}

fn collect(flags: &[bool]) -> Vec<HostId> {
    flags
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b)
        .map(|(i, _)| HostId(i as u32))
        .collect()
}

/// Compute `HC` and `HU` for the interval `[start, end]`.
///
/// `HC` is found by one BFS from `hq` over the subgraph induced by hosts
/// alive *throughout* the interval: a path in that subgraph is exactly a
/// stable path. The invariant `HC ⊆ HU` always holds (stable hosts are in
/// particular alive at some instant).
pub fn host_sets(graph: &Graph, trace: &Trace, hq: HostId, start: Time, end: Time) -> HostSets {
    let throughout = trace.alive_throughout(start, end);
    let hu = trace.alive_sometime(start, end);
    let dist = analysis::bfs_distances_filtered(graph, hq, |h| throughout[h.index()]);
    let hc = dist.iter().map(|&d| d != analysis::UNREACHABLE).collect();
    HostSets { hc, hu }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_sim::{ChurnPlan, Medium, NodeLogic, SimBuilder};
    use pov_topology::generators::special;

    /// Minimal do-nothing logic so we can run churn through the engine
    /// and harvest its trace.
    struct Idle;
    impl NodeLogic for Idle {
        type Msg = ();
        fn on_message(&mut self, _: &mut pov_sim::Ctx<'_, ()>, _: HostId, _: ()) {}
    }

    fn trace_for(graph: &pov_topology::Graph, churn: ChurnPlan, end: Time) -> Trace {
        let mut sim = SimBuilder::new(graph.clone())
            .medium(Medium::PointToPoint)
            .churn(churn)
            .build(|_| Idle);
        sim.run_until(end);
        sim.trace().clone()
    }

    #[test]
    fn no_churn_everything_in_both_sets() {
        let g = special::cycle(6);
        let trace = trace_for(&g, ChurnPlan::none(), Time(10));
        let sets = host_sets(&g, &trace, HostId(0), Time(0), Time(10));
        assert_eq!(sets.hc_len(), 6);
        assert_eq!(sets.hu_len(), 6);
    }

    #[test]
    fn failed_host_leaves_hc_but_stays_in_hu() {
        let g = special::cycle(6);
        let churn = ChurnPlan::none().with_failure(Time(5), HostId(3));
        let trace = trace_for(&g, churn, Time(10));
        let sets = host_sets(&g, &trace, HostId(0), Time(0), Time(10));
        assert!(!sets.hc[3]);
        assert!(sets.hu[3]);
        // On a cycle the others remain connected around the gap.
        assert_eq!(sets.hc_len(), 5);
        assert_eq!(sets.hu_len(), 6);
    }

    #[test]
    fn cut_vertex_failure_strands_downstream_hosts() {
        // Chain 0-1-2-3: host 1 dies; hosts 2,3 are alive but have no
        // stable path to hq = 0.
        let g = special::chain(4);
        let churn = ChurnPlan::none().with_failure(Time(2), HostId(1));
        let trace = trace_for(&g, churn, Time(10));
        let sets = host_sets(&g, &trace, HostId(0), Time(0), Time(10));
        assert_eq!(sets.hc_hosts(), vec![HostId(0)]);
        assert_eq!(sets.hu_len(), 4);
    }

    #[test]
    fn hq_failure_empties_hc() {
        let g = special::cycle(4);
        let churn = ChurnPlan::none().with_failure(Time(1), HostId(0));
        let trace = trace_for(&g, churn, Time(10));
        let sets = host_sets(&g, &trace, HostId(0), Time(0), Time(10));
        assert_eq!(sets.hc_len(), 0);
        assert_eq!(sets.hu_len(), 4);
    }

    #[test]
    fn join_mid_interval_in_hu_not_hc() {
        let g = special::cycle(4);
        let churn = ChurnPlan::none().with_join(Time(5), HostId(2));
        let trace = trace_for(&g, churn, Time(10));
        let sets = host_sets(&g, &trace, HostId(0), Time(0), Time(10));
        assert!(!sets.hc[2], "late joiner has no stable path over [0,10]");
        assert!(sets.hu[2]);
        // But over a window after the join it is stable.
        let sets = host_sets(&g, &trace, HostId(0), Time(6), Time(10));
        assert!(sets.hc[2]);
    }

    #[test]
    fn hc_subset_of_hu_under_heavy_churn() {
        let g = pov_topology::generators::random_average_degree(200, 4.0, 9);
        let churn = ChurnPlan::uniform_failures(200, 60, Time(0), Time(20), HostId(0), 3);
        let trace = trace_for(&g, churn, Time(30));
        let sets = host_sets(&g, &trace, HostId(0), Time(0), Time(30));
        for i in 0..200 {
            assert!(!sets.hc[i] || sets.hu[i], "HC ⊄ HU at host {i}");
        }
        assert!(sets.hc_len() <= 140);
        assert_eq!(sets.hu_len(), 200);
    }

    #[test]
    fn values_projection() {
        let g = special::chain(3);
        let churn = ChurnPlan::none().with_failure(Time(1), HostId(1));
        let trace = trace_for(&g, churn, Time(5));
        let sets = host_sets(&g, &trace, HostId(0), Time(0), Time(5));
        let values = [10u64, 20, 30];
        assert_eq!(sets.hc_values(&values), vec![10]);
        assert_eq!(sets.hu_values(&values), vec![10, 20, 30]);
    }
}
