//! Deciding whether a declared value satisfies Single-Site Validity.

use crate::bounds::HostSets;
use pov_protocols::Aggregate;

/// Tolerance for floating-point membership checks (declared values come
/// back as `f64` even when exact).
const EPS: f64 = 1e-9;

/// The valid range `[lo, hi]` such that `v = q(H)` for some
/// `HC ⊆ H ⊆ HU` implies `lo ≤ v ≤ hi`.
///
/// * `count`/`sum`: monotone in the host set, so the range is exactly
///   `[q(HC), q(HU)]`.
/// * `min`: adding hosts can only lower the minimum, so
///   `[min(HU), min(HC)]`; symmetric for `max`.
/// * `average`: extremal averages are reached by greedily adjoining
///   `HU \ HC` hosts with values below (resp. above) the running mean.
///
/// Returns `None` when no valid `H` can produce a defined answer (e.g.
/// `min` with `HU = ∅`).
pub fn aggregate_bounds(
    aggregate: Aggregate,
    sets: &HostSets,
    values: &[u64],
) -> Option<(f64, f64)> {
    let hc = sets.hc_values(values);
    let hu = sets.hu_values(values);
    match aggregate {
        Aggregate::Count => Some((hc.len() as f64, hu.len() as f64)),
        Aggregate::Sum => Some((hc.iter().sum::<u64>() as f64, hu.iter().sum::<u64>() as f64)),
        Aggregate::Min => {
            let lo = hu.iter().min().copied()? as f64;
            // H ⊇ HC forces min(H) ≤ min(HC); with empty HC any single
            // HU host is a valid H, so the upper end is max(HU).
            let hi = match hc.iter().min() {
                Some(&m) => m as f64,
                None => *hu.iter().max().expect("hu non-empty") as f64,
            };
            Some((lo, hi))
        }
        Aggregate::Max => {
            let hi = hu.iter().max().copied()? as f64;
            let lo = match hc.iter().max() {
                Some(&m) => m as f64,
                None => *hu.iter().min().expect("hu non-empty") as f64,
            };
            Some((lo, hi))
        }
        Aggregate::Average => {
            if hu.is_empty() {
                return None;
            }
            let extras: Vec<u64> = sets
                .hu
                .iter()
                .zip(&sets.hc)
                .enumerate()
                .filter(|&(_, (&in_hu, &in_hc))| in_hu && !in_hc)
                .map(|(i, _)| values[i])
                .collect();
            Some((
                extremal_average(&hc, &extras, false),
                extremal_average(&hc, &extras, true),
            ))
        }
    }
}

/// Greedy extremal average: start from the mandatory `base` multiset and
/// adjoin optional values while they push the mean in the requested
/// direction. With an empty base the first optional value is always
/// taken (the host set must be non-empty for `avg` to be defined).
fn extremal_average(base: &[u64], optional: &[u64], maximize: bool) -> f64 {
    let mut sorted: Vec<u64> = optional.to_vec();
    sorted.sort_unstable();
    if maximize {
        sorted.reverse();
    }
    let mut sum: f64 = base.iter().map(|&v| v as f64).sum();
    let mut n = base.len() as f64;
    for &v in &sorted {
        let v = v as f64;
        if n == 0.0 {
            sum += v;
            n += 1.0;
            continue;
        }
        let improves = if maximize { v > sum / n } else { v < sum / n };
        if improves {
            sum += v;
            n += 1.0;
        } else {
            break;
        }
    }
    if n == 0.0 {
        f64::NAN
    } else {
        sum / n
    }
}

/// The oracle's judgement of a declared value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verdict {
    /// Whether `v` lies inside the Single-Site-Validity range — what the
    /// paper's Figs 7–9 check visually against the ORACLE curves.
    pub within_bounds: bool,
    /// The valid range, if any valid `H` yields a defined answer.
    pub bounds: Option<(f64, f64)>,
    /// For min/max only: whether `v` additionally equals some `HU`
    /// host's attribute value (the strict set-semantics requirement).
    pub witnessed: Option<bool>,
    /// Smallest factor `f ≥ 1` with `lo/f ≤ v ≤ hi·f` — the Approximate
    /// Single-Site-Validity slack (Thm 5.3 guarantees WILDFIRE stays
    /// within factor `c` with probability `1 − 2/c`). `None` when
    /// undefined (no bounds, or `v ≤ 0` with positive bounds).
    pub approx_factor: Option<f64>,
}

impl Verdict {
    /// Judge a declared value against the oracle's host sets.
    pub fn judge(aggregate: Aggregate, sets: &HostSets, values: &[u64], v: f64) -> Verdict {
        let bounds = aggregate_bounds(aggregate, sets, values);
        let within_bounds = match bounds {
            Some((lo, hi)) => v >= lo - EPS && v <= hi + EPS,
            None => false,
        };
        let witnessed = match aggregate {
            Aggregate::Min | Aggregate::Max => Some(
                sets.hu_values(values)
                    .iter()
                    .any(|&w| (w as f64 - v).abs() < EPS),
            ),
            _ => None,
        };
        let approx_factor = bounds.and_then(|(lo, hi)| {
            if v <= 0.0 {
                // A non-positive estimate of a positive quantity has no
                // finite multiplicative slack (unless the bounds allow 0).
                return (lo <= EPS).then_some(1.0);
            }
            let need_low = if v < lo { lo / v } else { 1.0 };
            let need_high = if v > hi {
                if hi <= EPS {
                    return None;
                }
                v / hi
            } else {
                1.0
            };
            Some(need_low.max(need_high))
        });
        Verdict {
            within_bounds,
            bounds,
            witnessed,
            approx_factor,
        }
    }

    /// Strict Single-Site Validity: inside the bounds, and for min/max
    /// the value is witnessed by a real host.
    pub fn is_valid(&self) -> bool {
        self.within_bounds && self.witnessed.unwrap_or(true)
    }

    /// Approximate Single-Site Validity within factor `c` (Thm 5.3).
    pub fn is_approx_valid(&self, c: f64) -> bool {
        self.approx_factor.is_some_and(|f| f <= c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::HostSets;

    /// Hand-built sets: hosts 0..n with `hc`/`hu` membership lists.
    fn sets(n: usize, hc: &[usize], hu: &[usize]) -> HostSets {
        let mut s = HostSets {
            hc: vec![false; n],
            hu: vec![false; n],
        };
        for &i in hc {
            s.hc[i] = true;
        }
        for &i in hu {
            s.hu[i] = true;
        }
        s
    }

    #[test]
    fn count_bounds() {
        let s = sets(5, &[0, 1], &[0, 1, 2, 3]);
        let values = [1u64; 5];
        let b = aggregate_bounds(Aggregate::Count, &s, &values).unwrap();
        assert_eq!(b, (2.0, 4.0));
        assert!(Verdict::judge(Aggregate::Count, &s, &values, 3.0).is_valid());
        assert!(!Verdict::judge(Aggregate::Count, &s, &values, 1.0).is_valid());
        assert!(!Verdict::judge(Aggregate::Count, &s, &values, 5.0).is_valid());
    }

    #[test]
    fn sum_bounds() {
        let values = [10u64, 20, 30, 40, 50];
        let s = sets(5, &[0, 1], &[0, 1, 2, 3]);
        let b = aggregate_bounds(Aggregate::Sum, &s, &values).unwrap();
        assert_eq!(b, (30.0, 100.0));
    }

    #[test]
    fn min_bounds_and_witness() {
        let values = [10u64, 20, 30, 5, 50];
        // HC = {1, 2} (min 20); HU adds host 3 (value 5).
        let s = sets(5, &[1, 2], &[1, 2, 3]);
        let b = aggregate_bounds(Aggregate::Min, &s, &values).unwrap();
        assert_eq!(b, (5.0, 20.0));
        // 20 and 5 are valid minima; 30 exceeds min(HC); 7 is in range
        // but no host holds 7 → fails the witness test.
        assert!(Verdict::judge(Aggregate::Min, &s, &values, 20.0).is_valid());
        assert!(Verdict::judge(Aggregate::Min, &s, &values, 5.0).is_valid());
        assert!(!Verdict::judge(Aggregate::Min, &s, &values, 30.0).is_valid());
        let v7 = Verdict::judge(Aggregate::Min, &s, &values, 7.0);
        assert!(v7.within_bounds && !v7.is_valid());
    }

    #[test]
    fn max_bounds() {
        let values = [10u64, 20, 30, 5, 50];
        let s = sets(5, &[1, 2], &[1, 2, 4]);
        let b = aggregate_bounds(Aggregate::Max, &s, &values).unwrap();
        assert_eq!(b, (30.0, 50.0));
        assert!(Verdict::judge(Aggregate::Max, &s, &values, 50.0).is_valid());
        assert!(!Verdict::judge(Aggregate::Max, &s, &values, 20.0).is_valid());
    }

    #[test]
    fn average_bounds_greedy() {
        let values = [10u64, 20, 90, 2, 50];
        // HC = {1} (avg 20). Extras: 0 (10), 2 (90), 3 (2), 4 (50).
        let s = sets(5, &[1], &[0, 1, 2, 3, 4]);
        let (lo, hi) = aggregate_bounds(Aggregate::Average, &s, &values).unwrap();
        // Min avg: take 2 then 10: (20+2+10)/3 = 32/3 ≈ 10.67 (50 and 90
        // would raise it again, so the greedy stops).
        assert!((lo - 32.0 / 3.0).abs() < 1e-9, "lo = {lo}");
        // Max avg: take 90 → (20+90)/2 = 55; adjoining 50 < 55 would
        // lower the mean, so the greedy stops at 55.
        assert!((hi - 55.0).abs() < 1e-9, "hi = {hi}");
    }

    #[test]
    fn average_with_empty_hc() {
        let values = [10u64, 40];
        let s = sets(2, &[], &[0, 1]);
        let (lo, hi) = aggregate_bounds(Aggregate::Average, &s, &values).unwrap();
        assert_eq!((lo, hi), (10.0, 40.0));
    }

    #[test]
    fn min_with_empty_everything() {
        let s = sets(3, &[], &[]);
        assert!(aggregate_bounds(Aggregate::Min, &s, &[1, 2, 3]).is_none());
        let v = Verdict::judge(Aggregate::Min, &s, &[1, 2, 3], 1.0);
        assert!(!v.within_bounds);
    }

    #[test]
    fn count_with_empty_hc_accepts_zero() {
        let s = sets(3, &[], &[0, 1]);
        let v = Verdict::judge(Aggregate::Count, &s, &[1, 1, 1], 0.0);
        assert!(v.is_valid(), "empty H is allowed when HC = ∅");
    }

    #[test]
    fn approx_factor() {
        let s = sets(10, &[0, 1, 2, 3], &[0, 1, 2, 3, 4, 5]);
        let values = [1u64; 10];
        // Bounds [4, 6]. v = 12 needs factor 2 on the high side.
        let v = Verdict::judge(Aggregate::Count, &s, &values, 12.0);
        assert!(!v.within_bounds);
        assert!((v.approx_factor.unwrap() - 2.0).abs() < 1e-9);
        assert!(v.is_approx_valid(2.0));
        assert!(!v.is_approx_valid(1.5));
        // v = 1 needs factor 4 on the low side.
        let v = Verdict::judge(Aggregate::Count, &s, &values, 1.0);
        assert!((v.approx_factor.unwrap() - 4.0).abs() < 1e-9);
        // In-bounds values need factor 1.
        let v = Verdict::judge(Aggregate::Count, &s, &values, 5.0);
        assert_eq!(v.approx_factor, Some(1.0));
    }

    #[test]
    fn zero_estimate_of_positive_quantity() {
        let s = sets(4, &[0, 1], &[0, 1, 2]);
        let v = Verdict::judge(Aggregate::Count, &s, &[1; 4], 0.0);
        assert!(!v.within_bounds);
        assert_eq!(v.approx_factor, None);
    }
}
