//! The full §4 semantics hierarchy, as checkable predicates.
//!
//! The paper defines three correctness conditions and proves the first
//! two unachievable (Theorems 4.1, 4.2) before settling on the third:
//!
//! * **Snapshot Validity** — `v = q(H_t)` for some instant `t ∈ [0, T]`;
//! * **Interval Validity** — `v = q(H)` for some `HI ⊆ H ⊆ HU`, where
//!   `HI = ∩ H_t` (alive throughout) and `HU = ∪ H_t`;
//! * **Single-Site Validity** — as Interval, but with the lower set
//!   relaxed to `HC ⊆ HI`, the hosts with a *stable path* to `hq`.
//!
//! `HC ⊆ HI ⊆ HU`, so the conditions are strictly ordered:
//! snapshot-valid ⟹ interval-valid ⟹ single-site-valid. These checkers
//! let tests demonstrate the separations constructively — e.g. WILDFIRE
//! under a partition returns answers that are single-site valid but
//! *not* interval valid, which is exactly why Theorem 4.2 rules interval
//! validity out.

use crate::bounds::HostSets;
use crate::verdict::{aggregate_bounds, Verdict};
use pov_protocols::Aggregate;
use pov_sim::{Time, Trace};

/// Tolerance for floating-point comparisons against exact aggregates.
const EPS: f64 = 1e-9;

/// The Interval-Validity host sets `HI = ∩ H_t` and `HU = ∪ H_t` over
/// `[start, end]` (§4.1). Note no connectivity enters: a host counts for
/// `HI` merely by staying alive, even if unreachable.
pub fn interval_sets(trace: &Trace, start: Time, end: Time) -> HostSets {
    HostSets {
        hc: trace.alive_throughout(start, end),
        hu: trace.alive_sometime(start, end),
    }
}

/// Whether `v` is Interval Valid: `v = q(H)` for some `HI ⊆ H ⊆ HU`.
/// (Reuses the Single-Site bound machinery with `HI` as the lower set.)
pub fn interval_valid(
    aggregate: Aggregate,
    trace: &Trace,
    values: &[u64],
    start: Time,
    end: Time,
    v: f64,
) -> bool {
    let sets = interval_sets(trace, start, end);
    Verdict::judge(aggregate, &sets, values, v).is_valid()
}

/// The Interval-Validity bounds `[q(HI)-side, q(HU)-side]`.
pub fn interval_bounds(
    aggregate: Aggregate,
    trace: &Trace,
    values: &[u64],
    start: Time,
    end: Time,
) -> Option<(f64, f64)> {
    let sets = interval_sets(trace, start, end);
    aggregate_bounds(aggregate, &sets, values)
}

/// Whether `v` is Snapshot Valid: `v = q(H_t)` for some `t ∈ [start, end]`
/// (§4.1's strictest condition). Only membership-change instants need
/// checking — `H_t` is piecewise constant between events.
pub fn snapshot_valid(
    aggregate: Aggregate,
    trace: &Trace,
    values: &[u64],
    start: Time,
    end: Time,
    v: f64,
) -> bool {
    let mut instants: Vec<Time> = vec![start];
    instants.extend(
        trace
            .events
            .iter()
            .map(|e| e.time())
            .filter(|&t| t > start && t <= end),
    );
    for t in instants {
        let alive = trace.alive_at(t);
        let snapshot: Vec<u64> = alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| values[i])
            .collect();
        if let Some(q) = aggregate.ground_truth(&snapshot) {
            if (q - v).abs() < EPS {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pov_sim::{ChurnPlan, Ctx, NodeLogic, SimBuilder};
    use pov_topology::generators::special;
    use pov_topology::HostId;

    struct Idle;
    impl NodeLogic for Idle {
        type Msg = ();
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
    }

    fn trace_with(churn: ChurnPlan, n: usize, end: Time) -> Trace {
        let mut sim = SimBuilder::new(special::chain(n))
            .churn(churn)
            .build(|_| Idle);
        sim.run_until(end);
        sim.trace().clone()
    }

    #[test]
    fn snapshot_checks_every_membership_epoch() {
        // 4 hosts, one fails at t=5: counts 4 (before) and 3 (after) are
        // snapshot-valid; nothing else is.
        let churn = ChurnPlan::none().with_failure(Time(5), HostId(2));
        let trace = trace_with(churn, 4, Time(10));
        let values = [1u64; 4];
        for (v, ok) in [(4.0, true), (3.0, true), (2.0, false), (3.5, false)] {
            assert_eq!(
                snapshot_valid(Aggregate::Count, &trace, &values, Time(0), Time(10), v),
                ok,
                "v = {v}"
            );
        }
    }

    #[test]
    fn interval_admits_what_snapshot_rejects() {
        // Two hosts fail at different times: H_t is {4},{3},{2}-sized, so
        // count = 2 and 4 are snapshots; interval validity additionally
        // admits any H with HI ⊆ H ⊆ HU — e.g. dropping only one of the
        // two departed hosts (count 3) is interval valid and also a
        // snapshot here; but the *sum* distinguishes them.
        let values = [10u64, 20, 30, 40];
        let churn = ChurnPlan::none()
            .with_failure(Time(3), HostId(1))
            .with_failure(Time(6), HostId(2));
        let trace = trace_with(churn, 4, Time(10));
        // Sum snapshots: 100 (all), 80 (minus h1), 50 (minus h1,h2).
        assert!(snapshot_valid(
            Aggregate::Sum,
            &trace,
            &values,
            Time(0),
            Time(10),
            80.0
        ));
        assert!(!snapshot_valid(
            Aggregate::Sum,
            &trace,
            &values,
            Time(0),
            Time(10),
            70.0
        ));
        // 70 = drop h2 only — never a snapshot, but a legal interval set
        // (HI = {0,3} ⊆ {0,1,3} ⊆ HU).
        assert!(interval_valid(
            Aggregate::Sum,
            &trace,
            &values,
            Time(0),
            Time(10),
            70.0
        ));
    }

    #[test]
    fn hierarchy_nests() {
        // Every snapshot-valid count is interval valid; every interval-
        // valid count is single-site valid (HC ⊆ HI).
        let values = [1u64; 6];
        let churn = ChurnPlan::none()
            .with_failure(Time(2), HostId(4))
            .with_failure(Time(7), HostId(5));
        let trace = trace_with(churn, 6, Time(12));
        let (lo_i, hi_i) =
            interval_bounds(Aggregate::Count, &trace, &values, Time(0), Time(12)).unwrap();
        assert_eq!((lo_i, hi_i), (4.0, 6.0));
        for v in [4.0, 5.0, 6.0] {
            if snapshot_valid(Aggregate::Count, &trace, &values, Time(0), Time(12), v) {
                assert!(interval_valid(
                    Aggregate::Count,
                    &trace,
                    &values,
                    Time(0),
                    Time(12),
                    v
                ));
            }
        }
    }

    #[test]
    fn theorem_4_2_separation_single_site_but_not_interval() {
        // Chain 0-1-2-3: the cut vertex h1 dies at t=0. Hosts 2,3 stay
        // alive (they are in HI) but are unreachable from h0 (not in HC).
        // The answer v = 1 (only h0) is single-site valid — and NOT
        // interval valid, because every legal interval set contains
        // HI ⊇ {0,2,3}. This is the gap Theorem 4.2 exploits.
        let churn = ChurnPlan::none().with_failure(Time(0), HostId(1));
        let n = 4;
        let mut sim = SimBuilder::new(special::chain(n))
            .churn(churn)
            .build(|_| Idle);
        sim.run_until(Time(10));
        let trace = sim.trace().clone();
        let values = [1u64; 4];

        let ssv_sets = crate::host_sets(&special::chain(n), &trace, HostId(0), Time(0), Time(10));
        let ssv = Verdict::judge(Aggregate::Count, &ssv_sets, &values, 1.0);
        assert!(ssv.is_valid(), "v=1 is single-site valid");
        assert!(
            !interval_valid(Aggregate::Count, &trace, &values, Time(0), Time(10), 1.0),
            "v=1 is NOT interval valid (HI has 3 hosts)"
        );
        assert!(
            !snapshot_valid(Aggregate::Count, &trace, &values, Time(0), Time(10), 1.0),
            "v=1 is NOT snapshot valid either"
        );
    }
}
