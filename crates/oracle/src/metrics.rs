//! The post-hoc validity metrics of §2.4.
//!
//! *"Completeness or Relative Error have been used to measure the
//! validity of query results... These are essentially validity metrics
//! that can only be computed by an Oracle (with a perfect view of the
//! dynamic network) post processing."*

/// Completeness \[14\]: the fraction of relevant hosts whose data
/// contributed to the result. For count-like queries the natural proxy —
/// and the one we report — is `v / |reference|`, clamped to `\[0, 1\]`.
pub fn completeness(contributed: f64, reference: usize) -> f64 {
    if reference == 0 {
        return 1.0;
    }
    (contributed / reference as f64).clamp(0.0, 1.0)
}

/// Relative Error \[7,40\]: `|v̂/v − 1|` where `v̂` is reported and `v` is
/// the oracle's true value. Returns `None` when the truth is 0 (the
/// metric is undefined there).
pub fn relative_error(reported: f64, truth: f64) -> Option<f64> {
    if truth == 0.0 {
        None
    } else {
        Some((reported / truth - 1.0).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completeness_basics() {
        assert_eq!(completeness(50.0, 100), 0.5);
        assert_eq!(completeness(120.0, 100), 1.0); // overestimates clamp
        assert_eq!(completeness(0.0, 100), 0.0);
        assert_eq!(completeness(0.0, 0), 1.0); // nothing to miss
    }

    #[test]
    fn relative_error_basics() {
        let e = relative_error(110.0, 100.0).unwrap();
        assert!((e - 0.1).abs() < 1e-12);
        let e = relative_error(90.0, 100.0).unwrap();
        assert!((e - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(100.0, 100.0), Some(0.0));
        assert_eq!(relative_error(5.0, 0.0), None);
    }
}
