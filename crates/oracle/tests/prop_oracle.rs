//! Property-based tests for the oracle: bounds nest, verdicts accept
//! exactly the achievable aggregate values.

use pov_oracle::{aggregate_bounds, host_sets, Verdict};
use pov_protocols::Aggregate;
use pov_sim::{ChurnPlan, Ctx, NodeLogic, SimBuilder, Time};
use pov_topology::{analysis, GraphBuilder, HostId};
use proptest::prelude::*;

struct Idle;
impl NodeLogic for Idle {
    type Msg = ();
    fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: HostId, _: ()) {}
}

#[derive(Debug, Clone)]
struct World {
    graph: pov_topology::Graph,
    values: Vec<u64>,
    churn: ChurnPlan,
}

fn world(max_n: u32) -> impl Strategy<Value = World> {
    (3..max_n)
        .prop_flat_map(move |n| {
            (
                Just(n),
                prop::collection::vec((0..n, 0..n), 1..(2 * n as usize)),
                prop::collection::vec(10u64..500, n as usize),
                prop::collection::vec((0u32..max_n, 0u64..20), 0..(n as usize)),
            )
        })
        .prop_map(|(n, es, values, fails)| {
            let mut b = GraphBuilder::with_hosts(n as usize);
            b.add_edge(HostId(0), HostId(1));
            for (a, bb) in es {
                b.add_edge(HostId(a), HostId(bb));
            }
            let (graph, _) = analysis::connect_components(&b.build());
            let mut churn = ChurnPlan::none();
            for (h, t) in fails {
                churn = churn.with_failure(Time(t), HostId(h % n));
            }
            World {
                graph,
                values,
                churn,
            }
        })
}

fn sets_for(w: &World, end: Time) -> pov_oracle::HostSets {
    let mut sim = SimBuilder::new(w.graph.clone())
        .churn(w.churn.clone())
        .build(|_| Idle);
    sim.run_until(end);
    host_sets(&w.graph, sim.trace(), HostId(0), Time::ZERO, end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hc_nested_in_hu(w in world(20), end in 1u64..25) {
        let sets = sets_for(&w, Time(end));
        for i in 0..w.graph.num_hosts() {
            prop_assert!(!sets.hc[i] || sets.hu[i]);
        }
        prop_assert!(sets.hc_len() <= sets.hu_len());
    }

    #[test]
    fn hc_shrinks_with_longer_intervals(w in world(16)) {
        let early = sets_for(&w, Time(2));
        let late = sets_for(&w, Time(20));
        // More time ⇒ more failures observed ⇒ HC can only shrink.
        for i in 0..w.graph.num_hosts() {
            prop_assert!(!late.hc[i] || early.hc[i], "HC grew at host {i}");
        }
    }

    #[test]
    fn bounds_are_ordered(w in world(16), end in 1u64..25) {
        let sets = sets_for(&w, Time(end));
        for aggregate in [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Average,
        ] {
            if let Some((lo, hi)) = aggregate_bounds(aggregate, &sets, &w.values) {
                prop_assert!(lo <= hi + 1e-9, "{aggregate:?}: {lo} > {hi}");
            }
        }
    }

    #[test]
    fn endpoints_are_valid_answers(w in world(16), end in 1u64..25) {
        let sets = sets_for(&w, Time(end));
        // q(HC) (take H = HC) and q(HU) (take H = HU) are always valid
        // answers for count and sum.
        let hc_vals = sets.hc_values(&w.values);
        let hu_vals = sets.hu_values(&w.values);
        for aggregate in [Aggregate::Count, Aggregate::Sum] {
            for h in [&hc_vals, &hu_vals] {
                let v = aggregate.ground_truth(h).unwrap();
                let verdict = Verdict::judge(aggregate, &sets, &w.values, v);
                prop_assert!(verdict.is_valid(), "{aggregate:?} q(H) = {v} rejected");
            }
        }
        // Same for min/max whenever defined.
        for aggregate in [Aggregate::Min, Aggregate::Max, Aggregate::Average] {
            for h in [&hc_vals, &hu_vals] {
                if let Some(v) = aggregate.ground_truth(h) {
                    let verdict = Verdict::judge(aggregate, &sets, &w.values, v);
                    prop_assert!(
                        verdict.within_bounds,
                        "{aggregate:?} q(H) = {v} outside {:?}",
                        verdict.bounds
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_values_rejected(w in world(16), end in 1u64..25) {
        let sets = sets_for(&w, Time(end));
        // A count beyond |HU| (or a sum beyond sum(HU)) is never valid.
        let hu_count = sets.hu_len() as f64;
        let verdict = Verdict::judge(Aggregate::Count, &sets, &w.values, hu_count + 1.0);
        prop_assert!(!verdict.within_bounds);
        let hu_sum: u64 = sets.hu_values(&w.values).iter().sum();
        let verdict =
            Verdict::judge(Aggregate::Sum, &sets, &w.values, hu_sum as f64 + 1.0);
        prop_assert!(!verdict.within_bounds);
    }

    #[test]
    fn approx_factor_is_one_inside_bounds(w in world(16), end in 1u64..25) {
        let sets = sets_for(&w, Time(end));
        if let Some((lo, hi)) = aggregate_bounds(Aggregate::Count, &sets, &w.values) {
            let mid = (lo + hi) / 2.0;
            if mid > 0.0 {
                let verdict = Verdict::judge(Aggregate::Count, &sets, &w.values, mid);
                prop_assert_eq!(verdict.approx_factor, Some(1.0));
            }
        }
    }
}
