//! Property tests for the batch executor's determinism contract: for
//! any scenario, seed set and thread count, the parallel report — down
//! to its JSON bytes — equals the sequential one.

use pov_core::pov_protocols::Aggregate;
use pov_core::pov_sim::{DelayModel, Medium};
use pov_core::pov_topology::generators::TopologyKind;
use pov_scenario::{run_batch, ChurnSpec, ProtocolSpec, Scenario};
use proptest::prelude::*;

fn scenario(topology_seed: u64, base_seed: u64, churn_pick: u8, proto_pick: u8) -> Scenario {
    let churn = match churn_pick % 5 {
        0 => ChurnSpec::None,
        1 => ChurnSpec::Uniform {
            fraction: 0.15,
            window: (0.0, 1.0),
        },
        2 => ChurnSpec::FlashCrowd {
            fraction: 0.2,
            window: (0.0, 0.5),
        },
        3 => ChurnSpec::Partition {
            fraction: 0.3,
            from: 0.1,
            heal: 0.7,
        },
        _ => ChurnSpec::AdversarialRoot { radius: 1, at: 0.3 },
    };
    let protocol = match proto_pick % 3 {
        0 => ProtocolSpec::Wildfire,
        1 => ProtocolSpec::SpanningTree,
        _ => ProtocolSpec::Dag { k: 2 },
    };
    Scenario {
        name: "prop".into(),
        description: String::new(),
        topology: TopologyKind::Random,
        n: 50,
        topology_seed,
        aggregate: Aggregate::Count,
        c: 8,
        hq: 0,
        d_hat_slack: 2,
        medium: Medium::PointToPoint,
        delay: DelayModel::Fixed(1),
        protocol,
        churn,
        seeds: vec![base_seed, base_seed ^ 0xabcd, base_seed.wrapping_add(7)],
        repetitions: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance gate: any thread count, byte-identical JSON.
    #[test]
    fn parallel_report_equals_sequential(
        topo_seed in 1u64..500,
        base_seed in 0u64..10_000,
        churn_pick in 0u8..5,
        proto_pick in 0u8..3,
        threads in 2usize..9,
    ) {
        let scn = scenario(topo_seed, base_seed, churn_pick, proto_pick);
        let sequential = run_batch(&scn, 1);
        let parallel = run_batch(&scn, threads);
        prop_assert_eq!(&sequential.records, &parallel.records);
        prop_assert_eq!(
            sequential.to_json().render(),
            parallel.to_json().render()
        );
    }

    /// Oversubscription (more threads than matrix cells) still covers
    /// every cell exactly once.
    #[test]
    fn more_threads_than_jobs(topo_seed in 1u64..100, threads in 7usize..32) {
        let mut scn = scenario(topo_seed, 1, 0, 0);
        scn.seeds = vec![1, 2];
        scn.repetitions = 1;
        let report = run_batch(&scn, threads);
        prop_assert_eq!(report.runs, 2);
        let cells: Vec<(u64, usize)> =
            report.records.iter().map(|r| (r.seed, r.rep)).collect();
        prop_assert_eq!(cells, vec![(1, 0), (2, 0)]);
    }
}
