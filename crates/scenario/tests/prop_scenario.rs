//! Property tests for the batch executor's determinism contract: for
//! any scenario — any churn regime, stacked partition, phased
//! membership arc, protocol list, one-shot or continuous — and any
//! thread count, the parallel report, down to its JSON bytes, equals
//! the sequential one.

use pov_core::pov_protocols::Aggregate;
use pov_core::pov_sim::{DelayModel, Medium, PhaseKind};
use pov_core::pov_topology::generators::TopologyKind;
use pov_scenario::{
    run_batch, AdversarySpec, ChurnSpec, ContinuousSpec, PartitionSpec, PhasesSpec, ProtocolSpec,
    Scenario,
};
use proptest::prelude::*;

fn scenario(topology_seed: u64, base_seed: u64, churn_pick: u8, proto_pick: u8) -> Scenario {
    let churn = match churn_pick % 8 {
        0 | 7 => ChurnSpec::None,
        1 => ChurnSpec::Uniform {
            fraction: 0.15,
            window: (0.0, 1.0),
        },
        2 => ChurnSpec::FlashCrowd {
            fraction: 0.2,
            window: (0.0, 0.5),
        },
        3 => ChurnSpec::Oscillating {
            fraction: 0.2,
            window: (0.0, 1.0),
            period: 0.5,
            downtime: 0.2,
        },
        4 => ChurnSpec::AdversarialRoot { radius: 1, at: 0.3 },
        5 => ChurnSpec::Uniform {
            fraction: 0.1,
            window: (0.2, 0.9),
        },
        // Pick 6 stacks the dynamic sketch adversary on uniform churn.
        _ => ChurnSpec::Uniform {
            fraction: 0.1,
            window: (0.0, 1.0),
        },
    };
    // Pick 7 scripts the whole regime as a phased membership arc — the
    // PhaseSchedule lowering must be as thread-agnostic as hand churn.
    let phases = (churn_pick % 8 == 7).then(|| PhasesSpec {
        start_alive: 0.7,
        phases: vec![
            (PhaseKind::Growth { fraction: 0.4 }, 1.0),
            (PhaseKind::Stable, 1.5),
            (PhaseKind::Shrink { fraction: 0.5 }, 1.0),
            (PhaseKind::Heal, 0.5),
        ],
    });
    let adversary = (churn_pick % 8 == 6).then_some(AdversarySpec {
        kills_per_wave: 2,
        budget: 8,
        start: 0.0,
        until: 0.8,
    });
    // Odd churn picks also layer a partition over the regime (except
    // the phased pick, whose schedule owns cuts itself).
    let partitions = Vec::from_iter((churn_pick % 2 == 1 && phases.is_none()).then_some(
        PartitionSpec {
            fraction: 0.3,
            from: 0.1,
            heal: 0.7,
        },
    ));
    let protocols = match proto_pick % 4 {
        0 => vec![ProtocolSpec::Wildfire],
        1 => vec![ProtocolSpec::SpanningTree],
        2 => vec![ProtocolSpec::Dag { k: 2 }],
        _ => vec![ProtocolSpec::Wildfire, ProtocolSpec::SpanningTree],
    };
    // One pick in four runs as a short continuous registration — unless
    // the dynamic adversary is in play (the executor rejects replaying
    // a dynamic kill schedule into window-local plans).
    let continuous = (proto_pick % 4 == 3 && adversary.is_none()).then_some(ContinuousSpec {
        windows: 2,
        window_factor: 1.0,
    });
    Scenario {
        name: "prop".into(),
        description: String::new(),
        topology: TopologyKind::Random,
        n: 50,
        topology_seed,
        aggregate: Aggregate::Count,
        c: 8,
        hq: 0,
        d_hat_slack: 2,
        medium: Medium::PointToPoint,
        delay: DelayModel::Fixed(1),
        protocols,
        churn,
        partitions,
        phases,
        adversary,
        continuous,
        telemetry: None,
        overlay: None,
        workload: None,
        seeds: vec![base_seed, base_seed ^ 0xabcd, base_seed.wrapping_add(7)],
        repetitions: 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance gate: any thread count, byte-identical JSON.
    #[test]
    fn parallel_report_equals_sequential(
        topo_seed in 1u64..500,
        base_seed in 0u64..10_000,
        churn_pick in 0u8..8,
        proto_pick in 0u8..4,
        threads in 2usize..9,
    ) {
        let scn = scenario(topo_seed, base_seed, churn_pick, proto_pick);
        let sequential = run_batch(&scn, 1);
        let parallel = run_batch(&scn, threads);
        for (a, b) in sequential.protocols.iter().zip(&parallel.protocols) {
            prop_assert_eq!(&a.records, &b.records);
        }
        prop_assert_eq!(
            sequential.to_json().render(),
            parallel.to_json().render()
        );
    }

    /// Oversubscription (more threads than matrix cells) still covers
    /// every cell exactly once.
    #[test]
    fn more_threads_than_jobs(topo_seed in 1u64..100, threads in 7usize..32) {
        let mut scn = scenario(topo_seed, 1, 0, 0);
        scn.seeds = vec![1, 2];
        scn.repetitions = 1;
        let report = run_batch(&scn, threads);
        prop_assert_eq!(report.runs, 2);
        let cells: Vec<(u64, usize)> =
            report.records().iter().map(|r| (r.seed, r.rep)).collect();
        prop_assert_eq!(cells, vec![(1, 0), (2, 0)]);
    }
}
