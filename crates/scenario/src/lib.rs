//! Declarative scenarios for the Price-of-Validity simulator.
//!
//! The paper evaluates under exactly one dynamism model — `R` hosts
//! removed at a uniform rate (§6.2). This crate opens the regime space
//! and makes batch evaluation a first-class, machine-readable artifact:
//!
//! * [`Scenario`] — a complete experiment description (topology, query,
//!   medium, delay, *a list of* protocols, churn regime, optional
//!   partition and continuous-window specs, seed set, repetitions),
//!   loadable from plain-text `.scn` files (see `scenarios/` at the
//!   workspace root and the README's "Scenario files" section) through
//!   a small self-contained [`parse`] layer — the offline environment
//!   has no crates.io, so the grammar is hand-rolled like the
//!   `vendor/` stand-ins. Every scenario lowers to one
//!   `pov_core::pov_protocols::RunPlan` per batch cell;
//! * [`ChurnSpec`] — regimes beyond the paper: flash-crowd join bursts,
//!   correlated cluster failures, oscillating fail-and-rejoin cycles,
//!   an adaptive adversary nuking the root's neighbourhood — freely
//!   composed with a [`PartitionSpec`] cut that heals and an
//!   [`AdversarySpec`] *dynamic* sketch-targeting attacker (the
//!   `[adversary]` section), which is polled mid-run rather than
//!   pre-materialized;
//! * [`run_batch`] — a `std::thread::scope` executor fanning the
//!   `seeds × repetitions` matrix across workers, with per-cell
//!   [`rand::rngs::SmallRng`] streams and order-independent
//!   aggregation: reports carry one [`ProtocolSection`] per contender
//!   (a paired comparison — every protocol sees the same churn
//!   realization) and are **byte-identical** for any thread count
//!   (property-tested);
//! * [`Json`] — a deterministic JSON writer for [`Report`]s and `repro
//!   --json`, so the accuracy/cost trajectory is diffable across PRs;
//! * [`trace_batch`] — the telemetry runner behind `repro trace`:
//!   re-executes the same batch matrix with a `pov_telemetry` recorder
//!   attached to every cell and assembles a
//!   [`pov_telemetry::TraceDoc`] for the JSONL / Chrome / summary
//!   exporters, with the same byte-identical-across-threads guarantee
//!   as the reports. The opt-in `[telemetry]` section
//!   ([`TelemetrySpec`]) tunes it without touching reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod parse;
pub mod run;
pub mod spec;
pub mod trace;

pub use json::{table_to_json, Json};
pub use parse::ParseError;
pub use run::{
    run_batch, run_batch_sharded, Agg, PairedDiff, PairedSection, ProtocolSection, Report,
    RunRecord, WorkloadCellStats, WorkloadRecord, WorkloadSection,
};
pub use spec::{
    AdversarySpec, ChurnSpec, ContinuousSpec, PartitionSpec, PhasesSpec, ProtocolSpec, Scenario,
    TelemetrySpec, WorkloadSpec,
};
pub use trace::{trace_batch, trace_batch_sharded};

#[cfg(test)]
mod smoke {
    use super::*;

    #[test]
    fn crate_root_smoke() {
        let scn: Scenario = r#"
[scenario]
name = "smoke"
[topology]
kind = "random"
n = 60
[query]
aggregate = "count"
[protocol]
kind = "wildfire"
[churn]
model = "uniform"
fraction = 0.1
[run]
seeds = [1, 2]
repetitions = 2
"#
        .parse()
        .expect("valid scenario");
        let a = run_batch(&scn, 1);
        let b = run_batch(&scn, 4);
        assert_eq!(a.to_json().render(), b.to_json().render());
        assert_eq!(a.runs, 4);
    }
}
