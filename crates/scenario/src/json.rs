//! A deterministic JSON writer.
//!
//! The whole point of the scenario reports is byte-comparability — the
//! acceptance gate diffs the `--threads 1` and `--threads 8` outputs,
//! and CI archives them so the perf/accuracy trajectory is diffable
//! across PRs. So this writer is deliberately boring: keys keep
//! insertion order, floats use Rust's shortest-roundtrip formatting,
//! non-finite floats become `null`, and indentation is fixed at two
//! spaces. (The vendored `serde` stand-in is a no-op, so hand-rolling
//! the few value types we need is also the only offline option.)

use std::fmt;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so counts never print
    /// a trailing `.0` or lose precision above 2^53... within i64).
    Int(i64),
    /// A float; NaN/±∞ serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::with`] chaining.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (builder style). Panics on non-objects.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Render with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest-roundtrip formatting; force a decimal point
                    // so a reader always sees this field as a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        // Counts in this workspace are far below 2^63.
        Json::Int(i as i64)
    }
}
impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i64::from(i))
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Serialize a rendered [`Table`](pov_core::report::Table) — title,
/// headers, and rows — the shared shape for `repro --json`.
pub fn table_to_json(t: &pov_core::report::Table) -> Json {
    Json::obj()
        .with("title", t.title())
        .with("headers", t.headers().to_vec())
        .with(
            "rows",
            Json::Arr(t.rows().iter().map(|row| Json::from(row.clone())).collect()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj()
            .with("name", "demo")
            .with("n", 400u64)
            .with("mean", 2.5)
            .with("whole", 3.0)
            .with("ok", true)
            .with("missing", Json::Null)
            .with("xs", vec![1i64, 2, 3]);
        let s = j.render();
        assert_eq!(
            s,
            "{\n  \"name\": \"demo\",\n  \"n\": 400,\n  \"mean\": 2.5,\n  \"whole\": 3.0,\n  \"ok\": true,\n  \"missing\": null,\n  \"xs\": [\n    1,\n    2,\n    3\n  ]\n}\n"
        );
    }

    #[test]
    fn floats_always_look_like_floats() {
        assert_eq!(Json::Num(3.0).render(), "3.0\n");
        assert_eq!(Json::Num(0.1).render(), "0.1\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::Num(1500.0).render(), "1500.0\n");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\n\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\n\\u0001\"\n"
        );
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::obj().render(), "{}\n");
    }

    #[test]
    fn option_and_from_impls() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(4u64)), Json::Int(4));
        assert_eq!(Json::from(2u32), Json::Int(2));
    }

    #[test]
    fn table_round_trips_shape() {
        let mut t = pov_core::report::Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let j = table_to_json(&t);
        let s = j.render();
        assert!(s.contains("\"title\": \"demo\""));
        assert!(s.contains("\"headers\""));
        assert!(s.contains("\"rows\""));
    }
}
