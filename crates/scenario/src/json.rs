//! A deterministic JSON writer — and a small reader.
//!
//! The whole point of the scenario reports is byte-comparability — the
//! acceptance gate diffs the `--threads 1` and `--threads 8` outputs,
//! and CI archives them so the perf/accuracy trajectory is diffable
//! across PRs. So this writer is deliberately boring: keys keep
//! insertion order, floats use Rust's shortest-roundtrip formatting,
//! non-finite floats become `null`, and indentation is fixed at two
//! spaces. (The vendored `serde` stand-in is a no-op, so hand-rolling
//! the few value types we need is also the only offline option.)
//!
//! [`Json::parse`] is the matching recursive-descent reader. The bench
//! trajectory needs it twice: `repro bench --json` reads the existing
//! `BENCH_engine.json` back to *append* to its `history` array instead
//! of overwriting it, and `repro bench --check BASELINE.json` reads the
//! committed baseline to diff fresh numbers against. It accepts exactly
//! the documents the writer produces (plus arbitrary whitespace); it is
//! not a general validating JSON parser.

use std::fmt;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so counts never print
    /// a trailing `.0` or lose precision above 2^53... within i64).
    Int(i64),
    /// A float; NaN/±∞ serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::with`] chaining.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (builder style). Panics on non-objects.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Parse a JSON document (the inverse of [`Json::render`]). Numbers
    /// containing `.`, `e` or `E` become [`Json::Num`]; plain integers
    /// that fit an `i64` become [`Json::Int`] (and fall back to `Num`
    /// past its range). Errors carry the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.at));
        }
        Ok(value)
    }

    /// Object member access by key (`None` for absent keys and
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of an `Int` or `Num` (`None` otherwise).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value of an `Int` (`None` otherwise).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value of a `Str` (`None` otherwise).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items of an `Arr` (`None` otherwise).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest-roundtrip formatting; force a decimal point
                    // so a reader always sees this field as a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent state for [`Json::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.at
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.at..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_string());
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.at) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.at))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.at))?;
                            self.at += 4;
                            // The writer only emits \u for control chars;
                            // surrogate pairs are out of scope.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint \\u{hex}"))?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar value.
                    let ch_len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.at - 1;
                    let s = std::str::from_utf8(&self.bytes[start..start + ch_len])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(s);
                    self.at = start + ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.at += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii number");
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        // Counts in this workspace are far below 2^63.
        Json::Int(i as i64)
    }
}
impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i64::from(i))
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Serialize a rendered [`Table`](pov_core::report::Table) — title,
/// headers, and rows — the shared shape for `repro --json`.
pub fn table_to_json(t: &pov_core::report::Table) -> Json {
    Json::obj()
        .with("title", t.title())
        .with("headers", t.headers().to_vec())
        .with(
            "rows",
            Json::Arr(t.rows().iter().map(|row| Json::from(row.clone())).collect()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj()
            .with("name", "demo")
            .with("n", 400u64)
            .with("mean", 2.5)
            .with("whole", 3.0)
            .with("ok", true)
            .with("missing", Json::Null)
            .with("xs", vec![1i64, 2, 3]);
        let s = j.render();
        assert_eq!(
            s,
            "{\n  \"name\": \"demo\",\n  \"n\": 400,\n  \"mean\": 2.5,\n  \"whole\": 3.0,\n  \"ok\": true,\n  \"missing\": null,\n  \"xs\": [\n    1,\n    2,\n    3\n  ]\n}\n"
        );
    }

    #[test]
    fn floats_always_look_like_floats() {
        assert_eq!(Json::Num(3.0).render(), "3.0\n");
        assert_eq!(Json::Num(0.1).render(), "0.1\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::Num(1500.0).render(), "1500.0\n");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\n\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\n\\u0001\"\n"
        );
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::obj().render(), "{}\n");
    }

    #[test]
    fn option_and_from_impls() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(4u64)), Json::Int(4));
        assert_eq!(Json::from(2u32), Json::Int(2));
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj()
            .with("schema", "bench_engine/v2")
            .with("count", 400u64)
            .with("rate", 2.58e6)
            .with("frac", 0.125)
            .with("neg", -3i64)
            .with("ok", true)
            .with("missing", Json::Null)
            .with("empty_arr", Json::Arr(vec![]))
            .with("empty_obj", Json::obj())
            .with(
                "history",
                Json::Arr(vec![Json::obj()
                    .with("sha", "abc123")
                    .with("eps", vec![1.5f64, 2.0])]),
            )
            .with("text", "quote \" slash \\ nl \n ctl \u{1} uni é");
        let rendered = doc.render();
        let parsed = Json::parse(&rendered).expect("round trip");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.render(), rendered);
    }

    #[test]
    fn parse_accessors_walk_the_tree() {
        let doc =
            Json::parse(r#"{"workloads": [{"name": "a", "events_per_sec": 2.5e6}], "threads": 4}"#)
                .unwrap();
        let workloads = doc.get("workloads").and_then(Json::as_arr).unwrap();
        assert_eq!(workloads.len(), 1);
        assert_eq!(workloads[0].get("name").and_then(Json::as_str), Some("a"));
        assert_eq!(
            workloads[0].get("events_per_sec").and_then(Json::as_f64),
            Some(2.5e6)
        );
        assert_eq!(doc.get("threads").and_then(Json::as_i64), Some(4));
        // Ints read as f64 too (check code compares rates numerically).
        assert_eq!(doc.get("threads").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("absent"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\": 1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parse_distinguishes_int_and_float() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("42.0").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("2.58e6").unwrap(), Json::Num(2.58e6));
        // Past i64: falls back to float rather than erroring.
        assert_eq!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Num(1e20)
        );
    }

    #[test]
    fn table_round_trips_shape() {
        let mut t = pov_core::report::Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let j = table_to_json(&t);
        let s = j.render();
        assert!(s.contains("\"title\": \"demo\""));
        assert!(s.contains("\"headers\""));
        assert!(s.contains("\"rows\""));
    }
}
