//! A small, self-contained parser for `.scn` scenario files.
//!
//! The grammar is the INI/TOML subset the scenario specs need — nothing
//! more, so it can live here without a crates.io dependency (the build
//! environment is offline, like the `vendor/` stand-ins):
//!
//! ```text
//! # full-line comment
//! [section]                 # one level only, no nesting or dotted keys
//! [[table]]                 # array-of-tables: may repeat, order kept
//! key = "quoted string"     # \" \\ \n \t escapes
//! key = 42                  # i64; 1_000_000 separators allowed
//! key = 2.5                 # f64
//! key = true                # or false
//! key = [1, 2, 3]           # homogeneous list of scalars
//! ```
//!
//! Every error carries the 1-based line number it was found on, because
//! scenario files are hand-written and "bad value" without a location is
//! hostile.

use std::fmt;

/// A parsed scalar or list value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A 64-bit integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A `[..]` list of scalars.
    List(Vec<Value>),
}

impl Value {
    /// Human name of the variant, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::List(_) => "list",
        }
    }
}

/// A parse or validation failure, located at a source line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line number (0 for document-level errors).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl ParseError {
    pub(crate) fn at(line: usize, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.msg)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

/// One `key = value` entry.
#[derive(Clone, Debug)]
pub struct Entry {
    /// The key (left of `=`).
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based source line.
    pub line: usize,
}

/// One `[section]` or `[[table]]` with its entries.
#[derive(Clone, Debug)]
pub struct Section {
    /// Section name without brackets.
    pub name: String,
    /// 1-based source line of the header.
    pub line: usize,
    /// Whether the header used the `[[name]]` array-of-tables form
    /// (repeatable) rather than the unique `[name]` form.
    pub array: bool,
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

impl Section {
    /// Look up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed scenario document: sections in file order.
#[derive(Clone, Debug, Default)]
pub struct Doc {
    /// Sections in file order.
    pub sections: Vec<Section>,
}

impl Doc {
    /// Parse a document. Keys before any `[section]` header, duplicate
    /// `[section]`s (the `[[table]]` form may repeat), mixing `[x]` with
    /// `[[x]]`, and duplicate keys within a section are all errors.
    pub fn parse(text: &str) -> Result<Doc, ParseError> {
        let mut doc = Doc::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(body) = line.strip_prefix('[') {
                let (name, array) = match body.strip_prefix('[') {
                    Some(inner) => (
                        inner
                            .strip_suffix("]]")
                            .ok_or_else(|| ParseError::at(lineno, "unterminated [[table]] header"))?
                            .trim(),
                        true,
                    ),
                    None => (
                        body.strip_suffix(']')
                            .ok_or_else(|| ParseError::at(lineno, "unterminated section header"))?
                            .trim(),
                        false,
                    ),
                };
                if name.is_empty() {
                    return Err(ParseError::at(lineno, "empty section name"));
                }
                if let Some(prev) = doc.sections.iter().find(|s| s.name == name) {
                    if prev.array != array {
                        return Err(ParseError::at(
                            lineno,
                            format!("section '{name}' mixes [{name}] and [[{name}]] forms"),
                        ));
                    }
                    if !array {
                        return Err(ParseError::at(
                            lineno,
                            format!("duplicate section [{name}]"),
                        ));
                    }
                }
                doc.sections.push(Section {
                    name: name.to_string(),
                    line: lineno,
                    array,
                    entries: Vec::new(),
                });
                continue;
            }
            let (key, rest) = line.split_once('=').ok_or_else(|| {
                ParseError::at(
                    lineno,
                    format!("expected `key = value` or `[section]`, got '{line}'"),
                )
            })?;
            let key = key.trim();
            if key.is_empty() {
                return Err(ParseError::at(lineno, "empty key before '='"));
            }
            let section = doc
                .sections
                .last_mut()
                .ok_or_else(|| ParseError::at(lineno, "key before any [section] header"))?;
            if section.get(key).is_some() {
                return Err(ParseError::at(lineno, format!("duplicate key '{key}'")));
            }
            let value = parse_value(rest.trim(), lineno)?;
            section.entries.push(Entry {
                key: key.to_string(),
                value,
                line: lineno,
            });
        }
        Ok(doc)
    }

    /// Look up a section by name (the first, for `[[table]]` arrays).
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Every section with this name, in file order — one element for a
    /// plain `[section]`, possibly many for `[[table]]` repetitions.
    pub fn sections_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Section> + 'a {
        self.sections.iter().filter(move |s| s.name == name)
    }
}

/// Strip a `#`-comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        match ch {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ParseError> {
    if text.is_empty() {
        return Err(ParseError::at(lineno, "missing value after '='"));
    }
    if let Some(body) = text.strip_prefix('"') {
        return parse_string(body, lineno);
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| ParseError::at(lineno, "unterminated list (missing ']')"))?;
        let mut items = Vec::new();
        for part in split_list(body, lineno)? {
            let part = part.trim();
            if part.is_empty() {
                return Err(ParseError::at(lineno, "empty list element"));
            }
            let item = parse_value(part, lineno)?;
            if matches!(item, Value::List(_)) {
                return Err(ParseError::at(lineno, "nested lists are not supported"));
            }
            if let Some(first) = items.first() {
                let (a, b): (&Value, &Value) = (first, &item);
                if std::mem::discriminant(a) != std::mem::discriminant(b) {
                    return Err(ParseError::at(
                        lineno,
                        format!("mixed list: {} after {}", item.type_name(), a.type_name()),
                    ));
                }
            }
            items.push(item);
        }
        return Ok(Value::List(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if let Ok(i) = cleaned.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = cleaned.parse::<f64>() {
        if f.is_finite() {
            return Ok(Value::Float(f));
        }
    }
    Err(ParseError::at(
        lineno,
        format!("cannot parse value '{text}' (strings must be double-quoted)"),
    ))
}

/// Parse the body of a quoted string (after the opening `"`); rejects
/// trailing garbage after the closing quote.
fn parse_string(body: &str, lineno: usize) -> Result<Value, ParseError> {
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(ch) = chars.next() {
        match ch {
            '"' => {
                let rest: String = chars.collect();
                if !rest.trim().is_empty() {
                    return Err(ParseError::at(
                        lineno,
                        format!("unexpected trailing '{}' after string", rest.trim()),
                    ));
                }
                return Ok(Value::Str(out));
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(ParseError::at(
                        lineno,
                        format!("unknown escape '\\{other}'"),
                    ))
                }
                None => return Err(ParseError::at(lineno, "dangling '\\' in string")),
            },
            _ => out.push(ch),
        }
    }
    Err(ParseError::at(lineno, "unterminated string"))
}

/// Split a list body on top-level commas, respecting quoted strings.
fn split_list(body: &str, lineno: usize) -> Result<Vec<&str>, ParseError> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in body.char_indices() {
        match ch {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str {
        return Err(ParseError::at(lineno, "unterminated string in list"));
    }
    // An empty tail is a trailing comma (`[1, 2,]`) — allowed, nothing
    // to push. A `[,]` still fails later: its first part is empty.
    let tail = &body[start..];
    if !tail.trim().is_empty() {
        parts.push(tail);
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let doc = Doc::parse(
            r#"
# a scenario
[scenario]
name = "flash crowd"   # inline comment
ratio = 0.25
n = 1_000
enabled = true

[run]
seeds = [1, 2, 3,]
labels = ["a", "b # not a comment"]
"#,
        )
        .expect("parses");
        assert_eq!(doc.sections.len(), 2);
        let s = doc.section("scenario").unwrap();
        assert_eq!(
            s.get("name").unwrap().value,
            Value::Str("flash crowd".into())
        );
        assert_eq!(s.get("ratio").unwrap().value, Value::Float(0.25));
        assert_eq!(s.get("n").unwrap().value, Value::Int(1000));
        assert_eq!(s.get("enabled").unwrap().value, Value::Bool(true));
        let r = doc.section("run").unwrap();
        assert_eq!(
            r.get("seeds").unwrap().value,
            Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            r.get("labels").unwrap().value,
            Value::List(vec![
                Value::Str("a".into()),
                Value::Str("b # not a comment".into())
            ])
        );
    }

    #[test]
    fn array_of_tables_repeats_in_order() {
        let doc = Doc::parse(
            "[scenario]\nname = \"x\"\n\
             [[protocol]]\nkind = \"wildfire\"\n\
             [[protocol]]\nkind = \"spanning-tree\"\nk = 2\n",
        )
        .expect("parses");
        let tables: Vec<&Section> = doc.sections_named("protocol").collect();
        assert_eq!(tables.len(), 2);
        assert!(tables.iter().all(|s| s.array));
        assert_eq!(
            tables[0].get("kind").unwrap().value,
            Value::Str("wildfire".into())
        );
        assert_eq!(
            tables[1].get("kind").unwrap().value,
            Value::Str("spanning-tree".into())
        );
        // `section` returns the first instance.
        assert_eq!(doc.section("protocol").unwrap().line, 3);
        // Duplicate keys within one table instance still rejected.
        let err = Doc::parse("[[p]]\nk = 1\nk = 2").expect_err("dup key");
        assert!(err.msg.contains("duplicate key"));
    }

    #[test]
    fn mixing_section_and_table_forms_rejected() {
        let err = Doc::parse("[p]\nk = 1\n[[p]]\nk = 2").expect_err("mixed");
        assert!(err.msg.contains("mixes"), "{}", err.msg);
        assert_eq!(err.line, 3);
        let err = Doc::parse("[[p]]\nk = 1\n[p]\nk = 2").expect_err("mixed");
        assert!(err.msg.contains("mixes"), "{}", err.msg);
        let err = Doc::parse("[[p]\nk = 1").expect_err("unterminated");
        assert!(err.msg.contains("unterminated [[table]]"), "{}", err.msg);
    }

    #[test]
    fn string_escapes() {
        let doc = Doc::parse("[s]\nv = \"a\\\"b\\\\c\\n\"").unwrap();
        assert_eq!(
            doc.section("s").unwrap().get("v").unwrap().value,
            Value::Str("a\"b\\c\n".into())
        );
    }

    #[test]
    fn empty_list() {
        let doc = Doc::parse("[s]\nv = []").unwrap();
        assert_eq!(
            doc.section("s").unwrap().get("v").unwrap().value,
            Value::List(vec![])
        );
    }

    fn err(text: &str) -> ParseError {
        Doc::parse(text).expect_err("should fail")
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(err("[s]\nbad line").line, 2);
        assert_eq!(err("key = 1").line, 1);
        assert_eq!(err("[s]\nv = \"open").line, 2);
        assert_eq!(err("[s]\n[s]").line, 2);
        assert_eq!(err("[s]\nk = 1\nk = 2").line, 3);
        assert_eq!(err("[s]\nv = [1, \"x\"]").line, 2);
        assert_eq!(err("[s]\nv = what").line, 2);
        assert_eq!(err("[s]\nv =").line, 2);
        assert_eq!(err("[s\nv = 1").line, 1);
    }

    #[test]
    fn error_messages_name_the_problem() {
        assert!(err("[s]\nv = what").msg.contains("double-quoted"));
        assert!(err("[s]\n[s]").msg.contains("duplicate section"));
        assert!(err("k = 1").msg.contains("before any [section]"));
        assert!(err("[s]\nv = [1, 2.5]").msg.contains("mixed list"));
    }

    #[test]
    fn negative_and_underscored_numbers() {
        let doc = Doc::parse("[s]\na = -4\nb = 1_000_000\nc = -0.5").unwrap();
        let s = doc.section("s").unwrap();
        assert_eq!(s.get("a").unwrap().value, Value::Int(-4));
        assert_eq!(s.get("b").unwrap().value, Value::Int(1_000_000));
        assert_eq!(s.get("c").unwrap().value, Value::Float(-0.5));
    }
}
