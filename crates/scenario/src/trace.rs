//! The trace runner: re-execute a scenario's batch matrix with a
//! [`pov_telemetry::TickRecorder`] attached to every cell and assemble
//! the recordings into a [`TraceDoc`] for the exporters.
//!
//! The runner shares the batch executor's cell machinery —
//! [`crate::run`]'s `cell_plan` derives the per-cell seeds and
//! churn/partition realization, and `pov_core::judged::window_local_plans`
//! slices continuous registrations exactly the way `judged_plan` does —
//! so a trace records *the same runs the report aggregates*, not a
//! parallel universe. Determinism carries over too: cells land in
//! slot-indexed positions, so the document (and every exporter's
//! rendering of it) is byte-identical for any `--threads` value.

use crate::run::{self, Prepared};
use crate::spec::Scenario;
use pov_core::judged::window_local_plans;
use pov_core::pov_protocols::runner;
use pov_core::pov_sim::PhaseSchedule;
use pov_telemetry::{CellTrace, PhaseSpan, TickRecorder, TraceDoc};

/// The phase spans of a schedule, as absolute-tick `[start, end)` rows
/// for the summary exporter (keyed by the same labels
/// [`PhaseSchedule::label_at`] reports).
fn phase_spans(schedule: &PhaseSchedule) -> Vec<PhaseSpan> {
    let mut spans = Vec::with_capacity(schedule.phases().len());
    let mut start = 0u64;
    for p in schedule.phases() {
        spans.push(PhaseSpan {
            label: p.kind.label().to_string(),
            start,
            end: start + p.ticks,
        });
        start += p.ticks;
    }
    spans
}

/// Record one `(seed, rep)` cell: every protocol runs every window of
/// the cell's plan with a fresh recorder. Returns protocol-major
/// recordings, mirroring the batch runner's section order.
fn trace_cell(
    scn: &Scenario,
    prep: &Prepared,
    seed: u64,
    rep: usize,
    summary_every: u64,
    shard_delivery: Option<usize>,
) -> Vec<Vec<CellTrace>> {
    let mut plan = run::cell_plan(scn, prep, seed, rep).plan;
    if let Some(threads) = shard_delivery {
        plan = plan.sharded_delivery(threads);
    }
    let windows = window_local_plans(&prep.graph, &plan);
    scn.protocols
        .iter()
        .map(|spec| {
            windows
                .iter()
                .enumerate()
                .map(|(w, (start, local))| {
                    let mut rec = TickRecorder::with_summary_every(summary_every);
                    let _ = runner::run_with(
                        spec.kind(),
                        &prep.graph,
                        &prep.values,
                        local,
                        Some(&mut rec),
                    );
                    CellTrace {
                        protocol: spec.label(),
                        seed,
                        rep: rep as u64,
                        window: w as u64,
                        offset: start.ticks(),
                        series: rec.finish(),
                    }
                })
                .collect()
        })
        .collect()
}

/// Trace the whole batch on `threads` workers: one [`CellTrace`] per
/// `(protocol, seed, rep, window)`, in protocol-major order, plus the
/// scenario's phase spans. The document is a pure function of the
/// scenario — byte-identical across thread counts and reruns.
///
/// # Panics
/// Panics if `threads == 0`, the scenario has no protocols, or its `hq`
/// exceeds the host count the topology actually produced.
pub fn trace_batch(scn: &Scenario, threads: usize) -> TraceDoc {
    trace_batch_sharded(scn, threads, None)
}

/// [`trace_batch`] with in-simulation sharded message delivery (see
/// [`crate::run_batch_sharded`]): traces are byte-identical for any
/// combination of `threads` and `shard_delivery` values.
///
/// # Panics
/// Same conditions as [`trace_batch`].
pub fn trace_batch_sharded(
    scn: &Scenario,
    threads: usize,
    shard_delivery: Option<usize>,
) -> TraceDoc {
    assert!(threads >= 1, "need at least one worker thread");
    assert!(
        !scn.protocols.is_empty(),
        "scenario '{}' has no protocols",
        scn.name
    );
    let prep = run::prepare(scn);
    assert!(
        (scn.hq as usize) < prep.graph.num_hosts(),
        "querying host {} out of range: topology produced {} hosts",
        scn.hq,
        prep.graph.num_hosts()
    );
    let summary_every = scn.telemetry.unwrap_or_default().summary_every;
    let jobs: Vec<(u64, usize)> = scn
        .seeds
        .iter()
        .flat_map(|&s| (0..scn.repetitions).map(move |r| (s, r)))
        .collect();
    assert!(
        !jobs.is_empty(),
        "scenario '{}' has an empty seeds × repetitions matrix",
        scn.name
    );
    let mut cells: Vec<Option<Vec<Vec<CellTrace>>>> = vec![None; jobs.len()];
    let chunk = jobs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let prep = &prep;
        for (job_chunk, slot_chunk) in jobs.chunks(chunk).zip(cells.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (&(seed, rep), slot) in job_chunk.iter().zip(slot_chunk) {
                    *slot = Some(trace_cell(
                        scn,
                        prep,
                        seed,
                        rep,
                        summary_every,
                        shard_delivery,
                    ));
                }
            });
        }
    });
    // Regroup cell-major → protocol-major, still in deterministic
    // (seed, rep, window) order — the report's section order.
    let mut per_protocol: Vec<Vec<CellTrace>> = vec![Vec::new(); scn.protocols.len()];
    for cell in cells {
        let cell = cell.expect("every cell ran");
        for (p, traces) in cell.into_iter().enumerate() {
            per_protocol[p].extend(traces);
        }
    }
    let deadline = 2 * prep.d_hat as u64 * scn.delay.bound();
    let span = run::regime_span(scn, deadline);
    let phases = run::materialize_phases(scn, span)
        .map(|s| phase_spans(&s))
        .unwrap_or_default();
    TraceDoc {
        name: scn.name.clone(),
        phases,
        cells: per_protocol.into_iter().flatten().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::run::run_batch;
    use pov_telemetry::export;

    const PHASED: &str = r#"
[scenario]
name = "trace-phased"
[topology]
kind = "random"
n = 60
seed = 3
[query]
aggregate = "count"
[[protocol]]
kind = "wildfire"
[[protocol]]
kind = "spanning-tree"
[phases]
start_alive = 0.7
[[phase]]
kind = "growth"
fraction = 0.3
[[phase]]
kind = "stable"
[[phase]]
kind = "shrink"
fraction = 0.3
[continuous]
windows = 3
[telemetry]
summary_every = 4
[run]
seeds = [1, 2]
repetitions = 1
"#;

    fn phased() -> Scenario {
        PHASED.parse().expect("valid scenario")
    }

    #[test]
    fn trace_covers_the_matrix_in_protocol_major_order() {
        let scn = phased();
        let doc = trace_batch(&scn, 2);
        // 2 protocols × 2 seeds × 1 rep × 3 windows.
        assert_eq!(doc.cells.len(), 12);
        let coords: Vec<(&str, u64, u64)> = doc
            .cells
            .iter()
            .map(|c| (c.protocol.as_str(), c.seed, c.window))
            .collect();
        assert_eq!(
            coords,
            vec![
                ("WILDFIRE", 1, 0),
                ("WILDFIRE", 1, 1),
                ("WILDFIRE", 1, 2),
                ("WILDFIRE", 2, 0),
                ("WILDFIRE", 2, 1),
                ("WILDFIRE", 2, 2),
                ("SPANNINGTREE", 1, 0),
                ("SPANNINGTREE", 1, 1),
                ("SPANNINGTREE", 1, 2),
                ("SPANNINGTREE", 2, 0),
                ("SPANNINGTREE", 2, 1),
                ("SPANNINGTREE", 2, 2),
            ]
        );
        // Window offsets ascend by the window length.
        let offsets: Vec<u64> = doc.cells[..3].iter().map(|c| c.offset).collect();
        assert_eq!(offsets[0], 0);
        assert!(offsets[1] > 0 && offsets[2] == 2 * offsets[1]);
        // Every window 0 recording saw the flood start.
        for c in doc.cells.iter().filter(|c| c.window == 0) {
            assert!(
                !c.series.ticks.is_empty(),
                "{} recorded nothing",
                c.protocol
            );
            assert!(c.series.sent() > 0);
        }
        // The phased scenario's spans tile the horizon contiguously.
        assert_eq!(
            doc.phases
                .iter()
                .map(|p| p.label.as_str())
                .collect::<Vec<_>>(),
            ["growth", "stable", "shrink"]
        );
        for pair in doc.phases.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn trace_records_the_runs_the_report_aggregates() {
        // The trace runner re-executes the exact sims `judged_plan`
        // ran: per protocol, the recorded message totals must equal the
        // report's — same seeds, same windows, same realization.
        let scn = phased();
        let doc = trace_batch(&scn, 2);
        let report = run_batch(&scn, 2);
        for section in &report.protocols {
            let reported: u64 = section.records.iter().map(|r| r.messages).sum();
            let traced: u64 = doc
                .cells
                .iter()
                .filter(|c| c.protocol == section.protocol)
                .map(|c| c.series.sent())
                .sum();
            assert_eq!(traced, reported, "{}", section.protocol);
        }
    }

    #[test]
    fn thread_counts_agree_byte_for_byte() {
        let scn = phased();
        let base = trace_batch(&scn, 1);
        let jsonl = export::jsonl(&base);
        let chrome = export::chrome(&base);
        let summary = export::summary(&base);
        for threads in [2, 3, 8] {
            let doc = trace_batch(&scn, threads);
            assert_eq!(export::jsonl(&doc), jsonl, "jsonl, threads = {threads}");
            assert_eq!(export::chrome(&doc), chrome, "chrome, threads = {threads}");
            assert_eq!(
                export::summary(&doc),
                summary,
                "summary, threads = {threads}"
            );
        }
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let doc = trace_batch(&phased(), 4);
        let parsed = Json::parse(&export::chrome(&doc)).expect("chrome trace parses");
        let rendered = parsed.render();
        assert!(rendered.contains("\"traceEvents\""));
        assert!(rendered.contains("pov_trace/v1"));
    }

    #[test]
    fn one_shot_scenarios_trace_without_phases() {
        let scn: Scenario = r#"
[scenario]
name = "trace-oneshot"
[topology]
kind = "random"
n = 50
[query]
aggregate = "count"
[protocol]
kind = "wildfire"
[churn]
model = "uniform"
fraction = 0.1
[run]
seeds = [1]
"#
        .parse()
        .expect("valid");
        let doc = trace_batch(&scn, 1);
        assert_eq!(doc.cells.len(), 1);
        assert!(doc.phases.is_empty());
        assert_eq!(doc.cells[0].offset, 0);
        // The summary exporter synthesizes its single `run` span.
        assert!(export::summary(&doc).lines().any(|l| l.starts_with("run")));
    }
}
