//! The declarative [`Scenario`] spec and its mapping from parsed `.scn`
//! documents.
//!
//! A scenario pins down *everything* a batch run needs — topology,
//! query, medium, delay, protocol, dynamism regime, seed set and
//! repetition count — so that `repro scenario file.scn` is a pure
//! function of the file. Validation is strict: unknown sections or keys
//! are errors (with line numbers), because a typoed key silently
//! falling back to a default is the classic way benchmark configs rot.

use crate::parse::{Doc, Entry, ParseError, Section, Value};
use pov_core::pov_protocols::allreport::ReportRouting;
use pov_core::pov_protocols::wildfire::WildfireOpts;
use pov_core::pov_protocols::{Aggregate, OverlayConfig, ProtocolKind};
use pov_core::pov_sim::{DelayModel, Medium, PhaseKind};
use pov_core::pov_topology::generators::TopologyKind;

/// Which protocol a scenario runs (name-addressable mirror of
/// [`ProtocolKind`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProtocolSpec {
    /// WILDFIRE with both §5.3 optimizations.
    Wildfire,
    /// SPANNINGTREE.
    SpanningTree,
    /// DIRECTEDACYCLICGRAPH with `k` parents.
    Dag {
        /// Maximum parents per host.
        k: usize,
    },
    /// ALLREPORT with direct report delivery.
    AllReport,
    /// RANDOMIZEDREPORT with report probability `p`.
    RandomizedReport {
        /// Per-host report probability.
        p: f64,
    },
    /// Push-sum gossip for `rounds` rounds.
    Gossip {
        /// Number of gossip rounds.
        rounds: u32,
    },
}

impl ProtocolSpec {
    /// The runnable [`ProtocolKind`].
    pub fn kind(self) -> ProtocolKind {
        match self {
            ProtocolSpec::Wildfire => ProtocolKind::Wildfire(WildfireOpts::default()),
            ProtocolSpec::SpanningTree => ProtocolKind::SpanningTree,
            ProtocolSpec::Dag { k } => ProtocolKind::Dag { k },
            ProtocolSpec::AllReport => ProtocolKind::AllReport(ReportRouting::Direct),
            ProtocolSpec::RandomizedReport { p } => ProtocolKind::RandomizedReport { p },
            ProtocolSpec::Gossip { rounds } => ProtocolKind::Gossip { rounds },
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        self.kind().name()
    }

    /// Unambiguous display label: the paper name plus any parameters, so
    /// two `[[protocol]]` tables that differ only in `k` or `p` get
    /// distinct report sections.
    pub fn label(self) -> String {
        match self {
            ProtocolSpec::Dag { k } => format!("DAG(k={k})"),
            ProtocolSpec::RandomizedReport { p } => format!("RANDOMIZEDREPORT(p={p})"),
            ProtocolSpec::Gossip { rounds } => format!("GOSSIP(rounds={rounds})"),
            other => other.name().to_string(),
        }
    }
}

/// The dynamism regime of a scenario. Window positions are expressed as
/// fractions of the query deadline `2·D̂·δ`, so the same scenario file is
/// meaningful across topologies whose diameters differ.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnSpec {
    /// Static network.
    None,
    /// The paper's §6.2 model: `fraction·|H|` uniformly random hosts fail
    /// at a uniform rate over the window.
    Uniform {
        /// Fraction of hosts that fail (0..1).
        fraction: f64,
        /// Failure window as fractions of the deadline.
        window: (f64, f64),
    },
    /// Flash crowd: `fraction·|H|` hosts start dead and join at a uniform
    /// rate over the window.
    FlashCrowd {
        /// Fraction of hosts that join (0..1).
        fraction: f64,
        /// Join window as fractions of the deadline.
        window: (f64, f64),
    },
    /// Correlated cluster failures: `clusters` BFS-neighbourhoods of
    /// `cluster_size` hosts fail together, spread across the window.
    Correlated {
        /// Number of blast zones.
        clusters: usize,
        /// Hosts per blast zone.
        cluster_size: usize,
        /// Failure window as fractions of the deadline.
        window: (f64, f64),
    },
    /// Oscillating membership: `fraction·|H|` hosts repeatedly fail and
    /// rejoin, cycling every `period` and staying down for `downtime`
    /// (both fractions of the regime span) inside the window.
    Oscillating {
        /// Fraction of hosts that oscillate (0..1).
        fraction: f64,
        /// Oscillation window as fractions of the regime span.
        window: (f64, f64),
        /// Cycle length as a fraction of the regime span.
        period: f64,
        /// Down-phase length as a fraction of the regime span
        /// (must be < `period`).
        downtime: f64,
    },
    /// Adaptive adversary: every host within `radius` hops of `hq`
    /// (except `hq`) is killed at `at` (fraction of the deadline).
    AdversarialRoot {
        /// Blast radius in hops.
        radius: u32,
        /// Kill instant as a fraction of the deadline.
        at: f64,
    },
}

impl ChurnSpec {
    /// Model name as written in scenario files.
    pub fn model_name(&self) -> &'static str {
        match self {
            ChurnSpec::None => "none",
            ChurnSpec::Uniform { .. } => "uniform",
            ChurnSpec::FlashCrowd { .. } => "flash-crowd",
            ChurnSpec::Correlated { .. } => "correlated",
            ChurnSpec::Oscillating { .. } => "oscillating",
            ChurnSpec::AdversarialRoot { .. } => "adversarial-root",
        }
    }
}

/// A `[partition]` section: the `fraction` of hosts BFS-nearest a
/// random pivot are cut off during `[from, heal)` (hosts stay alive),
/// then the network reconnects. Co-occurs freely with any `[churn]`
/// model — churn and partition compose in one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionSpec {
    /// Fraction of hosts on the severed side (0..1).
    pub fraction: f64,
    /// Cut start as a fraction of the regime span.
    pub from: f64,
    /// Heal instant as a fraction of the regime span.
    pub heal: f64,
}

/// An `[adversary]` section: a *dynamic*, protocol-state-aware attacker
/// polled by the engine during the run. Unlike every `[churn]` model —
/// all pre-materialized before the first event — the adversary decides
/// each wave from the live run state: `target = "fm_maxima"` kills the
/// hosts whose current partials carry the most FM sketch mass (the
/// scalar their bit maxima induce) — the answer's carriers. `budget`
/// fixes the total number of kills, making the regime comparable to
/// `[churn] model = "uniform"` at `fraction = budget / n`; `start` /
/// `until` are fractions of the regime span like every other window.
/// Composes with any `[churn]` model; incompatible with `[continuous]`
/// (a dynamic schedule cannot be replayed into window-local plans).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdversarySpec {
    /// Hosts killed per wave.
    pub kills_per_wave: usize,
    /// Total kill budget across all waves.
    pub budget: usize,
    /// First wave as a fraction of the regime span.
    pub start: f64,
    /// Last strike instant as a fraction of the regime span.
    pub until: f64,
}

/// A `[continuous]` section: run the query as §4.2 continuous windows
/// instead of a one-shot. Each window is `window_factor` times the
/// one-shot deadline `2·D̂·δ` long (the minimum that fits a query
/// round), and churn/partition window fractions scale to the *whole
/// horizon* `windows × W` so a regime can span the registration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContinuousSpec {
    /// Number of consecutive windows.
    pub windows: usize,
    /// Window length as a multiple of the one-shot deadline (≥ 1).
    pub window_factor: f64,
}

/// A `[phases]` section plus its `[[phase]]` tables: a long-horizon
/// membership arc (growth → stable → shrink → partition → heal,
/// ewok-style) scripted as weighted phases. Weights are *relative*
/// spans: the executor scales them to the regime's tick span (the
/// one-shot deadline, or the whole `windows × W` horizon under
/// `[continuous]` — the soak-length case), then lowers through
/// [`pov_core::pov_sim::PhaseSchedule`] to ordinary churn/partition
/// plans. Owns the whole membership regime: conflicts with `[churn]`
/// and `[partition]` sections.
#[derive(Clone, Debug, PartialEq)]
pub struct PhasesSpec {
    /// Fraction of hosts alive at tick 0 (the rest join later), in
    /// `(0, 1]`.
    pub start_alive: f64,
    /// `(kind, weight)` per `[[phase]]` table, in file order; weights
    /// are relative phase lengths (> 0).
    pub phases: Vec<(PhaseKind, f64)>,
}

/// A `[telemetry]` section: opt-in knobs for the trace runner
/// (`repro trace`). Parsing the section never changes what a scenario
/// *reports* — `run_batch` ignores it entirely, so adding `[telemetry]`
/// to a `.scn` file keeps its JSON report byte-identical. The knobs
/// only shape the recordings `trace_batch` produces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TelemetrySpec {
    /// Emit a protocol-state summary sample (active hosts, sketch mass)
    /// every this many ticks.
    pub summary_every: u64,
    /// Ring-buffer capacity of the flight recorder, in ticks.
    pub flight_window: u64,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec {
            summary_every: 8,
            flight_window: 256,
        }
    }
}

/// An `[overlay]` section: maintain a dynamic overlay (HyParView-style
/// partial views + SWIM-style failure detection, see
/// `pov_overlay::OverlayMaintenance`) over the base topology during
/// every run. Unlike `[telemetry]`, the section *does* change what a
/// scenario reports — protocols route over the maintained overlay
/// instead of the static graph. The driver's RNG seed is not a file
/// key: like the churn and simulation seeds, it is derived
/// deterministically from each cell's root seed, so repetitions explore
/// independent overlay evolutions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverlaySpec {
    /// The parsed maintenance knobs; `seed` is always 0 here and is
    /// replaced per cell by the batch runner.
    pub config: OverlayConfig,
}

/// A `[workload]` section: a deterministic multiplexed query workload
/// executed *concurrently inside one simulation* per cell, alongside
/// the `[[protocol]]` contenders. `queries` mixed-aggregate queries
/// with uniform-random roots arrive over `span × 2·D̂` ticks; optional
/// sliding windows (§4.2) expand each base query into `instances`
/// instances `slide × 2·D̂` ticks apart, each judged over its own
/// `[end − W, end]` interval. All fractions scale to the one-shot
/// deadline like churn windows do. The multiplexed engine always runs
/// on the unit-delay point-to-point substrate (the `[medium]` section
/// applies to the protocol contenders only). Incompatible with
/// `[continuous]` (a workload is already many queries) and
/// `[adversary]` (a dynamic kill schedule cannot be replayed into the
/// workload's environment).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Number of base queries per cell.
    pub queries: usize,
    /// Arrival span as a multiple of the one-shot deadline `2·D̂`.
    pub span: f64,
    /// Optional sliding windows: `(window, slide, instances)` with the
    /// first two as fractions of the deadline and `slide < window`.
    pub window: Option<(f64, f64, usize)>,
}

/// A fully specified, runnable scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (reported in JSON).
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Topology family.
    pub topology: TopologyKind,
    /// Host count (grid rounds down to a square).
    pub n: usize,
    /// Seed for topology construction and attribute values.
    pub topology_seed: u64,
    /// The aggregate under query.
    pub aggregate: Aggregate,
    /// FM repetitions `c` for sketched aggregates.
    pub c: usize,
    /// The querying host.
    pub hq: u32,
    /// Slack added to the measured diameter to form `D̂`.
    pub d_hat_slack: u32,
    /// Communication medium.
    pub medium: Medium,
    /// Per-hop delay model.
    pub delay: DelayModel,
    /// Protocols under test — every run executes *all* of them against
    /// the same churn/partition realization (one `[[protocol]]` table
    /// each, or a single `[protocol]` section).
    pub protocols: Vec<ProtocolSpec>,
    /// Dynamism regime.
    pub churn: ChurnSpec,
    /// Partitions layered over the churn regime — one cut per
    /// `[partition]` / `[[partition]]` table, overlaid (cascading) when
    /// there are several.
    pub partitions: Vec<PartitionSpec>,
    /// Optional long-horizon phase schedule; when present it owns the
    /// membership regime (`churn` is `None`, `partitions` empty).
    pub phases: Option<PhasesSpec>,
    /// Optional dynamic sketch-targeting adversary layered over the
    /// pre-materialized regime.
    pub adversary: Option<AdversarySpec>,
    /// Optional §4.2 continuous-window execution.
    pub continuous: Option<ContinuousSpec>,
    /// Optional `[telemetry]` knobs for the trace runner (never affects
    /// reports).
    pub telemetry: Option<TelemetrySpec>,
    /// Optional `[overlay]` maintenance layered over the base topology
    /// (affects reports: protocols route over the evolving overlay).
    pub overlay: Option<OverlaySpec>,
    /// Optional `[workload]` multiplexed query workload run per cell
    /// alongside the protocol contenders.
    pub workload: Option<WorkloadSpec>,
    /// Root seeds; the batch runs `seeds × repetitions`.
    pub seeds: Vec<u64>,
    /// Repetitions per seed.
    pub repetitions: usize,
}

impl std::str::FromStr for Scenario {
    type Err = ParseError;

    /// Parse and validate a scenario from `.scn` text.
    fn from_str(text: &str) -> Result<Scenario, ParseError> {
        let doc = Doc::parse(text)?;
        Scenario::from_doc(&doc)
    }
}

impl Scenario {
    /// Total number of runs in the batch.
    pub fn num_runs(&self) -> usize {
        self.seeds.len() * self.repetitions
    }

    /// Human-readable name of the dynamism regime, for reports: the
    /// churn model, `+partition` when a cut is layered on top (plain
    /// `partition` when the cut is the whole regime), `+adversary` when
    /// the dynamic sketch-targeting attacker is layered (plain
    /// `adversary` when it is the whole regime).
    pub fn regime(&self) -> String {
        let base = if self.phases.is_some() {
            "phased".to_string()
        } else {
            match (&self.churn, self.partitions.is_empty()) {
                (ChurnSpec::None, false) => "partition".to_string(),
                (c, true) => c.model_name().to_string(),
                (c, false) => format!("{}+partition", c.model_name()),
            }
        };
        match (&self.adversary, base.as_str()) {
            (None, _) => base,
            (Some(_), "none") => "adversary".to_string(),
            (Some(_), _) => format!("{base}+adversary"),
        }
    }

    fn from_doc(doc: &Doc) -> Result<Scenario, ParseError> {
        const KNOWN: &[&str] = &[
            "scenario",
            "topology",
            "query",
            "medium",
            "protocol",
            "churn",
            "partition",
            "phases",
            "phase",
            "adversary",
            "continuous",
            "telemetry",
            "overlay",
            "workload",
            "run",
        ];
        for s in &doc.sections {
            if !KNOWN.contains(&s.name.as_str()) {
                return Err(ParseError::at(
                    s.line,
                    format!(
                        "unknown section [{}] (expected one of: {})",
                        s.name,
                        KNOWN.join(", ")
                    ),
                ));
            }
            // Only [[protocol]], [[partition]] and [[phase]] may
            // repeat: every other reader consumes a single section, so
            // a second [[run]]/[[churn]]/… table would be silently
            // ignored — exactly the "typo falls back to a default"
            // failure mode this validator exists to stop.
            if s.array && s.name != "protocol" && s.name != "partition" && s.name != "phase" {
                return Err(ParseError::at(
                    s.line,
                    format!(
                        "[[{}]] is not repeatable; only [[protocol]], [[partition]] and \
                         [[phase]] tables may repeat (write [{}] instead)",
                        s.name, s.name
                    ),
                ));
            }
        }
        let scn = Keys::over(doc, "scenario")?;
        let name = scn.require_str("name")?;
        let description = scn.opt_str("description")?.unwrap_or_default();
        scn.finish()?;

        let topo = Keys::over(doc, "topology")?;
        let topology = match topo.require_str("kind")?.as_str() {
            "gnutella" => TopologyKind::Gnutella,
            "random" => TopologyKind::Random,
            "powerlaw" | "power-law" => TopologyKind::PowerLaw,
            "grid" => TopologyKind::Grid,
            other => {
                return Err(topo.err(
                    "kind",
                    format!("unknown topology '{other}' (gnutella|random|powerlaw|grid)"),
                ))
            }
        };
        let n = topo.require_usize("n")?;
        if n < 2 {
            return Err(topo.err("n", "need at least 2 hosts"));
        }
        let topology_seed = topo.opt_u64("seed")?.unwrap_or(1);
        topo.finish()?;

        let query = Keys::over(doc, "query")?;
        let aggregate = match query.require_str("aggregate")?.as_str() {
            "count" => Aggregate::Count,
            "sum" => Aggregate::Sum,
            "min" => Aggregate::Min,
            "max" => Aggregate::Max,
            "avg" | "average" => Aggregate::Average,
            other => {
                return Err(query.err(
                    "aggregate",
                    format!("unknown aggregate '{other}' (count|sum|min|max|avg)"),
                ))
            }
        };
        let c = query.opt_usize("c")?.unwrap_or(8);
        if c == 0 {
            return Err(query.err("c", "FM repetitions c must be >= 1"));
        }
        let hq = match query.opt_u64("hq")? {
            Some(v) => u32::try_from(v)
                .map_err(|_| query.err("hq", format!("host id {v} exceeds u32::MAX")))?,
            None => 0,
        };
        // Grids round n down to a perfect square, so validate against the
        // host count the topology will actually produce.
        let effective_n = match topology {
            TopologyKind::Grid => {
                let side = (n as f64).sqrt().floor() as usize;
                side * side
            }
            _ => n,
        };
        if (hq as usize) >= effective_n {
            return Err(query.err(
                "hq",
                format!(
                    "querying host {hq} out of range ({} builds {effective_n} hosts from n = {n})",
                    topology.name()
                ),
            ));
        }
        let d_hat_slack = query.opt_u64("d_hat_slack")?.unwrap_or(2) as u32;
        query.finish()?;

        let med = Keys::over(doc, "medium")?;
        let medium = match med.opt_str("kind")?.as_deref().unwrap_or("p2p") {
            "p2p" | "point-to-point" => Medium::PointToPoint,
            "radio" => Medium::Radio,
            other => return Err(med.err("kind", format!("unknown medium '{other}' (p2p|radio)"))),
        };
        let delay = match med.opt_str("delay")?.as_deref().unwrap_or("fixed") {
            "fixed" => DelayModel::Fixed(med.opt_u64("ticks")?.unwrap_or(1)),
            "uniform" => {
                let min = med.opt_u64("min")?.unwrap_or(1);
                let max = med.require_u64("max")?;
                if max < min {
                    return Err(med.err("max", format!("delay max {max} < min {min}")));
                }
                DelayModel::Uniform { min, max }
            }
            other => {
                return Err(med.err(
                    "delay",
                    format!("unknown delay model '{other}' (fixed|uniform)"),
                ))
            }
        };
        med.finish()?;

        let mut protocols = Vec::new();
        for section in doc.sections_named("protocol") {
            let proto = Keys::for_section(section);
            let spec = match proto.require_str("kind")?.as_str() {
                "wildfire" => ProtocolSpec::Wildfire,
                "spanning-tree" | "spanningtree" => ProtocolSpec::SpanningTree,
                "dag" => ProtocolSpec::Dag {
                    k: proto.opt_usize("k")?.unwrap_or(2),
                },
                "allreport" => ProtocolSpec::AllReport,
                "randomized-report" => {
                    let p = proto.require_f64("p")?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(
                            proto.err("p", format!("report probability {p} outside [0, 1]"))
                        );
                    }
                    ProtocolSpec::RandomizedReport { p }
                }
                "gossip" => ProtocolSpec::Gossip {
                    rounds: proto.require_u64("rounds")? as u32,
                },
                other => {
                    return Err(proto.err(
                        "kind",
                        format!(
                            "unknown protocol '{other}' \
                             (wildfire|spanning-tree|dag|allreport|randomized-report|gossip)"
                        ),
                    ))
                }
            };
            if protocols.contains(&spec) {
                return Err(ParseError::at(
                    section.line,
                    format!("duplicate [[protocol]] table for {}", spec.label()),
                ));
            }
            proto.finish()?;
            protocols.push(spec);
        }
        if protocols.is_empty() {
            return Err(ParseError::at(
                0,
                "missing required section [protocol] (or one [[protocol]] table per contender)",
            ));
        }

        // [partition] may stand alone or co-occur with any [churn]
        // model; repeated [[partition]] tables overlay cascading cuts;
        // `[churn] model = "partition"` remains as legacy sugar for a
        // single cut.
        let mut partitions: Vec<PartitionSpec> = Vec::new();
        for section in doc.sections_named("partition") {
            let pa = Keys::for_section(section);
            partitions.push(partition_spec(&pa)?);
            pa.finish()?;
        }

        let churn = match doc.section("churn") {
            None => ChurnSpec::None,
            Some(_) => {
                let ch = Keys::over(doc, "churn")?;
                let window = |ch: &Keys<'_>| -> Result<(f64, f64), ParseError> {
                    let from = ch.opt_f64("from")?.unwrap_or(0.0);
                    let until = ch.opt_f64("until")?.unwrap_or(1.0);
                    if !(0.0..=1.0).contains(&from) || !(0.0..=1.0).contains(&until) || from > until
                    {
                        return Err(ch.err(
                            "from",
                            format!(
                                "window [{from}, {until}] must satisfy 0 <= from <= until <= 1"
                            ),
                        ));
                    }
                    Ok((from, until))
                };
                let spec = match ch.require_str("model")?.as_str() {
                    "none" => ChurnSpec::None,
                    "uniform" => ChurnSpec::Uniform {
                        fraction: fraction_key(&ch)?,
                        window: window(&ch)?,
                    },
                    "flash-crowd" => ChurnSpec::FlashCrowd {
                        fraction: fraction_key(&ch)?,
                        window: window(&ch)?,
                    },
                    "correlated" => ChurnSpec::Correlated {
                        clusters: ch.require_usize("clusters")?,
                        cluster_size: ch.require_usize("cluster_size")?,
                        window: window(&ch)?,
                    },
                    "oscillating" => {
                        let period = ch.opt_f64("period")?.unwrap_or(0.5);
                        let downtime = ch.opt_f64("downtime")?.unwrap_or(period / 2.0);
                        if !(period > 0.0 && period <= 1.0) {
                            return Err(ch.err("period", format!("period {period} outside (0, 1]")));
                        }
                        if !(downtime > 0.0 && downtime < period) {
                            return Err(ch.err(
                                "downtime",
                                format!("downtime {downtime} must satisfy 0 < downtime < period"),
                            ));
                        }
                        ChurnSpec::Oscillating {
                            fraction: fraction_key(&ch)?,
                            window: window(&ch)?,
                            period,
                            downtime,
                        }
                    }
                    "partition" => {
                        // Legacy spelling: `[churn] model = "partition"` is
                        // sugar for a dedicated [partition] section.
                        if !partitions.is_empty() {
                            return Err(ch.err(
                                "model",
                                "churn model 'partition' conflicts with the [partition] \
                                 section; put the cut in [partition] and pick a real churn model",
                            ));
                        }
                        partitions.push(partition_spec(&ch)?);
                        ChurnSpec::None
                    }
                    "adversarial-root" => ChurnSpec::AdversarialRoot {
                        radius: ch.opt_u64("radius")?.unwrap_or(1) as u32,
                        at: {
                            let at = ch.opt_f64("at")?.unwrap_or(0.25);
                            if !(0.0..=1.0).contains(&at) {
                                return Err(ch.err("at", format!("at {at} outside [0, 1]")));
                            }
                            at
                        },
                    },
                    other => {
                        return Err(ch.err(
                            "model",
                            format!(
                                "unknown churn model '{other}' \
                                 (none|uniform|flash-crowd|correlated|oscillating|partition\
                                 |adversarial-root)"
                            ),
                        ))
                    }
                };
                ch.finish()?;
                spec
            }
        };

        // [phases] + [[phase]] tables own the whole membership regime —
        // they lower through `PhaseSchedule` into generated churn and
        // partition plans, so hand-written [churn] / [partition]
        // sections would fight them for the same hosts.
        let phases = match doc.section("phases") {
            None => {
                if let Some(first) = doc.sections_named("phase").next() {
                    return Err(ParseError::at(
                        first.line,
                        "[[phase]] tables need a [phases] header section",
                    ));
                }
                None
            }
            Some(section) => {
                if doc.section("churn").is_some() {
                    return Err(ParseError::at(
                        section.line,
                        "[phases] conflicts with [churn]: the phase schedule owns the \
                         whole membership regime",
                    ));
                }
                if doc.section("partition").is_some() {
                    return Err(ParseError::at(
                        section.line,
                        "[phases] conflicts with [partition]: script the cut as a \
                         [[phase]] of kind 'partition' instead",
                    ));
                }
                let ph = Keys::over(doc, "phases")?;
                let start_alive = ph.opt_f64("start_alive")?.unwrap_or(1.0);
                if !(start_alive > 0.0 && start_alive <= 1.0) {
                    return Err(ph.err(
                        "start_alive",
                        format!("start_alive {start_alive} outside (0, 1]"),
                    ));
                }
                ph.finish()?;
                let mut list: Vec<(PhaseKind, f64)> = Vec::new();
                for table in doc.sections_named("phase") {
                    let pk = Keys::for_section(table);
                    let kind_name = pk.require_str("kind")?;
                    let weight = pk.opt_f64("weight")?.unwrap_or(1.0);
                    if weight <= 0.0 {
                        return Err(pk.err("weight", format!("weight {weight} must be > 0")));
                    }
                    let kind = match kind_name.as_str() {
                        "growth" => PhaseKind::Growth {
                            fraction: phase_fraction(&pk)?,
                        },
                        "stable" => PhaseKind::Stable,
                        "shrink" => PhaseKind::Shrink {
                            fraction: phase_fraction(&pk)?,
                        },
                        "partition" => PhaseKind::Partition {
                            fraction: phase_fraction(&pk)?,
                        },
                        "heal" => PhaseKind::Heal,
                        other => {
                            return Err(pk.err(
                                "kind",
                                format!(
                                    "unknown phase kind '{other}' \
                                     (growth|stable|shrink|partition|heal)"
                                ),
                            ))
                        }
                    };
                    pk.finish()?;
                    list.push((kind, weight));
                }
                if list.is_empty() {
                    return Err(ParseError::at(
                        section.line,
                        "[phases] needs at least one [[phase]] table",
                    ));
                }
                Some(PhasesSpec {
                    start_alive,
                    phases: list,
                })
            }
        };

        let adversary = match doc.section("adversary") {
            None => None,
            Some(section) => {
                let ad = Keys::over(doc, "adversary")?;
                match ad.require_str("target")?.as_str() {
                    "fm_maxima" => {}
                    other => {
                        return Err(ad.err(
                            "target",
                            format!("unknown adversary target '{other}' (fm_maxima)"),
                        ))
                    }
                }
                let kills_per_wave = ad.opt_usize("kills_per_wave")?.unwrap_or(1);
                if kills_per_wave == 0 {
                    return Err(ad.err("kills_per_wave", "must be >= 1"));
                }
                let budget = ad.require_usize("budget")?;
                if budget == 0 {
                    return Err(ad.err("budget", "an adversary with no kills is [churn] none"));
                }
                let start = ad.opt_f64("start")?.unwrap_or(0.0);
                let until = ad.opt_f64("until")?.unwrap_or(1.0);
                if !(0.0..=1.0).contains(&start) || !(0.0..=1.0).contains(&until) || start > until {
                    return Err(ad.err(
                        "start",
                        format!("window [{start}, {until}] must satisfy 0 <= start <= until <= 1"),
                    ));
                }
                if doc.section("continuous").is_some() {
                    return Err(ParseError::at(
                        section.line,
                        "[adversary] cannot be combined with [continuous]: a dynamic kill \
                         schedule cannot be replayed into window-local churn plans",
                    ));
                }
                ad.finish()?;
                Some(AdversarySpec {
                    kills_per_wave,
                    budget,
                    start,
                    until,
                })
            }
        };

        let telemetry = match doc.section("telemetry") {
            None => None,
            Some(_) => {
                let te = Keys::over(doc, "telemetry")?;
                let defaults = TelemetrySpec::default();
                let summary_every = te
                    .opt_u64("summary_every")?
                    .unwrap_or(defaults.summary_every);
                if summary_every == 0 {
                    return Err(te.err("summary_every", "sampling cadence must be >= 1 tick"));
                }
                let flight_window = te
                    .opt_u64("flight_window")?
                    .unwrap_or(defaults.flight_window);
                if flight_window == 0 {
                    return Err(te.err("flight_window", "flight recorder needs >= 1 tick of ring"));
                }
                te.finish()?;
                Some(TelemetrySpec {
                    summary_every,
                    flight_window,
                })
            }
        };

        let overlay = match doc.section("overlay") {
            None => None,
            Some(_) => {
                let ov = Keys::over(doc, "overlay")?;
                let defaults = OverlayConfig::default();
                let active_degree = ov
                    .opt_usize("active_degree")?
                    .unwrap_or(defaults.active_degree);
                if active_degree == 0 {
                    return Err(ov.err("active_degree", "active view needs >= 1 slot"));
                }
                let passive_degree = ov
                    .opt_usize("passive_degree")?
                    .unwrap_or(defaults.passive_degree);
                let shuffle_every = ov
                    .opt_u64("shuffle_every")?
                    .unwrap_or(defaults.shuffle_every);
                if shuffle_every == 0 {
                    return Err(ov.err("shuffle_every", "shuffle cadence must be >= 1 tick"));
                }
                let probe_every = ov.opt_u64("probe_every")?.unwrap_or(defaults.probe_every);
                if probe_every == 0 {
                    return Err(ov.err("probe_every", "probe cadence must be >= 1 tick"));
                }
                let probe_timeout = ov
                    .opt_u64("probe_timeout")?
                    .unwrap_or(defaults.probe_timeout);
                if probe_timeout == 0 {
                    return Err(ov.err("probe_timeout", "probe timeout must be >= 1 tick"));
                }
                let indirect_probes = ov
                    .opt_usize("indirect_probes")?
                    .unwrap_or(defaults.indirect_probes);
                let suspicion_timeout = ov
                    .opt_u64("suspicion_timeout")?
                    .unwrap_or(defaults.suspicion_timeout);
                if suspicion_timeout == 0 {
                    return Err(ov.err("suspicion_timeout", "suspicion timeout must be >= 1 tick"));
                }
                let false_positive = ov
                    .opt_f64("false_positive")?
                    .unwrap_or(defaults.false_positive);
                if !(0.0..=1.0).contains(&false_positive) {
                    return Err(ov.err(
                        "false_positive",
                        format!("false_positive {false_positive} outside [0, 1]"),
                    ));
                }
                ov.finish()?;
                Some(OverlaySpec {
                    config: OverlayConfig {
                        active_degree,
                        passive_degree,
                        shuffle_every,
                        probe_every,
                        probe_timeout,
                        indirect_probes,
                        suspicion_timeout,
                        false_positive,
                        seed: 0,
                    },
                })
            }
        };

        let workload = match doc.section("workload") {
            None => None,
            Some(section) => {
                if doc.section("continuous").is_some() {
                    return Err(ParseError::at(
                        section.line,
                        "[workload] cannot be combined with [continuous]: a workload is \
                         already many queries over one run",
                    ));
                }
                if doc.section("adversary").is_some() {
                    return Err(ParseError::at(
                        section.line,
                        "[workload] cannot be combined with [adversary]: a dynamic kill \
                         schedule cannot be replayed into the workload's environment",
                    ));
                }
                let wl = Keys::over(doc, "workload")?;
                let queries = wl.require_usize("queries")?;
                if queries == 0 {
                    return Err(wl.err("queries", "a workload needs at least one query"));
                }
                let span = wl.opt_f64("span")?.unwrap_or(1.0);
                if !(span > 0.0 && span <= 8.0) {
                    return Err(wl.err("span", format!("arrival span {span} outside (0, 8]")));
                }
                let window = match wl.opt_f64("window")? {
                    None => None,
                    Some(w) => {
                        if !(w > 0.0 && w <= 1.0) {
                            return Err(wl.err("window", format!("window {w} outside (0, 1]")));
                        }
                        let slide = wl.require_f64("slide")?;
                        if !(slide > 0.0 && slide < w) {
                            return Err(wl.err(
                                "slide",
                                format!("slide {slide} must satisfy 0 < slide < window {w}"),
                            ));
                        }
                        let instances = wl.opt_usize("instances")?.unwrap_or(2);
                        if instances == 0 {
                            return Err(wl.err("instances", "need at least one instance"));
                        }
                        Some((w, slide, instances))
                    }
                };
                wl.finish()?;
                Some(WorkloadSpec {
                    queries,
                    span,
                    window,
                })
            }
        };

        let continuous = match doc.section("continuous") {
            None => None,
            Some(_) => {
                let co = Keys::over(doc, "continuous")?;
                let windows = co.require_usize("windows")?;
                if windows == 0 {
                    return Err(co.err("windows", "need at least one window"));
                }
                let window_factor = co.opt_f64("window_factor")?.unwrap_or(1.0);
                if window_factor < 1.0 {
                    return Err(co.err(
                        "window_factor",
                        format!(
                            "window_factor {window_factor} < 1: a window must fit a \
                             full query round (§4.2)"
                        ),
                    ));
                }
                co.finish()?;
                Some(ContinuousSpec {
                    windows,
                    window_factor,
                })
            }
        };

        let run = Keys::over(doc, "run")?;
        let seeds = run.require_u64_list("seeds")?;
        if seeds.is_empty() {
            return Err(run.err("seeds", "need at least one seed"));
        }
        let repetitions = run.opt_usize("repetitions")?.unwrap_or(1);
        if repetitions == 0 {
            return Err(run.err("repetitions", "repetitions must be >= 1"));
        }
        run.finish()?;

        Ok(Scenario {
            name,
            description,
            topology,
            n,
            topology_seed,
            aggregate,
            c,
            hq,
            d_hat_slack,
            medium,
            delay,
            protocols,
            churn,
            partitions,
            phases,
            adversary,
            continuous,
            telemetry,
            overlay,
            workload,
            seeds,
            repetitions,
        })
    }
}

/// Read the `fraction` key of a growth/shrink/partition `[[phase]]`
/// table and validate it lies in `(0, 1]` (the range
/// [`pov_core::pov_sim::PhaseSchedule::then`] asserts).
fn phase_fraction(keys: &Keys<'_>) -> Result<f64, ParseError> {
    let f = keys.require_f64("fraction")?;
    if !(f > 0.0 && f <= 1.0) {
        return Err(keys.err("fraction", format!("fraction {f} outside (0, 1]")));
    }
    Ok(f)
}

/// Read a `fraction` key and validate it lies in `[0, 1]`.
fn fraction_key(keys: &Keys<'_>) -> Result<f64, ParseError> {
    let f = keys.require_f64("fraction")?;
    if !(0.0..=1.0).contains(&f) {
        return Err(keys.err("fraction", format!("fraction {f} outside [0, 1]")));
    }
    Ok(f)
}

/// Read the cut keys (`fraction`, `from`, `heal`) of a `[partition]`
/// section — or of the legacy `[churn] model = "partition"` spelling.
fn partition_spec(keys: &Keys<'_>) -> Result<PartitionSpec, ParseError> {
    let from = keys.opt_f64("from")?.unwrap_or(0.0);
    let heal = keys.opt_f64("heal")?.unwrap_or(1.0);
    if !(0.0..=1.0).contains(&from) || !(0.0..=1.0).contains(&heal) || from >= heal {
        return Err(keys.err(
            "from",
            format!("partition [{from}, {heal}) must satisfy 0 <= from < heal <= 1"),
        ));
    }
    Ok(PartitionSpec {
        fraction: fraction_key(keys)?,
        from,
        heal,
    })
}

/// Typed, consumption-tracked access to one section's keys: every key a
/// reader touches is marked, and [`Keys::finish`] rejects leftovers so
/// typos cannot silently fall back to defaults.
struct Keys<'a> {
    section: Option<&'a Section>,
    name: &'a str,
    line: usize,
    used: std::cell::RefCell<Vec<&'a str>>,
}

impl<'a> Keys<'a> {
    fn over(doc: &'a Doc, name: &'a str) -> Result<Keys<'a>, ParseError> {
        let section = doc.section(name);
        match (name, &section) {
            // [medium], [churn], [partition], [adversary], [continuous],
            // [telemetry], [overlay] and [workload] are optional; the
            // rest must exist.
            (
                "medium" | "churn" | "partition" | "adversary" | "continuous" | "telemetry"
                | "overlay" | "workload",
                _,
            )
            | (_, Some(_)) => Ok(Keys {
                line: section.map_or(0, |s| s.line),
                section,
                name,
                used: std::cell::RefCell::new(Vec::new()),
            }),
            _ => Err(ParseError::at(
                0,
                format!("missing required section [{name}]"),
            )),
        }
    }

    /// Typed access to one concrete section instance — used for the
    /// repeated `[[protocol]]` tables, where `Doc::section` (first
    /// match) is not enough.
    fn for_section(section: &'a Section) -> Keys<'a> {
        Keys {
            line: section.line,
            name: &section.name,
            section: Some(section),
            used: std::cell::RefCell::new(Vec::new()),
        }
    }

    fn entry(&self, key: &'a str) -> Option<&'a Entry> {
        let e = self.section.and_then(|s| s.get(key));
        if e.is_some() {
            self.used.borrow_mut().push(key);
        }
        e
    }

    fn err(&self, key: &str, msg: impl Into<String>) -> ParseError {
        let line = self
            .section
            .and_then(|s| s.get(key))
            .map_or(self.line, |e| e.line);
        ParseError::at(line, format!("[{}] {}: {}", self.name, key, msg.into()))
    }

    fn require_str(&self, key: &'a str) -> Result<String, ParseError> {
        self.opt_str(key)?
            .ok_or_else(|| self.missing(key, "string"))
    }

    fn opt_str(&self, key: &'a str) -> Result<Option<String>, ParseError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Str(s) => Ok(Some(s.clone())),
                v => Err(self.err(key, format!("expected a string, got {}", v.type_name()))),
            },
        }
    }

    fn require_u64(&self, key: &'a str) -> Result<u64, ParseError> {
        self.opt_u64(key)?
            .ok_or_else(|| self.missing(key, "integer"))
    }

    fn opt_u64(&self, key: &'a str) -> Result<Option<u64>, ParseError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match e.value {
                Value::Int(i) if i >= 0 => Ok(Some(i as u64)),
                Value::Int(i) => Err(self.err(key, format!("must be non-negative, got {i}"))),
                ref v => Err(self.err(key, format!("expected an integer, got {}", v.type_name()))),
            },
        }
    }

    fn require_usize(&self, key: &'a str) -> Result<usize, ParseError> {
        Ok(self.require_u64(key)? as usize)
    }

    fn opt_usize(&self, key: &'a str) -> Result<Option<usize>, ParseError> {
        Ok(self.opt_u64(key)?.map(|v| v as usize))
    }

    fn require_f64(&self, key: &'a str) -> Result<f64, ParseError> {
        self.opt_f64(key)?
            .ok_or_else(|| self.missing(key, "number"))
    }

    fn opt_f64(&self, key: &'a str) -> Result<Option<f64>, ParseError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match e.value {
                Value::Float(f) => Ok(Some(f)),
                Value::Int(i) => Ok(Some(i as f64)),
                ref v => Err(self.err(key, format!("expected a number, got {}", v.type_name()))),
            },
        }
    }

    fn require_u64_list(&self, key: &'a str) -> Result<Vec<u64>, ParseError> {
        match self.entry(key) {
            None => Err(self.missing(key, "list of integers")),
            Some(e) => match &e.value {
                Value::List(items) => items
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) if *i >= 0 => Ok(*i as u64),
                        Value::Int(i) => {
                            Err(self.err(key, format!("list elements must be >= 0, got {i}")))
                        }
                        v => Err(self.err(
                            key,
                            format!("expected integer elements, got {}", v.type_name()),
                        )),
                    })
                    .collect(),
                v => Err(self.err(key, format!("expected a list, got {}", v.type_name()))),
            },
        }
    }

    fn missing(&self, key: &str, what: &str) -> ParseError {
        ParseError::at(
            self.line,
            format!("[{}] missing required key '{key}' ({what})", self.name),
        )
    }

    /// Reject keys nobody consumed.
    fn finish(&self) -> Result<(), ParseError> {
        if let Some(section) = self.section {
            let used = self.used.borrow();
            for e in &section.entries {
                if !used.contains(&e.key.as_str()) {
                    return Err(ParseError::at(
                        e.line,
                        format!("unknown key '{}' in [{}]", e.key, self.name),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    const GOOD: &str = r#"
[scenario]
name = "demo"
description = "a demo"

[topology]
kind = "grid"
n = 400
seed = 7

[query]
aggregate = "count"
c = 16
hq = 0

[medium]
kind = "radio"
delay = "uniform"
min = 1
max = 2

[protocol]
kind = "wildfire"

[churn]
model = "partition"
fraction = 0.4
from = 0.1
heal = 0.6

[run]
seeds = [1, 2, 3]
repetitions = 2
"#;

    #[test]
    fn parses_complete_scenario() {
        let s = Scenario::from_str(GOOD).expect("valid");
        assert_eq!(s.name, "demo");
        assert_eq!(s.topology, TopologyKind::Grid);
        assert_eq!(s.n, 400);
        assert_eq!(s.topology_seed, 7);
        assert_eq!(s.aggregate, Aggregate::Count);
        assert_eq!(s.c, 16);
        assert_eq!(s.medium, Medium::Radio);
        assert_eq!(s.delay, DelayModel::Uniform { min: 1, max: 2 });
        assert_eq!(s.protocols, vec![ProtocolSpec::Wildfire]);
        // The legacy `model = "partition"` spelling lowers to a
        // [partition] spec with no additional churn.
        assert_eq!(s.churn, ChurnSpec::None);
        assert_eq!(
            s.partitions,
            vec![PartitionSpec {
                fraction: 0.4,
                from: 0.1,
                heal: 0.6
            }]
        );
        assert_eq!(s.regime(), "partition");
        assert_eq!(s.continuous, None);
        assert_eq!(s.seeds, vec![1, 2, 3]);
        assert_eq!(s.num_runs(), 6);
    }

    #[test]
    fn defaults_are_sensible() {
        let s = Scenario::from_str(
            r#"
[scenario]
name = "min"
[topology]
kind = "random"
n = 100
[query]
aggregate = "max"
[protocol]
kind = "spanning-tree"
[run]
seeds = [9]
"#,
        )
        .expect("valid");
        assert_eq!(s.c, 8);
        assert_eq!(s.hq, 0);
        assert_eq!(s.d_hat_slack, 2);
        assert_eq!(s.medium, Medium::PointToPoint);
        assert_eq!(s.delay, DelayModel::Fixed(1));
        assert_eq!(s.churn, ChurnSpec::None);
        assert_eq!(s.partitions, vec![]);
        assert_eq!(s.continuous, None);
        assert_eq!(s.regime(), "none");
        assert_eq!(s.repetitions, 1);
        assert_eq!(s.topology_seed, 1);
    }

    #[test]
    fn repeated_protocol_tables_compare_in_order() {
        let s = Scenario::from_str(
            r#"
[scenario]
name = "versus"
[topology]
kind = "random"
n = 100
[query]
aggregate = "count"
[[protocol]]
kind = "wildfire"
[[protocol]]
kind = "spanning-tree"
[[protocol]]
kind = "dag"
k = 3
[run]
seeds = [1]
"#,
        )
        .expect("valid");
        assert_eq!(
            s.protocols,
            vec![
                ProtocolSpec::Wildfire,
                ProtocolSpec::SpanningTree,
                ProtocolSpec::Dag { k: 3 },
            ]
        );
        assert_eq!(s.protocols[2].label(), "DAG(k=3)");
    }

    #[test]
    fn repeated_tables_only_allowed_for_protocol() {
        // A second [[run]] table would be silently ignored by the
        // first-match readers — reject the array form outright for
        // every section but [[protocol]].
        for section in ["run", "churn", "query", "medium"] {
            let text = GOOD.replace(&format!("[{section}]"), &format!("[[{section}]]"));
            let err = Scenario::from_str(&text).expect_err(section);
            assert!(
                err.msg.contains("not repeatable"),
                "[{section}]: {}",
                err.msg
            );
        }
    }

    #[test]
    fn duplicate_protocol_tables_rejected() {
        let err = Scenario::from_str(
            "[scenario]\nname = \"x\"\n[topology]\nkind = \"random\"\nn = 50\n\
             [query]\naggregate = \"count\"\n\
             [[protocol]]\nkind = \"wildfire\"\n[[protocol]]\nkind = \"wildfire\"\n\
             [run]\nseeds = [1]",
        )
        .expect_err("dup");
        assert!(err.msg.contains("duplicate [[protocol]]"), "{}", err.msg);
    }

    #[test]
    fn churn_and_partition_co_occur() {
        let s = Scenario::from_str(
            r#"
[scenario]
name = "both"
[topology]
kind = "random"
n = 200
[query]
aggregate = "count"
[protocol]
kind = "wildfire"
[churn]
model = "uniform"
fraction = 0.1
[partition]
fraction = 0.3
from = 0.2
heal = 0.7
[run]
seeds = [1]
"#,
        )
        .expect("valid");
        assert_eq!(
            s.churn,
            ChurnSpec::Uniform {
                fraction: 0.1,
                window: (0.0, 1.0)
            }
        );
        assert_eq!(
            s.partitions,
            vec![PartitionSpec {
                fraction: 0.3,
                from: 0.2,
                heal: 0.7
            }]
        );
        assert_eq!(s.regime(), "uniform+partition");
    }

    #[test]
    fn repeated_partition_tables_cascade() {
        let s = Scenario::from_str(
            r#"
[scenario]
name = "cascade"
[topology]
kind = "random"
n = 200
[query]
aggregate = "count"
[protocol]
kind = "wildfire"
[[partition]]
fraction = 0.3
from = 0.0
heal = 0.5
[[partition]]
fraction = 0.2
from = 0.3
heal = 0.9
[run]
seeds = [1]
"#,
        )
        .expect("valid");
        assert_eq!(
            s.partitions,
            vec![
                PartitionSpec {
                    fraction: 0.3,
                    from: 0.0,
                    heal: 0.5
                },
                PartitionSpec {
                    fraction: 0.2,
                    from: 0.3,
                    heal: 0.9
                },
            ]
        );
        assert_eq!(s.regime(), "partition");
    }

    #[test]
    fn legacy_partition_model_conflicts_with_partition_section() {
        let err = Scenario::from_str(&format!("{GOOD}\n[partition]\nfraction = 0.2"))
            .expect_err("conflict");
        assert!(err.msg.contains("conflicts"), "{}", err.msg);
    }

    const PHASED: &str = r#"
[scenario]
name = "phased"
[topology]
kind = "random"
n = 100
[query]
aggregate = "count"
[protocol]
kind = "wildfire"
[phases]
start_alive = 0.7
[[phase]]
kind = "growth"
fraction = 0.4
weight = 2.0
[[phase]]
kind = "stable"
weight = 3.0
[[phase]]
kind = "shrink"
fraction = 0.3
[[phase]]
kind = "partition"
fraction = 0.3
[[phase]]
kind = "heal"
[continuous]
windows = 4
[run]
seeds = [1]
"#;

    #[test]
    fn phases_section_parses_the_membership_arc() {
        let s = Scenario::from_str(PHASED).expect("valid");
        let p = s.phases.as_ref().expect("phases spec");
        assert_eq!(p.start_alive, 0.7);
        assert_eq!(
            p.phases,
            vec![
                (PhaseKind::Growth { fraction: 0.4 }, 2.0),
                (PhaseKind::Stable, 3.0),
                (PhaseKind::Shrink { fraction: 0.3 }, 1.0),
                (PhaseKind::Partition { fraction: 0.3 }, 1.0),
                (PhaseKind::Heal, 1.0),
            ]
        );
        assert_eq!(s.churn, ChurnSpec::None);
        assert_eq!(s.partitions, vec![]);
        assert_eq!(s.regime(), "phased");
        // [phases] composes with [continuous] — the soak harness runs
        // long arcs as window streams.
        assert_eq!(s.continuous.map(|c| c.windows), Some(4));
    }

    #[test]
    fn phases_conflict_with_hand_written_regimes() {
        let err = Scenario::from_str(&format!("{PHASED}\n[churn]\nmodel = \"none\""))
            .expect_err("churn conflict");
        assert!(err.msg.contains("conflicts with [churn]"), "{}", err.msg);
        let err = Scenario::from_str(&format!(
            "{PHASED}\n[partition]\nfraction = 0.2\nfrom = 0.0\nheal = 0.5"
        ))
        .expect_err("partition conflict");
        assert!(
            err.msg.contains("conflicts with [partition]"),
            "{}",
            err.msg
        );
    }

    #[test]
    fn phases_grammar_rejects_malformed_arcs() {
        // A [[phase]] table without the [phases] header.
        let err = Scenario::from_str(&PHASED.replace("[phases]\nstart_alive = 0.7\n", ""))
            .expect_err("headless phase");
        assert!(err.msg.contains("[phases] header"), "{}", err.msg);
        // A [phases] header with no [[phase]] tables.
        let err = Scenario::from_str(
            "[scenario]\nname = \"x\"\n[topology]\nkind = \"random\"\nn = 50\n\
             [query]\naggregate = \"count\"\n[protocol]\nkind = \"wildfire\"\n\
             [phases]\nstart_alive = 0.5\n[run]\nseeds = [1]",
        )
        .expect_err("empty arc");
        assert!(err.msg.contains("at least one [[phase]]"), "{}", err.msg);
        // Unknown phase kind.
        let err = Scenario::from_str(&PHASED.replace("kind = \"stable\"", "kind = \"plateau\""))
            .expect_err("bad kind");
        assert!(err.msg.contains("unknown phase kind"), "{}", err.msg);
        // Growth without its fraction.
        let err = Scenario::from_str(&PHASED.replace("fraction = 0.4\n", ""))
            .expect_err("missing fraction");
        assert!(err.msg.contains("fraction"), "{}", err.msg);
        // Stable phases take no fraction — the strict key reader
        // rejects the leftover.
        let err = Scenario::from_str(
            &PHASED.replace("kind = \"stable\"", "kind = \"stable\"\nfraction = 0.2"),
        )
        .expect_err("stable fraction");
        assert!(err.msg.contains("unknown key 'fraction'"), "{}", err.msg);
        // Zero weight and out-of-range start_alive.
        let err = Scenario::from_str(&PHASED.replace("weight = 3.0", "weight = 0.0"))
            .expect_err("zero weight");
        assert!(err.msg.contains("must be > 0"), "{}", err.msg);
        let err = Scenario::from_str(&PHASED.replace("start_alive = 0.7", "start_alive = 1.5"))
            .expect_err("bad start_alive");
        assert!(err.msg.contains("outside (0, 1]"), "{}", err.msg);
    }

    #[test]
    fn oscillating_model_parses_with_defaults() {
        let text = GOOD
            .replace("model = \"partition\"", "model = \"oscillating\"")
            .replace("from = 0.1\nheal = 0.6", "period = 0.4\ndowntime = 0.1");
        let s = Scenario::from_str(&text).expect("valid");
        assert_eq!(
            s.churn,
            ChurnSpec::Oscillating {
                fraction: 0.4,
                window: (0.0, 1.0),
                period: 0.4,
                downtime: 0.1,
            }
        );
        assert_eq!(s.regime(), "oscillating");
        // Downtime must stay below the period.
        let bad = text.replace("downtime = 0.1", "downtime = 0.5");
        let err = Scenario::from_str(&bad).expect_err("downtime >= period");
        assert!(err.msg.contains("downtime"), "{}", err.msg);
    }

    #[test]
    fn adversary_section_parses_and_validates() {
        let s = Scenario::from_str(&format!(
            "{GOOD}\n[adversary]\ntarget = \"fm_maxima\"\nkills_per_wave = 3\n\
             budget = 24\nstart = 0.1\nuntil = 0.6"
        ))
        .expect("valid");
        assert_eq!(
            s.adversary,
            Some(AdversarySpec {
                kills_per_wave: 3,
                budget: 24,
                start: 0.1,
                until: 0.6
            })
        );
        // GOOD's legacy churn model is a partition; the adversary layers.
        assert_eq!(s.regime(), "partition+adversary");
        // Defaults: one kill per wave, whole-run window.
        let s = Scenario::from_str(&format!(
            "{GOOD}\n[adversary]\ntarget = \"fm_maxima\"\nbudget = 8"
        ))
        .expect("valid");
        assert_eq!(
            s.adversary,
            Some(AdversarySpec {
                kills_per_wave: 1,
                budget: 8,
                start: 0.0,
                until: 1.0
            })
        );
        let err = Scenario::from_str(&format!(
            "{GOOD}\n[adversary]\ntarget = \"root\"\nbudget = 8"
        ))
        .expect_err("bad target");
        assert!(err.msg.contains("unknown adversary target"), "{}", err.msg);
        let err = Scenario::from_str(&format!(
            "{GOOD}\n[adversary]\ntarget = \"fm_maxima\"\nbudget = 0"
        ))
        .expect_err("zero budget");
        assert!(err.msg.contains("no kills"), "{}", err.msg);
        let err = Scenario::from_str(&format!(
            "{GOOD}\n[adversary]\ntarget = \"fm_maxima\"\nbudget = 8\nstart = 0.9\nuntil = 0.2"
        ))
        .expect_err("inverted window");
        assert!(err.msg.contains("start <= until"), "{}", err.msg);
    }

    #[test]
    fn adversary_rejects_continuous_combination() {
        let err = Scenario::from_str(&format!(
            "{GOOD}\n[adversary]\ntarget = \"fm_maxima\"\nbudget = 8\n\
             [continuous]\nwindows = 2"
        ))
        .expect_err("adversary + continuous");
        assert!(err.msg.contains("[continuous]"), "{}", err.msg);
    }

    #[test]
    fn adversary_alone_names_the_regime() {
        let s = Scenario::from_str(
            r#"
[scenario]
name = "adv"
[topology]
kind = "random"
n = 100
[query]
aggregate = "count"
[protocol]
kind = "wildfire"
[adversary]
target = "fm_maxima"
budget = 10
[run]
seeds = [1]
"#,
        )
        .expect("valid");
        assert_eq!(s.churn, ChurnSpec::None);
        assert_eq!(s.regime(), "adversary");
    }

    #[test]
    fn telemetry_section_parses_and_validates() {
        // Absent section → no spec (trace runner falls back to defaults).
        let s = Scenario::from_str(GOOD).expect("valid");
        assert_eq!(s.telemetry, None);
        // Present but empty → the documented defaults.
        let s = Scenario::from_str(&format!("{GOOD}\n[telemetry]")).expect("valid");
        assert_eq!(s.telemetry, Some(TelemetrySpec::default()));
        assert_eq!(
            s.telemetry.unwrap(),
            TelemetrySpec {
                summary_every: 8,
                flight_window: 256
            }
        );
        // Explicit knobs.
        let s = Scenario::from_str(&format!(
            "{GOOD}\n[telemetry]\nsummary_every = 4\nflight_window = 64"
        ))
        .expect("valid");
        assert_eq!(
            s.telemetry,
            Some(TelemetrySpec {
                summary_every: 4,
                flight_window: 64
            })
        );
        // Zero cadences are rejected, typos too.
        let err = Scenario::from_str(&format!("{GOOD}\n[telemetry]\nsummary_every = 0"))
            .expect_err("zero cadence");
        assert!(err.msg.contains(">= 1 tick"), "{}", err.msg);
        let err = Scenario::from_str(&format!("{GOOD}\n[telemetry]\nflight_window = 0"))
            .expect_err("zero ring");
        assert!(err.msg.contains("ring"), "{}", err.msg);
        let err = Scenario::from_str(&format!("{GOOD}\n[telemetry]\nsumary_every = 4"))
            .expect_err("typo");
        assert!(err.msg.contains("unknown key"), "{}", err.msg);
        // Not repeatable, like every other single-reader section.
        let err = Scenario::from_str(&format!("{GOOD}\n[[telemetry]]\nsummary_every = 4"))
            .expect_err("array form");
        assert!(err.msg.contains("not repeatable"), "{}", err.msg);
    }

    #[test]
    fn overlay_section_parses_and_validates() {
        // Absent section → no overlay (reports are byte-identical to
        // the pre-overlay grammar).
        let s = Scenario::from_str(GOOD).expect("valid");
        assert_eq!(s.overlay, None);
        // Present but empty → the driver's documented defaults with a
        // zero placeholder seed (the batch runner injects per-cell
        // seeds).
        let s = Scenario::from_str(&format!("{GOOD}\n[overlay]")).expect("valid");
        assert_eq!(
            s.overlay,
            Some(OverlaySpec {
                config: OverlayConfig {
                    seed: 0,
                    ..OverlayConfig::default()
                }
            })
        );
        // Explicit knobs.
        let s = Scenario::from_str(&format!(
            "{GOOD}\n[overlay]\nactive_degree = 3\npassive_degree = 8\nshuffle_every = 6\n\
             probe_every = 2\nprobe_timeout = 1\nindirect_probes = 1\nsuspicion_timeout = 3\n\
             false_positive = 0.05"
        ))
        .expect("valid");
        let cfg = s.overlay.unwrap().config;
        assert_eq!(cfg.active_degree, 3);
        assert_eq!(cfg.passive_degree, 8);
        assert_eq!(cfg.shuffle_every, 6);
        assert_eq!(cfg.probe_every, 2);
        assert_eq!(cfg.probe_timeout, 1);
        assert_eq!(cfg.indirect_probes, 1);
        assert_eq!(cfg.suspicion_timeout, 3);
        assert_eq!(cfg.false_positive, 0.05);
        // Degenerate cadences and out-of-range rates are rejected.
        let err = Scenario::from_str(&format!("{GOOD}\n[overlay]\nactive_degree = 0"))
            .expect_err("zero active view");
        assert!(err.msg.contains(">= 1 slot"), "{}", err.msg);
        let err = Scenario::from_str(&format!("{GOOD}\n[overlay]\nprobe_every = 0"))
            .expect_err("zero cadence");
        assert!(err.msg.contains(">= 1 tick"), "{}", err.msg);
        let err = Scenario::from_str(&format!("{GOOD}\n[overlay]\nfalse_positive = 1.5"))
            .expect_err("bad rate");
        assert!(err.msg.contains("outside [0, 1]"), "{}", err.msg);
        // There is no `seed` key: seeds come from [run], per cell.
        let err =
            Scenario::from_str(&format!("{GOOD}\n[overlay]\nseed = 7")).expect_err("seed key");
        assert!(err.msg.contains("unknown key 'seed'"), "{}", err.msg);
        // Not repeatable, like every other single-reader section.
        let err = Scenario::from_str(&format!("{GOOD}\n[[overlay]]\nactive_degree = 3"))
            .expect_err("array form");
        assert!(err.msg.contains("not repeatable"), "{}", err.msg);
    }

    #[test]
    fn workload_section_parses_and_validates() {
        // Absent section → no workload (reports keep their historical
        // rendering, byte for byte).
        let s = Scenario::from_str(GOOD).expect("valid");
        assert_eq!(s.workload, None);
        // Minimal form: queries with the default one-deadline span.
        let s = Scenario::from_str(&format!("{GOOD}\n[workload]\nqueries = 40")).expect("valid");
        assert_eq!(
            s.workload,
            Some(WorkloadSpec {
                queries: 40,
                span: 1.0,
                window: None,
            })
        );
        // Full form with sliding windows.
        let s = Scenario::from_str(&format!(
            "{GOOD}\n[workload]\nqueries = 10\nspan = 2.0\nwindow = 0.8\nslide = 0.3\ninstances = 3"
        ))
        .expect("valid");
        assert_eq!(
            s.workload,
            Some(WorkloadSpec {
                queries: 10,
                span: 2.0,
                window: Some((0.8, 0.3, 3)),
            })
        );
        // `instances` defaults to 2 when windowed.
        let s = Scenario::from_str(&format!(
            "{GOOD}\n[workload]\nqueries = 10\nwindow = 0.5\nslide = 0.2"
        ))
        .expect("valid");
        assert_eq!(s.workload.unwrap().window, Some((0.5, 0.2, 2)));
        // Validation: every knob is range-checked.
        let err = Scenario::from_str(&format!("{GOOD}\n[workload]\nqueries = 0"))
            .expect_err("zero queries");
        assert!(err.msg.contains("at least one query"), "{}", err.msg);
        let err = Scenario::from_str(&format!("{GOOD}\n[workload]\nqueries = 5\nspan = 9.0"))
            .expect_err("huge span");
        assert!(err.msg.contains("outside (0, 8]"), "{}", err.msg);
        let err = Scenario::from_str(&format!(
            "{GOOD}\n[workload]\nqueries = 5\nwindow = 0.4\nslide = 0.4"
        ))
        .expect_err("slide == window");
        assert!(err.msg.contains("slide < window"), "{}", err.msg);
        let err = Scenario::from_str(&format!("{GOOD}\n[workload]\nqueries = 5\nwindow = 0.4"))
            .expect_err("window without slide");
        assert!(err.msg.contains("slide"), "{}", err.msg);
        // Conflicts: [continuous] and [adversary] are rejected.
        let err = Scenario::from_str(&format!(
            "{GOOD}\n[workload]\nqueries = 5\n[continuous]\nwindows = 2"
        ))
        .expect_err("continuous conflict");
        assert!(err.msg.contains("[continuous]"), "{}", err.msg);
        let err = Scenario::from_str(&format!(
            "{GOOD}\n[workload]\nqueries = 5\n[adversary]\nkills_per_wave = 1\nbudget = 4"
        ))
        .expect_err("adversary conflict");
        assert!(err.msg.contains("[adversary]"), "{}", err.msg);
        // Unknown keys are caught like every other section.
        let err = Scenario::from_str(&format!("{GOOD}\n[workload]\nqueries = 5\nbogus = 1"))
            .expect_err("unknown key");
        assert!(err.msg.contains("unknown key"), "{}", err.msg);
    }

    #[test]
    fn continuous_section_parses_and_validates() {
        let s = Scenario::from_str(&format!(
            "{GOOD}\n[continuous]\nwindows = 4\nwindow_factor = 1.5"
        ))
        .expect("valid");
        assert_eq!(
            s.continuous,
            Some(ContinuousSpec {
                windows: 4,
                window_factor: 1.5
            })
        );
        let err = Scenario::from_str(&format!("{GOOD}\n[continuous]\nwindows = 0"))
            .expect_err("zero windows");
        assert!(err.msg.contains("at least one window"), "{}", err.msg);
        let err = Scenario::from_str(&format!(
            "{GOOD}\n[continuous]\nwindows = 2\nwindow_factor = 0.5"
        ))
        .expect_err("factor < 1");
        assert!(err.msg.contains("window_factor"), "{}", err.msg);
    }

    fn fails_with(mutation: &str, needle: &str) {
        // Replace the matching line of GOOD (by key) or append.
        let key = mutation.split('=').next().unwrap().trim();
        let text: String = GOOD
            .lines()
            .map(|l| {
                if l.split('=').next().map(str::trim) == Some(key) {
                    mutation.to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = Scenario::from_str(&text).expect_err("should fail");
        assert!(
            err.msg.contains(needle),
            "error '{}' should mention '{needle}'",
            err.msg
        );
        assert!(err.line > 0, "error should carry a line number");
    }

    #[test]
    fn rejects_bad_values_with_context() {
        fails_with("kind = \"torus\"", "unknown");
        fails_with("aggregate = \"median\"", "unknown aggregate");
        fails_with("hq = 400", "out of range");
        fails_with("fraction = 1.5", "outside [0, 1]");
        fails_with("from = 0.9", "from < heal");
        fails_with("seeds = []", "at least one seed");
        fails_with("repetitions = 0", ">= 1");
    }

    #[test]
    fn grid_hq_validated_against_rounded_host_count() {
        // n = 1000 on a grid builds 31×31 = 961 hosts; hq = 980 looks
        // in-range against n but is out of range for the real graph.
        let text = GOOD
            .replace("n = 400", "n = 1_000")
            .replace("hq = 0", "hq = 980");
        let err = Scenario::from_str(&text).expect_err("hq past grid rounding");
        assert!(err.msg.contains("961"), "{}", err.msg);
        // The same hq is fine once it fits the rounded count.
        let text = GOOD
            .replace("n = 400", "n = 1_000")
            .replace("hq = 0", "hq = 960");
        assert!(Scenario::from_str(&text).is_ok());
    }

    #[test]
    fn rejects_unknown_keys_and_sections() {
        let err = Scenario::from_str(&format!("{GOOD}\nbogus = 1")).expect_err("unknown key");
        assert!(err.msg.contains("unknown key 'bogus'"), "{}", err.msg);
        let err = Scenario::from_str(&format!("{GOOD}\n[extra]\nx = 1")).expect_err("section");
        assert!(err.msg.contains("unknown section [extra]"), "{}", err.msg);
    }

    #[test]
    fn rejects_missing_required() {
        let err = Scenario::from_str("[scenario]\nname = \"x\"").expect_err("missing");
        assert!(err.msg.contains("missing required section"), "{}", err.msg);
    }

    #[test]
    fn protocol_parameters() {
        for (kind, extra, want) in [
            ("dag", "k = 3", ProtocolSpec::Dag { k: 3 }),
            (
                "randomized-report",
                "p = 0.5",
                ProtocolSpec::RandomizedReport { p: 0.5 },
            ),
            ("gossip", "rounds = 40", ProtocolSpec::Gossip { rounds: 40 }),
        ] {
            let s = Scenario::from_str(&format!(
                "[scenario]\nname = \"p\"\n[topology]\nkind = \"random\"\nn = 50\n\
                 [query]\naggregate = \"count\"\n[protocol]\nkind = \"{kind}\"\n{extra}\n\
                 [run]\nseeds = [1]"
            ))
            .expect("valid");
            assert_eq!(s.protocols, vec![want]);
        }
    }
}
