//! The batch executor: fan a scenario's `seeds × repetitions` matrix
//! across worker threads and aggregate order-independently.
//!
//! Determinism is the contract here. Each cell of the matrix derives its
//! own [`SmallRng`] stream from `(seed, repetition)` alone — never from
//! thread identity or scheduling — and every record lands in a
//! pre-allocated slot indexed by its matrix position. Aggregation then
//! reads the slots in index order, so the report (and its JSON
//! rendering) is byte-identical for any `--threads` value. The
//! `prop_scenario` suite asserts exactly that.
//!
//! One cell executes the *whole* [`RunPlan`] the scenario lowers to:
//! every `[[protocol]]` contender and (for `[continuous]` scenarios)
//! every window runs against the same churn/partition realization, so
//! the per-protocol report sections are a paired comparison.

use crate::json::Json;
use crate::spec::{ChurnSpec, Scenario};
use pov_core::judged::judged_plan;
use pov_core::mux::{judged_mux, WindowSpec, WorkloadSpec as MuxWorkloadSpec};
use pov_core::pov_protocols::{
    AdversarySpec as PlanAdversarySpec, MuxPlan, OverlayConfig, RunPlan,
};
use pov_core::pov_sim::{ChurnPlan, PartitionPlan, PhaseSchedule, Time};
use pov_core::pov_topology::{analysis, Graph, HostId};
use pov_core::workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What one `(seed, repetition, window)` produced for one protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Root seed of this cell.
    pub seed: u64,
    /// Repetition index under that seed.
    pub rep: usize,
    /// Continuous-window index (`0` for one-shot scenarios).
    pub window: usize,
    /// Label of the membership phase this window started in (`None`
    /// for scenarios without a `[phases]` schedule).
    pub phase: Option<&'static str>,
    /// Declared value (`None` if `hq` never declared).
    pub value: Option<f64>,
    /// Whether the ORACLE judged the declared value Single-Site Valid.
    pub valid: bool,
    /// Multiplicative deviation from the valid envelope (`1.0` = inside;
    /// `None` for unbounded aggregates or undeclared runs).
    pub deviation: Option<f64>,
    /// `|HC|` over the judged interval.
    pub hc: usize,
    /// `|HU|` over the judged interval.
    pub hu: usize,
    /// Communication cost (messages sent).
    pub messages: u64,
    /// Computation cost (max messages processed at one host).
    pub computation: u64,
    /// Declaration instant in ticks.
    pub time_cost: Option<u64>,
}

/// Mean / population standard deviation / min / max of one metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Agg {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Number of samples aggregated (runs that produced this metric).
    pub count: usize,
}

impl Agg {
    /// Aggregate a sample set (empty → all-zero with `count = 0`).
    pub fn of(xs: &[f64]) -> Agg {
        if xs.is_empty() {
            return Agg {
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                count: 0,
            };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Agg {
            mean,
            stddev: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            count: xs.len(),
        }
    }

    fn to_json(self) -> Json {
        Json::obj()
            .with("mean", self.mean)
            .with("stddev", self.stddev)
            .with("min", self.min)
            .with("max", self.max)
            .with("count", self.count)
    }
}

/// One protocol's slice of a batch report: its aggregates and records
/// over the whole `seeds × repetitions × windows` matrix.
#[derive(Clone, Debug)]
pub struct ProtocolSection {
    /// Protocol display label (`WILDFIRE`, `DAG(k=2)`, …).
    pub protocol: String,
    /// Fraction of this protocol's records in which `hq` declared.
    pub declared_fraction: f64,
    /// Fraction of this protocol's records judged Single-Site Valid.
    pub valid_fraction: f64,
    /// Named metric aggregates, in fixed order.
    pub metrics: Vec<(&'static str, Agg)>,
    /// Per-record results in matrix order (seed-major, then repetition,
    /// then window).
    pub records: Vec<RunRecord>,
}

impl ProtocolSection {
    /// One metric's aggregate by name.
    pub fn metric(&self, name: &str) -> Option<Agg> {
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, a)| a)
    }

    fn to_json(&self) -> Json {
        let records = self
            .records
            .iter()
            .map(|r| {
                Json::obj()
                    .with("seed", r.seed)
                    .with("rep", r.rep)
                    .with("window", r.window)
                    .with("phase", r.phase)
                    .with("value", r.value)
                    .with("valid", r.valid)
                    .with("deviation", r.deviation)
                    .with("hc", r.hc)
                    .with("hu", r.hu)
                    .with("messages", r.messages)
                    .with("computation", r.computation)
                    .with("time_cost", r.time_cost)
            })
            .collect();
        let mut metrics = Json::obj();
        for &(name, agg) in &self.metrics {
            metrics = metrics.with(name, agg.to_json());
        }
        Json::obj()
            .with("protocol", self.protocol.as_str())
            .with("declared_fraction", self.declared_fraction)
            .with("valid_fraction", self.valid_fraction)
            .with("metrics", metrics)
            .with("records", Json::Arr(records))
    }
}

/// One metric's paired per-cell difference between a contender and the
/// baseline protocol: `mean ± ci95` of `contender − baseline` over the
/// `(seed, rep, window)` cells where both produced the metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairedDiff {
    /// Metric name (`value`, `deviation`, `messages`, …).
    pub metric: &'static str,
    /// Mean per-cell difference (contender − baseline).
    pub mean: f64,
    /// 95% confidence half-width, `1.96·σ/√n` (normal approximation —
    /// the batch matrices are large enough that the t correction is
    /// noise, and the offline environment carries no t-tables).
    pub ci95: f64,
    /// Number of cells both protocols produced the metric in.
    pub count: usize,
}

/// Paired comparison of one `[[protocol]]` contender against the
/// *first* (baseline) table — e.g. `WILDFIRE − SPANNINGTREE` when
/// SPANNINGTREE is listed first. Because every cell of the batch runs
/// all protocols against the same churn/partition realization, these
/// are true paired differences: the per-cell draw variance cancels, so
/// `|mean| > ci95` is a significance statement about the protocols, not
/// about the seeds — the §6 trade-off claims become statistical rather
/// than eyeballed.
#[derive(Clone, Debug)]
pub struct PairedSection {
    /// The contender protocol's display label.
    pub protocol: String,
    /// The baseline protocol's display label (first `[[protocol]]`).
    pub baseline: String,
    /// One paired difference per metric, in fixed metric order.
    pub diffs: Vec<PairedDiff>,
}

impl PairedSection {
    /// One metric's paired difference by name.
    pub fn diff(&self, metric: &str) -> Option<PairedDiff> {
        self.diffs.iter().find(|d| d.metric == metric).copied()
    }

    fn to_json(&self) -> Json {
        let mut diffs = Json::obj();
        for d in &self.diffs {
            diffs = diffs.with(
                d.metric,
                Json::obj()
                    .with("mean", d.mean)
                    .with("ci95", d.ci95)
                    .with("count", d.count),
            );
        }
        Json::obj()
            .with("protocol", self.protocol.as_str())
            .with("baseline", self.baseline.as_str())
            .with("diffs", diffs)
    }
}

/// What one query of a cell's `[workload]` produced inside the
/// multiplexed run, judged over the query's own interval.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadRecord {
    /// Root seed of this cell.
    pub seed: u64,
    /// Repetition index under that seed.
    pub rep: usize,
    /// Query index inside the cell's workload.
    pub query: u32,
    /// Aggregate display name (`count`, `sum`, …).
    pub aggregate: &'static str,
    /// The query's root host.
    pub root: u32,
    /// Arrival tick.
    pub arrival: u64,
    /// Declared value (`None` if the root died first).
    pub value: Option<f64>,
    /// Whether the ORACLE judged the declared value Single-Site Valid
    /// over this query's own interval.
    pub valid: bool,
    /// Declaration instant in ticks.
    pub declared_at: Option<u64>,
    /// `|HC|` over the query's interval.
    pub hc: usize,
    /// `|HU|` over the query's interval.
    pub hu: usize,
    /// Payload items charged to this query across all hosts.
    pub payload_msgs: u64,
    /// Whether the query joined a live wave via the partial cache.
    pub joined: bool,
}

/// One cell's raw multiplexing economics: what the shared substrate
/// actually sent versus what the co-resident queries paid in payload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkloadCellStats {
    /// Raw engine messages (shared wave messages actually sent).
    pub raw_messages: u64,
    /// Total payload items across all queries.
    pub payload_items: u64,
    /// Queries that joined a live wave through the partial cache.
    pub cache_joins: u64,
}

impl WorkloadCellStats {
    fn add(&mut self, other: WorkloadCellStats) {
        self.raw_messages += other.raw_messages;
        self.payload_items += other.payload_items;
        self.cache_joins += other.cache_joins;
    }
}

/// The `[workload]` slice of a batch report: per-query verdicts over
/// the whole matrix plus the summed sharing economics.
#[derive(Clone, Debug)]
pub struct WorkloadSection {
    /// Queries per cell (after sliding-window expansion).
    pub queries_per_cell: usize,
    /// Fraction of workload queries whose root declared.
    pub declared_fraction: f64,
    /// Fraction of workload queries judged Single-Site Valid.
    pub valid_fraction: f64,
    /// Summed sharing economics over all cells.
    pub stats: WorkloadCellStats,
    /// Per-query results in matrix order (seed-major, then repetition,
    /// then query index).
    pub records: Vec<WorkloadRecord>,
}

impl WorkloadSection {
    fn to_json(&self) -> Json {
        let records = self
            .records
            .iter()
            .map(|r| {
                Json::obj()
                    .with("seed", r.seed)
                    .with("rep", r.rep)
                    .with("query", r.query)
                    .with("aggregate", r.aggregate)
                    .with("root", r.root)
                    .with("arrival", r.arrival)
                    .with("value", r.value)
                    .with("valid", r.valid)
                    .with("declared_at", r.declared_at)
                    .with("hc", r.hc)
                    .with("hu", r.hu)
                    .with("payload_msgs", r.payload_msgs)
                    .with("joined", r.joined)
            })
            .collect();
        Json::obj()
            .with("queries_per_cell", self.queries_per_cell)
            .with("declared_fraction", self.declared_fraction)
            .with("valid_fraction", self.valid_fraction)
            .with("raw_messages", self.stats.raw_messages)
            .with("payload_items", self.stats.payload_items)
            .with("cache_joins", self.stats.cache_joins)
            .with("records", Json::Arr(records))
    }
}

/// The aggregated result of one scenario batch: shared run facts plus
/// one [`ProtocolSection`] per `[[protocol]]` contender, all computed
/// from the same per-cell churn realizations.
#[derive(Clone, Debug)]
pub struct Report {
    /// Scenario name.
    pub scenario: String,
    /// Topology display name.
    pub topology: String,
    /// Dynamism regime (churn model, `+partition` when one is layered).
    pub churn_model: String,
    /// Actual host count of the built graph.
    pub n: usize,
    /// The `D̂` used for the query deadline.
    pub d_hat: u32,
    /// Cells in the batch matrix (seeds × repetitions).
    pub runs: usize,
    /// Continuous windows per cell (`1` for one-shot scenarios).
    pub windows: usize,
    /// Fraction of records (all protocols) in which `hq` declared.
    pub declared_fraction: f64,
    /// Fraction of records (all protocols) judged Single-Site Valid.
    pub valid_fraction: f64,
    /// One section per protocol, in `[[protocol]]` file order.
    pub protocols: Vec<ProtocolSection>,
    /// Paired per-cell differences of every later protocol against the
    /// first (empty for single-protocol scenarios).
    pub paired: Vec<PairedSection>,
    /// Per-query verdicts of the `[workload]` multiplexed runs (`None`
    /// without a `[workload]` section).
    pub workload: Option<WorkloadSection>,
}

impl Report {
    /// The section for one protocol, by display label.
    pub fn section(&self, protocol: &str) -> Option<&ProtocolSection> {
        self.protocols.iter().find(|s| s.protocol == protocol)
    }

    /// One metric's aggregate by name, from the *first* protocol
    /// section — the whole report for single-protocol scenarios.
    pub fn metric(&self, name: &str) -> Option<Agg> {
        self.protocols.first().and_then(|s| s.metric(name))
    }

    /// All records of the first protocol section (the whole batch for
    /// single-protocol scenarios).
    pub fn records(&self) -> &[RunRecord] {
        self.protocols
            .first()
            .map(|s| s.records.as_slice())
            .unwrap_or(&[])
    }

    /// The JSON document emitted by `repro scenario --json` (and diffed
    /// byte-for-byte by the determinism gate).
    pub fn to_json(&self) -> Json {
        let doc = Json::obj()
            .with("scenario", self.scenario.as_str())
            .with("topology", self.topology.as_str())
            .with("churn_model", self.churn_model.as_str())
            .with("n", self.n)
            .with("d_hat", self.d_hat)
            .with("runs", self.runs)
            .with("windows", self.windows)
            .with("declared_fraction", self.declared_fraction)
            .with("valid_fraction", self.valid_fraction)
            .with(
                "protocols",
                Json::Arr(self.protocols.iter().map(|s| s.to_json()).collect()),
            )
            .with(
                "paired",
                Json::Arr(self.paired.iter().map(|p| p.to_json()).collect()),
            );
        // The key exists only for [workload] scenarios, so workload-free
        // reports stay byte-identical to their historical renderings.
        match &self.workload {
            Some(w) => doc.with("workload", w.to_json()),
            None => doc,
        }
    }
}

/// The scenario's graph, values and derived deadline, built once and
/// shared (read-only) by every worker thread (the batch runner's and
/// the trace runner's alike).
pub(crate) struct Prepared {
    pub(crate) graph: Graph,
    pub(crate) values: Vec<u64>,
    pub(crate) d_hat: u32,
}

pub(crate) fn prepare(scn: &Scenario) -> Prepared {
    let graph = scn.topology.build(scn.n, scn.topology_seed);
    let values = workload::paper_values(graph.num_hosts(), scn.topology_seed ^ 0x5eed_0001);
    let d = analysis::diameter_estimate(&graph, 4, scn.topology_seed | 1);
    Prepared {
        graph,
        values,
        d_hat: d + scn.d_hat_slack,
    }
}

/// The tick count the scenario's window fractions scale to: the
/// one-shot deadline `2·D̂·δ`, or the whole `windows × W` horizon for
/// continuous scenarios (so a regime can span the registration).
pub(crate) fn regime_span(scn: &Scenario, deadline: u64) -> u64 {
    match &scn.continuous {
        None => deadline,
        Some(c) => c.windows as u64 * window_ticks(c, deadline),
    }
}

fn window_ticks(c: &crate::spec::ContinuousSpec, deadline: u64) -> u64 {
    (c.window_factor * deadline as f64).round() as u64
}

/// Derive the churn plan for one cell from the scenario's regime.
fn materialize_churn(scn: &Scenario, graph: &Graph, span: u64, churn_seed: u64) -> ChurnPlan {
    let hq = HostId(scn.hq);
    let n = graph.num_hosts();
    let tick = |frac: f64| Time((frac * span as f64).round() as u64);
    match &scn.churn {
        ChurnSpec::None => ChurnPlan::none(),
        ChurnSpec::Uniform { fraction, window } => ChurnPlan::uniform_failures(
            n,
            (fraction * n as f64).round() as usize,
            tick(window.0),
            tick(window.1),
            hq,
            churn_seed,
        ),
        ChurnSpec::FlashCrowd { fraction, window } => ChurnPlan::flash_crowd(
            n,
            (fraction * n as f64).round() as usize,
            tick(window.0),
            tick(window.1),
            hq,
            churn_seed,
        ),
        ChurnSpec::Correlated {
            clusters,
            cluster_size,
            window,
        } => ChurnPlan::correlated_failures(
            graph,
            *clusters,
            *cluster_size,
            tick(window.0),
            tick(window.1),
            hq,
            churn_seed,
        ),
        ChurnSpec::Oscillating {
            fraction,
            window,
            period,
            downtime,
        } => {
            // Fractional period/downtime lower to ticks of the span; both
            // clamp to ≥ 1 tick with downtime < period kept invariant.
            let period_ticks = ((period * span as f64).round() as u64).max(2);
            let downtime_ticks =
                ((downtime * span as f64).round() as u64).clamp(1, period_ticks - 1);
            ChurnPlan::oscillating(
                n,
                (fraction * n as f64).round() as usize,
                tick(window.0),
                tick(window.1),
                period_ticks,
                downtime_ticks,
                hq,
                churn_seed,
            )
        }
        ChurnSpec::AdversarialRoot { radius, at } => {
            ChurnPlan::root_neighbourhood_failures(graph, hq, *radius, tick(*at))
        }
    }
}

/// Derive the partition plan for one cell: one cut per
/// `[[partition]]` table, overlaid into a single cascading
/// [`PartitionPlan`]. All cuts draw their pivots from one RNG stream in
/// table order, so a one-table scenario materializes exactly the cut it
/// always did.
fn materialize_partition(
    scn: &Scenario,
    graph: &Graph,
    span: u64,
    churn_seed: u64,
) -> Option<PartitionPlan> {
    let hq = HostId(scn.hq);
    let n = graph.num_hosts();
    let tick = |frac: f64| Time((frac * span as f64).round() as u64);
    // Pivot each cut away from hq so the querying side is the majority;
    // a random non-hq pivot keeps per-seed variety. The partition draws
    // use their own stream off `churn_seed` so stacking a churn model
    // on top does not shift the cuts.
    let mut rng = SmallRng::seed_from_u64(churn_seed ^ 0x51de_c0de);
    let mut stacked: Option<PartitionPlan> = None;
    for spec in &scn.partitions {
        let pivot = loop {
            let h = HostId(rng.gen_range(0..n as u32));
            if h != hq {
                break h;
            }
        };
        let mut plan = PartitionPlan::split_bfs(graph, pivot, spec.fraction);
        // If hq landed on the severed side, flip the cut's meaning by
        // re-splitting from hq itself — the minority must be remote.
        if plan.sides()[hq.index()] == 1 {
            plan = PartitionPlan::split_bfs(graph, hq, 1.0 - spec.fraction);
            let flipped: Vec<u8> = plan.sides().iter().map(|&s| 1 - s).collect();
            plan = PartitionPlan::new(flipped);
        }
        let plan = plan.window(tick(spec.from), tick(spec.heal).max(tick(spec.from) + 1));
        stacked = Some(match stacked {
            None => plan,
            Some(acc) => acc.stack(plan),
        });
    }
    stacked
}

/// Build the cell's [`PhaseSchedule`] from the scenario's `[phases]`
/// spec. Weights are relative spans: phase `i` ends at tick
/// `round(cum_weight_i / total · span)`, so the boundaries partition
/// the regime span exactly (up to the ≥ 1-tick floor every phase
/// keeps) and rounding error never accumulates.
pub(crate) fn materialize_phases(scn: &Scenario, span: u64) -> Option<PhaseSchedule> {
    let spec = scn.phases.as_ref()?;
    let total: f64 = spec.phases.iter().map(|&(_, w)| w).sum();
    let mut schedule = PhaseSchedule::with_start_alive(spec.start_alive);
    let mut cum = 0.0;
    let mut last = 0u64;
    for &(kind, weight) in &spec.phases {
        cum += weight;
        let boundary = ((cum / total) * span as f64).round() as u64;
        let ticks = boundary.saturating_sub(last).max(1);
        last += ticks;
        schedule = schedule.then(kind, ticks);
    }
    Some(schedule)
}

/// One cell's fully lowered plan plus the phase schedule (when the
/// scenario scripts one) that labels its windows.
pub(crate) struct CellPlan {
    /// The executable plan — every protocol, the cell's churn/partition
    /// realization, and any continuous-window spec.
    pub(crate) plan: RunPlan,
    /// The phase schedule the regime lowered from (`None` without a
    /// `[phases]` section).
    pub(crate) phases: Option<PhaseSchedule>,
    /// The cell's workload seed (`None` without a `[workload]` section).
    pub(crate) workload_seed: Option<u64>,
}

/// Lower one `(seed, rep)` cell to its [`RunPlan`]. This is *the* cell
/// seed derivation: the batch runner and the trace runner both call it,
/// so a trace records exactly the runs the report aggregates.
pub(crate) fn cell_plan(scn: &Scenario, prep: &Prepared, seed: u64, rep: usize) -> CellPlan {
    // Per-cell RNG stream: a function of (seed, rep) only.
    let mut stream = SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(rep as u64),
    );
    let churn_seed: u64 = stream.gen();
    let sim_seed: u64 = stream.gen();
    // Drawn strictly after the churn and sim seeds, and only when the
    // scenario has an [overlay] section — overlay-free scenarios keep
    // their exact historical seed streams (byte-identical reports).
    let overlay_seed: Option<u64> = scn.overlay.map(|_| stream.gen());
    // Same discipline for [workload], drawn after the overlay seed.
    let workload_seed: Option<u64> = scn.workload.map(|_| stream.gen());
    // Churn/partition windows are fractions of the regime span in
    // *ticks*: the `2·D̂·δ` deadline, or the full multi-window horizon.
    let deadline = 2 * prep.d_hat as u64 * scn.delay.bound();
    let span = regime_span(scn, deadline);
    // A [phases] schedule owns the whole membership regime: its lowered
    // churn/partition plans replace the hand-written sections (which
    // the parser rejects alongside it anyway).
    let (phase_schedule, churn, partition) = match materialize_phases(scn, span) {
        Some(schedule) => {
            let lowered = schedule.lower(&prep.graph, HostId(scn.hq), churn_seed);
            (Some(schedule), lowered.churn, lowered.partition)
        }
        None => (
            None,
            materialize_churn(scn, &prep.graph, span, churn_seed),
            materialize_partition(scn, &prep.graph, span, churn_seed),
        ),
    };
    let mut plan = RunPlan::query(scn.aggregate)
        .d_hat(prep.d_hat)
        .repetitions(scn.c)
        .medium(scn.medium)
        .delay(scn.delay)
        .churn(churn)
        .seed(sim_seed)
        .from_host(HostId(scn.hq))
        .protocols(scn.protocols.iter().map(|p| p.kind()));
    if let Some(partition) = partition {
        plan = plan.partition(partition);
    }
    if let Some(a) = &scn.adversary {
        let tick = |frac: f64| Time((frac * span as f64).round() as u64);
        plan = plan.adversary(PlanAdversarySpec::fm_maxima(
            a.kills_per_wave,
            a.budget,
            tick(a.start),
            tick(a.until),
        ));
    }
    if let Some(ov) = &scn.overlay {
        plan = plan.overlay(OverlayConfig {
            seed: overlay_seed.expect("drawn when [overlay] present"),
            ..ov.config
        });
    }
    if let Some(c) = &scn.continuous {
        plan = plan.continuous(window_ticks(c, deadline), c.windows);
    }
    CellPlan {
        plan,
        phases: phase_schedule,
        workload_seed,
    }
}

/// What one `(seed, rep)` cell hands back to the regrouping step: one
/// record stream per protocol, plus the multiplexed workload's records
/// and sharing stats when the scenario carries a `[workload]`.
struct CellOutput {
    protocols: Vec<Vec<RunRecord>>,
    workload: Option<(Vec<WorkloadRecord>, WorkloadCellStats)>,
}

/// Execute one cell's `[workload]`: lower the fractions to ticks of the
/// unit-delay mux deadline `2·D̂`, materialize the arrival process from
/// the cell's workload seed, and run all queries multiplexed against
/// the *same* churn/partition realization the protocol contenders saw.
fn run_cell_workload(
    scn: &Scenario,
    prep: &Prepared,
    plan: &RunPlan,
    workload_seed: u64,
    seed: u64,
    rep: usize,
) -> (Vec<WorkloadRecord>, WorkloadCellStats) {
    let wl = scn.workload.expect("caller checked [workload] presence");
    // The multiplexed engine always runs on the unit-delay point-to-point
    // substrate, so its deadline base is 2·D̂ hops = ticks.
    let base = 2 * prep.d_hat as u64;
    let frac = |f: f64| (f * base as f64).round() as u64;
    let spec = MuxWorkloadSpec {
        queries: wl.queries,
        span: frac(wl.span).max(1),
        d_hat: prep.d_hat,
        window: wl.window.map(|(window, slide, instances)| {
            let window = frac(window).max(2);
            WindowSpec {
                window,
                slide: frac(slide).clamp(1, window - 1),
                instances,
            }
        }),
        seed: workload_seed,
    };
    let queries = spec.generate(prep.graph.num_hosts());
    let mux_plan = MuxPlan {
        churn: plan.churn.clone(),
        partition: plan.partition.clone(),
        seed: plan.seed,
    };
    let (judged, out) = judged_mux(&prep.graph, &prep.values, &queries, &mux_plan);
    let records = judged
        .iter()
        .map(|j| WorkloadRecord {
            seed,
            rep,
            query: j.query.id.0,
            aggregate: j.query.aggregate.name(),
            root: j.query.root.0,
            arrival: j.query.arrival,
            value: j.value,
            valid: j.is_valid(),
            declared_at: j.declared_at.map(|t| t.ticks()),
            hc: j.hc_size,
            hu: j.hu_size,
            payload_msgs: j.payload_msgs,
            joined: j.joined,
        })
        .collect();
    let stats = WorkloadCellStats {
        raw_messages: out.raw_messages,
        payload_items: out.payload_items,
        cache_joins: out.cache_joins,
    };
    (records, stats)
}

/// Execute one `(seed, rep)` cell: every protocol (and window) shares
/// the churn/partition realization drawn from this cell's RNG stream.
fn run_cell(
    scn: &Scenario,
    prep: &Prepared,
    seed: u64,
    rep: usize,
    shard_delivery: Option<usize>,
) -> CellOutput {
    let CellPlan {
        mut plan,
        phases: phase_schedule,
        workload_seed,
    } = cell_plan(scn, prep, seed, rep);
    if let Some(threads) = shard_delivery {
        plan = plan.sharded_delivery(threads);
    }
    let workload = workload_seed.map(|ws| run_cell_workload(scn, prep, &plan, ws, seed, rep));
    let protocols = judged_plan(&prep.graph, &prep.values, &plan)
        .into_iter()
        .map(|protocol| {
            protocol
                .windows
                .into_iter()
                .enumerate()
                .map(|(window, w)| RunRecord {
                    seed,
                    rep,
                    window,
                    phase: phase_schedule.as_ref().map(|s| s.label_at(w.start)),
                    value: w.judged.value,
                    valid: w.judged.verdict.is_valid(),
                    deviation: w.judged.deviation(),
                    hc: w.judged.hc_size,
                    hu: w.judged.hu_size,
                    messages: w.judged.metrics.messages_sent,
                    computation: w.judged.metrics.computation_cost(),
                    time_cost: w.judged.time_cost(),
                })
                .collect()
        })
        .collect();
    CellOutput {
        protocols,
        workload,
    }
}

/// Execute the whole batch on `threads` workers and aggregate.
///
/// # Panics
/// Panics if `threads == 0`, the scenario has no protocols, or its `hq`
/// exceeds the host count the topology actually produced (grids round
/// down to squares).
pub fn run_batch(scn: &Scenario, threads: usize) -> Report {
    run_batch_sharded(scn, threads, None)
}

/// [`run_batch`] with in-simulation sharded message delivery: each
/// cell's simulations additionally fan their per-tick delivery batches
/// across `shard_delivery` worker threads
/// ([`RunPlan::sharded_delivery`]). Reports are byte-identical for any
/// combination of `threads` and `shard_delivery` values — only the
/// `None`-vs-`Some` switch may change RNG-drawing protocols' outputs.
///
/// # Panics
/// Same conditions as [`run_batch`].
pub fn run_batch_sharded(scn: &Scenario, threads: usize, shard_delivery: Option<usize>) -> Report {
    assert!(threads >= 1, "need at least one worker thread");
    assert!(
        !scn.protocols.is_empty(),
        "scenario '{}' has no protocols",
        scn.name
    );
    let prep = prepare(scn);
    assert!(
        (scn.hq as usize) < prep.graph.num_hosts(),
        "querying host {} out of range: topology produced {} hosts",
        scn.hq,
        prep.graph.num_hosts()
    );
    let jobs: Vec<(u64, usize)> = scn
        .seeds
        .iter()
        .flat_map(|&s| (0..scn.repetitions).map(move |r| (s, r)))
        .collect();
    // The parser rejects empty seed lists / zero repetitions, but the
    // Scenario fields are public — fail loudly for hand-built specs.
    assert!(
        !jobs.is_empty(),
        "scenario '{}' has an empty seeds × repetitions matrix",
        scn.name
    );
    let mut cells: Vec<Option<CellOutput>> = Vec::new();
    cells.resize_with(jobs.len(), || None);

    let chunk = jobs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let prep = &prep;
        for (job_chunk, slot_chunk) in jobs.chunks(chunk).zip(cells.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (&(seed, rep), slot) in job_chunk.iter().zip(slot_chunk) {
                    *slot = Some(run_cell(scn, prep, seed, rep, shard_delivery));
                }
            });
        }
    });

    // Regroup: cell-major [(protocol, windows)] → protocol-major record
    // streams, still in deterministic (seed, rep, window) order. The
    // workload streams concatenate in the same cell order.
    let mut per_protocol: Vec<Vec<RunRecord>> = vec![Vec::new(); scn.protocols.len()];
    let mut workload_records: Vec<WorkloadRecord> = Vec::new();
    let mut workload_stats = WorkloadCellStats::default();
    for cell in cells {
        let cell = cell.expect("every cell ran");
        for (p, records) in cell.protocols.into_iter().enumerate() {
            per_protocol[p].extend(records);
        }
        if let Some((records, stats)) = cell.workload {
            workload_records.extend(records);
            workload_stats.add(stats);
        }
    }
    let workload = scn
        .workload
        .map(|_| workload_section(workload_records, workload_stats));
    aggregate(scn, &prep, jobs.len(), per_protocol, workload)
}

/// Aggregate the concatenated workload record stream into its report
/// section.
fn workload_section(records: Vec<WorkloadRecord>, stats: WorkloadCellStats) -> WorkloadSection {
    let per_cell = records
        .first()
        .map(|r0| {
            records
                .iter()
                .filter(|r| (r.seed, r.rep) == (r0.seed, r0.rep))
                .count()
        })
        .unwrap_or(0);
    let total = records.len().max(1);
    let declared = records.iter().filter(|r| r.value.is_some()).count();
    let valid = records.iter().filter(|r| r.valid).count();
    WorkloadSection {
        queries_per_cell: per_cell,
        declared_fraction: declared as f64 / total as f64,
        valid_fraction: valid as f64 / total as f64,
        stats,
        records,
    }
}

fn aggregate(
    scn: &Scenario,
    prep: &Prepared,
    runs: usize,
    per_protocol: Vec<Vec<RunRecord>>,
    workload: Option<WorkloadSection>,
) -> Report {
    let sections: Vec<ProtocolSection> = scn
        .protocols
        .iter()
        .zip(per_protocol)
        .map(|(spec, records)| {
            let total = records.len().max(1);
            let declared = records.iter().filter(|r| r.value.is_some()).count();
            let valid = records.iter().filter(|r| r.valid).count();
            let of = |f: &dyn Fn(&RunRecord) -> Option<f64>| {
                Agg::of(&records.iter().filter_map(f).collect::<Vec<f64>>())
            };
            let metrics: Vec<(&'static str, Agg)> = vec![
                ("value", of(&|r| r.value)),
                ("deviation", of(&|r| r.deviation)),
                ("messages", of(&|r| Some(r.messages as f64))),
                ("computation", of(&|r| Some(r.computation as f64))),
                ("time_cost", of(&|r| r.time_cost.map(|t| t as f64))),
                ("hc", of(&|r| Some(r.hc as f64))),
                ("hu", of(&|r| Some(r.hu as f64))),
            ];
            ProtocolSection {
                protocol: spec.label(),
                declared_fraction: declared as f64 / total as f64,
                valid_fraction: valid as f64 / total as f64,
                metrics,
                records,
            }
        })
        .collect();
    let all: usize = sections.iter().map(|s| s.records.len()).sum();
    let declared: usize = sections
        .iter()
        .flat_map(|s| &s.records)
        .filter(|r| r.value.is_some())
        .count();
    let valid: usize = sections
        .iter()
        .flat_map(|s| &s.records)
        .filter(|r| r.valid)
        .count();
    let paired = sections
        .split_first()
        .map(|(baseline, rest)| {
            rest.iter()
                .map(|section| paired_section(baseline, section))
                .collect()
        })
        .unwrap_or_default();
    Report {
        scenario: scn.name.clone(),
        topology: scn.topology.name().to_string(),
        churn_model: scn.regime(),
        n: prep.graph.num_hosts(),
        d_hat: prep.d_hat,
        runs,
        windows: scn.continuous.map_or(1, |c| c.windows),
        declared_fraction: declared as f64 / all.max(1) as f64,
        valid_fraction: valid as f64 / all.max(1) as f64,
        protocols: sections,
        paired,
        workload,
    }
}

/// Per-cell paired differences `section − baseline` over the matched
/// record streams (both sections run the same `(seed, rep, window)`
/// cells in the same order — the batch runner's pairing guarantee).
fn paired_section(baseline: &ProtocolSection, section: &ProtocolSection) -> PairedSection {
    debug_assert_eq!(baseline.records.len(), section.records.len());
    let diff_of = |metric: &'static str, f: &dyn Fn(&RunRecord) -> Option<f64>| {
        let diffs: Vec<f64> = section
            .records
            .iter()
            .zip(&baseline.records)
            .filter_map(|(s, b)| {
                debug_assert_eq!((s.seed, s.rep, s.window), (b.seed, b.rep, b.window));
                Some(f(s)? - f(b)?)
            })
            .collect();
        let agg = Agg::of(&diffs);
        PairedDiff {
            metric,
            mean: agg.mean,
            ci95: 1.96 * agg.stddev / (agg.count.max(1) as f64).sqrt(),
            count: agg.count,
        }
    };
    PairedSection {
        protocol: section.protocol.clone(),
        baseline: baseline.protocol.clone(),
        diffs: vec![
            diff_of("value", &|r| r.value),
            diff_of("deviation", &|r| r.deviation),
            diff_of("messages", &|r| Some(r.messages as f64)),
            diff_of("computation", &|r| Some(r.computation as f64)),
            diff_of("time_cost", &|r| r.time_cost.map(|t| t as f64)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ContinuousSpec, PartitionSpec, ProtocolSpec};
    use pov_core::pov_protocols::Aggregate;
    use pov_core::pov_sim::{DelayModel, Medium};
    use pov_core::pov_topology::generators::TopologyKind;

    pub(crate) fn tiny(churn: ChurnSpec) -> Scenario {
        Scenario {
            name: "tiny".into(),
            description: String::new(),
            topology: TopologyKind::Random,
            n: 80,
            topology_seed: 3,
            aggregate: Aggregate::Count,
            c: 8,
            hq: 0,
            d_hat_slack: 2,
            medium: Medium::PointToPoint,
            delay: DelayModel::Fixed(1),
            protocols: vec![ProtocolSpec::Wildfire],
            churn,
            partitions: vec![],
            phases: None,
            adversary: None,
            continuous: None,
            telemetry: None,
            overlay: None,
            workload: None,
            seeds: vec![1, 2, 3],
            repetitions: 2,
        }
    }

    #[test]
    fn batch_covers_matrix_in_order() {
        // Max is exactly valid under WILDFIRE (Thm 5.1) — the clean case.
        let mut scn = tiny(ChurnSpec::None);
        scn.aggregate = Aggregate::Max;
        let report = run_batch(&scn, 2);
        assert_eq!(report.runs, 6);
        let cells: Vec<(u64, usize)> = report.records().iter().map(|r| (r.seed, r.rep)).collect();
        assert_eq!(cells, vec![(1, 0), (1, 1), (2, 0), (2, 1), (3, 0), (3, 1)]);
        // Static network: everything declares, everything is valid.
        assert_eq!(report.declared_fraction, 1.0);
        assert_eq!(report.valid_fraction, 1.0);
        let v = report.metric("value").unwrap();
        assert!(v.count == 6 && v.min > 0.0);
    }

    #[test]
    fn sketched_count_deviation_stays_within_fm_noise() {
        // Strict validity is the wrong yardstick for sketched counts
        // (FM noise pushes the point estimate off the envelope even on a
        // static network); the deviation metric captures Thm 5.3's
        // Approximate SSV instead.
        let scn = tiny(ChurnSpec::Uniform {
            fraction: 0.1,
            window: (0.0, 1.0),
        });
        let report = run_batch(&scn, 2);
        let dev = report.metric("deviation").unwrap();
        assert_eq!(dev.count, 6, "every run measures a deviation");
        assert!(dev.mean < 2.0, "WILDFIRE deviation blew up: {}", dev.mean);
        assert!(dev.min >= 1.0, "deviation is clamped at 1.0");
    }

    #[test]
    fn thread_counts_agree_byte_for_byte() {
        let scn = tiny(ChurnSpec::Uniform {
            fraction: 0.1,
            window: (0.0, 1.0),
        });
        let sequential = run_batch(&scn, 1).to_json().render();
        for threads in [2, 3, 5, 8, 13] {
            let parallel = run_batch(&scn, threads).to_json().render();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn same_seed_reps_differ_but_reruns_match() {
        let scn = tiny(ChurnSpec::Uniform {
            fraction: 0.2,
            window: (0.0, 1.0),
        });
        let a = run_batch(&scn, 4);
        let b = run_batch(&scn, 4);
        assert_eq!(a.records(), b.records(), "identical batches");
        // Different (seed, rep) cells see different churn draws.
        assert_ne!(
            (a.records()[0].hc, a.records()[0].messages),
            (a.records()[1].hc, a.records()[1].messages),
            "rep 0 and rep 1 of seed 1 should differ"
        );
    }

    #[test]
    fn every_churn_regime_runs() {
        for churn in [
            ChurnSpec::Uniform {
                fraction: 0.15,
                window: (0.0, 0.8),
            },
            ChurnSpec::FlashCrowd {
                fraction: 0.2,
                window: (0.1, 0.6),
            },
            ChurnSpec::Correlated {
                clusters: 2,
                cluster_size: 5,
                window: (0.0, 0.5),
            },
            ChurnSpec::Oscillating {
                fraction: 0.2,
                window: (0.0, 1.0),
                period: 0.5,
                downtime: 0.2,
            },
            ChurnSpec::AdversarialRoot { radius: 1, at: 0.2 },
        ] {
            let name = churn.model_name();
            let mut scn = tiny(churn);
            scn.seeds = vec![1, 2];
            scn.repetitions = 1;
            let report = run_batch(&scn, 2);
            assert_eq!(report.runs, 2, "{name}");
            assert_eq!(report.churn_model, name);
            // hq never dies in any regime, so every run declares.
            assert_eq!(report.declared_fraction, 1.0, "{name}");
        }
    }

    #[test]
    fn flash_crowd_grows_hu_beyond_initial_population() {
        let scn = Scenario {
            seeds: vec![5],
            repetitions: 1,
            ..tiny(ChurnSpec::FlashCrowd {
                fraction: 0.3,
                window: (0.0, 0.5),
            })
        };
        let report = run_batch(&scn, 1);
        let r = &report.records()[0];
        // Joiners start dead: HC (stable hosts) is well below n, while HU
        // counts everyone who was up at some instant.
        assert!(r.hc < report.n, "hc {} vs n {}", r.hc, report.n);
        assert!(r.hu > r.hc, "hu {} should exceed hc {}", r.hu, r.hc);
    }

    #[test]
    fn adversarial_root_starves_the_query() {
        let mut scn = tiny(ChurnSpec::AdversarialRoot { radius: 2, at: 0.1 });
        scn.seeds = vec![7];
        scn.repetitions = 1;
        let report = run_batch(&scn, 1);
        let r = &report.records()[0];
        // The blast zone dies just after the flood leaves hq: the
        // declared count collapses far below the population.
        let v = r.value.expect("hq survives");
        assert!(
            v < report.n as f64 * 0.8,
            "adversary should hide hosts (got {v} of {})",
            report.n
        );
    }

    #[test]
    fn sketch_adversary_scenario_runs_and_reaches_the_oracle() {
        let mut scn = tiny(ChurnSpec::None);
        scn.adversary = Some(crate::spec::AdversarySpec {
            kills_per_wave: 2,
            budget: 12,
            start: 0.0,
            until: 0.6,
        });
        let report = run_batch(&scn, 2);
        assert_eq!(report.churn_model, "adversary");
        // hq is always spared, so every run declares…
        assert_eq!(report.declared_fraction, 1.0);
        for r in report.records() {
            // …and the 12 kills show up in the oracle sets: HC loses at
            // least the dead, HU still counts them.
            assert!(r.hc <= report.n - 12, "hc {} vs n {}", r.hc, report.n);
            assert_eq!(r.hu, report.n);
        }
        // Byte-identical across thread counts, like every other regime.
        assert_eq!(
            run_batch(&scn, 1).to_json().render(),
            run_batch(&scn, 8).to_json().render()
        );
    }

    #[test]
    fn partition_is_majority_side_for_hq() {
        let mut scn = tiny(ChurnSpec::None);
        scn.partitions = vec![PartitionSpec {
            fraction: 0.4,
            from: 0.0,
            heal: 1.0,
        }];
        let report = run_batch(&scn, 3);
        assert_eq!(report.churn_model, "partition");
        for r in report.records() {
            // hq always declares (it is never cut off from itself) and
            // the unhealed full-window cut hides the minority side.
            assert!(r.value.is_some());
        }
    }

    #[test]
    fn cascading_partitions_overlay_and_stay_deterministic() {
        // Two overlapping cuts must hurt validity at least as much as
        // the first cut alone, and the batch must stay byte-identical
        // across thread counts like every other regime.
        let mut one = tiny(ChurnSpec::None);
        one.partitions = vec![PartitionSpec {
            fraction: 0.3,
            from: 0.0,
            heal: 0.6,
        }];
        let mut two = one.clone();
        two.partitions.push(PartitionSpec {
            fraction: 0.2,
            from: 0.4,
            heal: 1.0,
        });
        assert_eq!(two.regime(), "partition");
        let single = run_batch(&one, 2);
        let cascade = run_batch(&two, 2);
        assert_eq!(cascade.runs, single.runs);
        // hq sits on the majority side of every cut, so it declares.
        assert_eq!(cascade.declared_fraction, 1.0);
        let dev_one = single.metric("deviation").unwrap().mean;
        let dev_two = cascade.metric("deviation").unwrap().mean;
        assert!(
            dev_two >= dev_one * 0.99,
            "a second cut cannot improve validity: {dev_two} vs {dev_one}"
        );
        // The first cut's realization is unchanged by adding a second
        // table: the pivot stream is drawn in table order.
        assert_eq!(
            run_batch(&two, 1).to_json().render(),
            run_batch(&two, 8).to_json().render()
        );
    }

    #[test]
    fn churn_and_partition_stack_in_one_run() {
        // Uniform failures *and* a healing cut: validity must suffer at
        // least as much as under the failures alone.
        let churn = ChurnSpec::Uniform {
            fraction: 0.1,
            window: (0.0, 1.0),
        };
        let mut stacked = tiny(churn.clone());
        stacked.partitions = vec![PartitionSpec {
            fraction: 0.3,
            from: 0.1,
            heal: 0.8,
        }];
        let alone = run_batch(&tiny(churn), 2);
        let both = run_batch(&stacked, 2);
        assert_eq!(both.churn_model, "uniform+partition");
        assert_eq!(both.runs, alone.runs);
        let dev_alone = alone.metric("deviation").unwrap().mean;
        let dev_both = both.metric("deviation").unwrap().mean;
        assert!(
            dev_both >= dev_alone * 0.99,
            "stacking a cut cannot improve validity: {dev_both} vs {dev_alone}"
        );
    }

    #[test]
    fn multi_protocol_sections_share_realization() {
        let mut scn = tiny(ChurnSpec::Uniform {
            fraction: 0.15,
            window: (0.0, 1.0),
        });
        scn.protocols = vec![ProtocolSpec::Wildfire, ProtocolSpec::SpanningTree];
        let report = run_batch(&scn, 2);
        assert_eq!(report.protocols.len(), 2);
        let wf = report.section("WILDFIRE").expect("section");
        let st = report.section("SPANNINGTREE").expect("section");
        assert_eq!(wf.records.len(), st.records.len());
        // Paired: record i of both sections comes from the same (seed,
        // rep) cell and hence the same churn draw — HU (same judging
        // deadline) matches record-for-record.
        for (a, b) in wf.records.iter().zip(&st.records) {
            assert_eq!((a.seed, a.rep, a.window), (b.seed, b.rep, b.window));
            assert_eq!(a.hu, b.hu, "seed {} rep {}", a.seed, a.rep);
        }
        // And each section equals the single-protocol run of the same
        // scenario — protocol order cannot perturb the realization.
        let mut solo = scn.clone();
        solo.protocols = vec![ProtocolSpec::SpanningTree];
        let solo_report = run_batch(&solo, 2);
        assert_eq!(st.records, solo_report.records());
    }

    #[test]
    fn paired_difference_column_contrasts_protocols() {
        let mut scn = tiny(ChurnSpec::Uniform {
            fraction: 0.15,
            window: (0.0, 1.0),
        });
        scn.protocols = vec![ProtocolSpec::SpanningTree, ProtocolSpec::Wildfire];
        let report = run_batch(&scn, 2);
        // One paired section per non-baseline contender.
        assert_eq!(report.paired.len(), 1);
        let p = &report.paired[0];
        assert_eq!(p.protocol, "WILDFIRE");
        assert_eq!(p.baseline, "SPANNINGTREE");
        // Hand-computed per-cell message differences must match.
        let wf = report.section("WILDFIRE").unwrap();
        let st = report.section("SPANNINGTREE").unwrap();
        let diffs: Vec<f64> = wf
            .records
            .iter()
            .zip(&st.records)
            .map(|(a, b)| a.messages as f64 - b.messages as f64)
            .collect();
        let msgs = p.diff("messages").expect("messages diff");
        assert_eq!(msgs.count, diffs.len());
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        assert!((msgs.mean - mean).abs() < 1e-9);
        assert!(msgs.ci95 >= 0.0);
        // WILDFIRE floods; the paired effect on messages is large and
        // positive — and under churn, significantly so.
        assert!(
            msgs.mean > msgs.ci95,
            "WILDFIRE must pay significantly more messages: {} ± {}",
            msgs.mean,
            msgs.ci95
        );
        // Single-protocol reports carry no paired sections.
        let solo = run_batch(&tiny(ChurnSpec::None), 1);
        assert!(solo.paired.is_empty());
        // The column lands in the JSON document deterministically.
        let json = report.to_json().render();
        assert!(json.contains("\"paired\""), "{json}");
        assert!(json.contains("\"ci95\""), "{json}");
        assert_eq!(json, run_batch(&scn, 8).to_json().render());
    }

    #[test]
    fn continuous_scenario_reports_per_window_records() {
        let mut scn = tiny(ChurnSpec::Uniform {
            fraction: 0.2,
            window: (0.0, 0.6),
        });
        scn.seeds = vec![1, 2];
        scn.repetitions = 1;
        scn.continuous = Some(ContinuousSpec {
            windows: 3,
            window_factor: 1.0,
        });
        let report = run_batch(&scn, 2);
        assert_eq!(report.runs, 2);
        assert_eq!(report.windows, 3);
        let records = report.records();
        assert_eq!(records.len(), 2 * 3, "one record per cell per window");
        let order: Vec<(u64, usize)> = records.iter().map(|r| (r.seed, r.window)).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)]);
        // Churn spans the horizon: the later windows run against a
        // thinner population than the first.
        let hu0 = records
            .iter()
            .filter(|r| r.window == 0)
            .map(|r| r.hu)
            .sum::<usize>();
        let hu2 = records
            .iter()
            .filter(|r| r.window == 2)
            .map(|r| r.hu)
            .sum::<usize>();
        assert!(hu2 < hu0, "membership must decay: {hu2} vs {hu0}");
        // Determinism holds for windows too.
        assert_eq!(
            run_batch(&scn, 1).to_json().render(),
            run_batch(&scn, 4).to_json().render()
        );
    }

    #[test]
    fn phased_schedule_labels_windows_and_shapes_membership() {
        use pov_core::pov_sim::PhaseKind;
        let mut scn = tiny(ChurnSpec::None);
        scn.phases = Some(crate::spec::PhasesSpec {
            start_alive: 0.6,
            phases: vec![
                (PhaseKind::Growth { fraction: 0.5 }, 1.0),
                (PhaseKind::Stable, 1.0),
                (PhaseKind::Shrink { fraction: 0.5 }, 1.0),
                (PhaseKind::Heal, 1.0),
            ],
        });
        scn.seeds = vec![1, 2];
        scn.repetitions = 1;
        scn.continuous = Some(ContinuousSpec {
            windows: 8,
            window_factor: 1.0,
        });
        let report = run_batch(&scn, 2);
        assert_eq!(report.churn_model, "phased");
        assert_eq!(report.windows, 8);
        // Equal weights over 8 windows: every record carries its phase
        // label and the labels tile the horizon two windows apiece.
        let labels: Vec<&str> = report
            .records()
            .iter()
            .filter(|r| r.seed == 1)
            .map(|r| r.phase.expect("phased runs label every window"))
            .collect();
        assert_eq!(
            labels,
            ["growth", "growth", "stable", "stable", "shrink", "shrink", "heal", "heal"]
        );
        // The arc shows up in the oracle sets: growth raises the judged
        // population, shrink lowers it again.
        let hu = |label: &str| {
            report
                .records()
                .iter()
                .filter(|r| r.phase == Some(label))
                .map(|r| r.hu)
                .sum::<usize>()
        };
        assert!(
            hu("stable") > hu("growth"),
            "growth must raise membership: stable {} vs growth {}",
            hu("stable"),
            hu("growth")
        );
        assert!(
            hu("heal") < hu("stable"),
            "shrink must thin membership: heal {} vs stable {}",
            hu("heal"),
            hu("stable")
        );
        // The label lands in the JSON document and the batch stays
        // byte-identical across thread counts like every other regime.
        let json = report.to_json().render();
        assert!(json.contains("\"phase\": \"growth\""), "{json}");
        assert_eq!(json, run_batch(&scn, 4).to_json().render());
    }

    #[test]
    fn overlay_scenario_runs_and_stays_deterministic() {
        let mut scn = tiny(ChurnSpec::Uniform {
            fraction: 0.15,
            window: (0.0, 1.0),
        });
        scn.overlay = Some(crate::spec::OverlaySpec {
            config: OverlayConfig::default(),
        });
        let report = run_batch(&scn, 2);
        assert_eq!(report.runs, 6);
        // hq never dies, and the overlay starts as a copy of the base
        // topology, so every run still declares.
        assert_eq!(report.declared_fraction, 1.0);
        // The headline determinism contract extends to maintained
        // overlays: byte-identical reports for any --threads value.
        assert_eq!(
            run_batch(&scn, 1).to_json().render(),
            run_batch(&scn, 8).to_json().render()
        );
    }

    #[test]
    fn overlay_seed_varies_per_cell_but_not_per_protocol() {
        // Two protocols under one overlay scenario stay paired: same
        // cell → same overlay seed → same maintained-overlay evolution.
        let mut scn = tiny(ChurnSpec::Uniform {
            fraction: 0.15,
            window: (0.0, 1.0),
        });
        scn.overlay = Some(crate::spec::OverlaySpec {
            config: OverlayConfig::default(),
        });
        scn.protocols = vec![ProtocolSpec::Wildfire, ProtocolSpec::SpanningTree];
        let report = run_batch(&scn, 2);
        let wf = report.section("WILDFIRE").expect("section");
        let st = report.section("SPANNINGTREE").expect("section");
        for (a, b) in wf.records.iter().zip(&st.records) {
            assert_eq!((a.seed, a.rep, a.window), (b.seed, b.rep, b.window));
            assert_eq!(a.hu, b.hu, "seed {} rep {}", a.seed, a.rep);
        }
    }

    #[test]
    fn delay_model_reaches_the_simulation() {
        // A 2-tick fixed hop delay must double the declaration instant
        // relative to the default — if the spec's delay were silently
        // dropped, both batches would report identical time costs.
        let mut one = tiny(ChurnSpec::None);
        one.aggregate = Aggregate::Max;
        let mut two = one.clone();
        two.delay = DelayModel::Fixed(2);
        let t1 = run_batch(&one, 2).metric("time_cost").unwrap().mean;
        let t2 = run_batch(&two, 2).metric("time_cost").unwrap().mean;
        assert_eq!(t2, t1 * 2.0, "2-tick δ must double the time cost");
        // And the exact max survives the slower network.
        let v = run_batch(&two, 2).metric("value").unwrap();
        assert_eq!(v.min, v.max, "max is exact under any delay bound");
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_rejected() {
        run_batch(&tiny(ChurnSpec::None), 0);
    }

    #[test]
    fn workload_scenario_reports_per_query_verdicts() {
        let mut scn = tiny(ChurnSpec::Uniform {
            fraction: 0.1,
            window: (0.0, 1.0),
        });
        scn.workload = Some(crate::spec::WorkloadSpec {
            queries: 12,
            span: 1.0,
            window: None,
        });
        let report = run_batch(&scn, 2);
        let w = report.workload.as_ref().expect("workload section");
        assert_eq!(w.queries_per_cell, 12);
        assert_eq!(w.records.len(), 12 * report.runs);
        // Matrix order: seed-major, then repetition, then query index.
        let order: Vec<(u64, usize, u32)> =
            w.records.iter().map(|r| (r.seed, r.rep, r.query)).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
        // Sharing economics are accounted.
        assert!(w.stats.raw_messages > 0);
        assert!(w.stats.payload_items > 0);
        // The key lands in the JSON document, byte-identically across
        // thread counts like every other report slice.
        let json = report.to_json().render();
        assert!(json.contains("\"workload\""), "{json}");
        assert!(json.contains("\"payload_msgs\""), "{json}");
        assert_eq!(json, run_batch(&scn, 8).to_json().render());
    }

    #[test]
    fn workload_leaves_protocol_records_untouched() {
        // The workload seed is drawn after every pre-existing seed, so
        // adding a [workload] section must not perturb the protocol
        // contenders' realizations — the golden-report guarantee.
        let churn = ChurnSpec::Uniform {
            fraction: 0.15,
            window: (0.0, 1.0),
        };
        let plain = tiny(churn.clone());
        let mut with_wl = tiny(churn);
        with_wl.workload = Some(crate::spec::WorkloadSpec {
            queries: 5,
            span: 0.5,
            window: None,
        });
        let a = run_batch(&plain, 2);
        let b = run_batch(&with_wl, 2);
        assert_eq!(a.records(), b.records());
        // And workload-free reports carry no workload key at all.
        assert!(!a.to_json().render().contains("\"workload\""));
    }

    #[test]
    fn windowed_workload_expands_instances_in_report() {
        let mut scn = tiny(ChurnSpec::None);
        scn.seeds = vec![1];
        scn.repetitions = 1;
        scn.workload = Some(crate::spec::WorkloadSpec {
            queries: 4,
            span: 0.5,
            window: Some((0.8, 0.3, 3)),
        });
        let report = run_batch(&scn, 1);
        let w = report.workload.as_ref().expect("workload section");
        assert_eq!(w.queries_per_cell, 4 * 3, "base queries × instances");
        // Static network: every query declares and every verdict holds.
        assert_eq!(w.declared_fraction, 1.0);
        assert_eq!(w.valid_fraction, 1.0);
    }

    #[test]
    fn agg_statistics() {
        let a = Agg::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mean, 2.5);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
        assert_eq!(a.count, 4);
        assert!((a.stddev - 1.118).abs() < 1e-3);
        let empty = Agg::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
    }
}
