//! Property-based tests for graphs, generators and analysis.

use pov_topology::generators::{self, TopologyKind};
use pov_topology::{analysis, GraphBuilder, HostId};
use proptest::prelude::*;

/// Strategy: a random edge list over `n` hosts.
fn edges(n: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..(3 * n as usize))
}

proptest! {
    #[test]
    fn builder_produces_simple_graphs(n in 2u32..40, es in edges(40)) {
        let mut b = GraphBuilder::with_hosts(n as usize);
        for (a, bb) in es {
            if a < n && bb < n {
                b.add_edge(HostId(a), HostId(bb));
            }
        }
        let g = b.build();
        // No self-loops, sorted unique neighbours, symmetric edges.
        for h in g.hosts() {
            let nbrs = g.neighbors(h);
            prop_assert!(!nbrs.contains(&h));
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &m in nbrs {
                prop_assert!(g.has_edge(m, h));
            }
        }
        // Handshake lemma.
        let degree_sum: usize = g.hosts().map(|h| g.degree(h)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn bfs_satisfies_edge_lipschitz(n in 2u32..30, es in edges(30)) {
        let mut b = GraphBuilder::with_hosts(n as usize);
        for (a, bb) in es {
            if a < n && bb < n {
                b.add_edge(HostId(a), HostId(bb));
            }
        }
        let g = b.build();
        let d = analysis::bfs_distances(&g, HostId(0));
        prop_assert_eq!(d[0], 0);
        // Along every edge distances differ by at most 1 (when finite).
        for (a, bb) in g.edges() {
            let (da, db) = (d[a.index()], d[bb.index()]);
            if da != analysis::UNREACHABLE && db != analysis::UNREACHABLE {
                prop_assert!(da.abs_diff(db) <= 1);
            } else {
                // One endpoint reachable forces the other reachable.
                prop_assert_eq!(da, db);
            }
        }
    }

    #[test]
    fn components_partition_hosts(n in 1u32..40, es in edges(40)) {
        let mut b = GraphBuilder::with_hosts(n as usize);
        for (a, bb) in es {
            if a < n && bb < n {
                b.add_edge(HostId(a), HostId(bb));
            }
        }
        let g = b.build();
        let comps = analysis::connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_hosts());
        let mut all: Vec<HostId> = comps.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), g.num_hosts());
    }

    #[test]
    fn connect_components_connects(n in 2u32..40, es in edges(40)) {
        let mut b = GraphBuilder::with_hosts(n as usize);
        for (a, bb) in es {
            if a < n && bb < n {
                b.add_edge(HostId(a), HostId(bb));
            }
        }
        let g = b.build();
        let (fixed, added) = analysis::connect_components(&g);
        prop_assert!(analysis::is_connected(&fixed));
        prop_assert_eq!(fixed.num_edges(), g.num_edges() + added);
    }

    #[test]
    fn double_sweep_never_exceeds_true_diameter(n in 2u32..25, es in edges(25)) {
        let mut b = GraphBuilder::with_hosts(n as usize);
        b.add_edge(HostId(0), HostId(1)); // ensure at least one edge
        for (a, bb) in es {
            if a < n && bb < n {
                b.add_edge(HostId(a), HostId(bb));
            }
        }
        let g = b.build();
        let exact = analysis::diameter_exact(&g);
        let est = analysis::diameter_estimate(&g, 4, 7);
        prop_assert!(est <= exact, "estimate {est} > exact {exact}");
    }

    #[test]
    fn generators_meet_contract(seed in 0u64..50, n in 60usize..200) {
        for kind in TopologyKind::ALL {
            let g = kind.build(n, seed);
            prop_assert!(analysis::is_connected(&g), "{}", kind.name());
            // Grid rounds |H| down to the nearest perfect square.
            let floor = if kind == TopologyKind::Grid {
                let side = (n as f64).sqrt().floor() as usize;
                side * side
            } else {
                n
            };
            prop_assert_eq!(g.num_hosts(), floor, "{}", kind.name());
            prop_assert!(g.num_edges() >= g.num_hosts() - 1);
        }
    }

    #[test]
    fn grid_degrees_bounded_by_moore(side in 2usize..15) {
        let g = generators::grid_square(side);
        for h in g.hosts() {
            let d = g.degree(h);
            prop_assert!((3..=8).contains(&d), "degree {d}");
        }
    }

    #[test]
    fn cycle_with_spur_always_survives_victim(n in 1usize..20) {
        let (g, hq, victim) = generators::special::cycle_with_spur(n);
        let d = analysis::bfs_distances_filtered(&g, hq, |h| h != victim);
        let unreachable = d
            .iter()
            .filter(|&&x| x == analysis::UNREACHABLE)
            .count();
        prop_assert_eq!(unreachable, 1);
    }

    #[test]
    fn ring_segments_partition_circle(n in 1usize..200, seed in 0u64..100) {
        let ring = pov_topology::ring::IdentifierRing::new(n, seed);
        let total: f64 = (0..n as u32)
            .filter_map(|h| ring.segment_length(HostId(h)))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }
}
