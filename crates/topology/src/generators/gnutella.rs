//! Synthetic Gnutella-like topology.
//!
//! The paper evaluates on a real 2001 crawl of Gnutella (DSS Clip2 [10])
//! with `|H| = 39,046`. That dataset is not redistributable, so — per the
//! substitution policy in DESIGN.md — we synthesize a graph matching the
//! structural properties reported for Gnutella snapshots of that era by
//! Ripeanu, Foster & Iamnitchi [33]:
//!
//! * heavy-tailed ("multi-modal power-law") degree distribution,
//! * average degree ≈ 3.4,
//! * minimum degree 1 but very few degree-1 hosts (ultrapeer-ish core),
//! * a single connected component,
//! * small diameter (≈ 12 at 40K hosts, §3.2).
//!
//! The generator mixes preferential attachment (creating hubs) with
//! uniform attachment (creating the exponential low-degree mode), the
//! standard recipe for Gnutella-like overlays.

use crate::analysis::connect_components;
use crate::{EdgeSink, Graph, HostId, StreamingBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Probability that an arriving host picks its neighbours preferentially
/// (vs uniformly). Chosen so the degree tail resembles the published
/// Gnutella exponent (~2.3) while keeping a thick low-degree mode.
const PREFERENTIAL_MIX: f64 = 0.7;

/// Emit the Gnutella-like edge stream into `sink`. Shared by the
/// streaming production path and the materialized `#[cfg(test)]` oracle.
fn emit_gnutella<S: EdgeSink>(n: usize, seed: u64, sink: &mut S) {
    assert!(n >= 8, "need at least 8 hosts");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut endpoints: Vec<HostId> = Vec::with_capacity(4 * n);

    // Small random core.
    let core = 8.min(n);
    for a in 0..core as u32 {
        let bb = (a + 1) % core as u32;
        sink.add_edge(HostId(a), HostId(bb));
        endpoints.push(HostId(a));
        endpoints.push(HostId(bb));
    }

    for v in core..n {
        let v = HostId(v as u32);
        // Average degree ~3.4 → on average 1.7 edges contributed per
        // arrival: alternate between 1 and 2, biased toward 2.
        let edges = if rng.gen_bool(0.7) { 2 } else { 1 };
        let mut chosen: Vec<HostId> = Vec::with_capacity(edges);
        let mut guard = 0;
        while chosen.len() < edges && guard < 64 {
            guard += 1;
            let t = if rng.gen_bool(PREFERENTIAL_MIX) {
                endpoints[rng.gen_range(0..endpoints.len())]
            } else {
                HostId(rng.gen_range(0..v.0))
            };
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            sink.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
}

/// Build a Gnutella-like graph with `n` hosts. Use `n = 39_046` to match
/// the paper's crawl size. Edges stream straight into the CSR builder so
/// peak memory is `O(edges)`.
pub fn gnutella(n: usize, seed: u64) -> Graph {
    // ~1.7 edges contributed per arrival plus the core ring.
    let hint = (n as f64 * 1.8) as usize + 16;
    let mut b = StreamingBuilder::with_edge_capacity(n, hint);
    emit_gnutella(n, seed, &mut b);
    let (g, _) = connect_components(&b.build());
    g
}

/// The pre-streaming materialized path, kept as the byte-identity oracle
/// for `generators::tests::streaming_matches_materialized_oracle`.
#[cfg(test)]
pub(crate) fn gnutella_materialized(n: usize, seed: u64) -> Graph {
    let mut b = crate::GraphBuilder::with_hosts(n);
    emit_gnutella(n, seed, &mut b);
    let (g, _) = connect_components(&b.build());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn paper_scale_properties() {
        let g = gnutella(39_046, 2004);
        assert_eq!(g.num_hosts(), 39_046);
        assert!(analysis::is_connected(&g));
        let avg = g.average_degree();
        assert!(
            (2.6..4.2).contains(&avg),
            "average degree {avg} out of Gnutella range"
        );
        let d = analysis::diameter_estimate(&g, 4, 1);
        assert!(d <= 25, "diameter {d} too large (Gnutella 2001 had ~12)");
    }

    #[test]
    fn has_hubs() {
        let g = gnutella(10_000, 7);
        let max_deg = g.hosts().map(|h| g.degree(h)).max().unwrap();
        assert!(max_deg >= 30, "max degree {max_deg}: no hubs formed");
    }

    #[test]
    fn deterministic() {
        let a = gnutella(1_000, 3);
        let b = gnutella(1_000, 3);
        assert_eq!(a.num_edges(), b.num_edges());
        for h in a.hosts() {
            assert_eq!(a.neighbors(h), b.neighbors(h));
        }
    }

    #[test]
    fn connected_across_seeds() {
        for seed in 0..4 {
            assert!(analysis::is_connected(&gnutella(500, seed)));
        }
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn rejects_tiny_networks() {
        gnutella(4, 0);
    }
}
