//! Sensor-grid topology (§6.1 "Grid": 10K hosts in a 100×100 grid, each
//! host has the hosts in the enclosing 2-unit square as neighbours, i.e.
//! the Moore 8-neighbourhood).

use crate::{EdgeSink, Graph, HostId, StreamingBuilder};

/// Emit the Moore-neighbourhood grid edges into `sink`. Shared by the
/// streaming production path and the materialized `#[cfg(test)]` oracle.
fn emit_grid<S: EdgeSink>(rows: usize, cols: usize, sink: &mut S) {
    assert!(rows >= 1 && cols >= 1, "grid must be non-empty");
    let id = |r: usize, c: usize| HostId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            // Right, down-left, down, down-right: each undirected edge once.
            if c + 1 < cols {
                sink.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                if c > 0 {
                    sink.add_edge(id(r, c), id(r + 1, c - 1));
                }
                sink.add_edge(id(r, c), id(r + 1, c));
                if c + 1 < cols {
                    sink.add_edge(id(r, c), id(r + 1, c + 1));
                }
            }
        }
    }
}

/// `rows × cols` grid with Moore (8-neighbour) connectivity. Host at
/// `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = StreamingBuilder::with_edge_capacity(rows * cols, 4 * rows * cols);
    emit_grid(rows, cols, &mut b);
    b.build()
}

/// The pre-streaming materialized path, kept as the byte-identity oracle
/// for `generators::tests::streaming_matches_materialized_oracle`.
#[cfg(test)]
pub(crate) fn grid_materialized(rows: usize, cols: usize) -> Graph {
    let mut b = crate::GraphBuilder::with_hosts(rows * cols);
    emit_grid(rows, cols, &mut b);
    b.build()
}

/// Square `side × side` grid (the paper's configuration is
/// `grid_square(100)`).
pub fn grid_square(side: usize) -> Graph {
    grid(side, side)
}

/// Row/column coordinates of a host in a grid with `cols` columns.
pub fn grid_coords(h: HostId, cols: usize) -> (usize, usize) {
    (h.index() / cols, h.index() % cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn paper_grid_dimensions() {
        let g = grid_square(100);
        assert_eq!(g.num_hosts(), 10_000);
        // Moore-neighbourhood edge count: horizontal + vertical + 2 diagonal
        // families.
        let expected = 99 * 100 * 2 + 99 * 99 * 2;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn interior_host_has_eight_neighbors() {
        let g = grid_square(5);
        // host (2,2) = id 12 is interior.
        assert_eq!(g.degree(HostId(12)), 8);
    }

    #[test]
    fn corner_host_has_three_neighbors() {
        let g = grid_square(5);
        assert_eq!(g.degree(HostId(0)), 3);
        assert_eq!(g.degree(HostId(24)), 3);
    }

    #[test]
    fn edge_host_has_five_neighbors() {
        let g = grid_square(5);
        // host (0,2) = id 2 on the top edge.
        assert_eq!(g.degree(HostId(2)), 5);
    }

    #[test]
    fn grid_is_connected_with_chebyshev_diameter() {
        let g = grid_square(20);
        assert!(analysis::is_connected(&g));
        // Moore moves allow diagonal steps: diameter = side - 1.
        assert_eq!(analysis::diameter_exact(&g), 19);
    }

    #[test]
    fn rectangular_grid() {
        let g = grid(3, 4);
        assert_eq!(g.num_hosts(), 12);
        assert!(analysis::is_connected(&g));
        assert_eq!(grid_coords(HostId(7), 4), (1, 3));
    }

    #[test]
    fn single_host_grid() {
        let g = grid(1, 1);
        assert_eq!(g.num_hosts(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_grid() {
        grid(0, 5);
    }
}
