//! Adversarial constructions from the paper's proofs.
//!
//! * [`chain`] — the host chain used in the proof of Theorem 4.1
//!   (impossibility of Snapshot Validity): a query initiated at one end of
//!   a `k+1` chain cannot observe value changes at the far end in time.
//! * [`one_connected`] — the construction of Theorem 4.2 (impossibility
//!   of Interval Validity): a host `h` whose only connection to `hq` runs
//!   through a cut vertex `h'`.
//! * [`cycle_with_spur`] — the instance of Theorem 4.4 on which
//!   SPANNINGTREE returns `|H| ≤ |HC|/e` after a single failure: `2n+2`
//!   hosts in a cycle with one extra host attached at the antipode.
//! * [`star`], [`complete`] — utility extremes for tests.

use crate::{Graph, GraphBuilder, HostId};

/// A chain `h0 - h1 - ... - h_{n-1}`.
pub fn chain(n: usize) -> Graph {
    let mut b = GraphBuilder::with_hosts(n);
    for i in 1..n {
        b.add_edge(HostId(i as u32 - 1), HostId(i as u32));
    }
    b.build()
}

/// A cycle over `n` hosts.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs >= 3 hosts");
    let mut b = GraphBuilder::with_hosts(n);
    for i in 0..n {
        b.add_edge(HostId(i as u32), HostId(((i + 1) % n) as u32));
    }
    b.build()
}

/// Theorem 4.2 construction: a chain `hq=h0 - h' = h1 - h = h2`, where
/// `h1` is the cut vertex whose failure disconnects `h` from `hq`, padded
/// with `extra` additional hosts hanging off `hq` so the graph is not
/// degenerate. Returns `(graph, hq, cut_vertex, stranded_host)`.
pub fn one_connected(extra: usize) -> (Graph, HostId, HostId, HostId) {
    let n = 3 + extra;
    let mut b = GraphBuilder::with_hosts(n);
    b.add_edge(HostId(0), HostId(1));
    b.add_edge(HostId(1), HostId(2));
    for i in 0..extra {
        b.add_edge(HostId(0), HostId(3 + i as u32));
    }
    (b.build(), HostId(0), HostId(1), HostId(2))
}

/// Theorem 4.4 construction: `2n+2` hosts `h0..h_{2n+1}` arranged in a
/// cycle, plus host `h_{2n+2}` attached to the cycle at `h_{n+1}` with a
/// single edge. The query host is `h0`; failing its cycle neighbour `h1`
/// right after broadcast makes SPANNINGTREE lose the longer chain.
///
/// Returns `(graph, hq, first_victim)` where `first_victim = h1`.
pub fn cycle_with_spur(n: usize) -> (Graph, HostId, HostId) {
    assert!(n >= 1, "need n >= 1");
    let cycle_len = 2 * n + 2;
    let mut b = GraphBuilder::with_hosts(cycle_len + 1);
    for i in 0..cycle_len {
        b.add_edge(HostId(i as u32), HostId(((i + 1) % cycle_len) as u32));
    }
    b.add_edge(HostId((n + 1) as u32), HostId(cycle_len as u32));
    (b.build(), HostId(0), HostId(1))
}

/// A star: host 0 connected to all others.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_hosts(n);
    for i in 1..n {
        b.add_edge(HostId(0), HostId(i as u32));
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_hosts(n);
    for a in 0..n as u32 {
        for bb in (a + 1)..n as u32 {
            b.add_edge(HostId(a), HostId(bb));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn chain_shape() {
        let g = chain(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(analysis::diameter_exact(&g), 4);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8);
        assert_eq!(g.num_edges(), 8);
        assert!(g.hosts().all(|h| g.degree(h) == 2));
    }

    #[test]
    fn one_connected_cut_vertex_disconnects() {
        let (g, hq, cut, stranded) = one_connected(3);
        assert!(analysis::is_connected(&g));
        let d = analysis::bfs_distances_filtered(&g, hq, |h| h != cut);
        assert_eq!(d[stranded.index()], analysis::UNREACHABLE);
    }

    #[test]
    fn cycle_with_spur_theorem_4_4_shape() {
        let n = 5;
        let (g, hq, victim) = cycle_with_spur(n);
        assert_eq!(g.num_hosts(), 2 * n + 3);
        assert_eq!(g.num_edges(), 2 * n + 3);
        assert_eq!(g.degree(hq), 2);
        assert_eq!(g.degree(victim), 2);
        // The spur host has degree 1 and hangs off the antipode h_{n+1}.
        assert_eq!(g.degree(HostId(2 * n as u32 + 2)), 1);
        assert_eq!(g.degree(HostId(n as u32 + 1)), 3);
        // Even after the victim fails the network stays connected (the
        // other arc of the cycle survives) - that is the crux of Thm 4.4:
        // HC is still almost everything, yet SPANNINGTREE reports half.
        let d = analysis::bfs_distances_filtered(&g, hq, |h| h != victim);
        let unreachable = d.iter().filter(|&&x| x == analysis::UNREACHABLE).count();
        assert_eq!(unreachable, 1); // only the failed host itself
    }

    #[test]
    fn star_and_complete() {
        let s = star(10);
        assert_eq!(s.degree(HostId(0)), 9);
        assert_eq!(analysis::diameter_exact(&s), 2);
        let k = complete(6);
        assert_eq!(k.num_edges(), 15);
        assert_eq!(analysis::diameter_exact(&k), 1);
    }
}
