//! Topology generators.
//!
//! §6.1 of the paper evaluates on four topologies:
//!
//! * **Gnutella** — a 2001 crawl with `|H| = 39,046` ([`gnutella`];
//!   we synthesize a structurally matching graph, see crate docs and
//!   DESIGN.md for the substitution rationale);
//! * **Random** — uniform random edges with average degree 5
//!   ([`random_average_degree`]);
//! * **Power-law** — degree exponent γ = 2.9 ([`power_law`]);
//! * **Grid** — 100×100 sensor grid, each host adjacent to the hosts in
//!   the enclosing 2-unit square, i.e. the 8-host Moore neighbourhood
//!   ([`grid`]).
//!
//! [`special`] holds the adversarial constructions used in the proofs of
//! Theorems 4.1, 4.2 and 4.4.

mod gnutella;
mod grid;
mod powerlaw;
mod random;
pub mod special;

pub use gnutella::gnutella;
pub use grid::{grid, grid_coords, grid_square};
pub use powerlaw::{barabasi_albert, estimate_gamma, power_law};
pub use random::random_average_degree;

use crate::Graph;

/// The four §6.1 evaluation topologies, addressable by name (handy for the
/// `repro` harness and experiment configs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TopologyKind {
    /// Gnutella-like crawl graph (synthetic stand-in; 39,046 hosts at
    /// paper scale).
    Gnutella,
    /// Uniform random graph with average degree 5.
    Random,
    /// Power-law degree distribution with γ = 2.9.
    PowerLaw,
    /// Square sensor grid with Moore (8-neighbour) connectivity.
    Grid,
}

impl TopologyKind {
    /// Build a topology of this kind with (approximately) `n` hosts.
    ///
    /// For [`TopologyKind::Grid`] the host count is rounded down to the
    /// nearest perfect square, matching the paper's 100×100 = 10K layout.
    pub fn build(self, n: usize, seed: u64) -> Graph {
        match self {
            TopologyKind::Gnutella => gnutella(n, seed),
            TopologyKind::Random => random_average_degree(n, 5.0, seed),
            TopologyKind::PowerLaw => power_law(n, 2.9, seed),
            TopologyKind::Grid => {
                let side = (n as f64).sqrt().floor() as usize;
                grid_square(side)
            }
        }
    }

    /// Host count used in the paper's experiments for this topology.
    pub fn paper_size(self) -> usize {
        match self {
            TopologyKind::Gnutella => 39_046,
            TopologyKind::Random | TopologyKind::PowerLaw => 40_000,
            TopologyKind::Grid => 10_000,
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Gnutella => "Gnutella",
            TopologyKind::Random => "Random",
            TopologyKind::PowerLaw => "Power-law",
            TopologyKind::Grid => "Grid",
        }
    }

    /// All four kinds in the order the paper lists them.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::Gnutella,
        TopologyKind::Random,
        TopologyKind::PowerLaw,
        TopologyKind::Grid,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn kinds_build_connected_graphs() {
        for kind in TopologyKind::ALL {
            let g = kind.build(400, 9);
            assert!(
                analysis::is_connected(&g),
                "{} should be connected",
                kind.name()
            );
            assert!(g.num_hosts() >= 396, "{}", kind.name());
        }
    }

    #[test]
    fn paper_sizes_match_section_6_1() {
        assert_eq!(TopologyKind::Gnutella.paper_size(), 39_046);
        assert_eq!(TopologyKind::Random.paper_size(), 40_000);
        assert_eq!(TopologyKind::PowerLaw.paper_size(), 40_000);
        assert_eq!(TopologyKind::Grid.paper_size(), 10_000);
    }

    #[test]
    fn grid_kind_rounds_to_square() {
        let g = TopologyKind::Grid.build(10_000, 0);
        assert_eq!(g.num_hosts(), 10_000);
        let g = TopologyKind::Grid.build(10_100, 0);
        assert_eq!(g.num_hosts(), 10_000);
    }

    /// The streaming CSR path must be byte-identical to the old
    /// materialized `GraphBuilder` path (kept behind `#[cfg(test)]` as
    /// the oracle) for every generator × size × seed. Mirrors the PR-5
    /// heap-queue oracle pattern.
    #[test]
    fn streaming_matches_materialized_oracle() {
        fn assert_identical(stream: &Graph, oracle: &Graph, what: &str) {
            assert_eq!(
                stream.csr_parts(),
                oracle.csr_parts(),
                "{what}: CSR parts diverge"
            );
            assert_eq!(stream.num_edges(), oracle.num_edges(), "{what}");
        }
        for &n in &[16usize, 257, 1000] {
            for seed in 0..3u64 {
                assert_identical(
                    &gnutella(n, seed),
                    &gnutella::gnutella_materialized(n, seed),
                    &format!("gnutella n={n} seed={seed}"),
                );
                assert_identical(
                    &random_average_degree(n, 5.0, seed),
                    &random::random_average_degree_materialized(n, 5.0, seed),
                    &format!("random n={n} seed={seed}"),
                );
                assert_identical(
                    &power_law(n, 2.9, seed),
                    &powerlaw::power_law_materialized(n, 2.9, seed),
                    &format!("power_law n={n} seed={seed}"),
                );
                assert_identical(
                    &barabasi_albert(n, 2, seed),
                    &powerlaw::barabasi_albert_materialized(n, 2, seed),
                    &format!("barabasi_albert n={n} seed={seed}"),
                );
            }
            let side = (n as f64).sqrt().floor() as usize;
            assert_identical(
                &grid(side, side + 1),
                &grid::grid_materialized(side, side + 1),
                &format!("grid {side}x{}", side + 1),
            );
        }
        // The dense complete-graph branch of the random generator.
        assert_identical(
            &random_average_degree(6, 5.0, 0),
            &random::random_average_degree_materialized(6, 5.0, 0),
            "random dense limit",
        );
    }
}
