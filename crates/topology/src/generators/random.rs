//! Uniform random graphs (the §6.1 "Random" topology).

use crate::analysis::connect_components;
use crate::{EdgeSink, Graph, HostId, StreamingBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Emit the `G(n, p)` edge stream into `sink`. Shared by the streaming
/// production path and the materialized `#[cfg(test)]` oracle, so both
/// consume the rng identically.
fn emit_random<S: EdgeSink>(n: usize, avg_degree: f64, seed: u64, sink: &mut S) {
    assert!(n >= 2, "need at least two hosts");
    let p = (avg_degree / (n as f64 - 1.0)).clamp(0.0, 1.0);
    let mut rng = SmallRng::seed_from_u64(seed);

    if p >= 1.0 {
        for a in 0..n as u32 {
            for bb in (a + 1)..n as u32 {
                sink.add_edge(HostId(a), HostId(bb));
            }
        }
        return;
    }
    if p > 0.0 {
        // Iterate over the implicit index of pairs (a, b), a < b, skipping
        // ahead by geometric jumps (Batagelj & Brandes style).
        let log_1p = (1.0 - p).ln();
        let mut a: i64 = 1;
        let mut bb: i64 = -1;
        let n = n as i64;
        while a < n {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            bb += 1 + ((1.0 - r).ln() / log_1p) as i64;
            while bb >= a && a < n {
                bb -= a;
                a += 1;
            }
            if a < n {
                sink.add_edge(HostId(bb as u32), HostId(a as u32));
            }
        }
    }
}

/// `G(n, p)` with `p` chosen so the expected average degree is
/// `avg_degree`, then patched to a single connected component (§6.1:
/// *"constructed by placing an edge between pairs of hosts with uniform
/// probability such that average degree is 5"*).
///
/// Uses geometric edge skipping so generation is `O(|E|)` rather than
/// `O(n²)`, and streams edges straight into the CSR builder so peak
/// memory is one flat pair buffer — `O(|E|)` with a small constant.
pub fn random_average_degree(n: usize, avg_degree: f64, seed: u64) -> Graph {
    // Expected |E| = n·avg/2; pad a little so the buffer rarely grows.
    let hint = ((n as f64 * avg_degree / 2.0) * 1.05) as usize + 16;
    let mut b = StreamingBuilder::with_edge_capacity(n, hint);
    emit_random(n, avg_degree, seed, &mut b);
    let (g, _) = connect_components(&b.build());
    g
}

/// The pre-streaming materialized path, kept as the byte-identity oracle
/// for `generators::tests::streaming_matches_materialized_oracle`.
#[cfg(test)]
pub(crate) fn random_average_degree_materialized(n: usize, avg_degree: f64, seed: u64) -> Graph {
    let mut b = crate::GraphBuilder::with_hosts(n);
    emit_random(n, avg_degree, seed, &mut b);
    let (g, _) = connect_components(&b.build());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn average_degree_close_to_target() {
        let g = random_average_degree(10_000, 5.0, 1);
        let avg = g.average_degree();
        assert!((4.5..5.5).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = random_average_degree(500, 5.0, 7);
        let b = random_average_degree(500, 5.0, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        for h in a.hosts() {
            assert_eq!(a.neighbors(h), b.neighbors(h));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_average_degree(500, 5.0, 7);
        let b = random_average_degree(500, 5.0, 8);
        let same = a.hosts().all(|h| a.neighbors(h) == b.neighbors(h));
        assert!(!same);
    }

    #[test]
    fn always_connected() {
        for seed in 0..5 {
            let g = random_average_degree(300, 2.0, seed);
            assert!(analysis::is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn small_world_diameter() {
        // §3.2: information networks exhibit small diameters.
        let g = random_average_degree(5_000, 5.0, 3);
        let d = analysis::diameter_estimate(&g, 4, 5);
        assert!(d <= 15, "diameter {d} too large for a random graph");
    }

    #[test]
    fn dense_limit_is_complete() {
        let g = random_average_degree(6, 5.0, 0);
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    #[should_panic(expected = "at least two hosts")]
    fn rejects_tiny_networks() {
        random_average_degree(1, 5.0, 0);
    }
}
