//! Power-law graphs (the §6.1 "Power-law" topology, γ = 2.9, citing
//! Barabási–Albert [4]).

use crate::analysis::connect_components;
use crate::{EdgeSink, Graph, HostId, StreamingBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Emit the Barabási–Albert edge stream into `sink`. Shared by the
/// streaming production path and the materialized `#[cfg(test)]` oracle.
fn emit_barabasi_albert<S: EdgeSink>(n: usize, m: usize, seed: u64, sink: &mut S) {
    assert!(n > m && m >= 1, "need n > m >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Repeated-endpoints list: choosing uniformly from it is
    // degree-proportional choice.
    let mut endpoints: Vec<HostId> = Vec::with_capacity(2 * n * m);

    // Seed clique on the first m+1 hosts.
    for a in 0..=(m as u32) {
        for bb in (a + 1)..=(m as u32) {
            sink.add_edge(HostId(a), HostId(bb));
            endpoints.push(HostId(a));
            endpoints.push(HostId(bb));
        }
    }
    for v in (m + 1)..n {
        let v = HostId(v as u32);
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            sink.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
}

/// Barabási–Albert preferential attachment: each arriving host attaches
/// to `m` existing hosts chosen proportionally to degree. Produces a
/// connected graph with a power-law tail of exponent ≈ 3.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    let hint = n * m + m * m;
    let mut b = StreamingBuilder::with_edge_capacity(n, hint);
    emit_barabasi_albert(n, m, seed, &mut b);
    b.build()
}

/// The pre-streaming materialized BA path, kept as the byte-identity
/// oracle for `generators::tests::streaming_matches_materialized_oracle`.
#[cfg(test)]
pub(crate) fn barabasi_albert_materialized(n: usize, m: usize, seed: u64) -> Graph {
    let mut b = crate::GraphBuilder::with_hosts(n);
    emit_barabasi_albert(n, m, seed, &mut b);
    b.build()
}

/// Emit the configuration-model stub pairing into `sink`. Shared by the
/// streaming production path and the materialized `#[cfg(test)]` oracle.
fn emit_power_law<S: EdgeSink>(n: usize, gamma: f64, seed: u64, sink: &mut S) {
    assert!(n >= 4, "need at least 4 hosts");
    assert!(gamma > 1.0, "gamma must exceed 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let min_deg = 2usize;
    let max_deg = ((n as f64).sqrt() as usize).max(min_deg + 1);

    // Inverse-CDF sampling from P(deg = k) ∝ k^-gamma on [min_deg, max_deg].
    let weights: Vec<f64> = (min_deg..=max_deg)
        .map(|k| (k as f64).powf(-gamma))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let mut stubs: Vec<HostId> = Vec::new();
    for h in 0..n {
        let u: f64 = rng.gen();
        let idx = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
        let deg = min_deg + idx;
        for _ in 0..deg {
            stubs.push(HostId(h as u32));
        }
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    // Fisher-Yates pairing.
    for i in (1..stubs.len()).rev() {
        stubs.swap(i, rng.gen_range(0..=i));
    }
    for pair in stubs.chunks_exact(2) {
        sink.add_edge(pair[0], pair[1]);
    }
}

/// Configuration-model power-law graph with target degree exponent
/// `gamma` (the paper uses γ = 2.9). Draws degrees from a truncated
/// discrete power law (min degree 2, max `√n`), pairs stubs uniformly at
/// random, erases self-loops/multi-edges and patches connectivity.
pub fn power_law(n: usize, gamma: f64, seed: u64) -> Graph {
    // Mean degree of the truncated power law is a little over min_deg.
    let hint = (n as f64 * 1.5) as usize + 16;
    let mut b = StreamingBuilder::with_edge_capacity(n, hint);
    emit_power_law(n, gamma, seed, &mut b);
    let (g, _) = connect_components(&b.build());
    g
}

/// The pre-streaming materialized path, kept as the byte-identity oracle
/// for `generators::tests::streaming_matches_materialized_oracle`.
#[cfg(test)]
pub(crate) fn power_law_materialized(n: usize, gamma: f64, seed: u64) -> Graph {
    let mut b = crate::GraphBuilder::with_hosts(n);
    emit_power_law(n, gamma, seed, &mut b);
    let (g, _) = connect_components(&b.build());
    g
}

/// Maximum-likelihood (Hill) estimate of the power-law exponent of a
/// graph's degree distribution, using the Clauset–Shalizi–Newman discrete
/// approximation `γ ≈ 1 + n / Σ ln(d_i / (d_min − ½))` over degrees
/// `d_i ≥ d_min`. Good enough to assert the generator hits its target.
pub fn estimate_gamma(g: &Graph) -> f64 {
    let d_min = 2.0f64;
    let mut n = 0usize;
    let mut acc = 0.0f64;
    for h in g.hosts() {
        let d = g.degree(h) as f64;
        if d >= d_min {
            n += 1;
            acc += (d / (d_min - 0.5)).ln();
        }
    }
    if n == 0 || acc <= 0.0 {
        return f64::NAN;
    }
    1.0 + n as f64 / acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn ba_is_connected_and_sized() {
        let g = barabasi_albert(2_000, 2, 5);
        assert_eq!(g.num_hosts(), 2_000);
        assert!(analysis::is_connected(&g));
        // m edges per arrival plus the seed clique.
        assert!(g.num_edges() >= 2 * (2_000 - 3));
    }

    #[test]
    fn ba_has_heavy_tail() {
        let g = barabasi_albert(5_000, 2, 9);
        let max_deg = g.hosts().map(|h| g.degree(h)).max().unwrap();
        // A uniform random graph with the same density would have max
        // degree ~15; preferential attachment produces hubs.
        assert!(max_deg > 40, "max degree {max_deg}");
    }

    #[test]
    fn configuration_model_connected() {
        for seed in 0..3 {
            let g = power_law(1_000, 2.9, seed);
            assert!(analysis::is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn gamma_estimate_in_range() {
        let g = power_law(30_000, 2.9, 1);
        let gamma = estimate_gamma(&g);
        assert!(
            (2.0..4.0).contains(&gamma),
            "estimated gamma {gamma} far from 2.9"
        );
    }

    #[test]
    fn min_degree_respected_before_patching() {
        let g = power_law(2_000, 2.9, 3);
        // Erased configuration model can only lower degrees slightly; the
        // bulk of hosts should retain degree >= 2.
        let low = g.hosts().filter(|&h| g.degree(h) < 2).count();
        assert!(low * 20 < g.num_hosts(), "{low} hosts below min degree");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = power_law(500, 2.9, 11);
        let b = power_law(500, 2.9, 11);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    #[should_panic(expected = "n > m")]
    fn ba_rejects_bad_parameters() {
        barabasi_albert(2, 2, 0);
    }
}
